//! Direct LOCAL→MPC simulation baseline.
//!
//! The natural way to run \[BE08\] peeling in MPC is one-LOCAL-round-per-
//! MPC-phase: each phase, removed vertices announce themselves to the
//! machines holding their edges, and aggregated degree decrements flow back
//! to the vertex owners through a constant-depth aggregation tree. This uses
//! `Θ(log n)` MPC phases — the curve the paper's `poly(log log n)` algorithm
//! is measured against in experiment E1 (§1.2 calls this the state of the
//! art before \[GLM19\] and, apart from the `2^Θ(√log n)` sparsification route,
//! the only executable comparator).

use dgo_graph::{Graph, LayerAssignment};
use dgo_mpc::{ClusterConfig, ExecutionBackend, Metrics, Result, SequentialBackend};
use std::collections::HashSet;

/// Result of the direct LOCAL→MPC peeling simulation.
#[derive(Debug, Clone)]
pub struct DirectMpcResult {
    /// The computed H-partition (same artifact as the LOCAL peeling).
    pub layering: LayerAssignment,
    /// Metered MPC execution statistics.
    pub metrics: Metrics,
    /// Degree threshold used.
    pub threshold: usize,
}

/// Runs \[BE08\] peeling as a metered MPC computation.
///
/// Vertices and edges are distributed over machines (vertices by home
/// placement, edges round-robin); each peeling round costs one announcement
/// exchange plus an aggregation tree of depth `⌈log_S M⌉` for the degree
/// decrements.
///
/// # Errors
///
/// Propagates [`dgo_mpc::MpcError`] if a round's communication exceeds the
/// per-machine capacity in strict mode.
///
/// # Examples
///
/// ```
/// use dgo_graph::generators::gnm;
/// use dgo_mpc::ClusterConfig;
/// use dgo_local::direct_peeling_mpc;
///
/// let g = gnm(2000, 4000, 1);
/// let cfg = ClusterConfig::for_graph(2000, 4000, 0.6);
/// let r = direct_peeling_mpc(&g, 4, 0.5, cfg)?;
/// assert!(r.layering.is_complete());
/// assert!(r.metrics.rounds >= 5); // Θ(log n) behaviour
/// # Ok::<(), dgo_mpc::MpcError>(())
/// ```
pub fn direct_peeling_mpc(
    graph: &Graph,
    lambda_hat: usize,
    eps: f64,
    config: ClusterConfig,
) -> Result<DirectMpcResult> {
    direct_peeling_mpc_on::<SequentialBackend>(graph, lambda_hat, eps, config)
}

/// [`direct_peeling_mpc`] on a caller-chosen [`ExecutionBackend`].
///
/// # Errors
///
/// See [`direct_peeling_mpc`].
pub fn direct_peeling_mpc_on<B: ExecutionBackend>(
    graph: &Graph,
    lambda_hat: usize,
    eps: f64,
    config: ClusterConfig,
) -> Result<DirectMpcResult> {
    assert!(eps >= 0.0, "eps must be nonnegative");
    let n = graph.num_vertices();
    let m = graph.num_edges();
    let threshold = ((2.0 + eps) * lambda_hat.max(1) as f64).ceil() as usize;
    let mut cluster = B::from_config(config);
    let machines = cluster.num_machines();
    let s = cluster.local_memory();

    // Input layout: vertex records (id, degree) at home(v); edges round-robin.
    let mut residency = vec![0usize; machines];
    for v in 0..n {
        residency[cluster.home(v as u64)] += 2;
    }
    for (i, _) in graph.edges().enumerate() {
        residency[i % machines] += 2;
    }
    cluster.checkpoint_residency(&residency)?;

    // Aggregation-tree depth for fan-in S over M machines.
    let agg_rounds = if machines <= 1 {
        1
    } else {
        ((machines as f64).ln() / (s.max(2) as f64).ln())
            .ceil()
            .max(1.0) as u64
    };

    let mut layering = LayerAssignment::unassigned(n);
    let mut degree: Vec<usize> = (0..n).map(|v| graph.degree(v)).collect();
    let mut alive = vec![true; n];
    let mut remaining = n;
    let mut layer = 0u32;
    let round_cap = 4 * (n.max(2) as f64).log2().ceil() as u32 + 8;

    while remaining > 0 && layer < round_cap {
        layer += 1;
        let peel: Vec<usize> = (0..n)
            .filter(|&v| alive[v] && degree[v] <= threshold)
            .collect();
        if peel.is_empty() {
            break;
        }
        // Phase A: removed vertices announce to the machines holding their
        // edges. Volume = sum of remaining degrees of peeled vertices; edge
        // copies are balanced round-robin, so per-machine load is the
        // balanced share (plus one announcement word per peeled vertex).
        let mut announce_volume = peel.len();
        let mut touched: Vec<HashSet<usize>> = vec![HashSet::new(); machines];
        for &v in &peel {
            for &w in graph.neighbors(v) {
                let w = w as usize;
                if alive[w] {
                    announce_volume += 1;
                    touched[cluster.home(w as u64)].insert(w);
                }
            }
        }
        let announce_load = announce_volume.div_ceil(machines).max(1);
        cluster.charge_rounds(1, announce_volume, announce_load)?;

        // Phase B: aggregated decrements flow to vertex owners through the
        // tree; each alive touched vertex receives exactly one record.
        let max_touched = touched.iter().map(HashSet::len).max().unwrap_or(0);
        let decrement_volume: usize = touched.iter().map(HashSet::len).sum();
        let tree_load = max_touched.max(decrement_volume.div_ceil(machines)).max(1);
        cluster.charge_rounds(
            agg_rounds,
            decrement_volume * agg_rounds as usize,
            tree_load,
        )?;

        // State update (local, free).
        for &v in &peel {
            layering.set_layer(v, layer);
            alive[v] = false;
        }
        for &v in &peel {
            for &w in graph.neighbors(v) {
                let w = w as usize;
                if alive[w] {
                    degree[w] -= 1;
                }
            }
        }
        remaining -= peel.len();
    }
    let _ = m;
    Ok(DirectMpcResult {
        layering,
        metrics: cluster.into_metrics(),
        threshold,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgo_graph::generators::{gnm, random_tree, star};

    #[test]
    fn matches_local_peeling_artifact() {
        let g = gnm(1000, 2000, 7);
        let cfg = ClusterConfig::for_graph(1000, 2000, 0.6);
        let mpc = direct_peeling_mpc(&g, 4, 0.5, cfg).unwrap();
        let local = crate::peeling::be08_peeling(&g, 4, 0.5, 0);
        assert_eq!(mpc.layering, local.layering);
    }

    #[test]
    fn rounds_scale_with_layers() {
        let g = random_tree(4000, 2);
        let cfg = ClusterConfig::for_graph(4000, 3999, 0.6);
        let r = direct_peeling_mpc(&g, 1, 0.5, cfg).unwrap();
        assert!(r.layering.is_complete());
        let layers = r.layering.max_layer().unwrap() as u64;
        // Each layer costs at least 2 MPC rounds (announce + aggregate).
        assert!(r.metrics.rounds >= 2 * layers);
    }

    #[test]
    fn star_fits_capacity_via_aggregation() {
        // The star center receives n-1 decrements; the aggregation tree must
        // keep this within capacity.
        let g = star(5000);
        let cfg = ClusterConfig::for_graph(5000, 4999, 0.5);
        let r = direct_peeling_mpc(&g, 1, 0.5, cfg).unwrap();
        assert!(r.layering.is_complete());
    }

    #[test]
    fn strict_capacity_violation_surfaces() {
        // A deliberately starved cluster: 2 machines with tiny memory.
        let g = gnm(500, 1500, 1);
        let cfg = ClusterConfig::new(2, 16);
        assert!(direct_peeling_mpc(&g, 3, 0.5, cfg).is_err());
    }

    #[test]
    fn empty_graph() {
        let cfg = ClusterConfig::new(2, 64);
        let r = direct_peeling_mpc(&Graph::empty(4), 1, 0.0, cfg).unwrap();
        assert!(r.layering.is_complete());
    }
}
