//! A round-driver for the LOCAL model of distributed computing.
//!
//! In the LOCAL model (paper §1.1; [Lin87, Pel00]) the graph *is* the
//! network: per round every node sends one message to each neighbor, receives
//! its neighbors' messages, and updates its state. The round count is the
//! complexity measure. This driver executes such algorithms faithfully and
//! counts rounds; the MPC baselines and the paper's within-layer coloring
//! subroutine are expressed against it.

use dgo_graph::Graph;

/// A node-centric LOCAL algorithm.
///
/// The driver owns the synchronous schedule; implementations provide the
/// three node-local callbacks. Nodes see neighbor messages tagged with the
/// *neighbor's id* (ids are public information in LOCAL).
pub trait LocalAlgorithm {
    /// Per-node state.
    type State;
    /// Message type exchanged along edges each round.
    type Message: Clone;

    /// Initial state of node `v`, knowing only its own neighborhood.
    fn init(&mut self, v: usize, graph: &Graph) -> Self::State;

    /// The message node `v` broadcasts to all neighbors this round, or
    /// `None` to stay silent.
    fn send(&mut self, v: usize, state: &Self::State, round: u64) -> Option<Self::Message>;

    /// Processes the inbox of node `v`: `(neighbor, message)` pairs in
    /// ascending neighbor order. Returns `true` if the node has terminated
    /// (a terminated node neither sends nor receives further).
    fn receive(
        &mut self,
        v: usize,
        state: &mut Self::State,
        inbox: &[(usize, Self::Message)],
        round: u64,
    ) -> bool;
}

/// Outcome of a LOCAL execution.
#[derive(Debug, Clone)]
pub struct LocalRun<S> {
    /// Final per-node states.
    pub states: Vec<S>,
    /// Rounds executed until every node terminated (or the cap was hit).
    pub rounds: u64,
    /// Whether all nodes terminated before `max_rounds`.
    pub completed: bool,
}

/// Runs `algorithm` on `graph` for at most `max_rounds` synchronous rounds.
///
/// # Examples
///
/// A one-round "learn your neighbor count" algorithm:
///
/// ```
/// use dgo_graph::Graph;
/// use dgo_local::{run_local, LocalAlgorithm};
///
/// struct CountNeighbors;
/// impl LocalAlgorithm for CountNeighbors {
///     type State = usize;
///     type Message = ();
///     fn init(&mut self, _v: usize, _g: &Graph) -> usize { 0 }
///     fn send(&mut self, _v: usize, _s: &usize, _r: u64) -> Option<()> { Some(()) }
///     fn receive(&mut self, _v: usize, s: &mut usize, inbox: &[(usize, ())], _r: u64) -> bool {
///         *s = inbox.len();
///         true
///     }
/// }
///
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2)])?;
/// let run = run_local(&g, CountNeighbors, 10);
/// assert_eq!(run.states, vec![1, 2, 1]);
/// assert_eq!(run.rounds, 1);
/// assert!(run.completed);
/// # Ok::<(), dgo_graph::GraphError>(())
/// ```
pub fn run_local<A: LocalAlgorithm>(
    graph: &Graph,
    mut algorithm: A,
    max_rounds: u64,
) -> LocalRun<A::State> {
    let n = graph.num_vertices();
    let mut states: Vec<A::State> = (0..n).map(|v| algorithm.init(v, graph)).collect();
    let mut done = vec![false; n];
    let mut rounds = 0u64;
    if n == 0 {
        return LocalRun {
            states,
            rounds: 0,
            completed: true,
        };
    }
    while rounds < max_rounds && done.iter().any(|d| !d) {
        rounds += 1;
        // Send phase.
        let messages: Vec<Option<A::Message>> = (0..n)
            .map(|v| {
                if done[v] {
                    None
                } else {
                    algorithm.send(v, &states[v], rounds)
                }
            })
            .collect();
        // Receive phase.
        for v in 0..n {
            if done[v] {
                continue;
            }
            let inbox: Vec<(usize, A::Message)> = graph
                .neighbors(v)
                .iter()
                .filter_map(|&w| {
                    let w = w as usize;
                    messages[w].clone().map(|msg| (w, msg))
                })
                .collect();
            if algorithm.receive(v, &mut states[v], &inbox, rounds) {
                done[v] = true;
            }
        }
    }
    let completed = done.iter().all(|&d| d);
    LocalRun {
        states,
        rounds,
        completed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Flood-fill: every node learns the minimum id in its component.
    struct MinId;
    impl LocalAlgorithm for MinId {
        type State = usize;
        type Message = usize;
        fn init(&mut self, v: usize, _g: &Graph) -> usize {
            v
        }
        fn send(&mut self, _v: usize, s: &usize, _r: u64) -> Option<usize> {
            Some(*s)
        }
        fn receive(&mut self, _v: usize, s: &mut usize, inbox: &[(usize, usize)], _r: u64) -> bool {
            let before = *s;
            for &(_, m) in inbox {
                *s = (*s).min(m);
            }
            // Terminate when stable — fine for tests on short paths.
            *s == before
        }
    }

    #[test]
    fn min_id_floods_path() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let run = run_local(&g, MinId, 100);
        assert!(run.completed);
        assert!(run.states.iter().all(|&s| s == 0));
        // Information needs ~diameter rounds.
        assert!(run.rounds >= 4 && run.rounds <= 10);
    }

    #[test]
    fn min_id_respects_components() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let run = run_local(&g, MinId, 100);
        assert_eq!(run.states, vec![0, 0, 2, 2]);
    }

    #[test]
    fn round_cap_stops_execution() {
        let g = Graph::from_edges(10, &(0..9).map(|i| (i, i + 1)).collect::<Vec<_>>()).unwrap();
        let run = run_local(&g, MinId, 2);
        assert!(!run.completed);
        assert_eq!(run.rounds, 2);
    }

    #[test]
    fn empty_graph_completes_instantly() {
        let run = run_local(&Graph::empty(0), MinId, 5);
        assert!(run.completed);
        assert_eq!(run.rounds, 0);
    }

    #[test]
    fn isolated_vertices_terminate() {
        let g = Graph::empty(3);
        let run = run_local(&g, MinId, 5);
        assert!(run.completed);
        assert_eq!(run.rounds, 1); // one round to notice stability
    }
}
