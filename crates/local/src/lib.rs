//! # dgo-local — LOCAL-model simulator and baseline algorithms
//!
//! The paper's reference points live here:
//!
//! * [`run_local`] / [`LocalAlgorithm`] — a faithful round-driver for the
//!   LOCAL model of distributed computing (§1.1);
//! * [`be08_peeling`] — the Barenboim–Elkin `(2+ε)λ` orientation /
//!   H-partition via `O(log n)`-round peeling \[BE08\], the algorithm the
//!   paper's MPC algorithm "approximately simulates" (§1.4);
//! * [`randomized_list_coloring`] — degree+1 list coloring in `O(log n)`
//!   LOCAL rounds whp, the within-layer subroutine of Theorem 1.2
//!   (substituting for \[HKNT22\]; see DESIGN.md §5);
//! * [`direct_peeling_mpc`] — the `Θ(log n)`-round direct LOCAL→MPC
//!   simulation baseline, fully metered on a [`dgo_mpc::Cluster`];
//! * [`RoundModel`] — calibrated analytic round curves for the three-way
//!   comparison of experiment E1 (direct vs \[GLM19\] vs this paper).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod baseline_mpc;
mod glm19;
mod list_coloring;
mod network;
mod peeling;
mod peeling_local;

pub use baseline_mpc::{direct_peeling_mpc, direct_peeling_mpc_on, DirectMpcResult};
pub use glm19::{ModelFamily, RoundModel};
pub use list_coloring::{randomized_list_coloring, ListColoringResult, UNCOLORED};
pub use network::{run_local, LocalAlgorithm, LocalRun};
pub use peeling::{be08_peeling, PeelingResult};
pub use peeling_local::{be08_via_local_driver, Be08Local, PeelState};
