//! Analytic round models for the three algorithm families compared in
//! experiment E1.
//!
//! The paper's §1.2 compares three round complexities for density-dependent
//! orientation:
//!
//! * direct LOCAL simulation: `Θ(log n)` MPC rounds;
//! * the sparsification route of \[GLM19\]: phases of `T' = Θ(√log n)` LOCAL
//!   rounds, each simulated by graph exponentiation in `O(log T')` MPC
//!   rounds, for `(T/T')·log T' = Õ(√log n)` total;
//! * this paper: `poly(log log n)` rounds.
//!
//! Re-implementing the full \[GLM19\] sparsification machinery is out of scope
//! (the paper itself treats it as a round-complexity reference, not an
//! artifact); instead these calibrated closed forms reproduce the *shape* of
//! the comparison — who wins and where the curves cross. The constants are
//! calibrated so all three models agree at `n = 2^10` (where all approaches
//! cost a few dozen rounds), isolating the asymptotic behaviour.

/// A calibrated analytic round model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundModel {
    /// Multiplicative calibration constant.
    pub constant: f64,
}

impl RoundModel {
    /// Model of the direct LOCAL→MPC simulation: `c · log₂ n`.
    pub fn direct() -> Self {
        RoundModel { constant: 2.0 }
    }

    /// Model of \[GLM19\]: `c · (T/T')·log₂ T'` with `T = log₂ n`,
    /// `T' = √(log₂ n)`, i.e. `c · √(log₂ n) · log₂ √(log₂ n)`.
    pub fn glm19() -> Self {
        RoundModel { constant: 3.8 }
    }

    /// Model of this paper: `c · (log₂ log₂ n)²` — the dominant
    /// `O(log k · log² log n)` term of Lemma 3.15 at `k = O(log n)` collapses
    /// to `poly(log log n)`; the quadratic form matches the measured
    /// exponent of the implementation.
    pub fn ours() -> Self {
        RoundModel { constant: 1.8 }
    }

    /// Predicted rounds at instance size `n` for the model family selected by
    /// the constructor used. The family is identified by comparing against
    /// the known constructors — see [`RoundModel::predict`].
    fn shape_direct(n: f64) -> f64 {
        n.max(4.0).log2()
    }

    fn shape_glm19(n: f64) -> f64 {
        let t = n.max(4.0).log2();
        let tp = t.sqrt();
        (t / tp) * tp.log2().max(1.0)
    }

    fn shape_ours(n: f64) -> f64 {
        let ll = n.max(4.0).log2().log2().max(1.0);
        ll * ll
    }

    /// Evaluates `constant · shape(n)` for the given shape function.
    fn eval(&self, shape: fn(f64) -> f64, n: usize) -> f64 {
        self.constant * shape(n as f64)
    }

    /// Predicted rounds of the *direct simulation* model at size `n`.
    pub fn predict_direct(n: usize) -> f64 {
        Self::direct().eval(Self::shape_direct, n)
    }

    /// Predicted rounds of the *\[GLM19\] sparsification* model at size `n`.
    pub fn predict_glm19(n: usize) -> f64 {
        Self::glm19().eval(Self::shape_glm19, n)
    }

    /// Predicted rounds of *this paper's* model at size `n`.
    pub fn predict_ours(n: usize) -> f64 {
        Self::ours().eval(Self::shape_ours, n)
    }

    /// Generic prediction with this model's constant and a caller-chosen
    /// shape selector.
    pub fn predict(&self, family: ModelFamily, n: usize) -> f64 {
        match family {
            ModelFamily::Direct => self.eval(Self::shape_direct, n),
            ModelFamily::Glm19 => self.eval(Self::shape_glm19, n),
            ModelFamily::Ours => self.eval(Self::shape_ours, n),
        }
    }
}

/// The three model families of experiment E1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelFamily {
    /// Direct LOCAL simulation, `Θ(log n)`.
    Direct,
    /// \[GLM19\] sparsification, `Õ(√log n)`.
    Glm19,
    /// This paper, `poly(log log n)`.
    Ours,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asymptotic_ordering_at_large_n() {
        let n = 1usize << 40; // far beyond experiments: asymptotics dominate
        let direct = RoundModel::predict_direct(n);
        let glm = RoundModel::predict_glm19(n);
        let ours = RoundModel::predict_ours(n);
        assert!(ours < glm, "ours {ours} should beat glm19 {glm}");
        assert!(glm < direct, "glm19 {glm} should beat direct {direct}");
    }

    #[test]
    fn ours_flattens() {
        // Doubling the exponent of n should barely move our curve.
        let small = RoundModel::predict_ours(1 << 20);
        let large = RoundModel::predict_ours(1 << 40);
        assert!(large / small < 1.6, "poly(log log n) grows very slowly");
        // ...but moves the direct baseline by 2x.
        let d_small = RoundModel::predict_direct(1 << 20);
        let d_large = RoundModel::predict_direct(1 << 40);
        assert!((d_large / d_small - 2.0).abs() < 0.01);
    }

    #[test]
    fn crossover_exists() {
        // At tiny n the constants favor the direct simulation; by n = 2^30
        // our model must be below it (the paper's asymptotic claim).
        let mut crossed = false;
        for exp in 4..31 {
            let n = 1usize << exp;
            if RoundModel::predict_ours(n) < RoundModel::predict_direct(n) {
                crossed = true;
                break;
            }
        }
        assert!(crossed, "our curve must cross below direct by n = 2^30");
    }

    #[test]
    fn models_monotone_in_n() {
        for family in [ModelFamily::Direct, ModelFamily::Glm19, ModelFamily::Ours] {
            let model = match family {
                ModelFamily::Direct => RoundModel::direct(),
                ModelFamily::Glm19 => RoundModel::glm19(),
                ModelFamily::Ours => RoundModel::ours(),
            };
            let mut prev = 0.0;
            for exp in 4..36 {
                let r = model.predict(family, 1usize << exp);
                assert!(r >= prev, "{family:?} not monotone at 2^{exp}");
                prev = r;
            }
        }
    }

    #[test]
    fn tiny_n_is_clamped() {
        assert!(RoundModel::predict_ours(1) > 0.0);
        assert!(RoundModel::predict_glm19(0) > 0.0);
    }
}
