//! [BE08] peeling expressed as a node-centric [`LocalAlgorithm`].
//!
//! [`be08_peeling`](crate::be08_peeling) implements the peeling directly for
//! speed; this module expresses the *same* algorithm against the LOCAL-model
//! round driver, both as an executable demonstration that the algorithm is
//! genuinely LOCAL (each node acts on its own state plus neighbor messages
//! only) and as a second implementation to cross-check the direct one.

use crate::network::{run_local, LocalAlgorithm, LocalRun};
use dgo_graph::{Graph, LayerAssignment};

/// Per-node state of the LOCAL peeling.
#[derive(Debug, Clone)]
pub struct PeelState {
    /// Number of still-alive neighbors.
    alive_neighbors: usize,
    /// Layer assigned when the node peels itself (0 = not yet).
    layer: u32,
}

/// The node-centric peeling algorithm: per round, a node whose remaining
/// degree is at most the threshold removes itself, announces the removal,
/// and neighbors decrement their counts.
#[derive(Debug, Clone)]
pub struct Be08Local {
    /// Degree threshold `⌈(2+ε)·λ̂⌉`.
    pub threshold: usize,
}

/// Message: `true` = "I peeled myself this round".
impl LocalAlgorithm for Be08Local {
    type State = PeelState;
    type Message = bool;

    fn init(&mut self, v: usize, graph: &Graph) -> PeelState {
        PeelState {
            alive_neighbors: graph.degree(v),
            layer: 0,
        }
    }

    fn send(&mut self, _v: usize, state: &PeelState, _round: u64) -> Option<bool> {
        // Announce the peel decision taken this round (computed from the
        // state *before* this round's messages; the driver's send phase runs
        // before receive, matching the synchronous model).
        Some(state.layer == 0 && state.alive_neighbors <= self.threshold)
    }

    fn receive(
        &mut self,
        _v: usize,
        state: &mut PeelState,
        inbox: &[(usize, bool)],
        round: u64,
    ) -> bool {
        let peeling_now = state.layer == 0 && state.alive_neighbors <= self.threshold;
        if peeling_now {
            state.layer = round as u32;
            return true;
        }
        let removed = inbox.iter().filter(|&&(_, peeled)| peeled).count();
        state.alive_neighbors -= removed;
        false
    }
}

/// Runs the LOCAL-driver peeling and converts the result to a layering.
///
/// Produces the same H-partition as [`crate::be08_peeling`] with the same
/// threshold — asserted by tests.
pub fn be08_via_local_driver(
    graph: &Graph,
    lambda_hat: usize,
    eps: f64,
    max_rounds: u64,
) -> (LayerAssignment, u64) {
    assert!(eps >= 0.0, "eps must be nonnegative");
    let threshold = ((2.0 + eps) * lambda_hat.max(1) as f64).ceil() as usize;
    let cap = if max_rounds == 0 {
        4 * (graph.num_vertices().max(2) as f64).log2().ceil() as u64 + 8
    } else {
        max_rounds
    };
    let run: LocalRun<PeelState> = run_local(graph, Be08Local { threshold }, cap);
    let mut layering = LayerAssignment::unassigned(graph.num_vertices());
    for (v, state) in run.states.iter().enumerate() {
        if state.layer > 0 {
            layering.set_layer(v, state.layer);
        }
    }
    (layering, run.rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peeling::be08_peeling;
    use dgo_graph::generators::{clique, gnm, random_tree, star};

    #[test]
    fn matches_direct_implementation() {
        for (g, lam) in [
            (gnm(400, 1200, 3), 4usize),
            (random_tree(300, 1), 1),
            (star(200), 1),
        ] {
            let (local, _) = be08_via_local_driver(&g, lam, 0.5, 0);
            let direct = be08_peeling(&g, lam, 0.5, 0);
            assert_eq!(local, direct.layering);
        }
    }

    #[test]
    fn stalls_like_direct_on_dense_cores() {
        let g = clique(12);
        let (local, rounds) = be08_via_local_driver(&g, 1, 0.0, 0);
        assert_eq!(local.num_assigned(), 0);
        // The driver runs until the cap since nobody terminates.
        assert!(rounds > 0);
    }

    #[test]
    fn round_count_matches_layer_count() {
        let g = random_tree(500, 9);
        let (layering, _rounds) = be08_via_local_driver(&g, 1, 0.5, 0);
        assert!(layering.is_complete());
        let direct = be08_peeling(&g, 1, 0.5, 0);
        assert_eq!(
            layering.max_layer(),
            Some(direct.local_rounds as u32),
            "layers = peel rounds"
        );
    }

    #[test]
    fn respects_round_cap() {
        let g = random_tree(1000, 4);
        let (layering, rounds) = be08_via_local_driver(&g, 1, 0.0, 2);
        assert!(rounds <= 2);
        assert!(!layering.is_complete() || layering.max_layer() <= Some(2));
    }
}
