//! The Barenboim–Elkin peeling algorithm \[BE08\] — the paper's LOCAL baseline.
//!
//! Per round, simultaneously remove all nodes whose remaining degree is at
//! most `(2 + ε)·λ̂` and place them in the next layer; orient their edges
//! outward. This produces an H-partition with `O(log n)` layers and an
//! orientation with outdegree `≤ (2 + ε)·λ̂` in `O(log n)` LOCAL rounds —
//! optimal in LOCAL by Linial's lower bound, but `Θ(log n)` is exactly the
//! round count the paper's MPC algorithm beats.

use dgo_graph::{Graph, LayerAssignment, Orientation};

/// Result of a peeling run.
#[derive(Debug, Clone)]
pub struct PeelingResult {
    /// The computed H-partition. Complete whenever `threshold ≥ 2·λ̂ ≥ 2α`
    /// (each round then removes at least half of the remaining vertices).
    pub layering: LayerAssignment,
    /// LOCAL rounds used (= number of nonempty layers).
    pub local_rounds: u64,
    /// The degree threshold that was applied.
    pub threshold: usize,
}

impl PeelingResult {
    /// The induced low-outdegree orientation (edges toward higher layers).
    ///
    /// # Errors
    ///
    /// Propagates length mismatches from the underlying conversion.
    pub fn orientation(&self, graph: &Graph) -> dgo_graph::Result<Orientation> {
        self.layering.to_orientation(graph)
    }
}

/// Runs \[BE08\] peeling with threshold `⌈(2 + eps) · lambda_hat⌉`.
///
/// `max_layers` caps the execution (pass `0` for the default `4·log₂n + 8`);
/// vertices never peeled stay [`dgo_graph::UNASSIGNED`], which only happens
/// if the threshold is below `2α(G)`.
///
/// # Panics
///
/// Panics if `eps` is negative or `lambda_hat == 0` on a graph with edges.
///
/// # Examples
///
/// ```
/// use dgo_graph::generators::random_tree;
/// use dgo_local::be08_peeling;
///
/// let g = random_tree(500, 7);
/// let result = be08_peeling(&g, 1, 0.5, 0);
/// assert!(result.layering.is_complete());
/// // Outdegree ≤ (2 + ε)·λ = 2.5 → ≤ 3 after ceiling.
/// let o = result.orientation(&g)?;
/// assert!(o.max_out_degree() <= 3);
/// # Ok::<(), dgo_graph::GraphError>(())
/// ```
pub fn be08_peeling(graph: &Graph, lambda_hat: usize, eps: f64, max_layers: u64) -> PeelingResult {
    assert!(eps >= 0.0, "eps must be nonnegative, got {eps}");
    let n = graph.num_vertices();
    if graph.num_edges() > 0 {
        assert!(
            lambda_hat > 0,
            "lambda_hat must be positive on nonempty graphs"
        );
    }
    let threshold = ((2.0 + eps) * lambda_hat as f64).ceil() as usize;
    let cap = if max_layers == 0 {
        4 * (n.max(2) as f64).log2().ceil() as u64 + 8
    } else {
        max_layers
    };
    let mut layering = LayerAssignment::unassigned(n);
    let mut degree: Vec<usize> = (0..n).map(|v| graph.degree(v)).collect();
    let mut alive: Vec<bool> = vec![true; n];
    let mut remaining: usize = n;
    let mut rounds = 0u64;
    while remaining > 0 && rounds < cap {
        rounds += 1;
        let peel: Vec<usize> = (0..n)
            .filter(|&v| alive[v] && degree[v] <= threshold)
            .collect();
        if peel.is_empty() {
            // Threshold below the density of the remaining core; stop.
            rounds -= 1;
            break;
        }
        for &v in &peel {
            layering.set_layer(v, rounds as u32);
            alive[v] = false;
        }
        for &v in &peel {
            for &w in graph.neighbors(v) {
                let w = w as usize;
                if alive[w] {
                    degree[w] -= 1;
                }
            }
        }
        remaining -= peel.len();
    }
    PeelingResult {
        layering,
        local_rounds: rounds,
        threshold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgo_graph::generators::{clique, cycle, gnm, random_tree, star};

    #[test]
    fn tree_peels_completely_with_low_outdegree() {
        let g = random_tree(200, 3);
        let r = be08_peeling(&g, 1, 0.0, 0);
        assert!(r.layering.is_complete());
        assert!(r.layering.out_degree_bound(&g).unwrap() <= 2);
        let o = r.orientation(&g).unwrap();
        assert!(o.max_out_degree() <= 2);
        assert!(o.is_acyclic(&g));
    }

    #[test]
    fn star_peels_in_two_rounds() {
        let g = star(1000);
        let r = be08_peeling(&g, 1, 0.0, 0);
        assert!(r.layering.is_complete());
        assert!(r.local_rounds <= 2);
        assert_eq!(r.layering.layer(0), 2); // center peels second
    }

    #[test]
    fn rounds_logarithmic_on_random_graphs() {
        let g = gnm(4096, 8192, 5); // density <= 2
        let r = be08_peeling(&g, 4, 0.5, 0);
        assert!(r.layering.is_complete());
        // O(log n) layers: generous constant.
        assert!(r.local_rounds <= 4 * 12, "rounds = {}", r.local_rounds);
    }

    #[test]
    fn underestimated_lambda_stalls() {
        // K10 has alpha = 4.5; threshold (2+0)*1 = 2 cannot peel anything.
        let g = clique(10);
        let r = be08_peeling(&g, 1, 0.0, 0);
        assert_eq!(r.layering.num_assigned(), 0);
        assert_eq!(r.local_rounds, 0);
    }

    #[test]
    fn layer_sizes_decay_geometrically() {
        let g = gnm(2048, 4096, 9);
        let r = be08_peeling(&g, 4, 0.5, 0);
        let tails = r.layering.tail_sizes();
        // Every layer at least halves the remainder when threshold >= 2*alpha.
        for j in 1..tails.len() {
            assert!(
                tails[j] * 2 <= tails[j - 1] + 1,
                "tail {} -> {} did not halve",
                tails[j - 1],
                tails[j]
            );
        }
    }

    #[test]
    fn cycle_peels_in_one_round() {
        let g = cycle(50);
        let r = be08_peeling(&g, 1, 0.0, 0);
        // Every vertex has degree 2 <= threshold 2: all peel at once.
        assert_eq!(r.local_rounds, 1);
        assert!(r.layering.is_complete());
    }

    #[test]
    fn empty_graph() {
        let r = be08_peeling(&Graph::empty(5), 1, 0.1, 0);
        assert!(r.layering.is_complete());
        assert_eq!(r.local_rounds, 1);
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn negative_eps_panics() {
        be08_peeling(&Graph::empty(1), 1, -0.5, 0);
    }

    #[test]
    fn max_layers_caps() {
        let g = gnm(512, 2048, 2);
        let r = be08_peeling(&g, 1, 0.0, 1);
        assert!(r.local_rounds <= 1);
    }
}
