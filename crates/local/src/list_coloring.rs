//! Randomized degree+1 list coloring in the LOCAL model.
//!
//! The paper's coloring (Theorem 1.2) repeatedly solves *degree+1 list
//! coloring* on layer-induced subgraphs, citing [HKNT22, GG24b] for a
//! `Õ(log^{5/3} log n)`-round LOCAL subroutine. We substitute the classic
//! randomized trial algorithm — each round every uncolored node proposes a
//! uniformly random color from its remaining list and keeps it unless a
//! neighbor proposed the same color — which terminates in `O(log n)` rounds
//! with high probability and produces an identical artifact (a proper
//! coloring from the given lists). See DESIGN.md §5 for why this
//! substitution preserves the reproduced behaviour.

use dgo_graph::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sentinel for "not yet colored".
pub const UNCOLORED: u32 = u32::MAX;

/// Result of a list-coloring run.
#[derive(Debug, Clone)]
pub struct ListColoringResult {
    /// `colors[v]` for every vertex ([`UNCOLORED`] only if the round cap was
    /// hit, which has negligible probability at the default cap).
    pub colors: Vec<u32>,
    /// LOCAL rounds used.
    pub local_rounds: u64,
}

/// Colors `active` vertices of `graph`, giving vertex `v` a color from
/// `lists[v]`. Inactive vertices are ignored entirely (they are "other
/// layers" from the caller's perspective; the caller is responsible for
/// having already removed their colors from the lists).
///
/// Requires `lists[v].len() ≥ (active degree of v) + 1` for termination —
/// the degree+1 list coloring precondition. Deterministic in `seed`.
///
/// `max_rounds = 0` selects the default cap `8·log₂ n + 32`.
///
/// # Panics
///
/// Panics if an active vertex has an empty list.
///
/// # Examples
///
/// ```
/// use dgo_graph::generators::cycle;
/// use dgo_local::randomized_list_coloring;
///
/// let g = cycle(64);
/// let lists: Vec<Vec<u32>> = (0..64).map(|_| vec![0, 1, 2]).collect();
/// let active = vec![true; 64];
/// let r = randomized_list_coloring(&g, &lists, &active, 7, 0);
/// for (u, v) in g.edges() {
///     assert_ne!(r.colors[u], r.colors[v]);
/// }
/// ```
pub fn randomized_list_coloring(
    graph: &Graph,
    lists: &[Vec<u32>],
    active: &[bool],
    seed: u64,
    max_rounds: u64,
) -> ListColoringResult {
    let n = graph.num_vertices();
    assert_eq!(lists.len(), n, "one list per vertex");
    assert_eq!(active.len(), n, "one active flag per vertex");
    let cap = if max_rounds == 0 {
        8 * (n.max(2) as f64).log2().ceil() as u64 + 32
    } else {
        max_rounds
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut colors = vec![UNCOLORED; n];
    let mut uncolored: Vec<usize> = (0..n).filter(|&v| active[v]).collect();
    for &v in &uncolored {
        assert!(!lists[v].is_empty(), "vertex {v} has an empty color list");
    }
    let mut rounds = 0u64;
    let mut proposals = vec![UNCOLORED; n];
    while !uncolored.is_empty() && rounds < cap {
        rounds += 1;
        // Propose phase: pick a random color from the list that no *already
        // fixed* neighbor holds.
        for &v in &uncolored {
            let available: Vec<u32> = lists[v]
                .iter()
                .copied()
                .filter(|&c| graph.neighbors(v).iter().all(|&w| colors[w as usize] != c))
                .collect();
            // Degree+1 lists guarantee availability.
            debug_assert!(
                !available.is_empty(),
                "list of vertex {v} exhausted; degree+1 precondition violated"
            );
            proposals[v] = available[rng.random_range(0..available.len())];
        }
        // Resolve phase: keep the proposal unless an uncolored neighbor
        // proposed the same color.
        let mut next_uncolored = Vec::new();
        for &v in &uncolored {
            let conflict = graph.neighbors(v).iter().any(|&w| {
                let w = w as usize;
                colors[w] == UNCOLORED && active[w] && proposals[w] == proposals[v]
            });
            if conflict {
                next_uncolored.push(v);
            }
        }
        // Commit phase (two-phase so resolution is symmetric).
        let survivors: std::collections::HashSet<usize> = next_uncolored.iter().copied().collect();
        for &v in &uncolored {
            if !survivors.contains(&v) {
                colors[v] = proposals[v];
            }
        }
        uncolored = next_uncolored;
    }
    ListColoringResult {
        colors,
        local_rounds: rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgo_graph::generators::{clique, gnm, star};

    fn degree_plus_one_lists(graph: &Graph) -> Vec<Vec<u32>> {
        (0..graph.num_vertices())
            .map(|v| (0..=graph.degree(v) as u32).collect())
            .collect()
    }

    #[test]
    fn colors_a_clique() {
        let g = clique(12);
        let lists = degree_plus_one_lists(&g);
        let r = randomized_list_coloring(&g, &lists, &[true; 12], 1, 0);
        for (u, v) in g.edges() {
            assert_ne!(r.colors[u], r.colors[v]);
        }
        assert!(r.colors.iter().all(|&c| c != UNCOLORED));
    }

    #[test]
    fn colors_random_graph_with_degree_plus_one() {
        let g = gnm(500, 2000, 3);
        let lists = degree_plus_one_lists(&g);
        let r = randomized_list_coloring(&g, &lists, &vec![true; 500], 9, 0);
        for (u, v) in g.edges() {
            assert_ne!(r.colors[u], r.colors[v]);
        }
        // O(log n) rounds: log2(500) ~ 9, generous cap check.
        assert!(r.local_rounds <= 72, "rounds = {}", r.local_rounds);
    }

    #[test]
    fn respects_inactive_vertices() {
        let g = star(10);
        let mut active = vec![true; 10];
        active[0] = false; // center inactive
        let lists: Vec<Vec<u32>> = (0..10).map(|_| vec![5]).collect();
        let r = randomized_list_coloring(&g, &lists, &active, 2, 0);
        assert_eq!(r.colors[0], UNCOLORED);
        // Leaves are mutually nonadjacent: all can take color 5.
        for v in 1..10 {
            assert_eq!(r.colors[v], 5);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let g = gnm(100, 300, 4);
        let lists = degree_plus_one_lists(&g);
        let a = randomized_list_coloring(&g, &lists, &[true; 100], 11, 0);
        let b = randomized_list_coloring(&g, &lists, &[true; 100], 11, 0);
        assert_eq!(a.colors, b.colors);
        assert_eq!(a.local_rounds, b.local_rounds);
    }

    #[test]
    fn single_round_when_lists_disjoint() {
        let g = clique(4);
        let lists: Vec<Vec<u32>> = (0..4).map(|v| vec![v as u32 * 10]).collect();
        let r = randomized_list_coloring(&g, &lists, &[true; 4], 0, 0);
        assert_eq!(r.local_rounds, 1);
        assert_eq!(r.colors, vec![0, 10, 20, 30]);
    }

    #[test]
    fn empty_graph_zero_rounds() {
        let r = randomized_list_coloring(&Graph::empty(0), &[], &[], 0, 0);
        assert_eq!(r.local_rounds, 0);
    }

    #[test]
    #[should_panic(expected = "empty color list")]
    fn empty_list_panics() {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        randomized_list_coloring(&g, &[vec![], vec![0]], &[true, true], 0, 0);
    }
}
