//! Framed binary protocol for inter-process transport.
//!
//! Everything the multi-process backend moves over a pipe — and everything
//! `dgo_core::wire` persists outside a trusted in-memory buffer — travels as
//! a *frame*: a fixed header (magic, protocol version, frame kind, payload
//! length, checksum) followed by the payload as little-endian `u64` words.
//! The decoder is strict: wrong magic, unknown version, oversized or
//! truncated payloads, and checksum mismatches are all typed [`FrameError`]s
//! instead of garbage values, so a crashed or adversarial peer can corrupt a
//! *connection* but never a *result*.
//!
//! Layout (all little-endian):
//!
//! ```text
//! offset  size  field
//!      0     4  magic  "DGOF"
//!      4     2  protocol version (currently 1)
//!      6     1  frame kind (see [`kind`])
//!      7     1  reserved, must be 0
//!      8     4  payload length in words
//!     12     8  FNV-1a checksum over the payload words
//!     20    8n  payload words
//! ```

use std::io::{Read, Write};

/// The four magic bytes opening every frame.
pub const MAGIC: [u8; 4] = *b"DGOF";

/// Protocol version carried in every frame header. A mismatch is a typed
/// error — a parent never talks past a worker built from different sources.
pub const VERSION: u16 = 1;

/// Header size in bytes.
pub const HEADER_BYTES: usize = 20;

/// Default cap on a frame's payload length in words (2³² bytes): anything
/// larger is rejected before allocation, so a corrupted length field cannot
/// balloon memory.
pub const DEFAULT_MAX_PAYLOAD_WORDS: usize = 1 << 29;

/// Frame kinds of the worker protocol (plus the bundle kind `dgo_core::wire`
/// stamps on persisted view-tree streams).
pub mod kind {
    /// Worker greeting, sent once on startup: `[version, pid]`.
    pub const HELLO: u8 = 1;
    /// Parent → worker: route one shard's outboxes.
    pub const ROUTE_REQ: u8 = 2;
    /// Worker → parent: tallies plus per-destination-shard segments.
    pub const ROUTE_RESP: u8 = 3;
    /// Parent → worker: fill one shard's inboxes from ordered segments.
    pub const FILL_REQ: u8 = 4;
    /// Worker → parent: the shard's per-machine inbox streams.
    pub const FILL_RESP: u8 = 5;
    /// A framed `dgo_core::wire` view-tree bundle.
    pub const BUNDLE: u8 = 16;
}

/// A violation of the frame protocol, detected on decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Clean end of stream at a frame boundary (the peer closed its pipe).
    Eof,
    /// The stream ended inside a frame header or payload.
    Truncated,
    /// An I/O error other than end-of-stream while reading.
    Io(std::io::ErrorKind),
    /// The stream does not open with the [`MAGIC`] bytes.
    BadMagic([u8; 4]),
    /// The header carries an unsupported protocol version.
    BadVersion(u16),
    /// The reserved header byte is nonzero.
    BadReserved(u8),
    /// The declared payload length exceeds the reader's cap.
    Oversized {
        /// Declared payload length in words.
        words: u64,
        /// The reader's cap.
        max: u64,
    },
    /// The payload does not hash to the header checksum.
    BadChecksum,
    /// Bytes remain after a complete frame where exactly one was expected.
    TrailingBytes(usize),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Eof => write!(f, "end of stream"),
            FrameError::Truncated => write!(f, "stream truncated mid-frame"),
            FrameError::Io(kind) => write!(f, "i/o error reading frame: {kind:?}"),
            FrameError::BadMagic(found) => write!(f, "bad frame magic {found:?}"),
            FrameError::BadVersion(found) => {
                write!(f, "unsupported frame version {found} (expected {VERSION})")
            }
            FrameError::BadReserved(found) => {
                write!(f, "nonzero reserved header byte {found}")
            }
            FrameError::Oversized { words, max } => {
                write!(f, "frame payload of {words} words exceeds cap of {max}")
            }
            FrameError::BadChecksum => write!(f, "frame checksum mismatch"),
            FrameError::TrailingBytes(extra) => {
                write!(f, "{extra} trailing bytes past the frame")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// FNV-1a over the payload words (little-endian byte order). Cheap, stable,
/// and plenty to catch the truncation/corruption failure modes a pipe or a
/// crashing peer produces; this is an integrity check, not authentication.
pub fn checksum(payload: &[u64]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &word in payload {
        for byte in word.to_le_bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

/// Encodes one frame into a byte buffer.
pub fn encode_frame(frame_kind: u8, payload: &[u64]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(HEADER_BYTES + payload.len() * 8);
    bytes.extend_from_slice(&MAGIC);
    bytes.extend_from_slice(&VERSION.to_le_bytes());
    bytes.push(frame_kind);
    bytes.push(0); // reserved
    bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&checksum(payload).to_le_bytes());
    for &word in payload {
        bytes.extend_from_slice(&word.to_le_bytes());
    }
    bytes
}

/// Writes one frame to a stream.
///
/// # Errors
///
/// Propagates the underlying write error.
pub fn write_frame(w: &mut impl Write, frame_kind: u8, payload: &[u64]) -> std::io::Result<()> {
    w.write_all(&encode_frame(frame_kind, payload))?;
    w.flush()
}

/// Validates a header's fixed fields and extracts `(kind, payload_words)`.
fn parse_header(
    header: &[u8; HEADER_BYTES],
    max_payload_words: usize,
) -> Result<(u8, usize, u64), FrameError> {
    if header[0..4] != MAGIC {
        return Err(FrameError::BadMagic([
            header[0], header[1], header[2], header[3],
        ]));
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != VERSION {
        return Err(FrameError::BadVersion(version));
    }
    if header[7] != 0 {
        return Err(FrameError::BadReserved(header[7]));
    }
    let words = u32::from_le_bytes([header[8], header[9], header[10], header[11]]) as usize;
    if words > max_payload_words {
        return Err(FrameError::Oversized {
            words: words as u64,
            max: max_payload_words as u64,
        });
    }
    let sum = u64::from_le_bytes(header[12..20].try_into().expect("8 header bytes"));
    Ok((header[6], words, sum))
}

/// Reads exactly `buf.len()` bytes; distinguishes a clean EOF before the
/// first byte (`at_boundary`) from one mid-buffer.
fn read_exact_or_eof(
    r: &mut impl Read,
    buf: &mut [u8],
    at_boundary: bool,
) -> Result<(), FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if at_boundary && filled == 0 {
                    FrameError::Eof
                } else {
                    FrameError::Truncated
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e.kind())),
        }
    }
    Ok(())
}

/// Reads one frame from a stream, enforcing the payload cap and checksum.
///
/// # Errors
///
/// Any [`FrameError`]; [`FrameError::Eof`] means the peer closed the stream
/// cleanly between frames.
pub fn read_frame(
    r: &mut impl Read,
    max_payload_words: usize,
) -> Result<(u8, Vec<u64>), FrameError> {
    let mut header = [0u8; HEADER_BYTES];
    read_exact_or_eof(r, &mut header, true)?;
    let (frame_kind, words, declared_sum) = parse_header(&header, max_payload_words)?;
    let mut bytes = vec![0u8; words * 8];
    read_exact_or_eof(r, &mut bytes, false)?;
    let payload: Vec<u64> = bytes
        .chunks_exact(8)
        .map(|chunk| u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")))
        .collect();
    if checksum(&payload) != declared_sum {
        return Err(FrameError::BadChecksum);
    }
    Ok((frame_kind, payload))
}

/// Decodes exactly one frame from an in-memory buffer; trailing bytes are a
/// typed error (persisted artifacts hold one frame, not a stream).
///
/// # Errors
///
/// Any [`FrameError`] of [`read_frame`], plus [`FrameError::TrailingBytes`].
pub fn decode_frame(bytes: &[u8], max_payload_words: usize) -> Result<(u8, Vec<u64>), FrameError> {
    let mut cursor = bytes;
    let frame = read_frame(&mut cursor, max_payload_words)?;
    if !cursor.is_empty() {
        return Err(FrameError::TrailingBytes(cursor.len()));
    }
    Ok(frame)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        for payload in [vec![], vec![0u64], vec![1, u64::MAX, 42, 7]] {
            let bytes = encode_frame(kind::ROUTE_REQ, &payload);
            assert_eq!(bytes.len(), HEADER_BYTES + payload.len() * 8);
            let (k, back) = decode_frame(&bytes, DEFAULT_MAX_PAYLOAD_WORDS).unwrap();
            assert_eq!(k, kind::ROUTE_REQ);
            assert_eq!(back, payload);
        }
    }

    #[test]
    fn stream_carries_multiple_frames() {
        let mut stream = encode_frame(kind::HELLO, &[1, 99]);
        stream.extend(encode_frame(kind::ROUTE_RESP, &[5, 6, 7]));
        let mut cursor: &[u8] = &stream;
        assert_eq!(
            read_frame(&mut cursor, 64).unwrap(),
            (kind::HELLO, vec![1, 99])
        );
        assert_eq!(
            read_frame(&mut cursor, 64).unwrap(),
            (kind::ROUTE_RESP, vec![5, 6, 7])
        );
        assert_eq!(read_frame(&mut cursor, 64), Err(FrameError::Eof));
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = encode_frame(kind::FILL_REQ, &[1, 2, 3]);
        // Mid-payload.
        assert_eq!(
            decode_frame(&bytes[..bytes.len() - 3], 64),
            Err(FrameError::Truncated)
        );
        // Mid-header.
        assert_eq!(decode_frame(&bytes[..7], 64), Err(FrameError::Truncated));
        // Empty stream: a boundary EOF.
        assert_eq!(decode_frame(&[], 64), Err(FrameError::Eof));
    }

    #[test]
    fn bad_magic_version_reserved_rejected() {
        let mut bytes = encode_frame(kind::HELLO, &[]);
        bytes[0] = b'X';
        assert!(matches!(
            decode_frame(&bytes, 64),
            Err(FrameError::BadMagic(_))
        ));
        let mut bytes = encode_frame(kind::HELLO, &[]);
        bytes[4] = 9;
        assert_eq!(decode_frame(&bytes, 64), Err(FrameError::BadVersion(9)));
        let mut bytes = encode_frame(kind::HELLO, &[]);
        bytes[7] = 1;
        assert_eq!(decode_frame(&bytes, 64), Err(FrameError::BadReserved(1)));
    }

    #[test]
    fn oversized_payload_rejected_before_allocation() {
        let mut bytes = encode_frame(kind::ROUTE_REQ, &[0; 4]);
        // Forge a huge declared length; the cap must reject it without
        // trusting it.
        bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            decode_frame(&bytes, 1024),
            Err(FrameError::Oversized {
                words: u32::MAX as u64,
                max: 1024
            })
        );
    }

    #[test]
    fn corruption_fails_the_checksum() {
        let mut bytes = encode_frame(kind::ROUTE_RESP, &[10, 20, 30]);
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        assert_eq!(decode_frame(&bytes, 64), Err(FrameError::BadChecksum));
        // Corrupting the stored checksum itself is equally fatal.
        let mut bytes = encode_frame(kind::ROUTE_RESP, &[10, 20, 30]);
        bytes[12] ^= 1;
        assert_eq!(decode_frame(&bytes, 64), Err(FrameError::BadChecksum));
    }

    #[test]
    fn trailing_bytes_rejected_by_decode_only() {
        let mut bytes = encode_frame(kind::BUNDLE, &[3]);
        bytes.push(0);
        assert_eq!(decode_frame(&bytes, 64), Err(FrameError::TrailingBytes(1)));
        // The streaming reader leaves trailing bytes for the next frame.
        let mut cursor: &[u8] = &bytes;
        assert_eq!(
            read_frame(&mut cursor, 64).unwrap(),
            (kind::BUNDLE, vec![3])
        );
        assert_eq!(cursor.len(), 1);
    }

    #[test]
    fn checksum_is_stable_and_sensitive() {
        assert_eq!(checksum(&[]), 0xcbf2_9ce4_8422_2325);
        assert_ne!(checksum(&[0]), checksum(&[1]));
        assert_ne!(checksum(&[1, 2]), checksum(&[2, 1]));
    }

    #[test]
    fn errors_display() {
        assert!(FrameError::BadVersion(3).to_string().contains("version 3"));
        assert!(FrameError::Oversized { words: 9, max: 4 }
            .to_string()
            .contains("exceeds cap"));
        assert!(FrameError::TrailingBytes(2)
            .to_string()
            .contains("2 trailing"));
    }
}
