//! Inline-execution cutoffs for the parallel substrate, in one place.
//!
//! Parallel fan-out is only worth its scheduling overhead above some input
//! size; below it, running inline on the calling thread is faster. Those
//! cutoffs used to be scattered constants (`PARALLEL_THRESHOLD` in the
//! parallel and sharded backends, a private 1024-item floor in
//! `dgo_core::stage`) whose values encoded per-call *thread-spawn* cost —
//! obsolete now that the compat-rayon substrate runs a persistent
//! work-stealing pool and a parallel call only costs a few queue pushes.
//! This module is the single source of truth for both knobs.
//!
//! Two distinct cutoffs remain because the work units differ by orders of
//! magnitude: an exchange processes whole per-machine outboxes per item,
//! a stage map processes one vertex per item.
//!
//! # `DGO_INLINE_THRESHOLD`
//!
//! Setting the environment variable `DGO_INLINE_THRESHOLD=<n>` overrides
//! *both* cutoffs with `n` for tuning experiments (`0` forces parallel
//! paths everywhere, a huge value forces inline everywhere). The variable
//! is read once per process and cached; changing it mid-process has no
//! effect. Invalid values are ignored.
//!
//! Crossing a cutoff never changes results — only where the work runs.
//! The conformance tests in this module's users pin that down by comparing
//! outputs just below and just above each cutoff.

use std::sync::OnceLock;

/// Default minimum number of exchange messages (outbox entries in flight)
/// before a backend's meter/route/drain loops fan out to the pool.
pub const DEFAULT_EXCHANGE_INLINE_THRESHOLD: usize = 4096;

/// Default minimum number of per-vertex items before a
/// `dgo_core::stage::StageExecutor` map fans out to the pool.
pub const DEFAULT_STAGE_INLINE_THRESHOLD: usize = 1024;

/// Messages-per-exchange cutoff: below this, backend exchanges run inline.
/// Honors [`DGO_INLINE_THRESHOLD`](self#dgo_inline_threshold).
pub fn exchange_inline_threshold() -> usize {
    override_threshold().unwrap_or(DEFAULT_EXCHANGE_INLINE_THRESHOLD)
}

/// Items-per-stage cutoff: below this, stage maps run inline. Honors
/// [`DGO_INLINE_THRESHOLD`](self#dgo_inline_threshold).
pub fn stage_inline_threshold() -> usize {
    override_threshold().unwrap_or(DEFAULT_STAGE_INLINE_THRESHOLD)
}

/// The cached `DGO_INLINE_THRESHOLD` override, if set and valid.
fn override_threshold() -> Option<usize> {
    static OVERRIDE: OnceLock<Option<usize>> = OnceLock::new();
    *OVERRIDE.get_or_init(|| parse_override(std::env::var("DGO_INLINE_THRESHOLD").ok().as_deref()))
}

/// Parses an override value: `None`/empty/invalid → no override.
fn parse_override(raw: Option<&str>) -> Option<usize> {
    raw?.trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_apply_without_override() {
        // The test environment must not set the override; guard the
        // assumption so a poisoned environment fails loudly, not subtly.
        if std::env::var("DGO_INLINE_THRESHOLD").is_ok() {
            return;
        }
        assert_eq!(
            exchange_inline_threshold(),
            DEFAULT_EXCHANGE_INLINE_THRESHOLD
        );
        assert_eq!(stage_inline_threshold(), DEFAULT_STAGE_INLINE_THRESHOLD);
    }

    #[test]
    fn override_parsing() {
        assert_eq!(parse_override(None), None);
        assert_eq!(parse_override(Some("")), None);
        assert_eq!(parse_override(Some("not a number")), None);
        assert_eq!(parse_override(Some("-3")), None);
        assert_eq!(parse_override(Some("0")), Some(0));
        assert_eq!(parse_override(Some(" 2048 ")), Some(2048));
    }
}
