//! Inline-execution cutoffs for the parallel substrate, in one place.
//!
//! Parallel fan-out is only worth its scheduling overhead above some input
//! size; below it, running inline on the calling thread is faster. Those
//! cutoffs used to be scattered constants (`PARALLEL_THRESHOLD` in the
//! parallel and sharded backends, a private 1024-item floor in
//! `dgo_core::stage`) whose values encoded per-call *thread-spawn* cost —
//! obsolete now that the compat-rayon substrate runs a persistent
//! work-stealing pool and a parallel call only costs a few queue pushes.
//! This module is the single source of truth for both knobs.
//!
//! Two distinct cutoffs remain because the work units differ by orders of
//! magnitude: an exchange processes whole per-machine outboxes per item,
//! a stage map processes one vertex per item.
//!
//! # `DGO_INLINE_THRESHOLD`
//!
//! Setting the environment variable `DGO_INLINE_THRESHOLD=<n>` overrides
//! *both* cutoffs with `n` for tuning experiments (`0` forces parallel
//! paths everywhere, a huge value forces inline everywhere). The variable
//! is read once per process and cached; changing it mid-process has no
//! effect. Invalid values are ignored.
//!
//! Crossing a cutoff never changes results — only where the work runs.
//! The conformance tests in this module's users pin that down by comparing
//! outputs just below and just above each cutoff.
//!
//! # `DGO_WIRE_CODEC`
//!
//! The view-tree wire codec (`dgo_core::wire` — delta/varint compression of
//! the Lemma 4.1 exponentiation bundles) is on by default; setting
//! `DGO_WIRE_CODEC=0` (or `false`/`off`) reverts the bundle metering to the
//! flat two-words-per-node model. Like the inline threshold, the variable is
//! read once per process and cached. The switch only changes the *metered
//! communication words* (identically on every backend); results, layers,
//! colors, and errors never depend on it.
//!
//! # Multi-process supervision knobs
//!
//! The multi-process backend ([`ProcessBackend`](crate::ProcessBackend))
//! reads three more variables, each once per process:
//!
//! * `DGO_WORKER_TIMEOUT_MS` — base per-phase supervision deadline for a
//!   shard worker's response (default 10000). The effective deadline adds
//!   1 ms of grace per KiB of request payload, so large scale-regime
//!   exchanges are never mistaken for hangs; a worker that does not answer
//!   within the effective deadline is killed and recovery kicks in.
//! * `DGO_WORKER_RETRIES` — how many times a failed phase is retried with a
//!   respawned worker before the typed error surfaces (default 2, i.e. three
//!   attempts total).
//! * `DGO_FAULT_PLAN` — deterministic fault injection, a comma-separated
//!   list of [`FaultSpec`]s in the syntax
//!   `kind@exchange:w<worker>[:<ms>][:route|:fill][*<count>]` where `kind`
//!   is `kill`, `delay`, `trunc`, or `corrupt`. Example:
//!   `kill@2:w0,delay@5:w1:300:fill` kills worker 0 at the second exchange
//!   and delays worker 1's fifth-exchange fill response by 300 ms. Each spec
//!   fires `count` times (default 1) and is then spent; recovery replays are
//!   never re-faulted.

use std::sync::OnceLock;

/// Default minimum number of exchange messages (outbox entries in flight)
/// before a backend's meter/route/drain loops fan out to the pool.
pub const DEFAULT_EXCHANGE_INLINE_THRESHOLD: usize = 4096;

/// Default minimum number of per-vertex items before a
/// `dgo_core::stage::StageExecutor` map fans out to the pool.
pub const DEFAULT_STAGE_INLINE_THRESHOLD: usize = 1024;

/// Messages-per-exchange cutoff: at or below this, backend exchanges run
/// inline (the sharded backend additionally collapses to a single flat
/// shard). Honors [`DGO_INLINE_THRESHOLD`](self#dgo_inline_threshold).
pub fn exchange_inline_threshold() -> usize {
    override_threshold().unwrap_or(DEFAULT_EXCHANGE_INLINE_THRESHOLD)
}

/// Items-per-stage cutoff: below this, stage maps run inline. Honors
/// [`DGO_INLINE_THRESHOLD`](self#dgo_inline_threshold).
pub fn stage_inline_threshold() -> usize {
    override_threshold().unwrap_or(DEFAULT_STAGE_INLINE_THRESHOLD)
}

/// Whether the view-tree wire codec is enabled (the default): bundle
/// metering charges the delta/varint-encoded length instead of the flat two
/// words per node. Honors [`DGO_WIRE_CODEC`](self#dgo_wire_codec), read once
/// per process.
pub fn wire_codec_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| parse_codec_switch(std::env::var("DGO_WIRE_CODEC").ok().as_deref()))
}

/// Parses the codec switch: only an explicit `0`/`false`/`off` (trimmed,
/// case-insensitive) disables it; unset, empty, or anything else keeps the
/// codec on.
fn parse_codec_switch(raw: Option<&str>) -> bool {
    match raw {
        Some(v) => {
            let v = v.trim();
            !(v == "0" || v.eq_ignore_ascii_case("false") || v.eq_ignore_ascii_case("off"))
        }
        None => true,
    }
}

/// The cached `DGO_INLINE_THRESHOLD` override, if set and valid.
fn override_threshold() -> Option<usize> {
    static OVERRIDE: OnceLock<Option<usize>> = OnceLock::new();
    *OVERRIDE.get_or_init(|| parse_override(std::env::var("DGO_INLINE_THRESHOLD").ok().as_deref()))
}

/// Parses an override value: `None`/empty/invalid → no override.
fn parse_override(raw: Option<&str>) -> Option<usize> {
    raw?.trim().parse().ok()
}

/// Default per-phase supervision deadline for a shard worker, in
/// milliseconds.
pub const DEFAULT_WORKER_TIMEOUT_MS: u64 = 10_000;

/// Default number of recovery retries for a failed worker phase.
pub const DEFAULT_WORKER_RETRIES: u32 = 2;

/// Per-phase supervision deadline in milliseconds for a shard worker's
/// response. Honors `DGO_WORKER_TIMEOUT_MS`, read once per process; invalid
/// or zero values fall back to the default.
pub fn worker_timeout_ms() -> u64 {
    static TIMEOUT: OnceLock<u64> = OnceLock::new();
    *TIMEOUT.get_or_init(|| {
        parse_positive_u64(std::env::var("DGO_WORKER_TIMEOUT_MS").ok().as_deref())
            .unwrap_or(DEFAULT_WORKER_TIMEOUT_MS)
    })
}

/// Number of times a failed worker phase is retried with a respawned worker
/// before the typed error surfaces. Honors `DGO_WORKER_RETRIES`, read once
/// per process; invalid values fall back to the default (zero is allowed —
/// no retries).
pub fn worker_retries() -> u32 {
    static RETRIES: OnceLock<u32> = OnceLock::new();
    *RETRIES.get_or_init(|| {
        std::env::var("DGO_WORKER_RETRIES")
            .ok()
            .as_deref()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(DEFAULT_WORKER_RETRIES)
    })
}

/// Parses a positive integer; `None`/empty/invalid/zero → `None`.
fn parse_positive_u64(raw: Option<&str>) -> Option<u64> {
    match raw?.trim().parse() {
        Ok(0) | Err(_) => None,
        Ok(v) => Some(v),
    }
}

/// Explicit shard-worker binary override from `DGO_WORKER_BIN`, read once
/// per process. Unset or empty → `None` (the supervisor falls back to its
/// own executable re-invoked in worker mode).
pub fn worker_bin_override() -> Option<&'static str> {
    static BIN: OnceLock<Option<String>> = OnceLock::new();
    BIN.get_or_init(|| {
        std::env::var("DGO_WORKER_BIN")
            .ok()
            .filter(|v| !v.trim().is_empty())
    })
    .as_deref()
}

/// The raw `DGO_JOBS` parallelism knob, read once per process: `None` when
/// unset or unparsable, otherwise the parsed value (`0` conventionally means
/// "all cores"; interpreting that is the caller's business — presets treat
/// unset as 1, host-side ingestion as full parallelism).
pub fn env_jobs() -> Option<usize> {
    static JOBS: OnceLock<Option<usize>> = OnceLock::new();
    *JOBS.get_or_init(|| {
        std::env::var("DGO_JOBS")
            .ok()
            .and_then(|s| s.trim().parse().ok())
    })
}

/// The fault a [`FaultSpec`] injects into a shard worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The worker process exits immediately instead of answering.
    Kill,
    /// The worker sleeps for the spec's `ms` before answering (use with a
    /// short `DGO_WORKER_TIMEOUT_MS` to exercise the timeout path).
    Delay,
    /// The worker writes a truncated response frame, then exits.
    TruncateFrame,
    /// The worker flips a payload byte of its response frame, failing the
    /// checksum.
    CorruptFrame,
}

/// Which protocol phase a [`FaultSpec`] targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPhase {
    /// Either phase (the default): the fault fires on the first matching
    /// request of the exchange.
    Any,
    /// Only the routing request.
    Route,
    /// Only the inbox-fill request.
    Fill,
}

/// One deterministic injected fault, parsed from `DGO_FAULT_PLAN` (see the
/// [module docs](self#multi-process-supervision-knobs) for the syntax).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// What to inject.
    pub kind: FaultKind,
    /// 1-based exchange number the fault arms at.
    pub exchange: u64,
    /// Target shard worker index.
    pub worker: usize,
    /// Milliseconds for [`FaultKind::Delay`]; ignored by other kinds.
    pub ms: u64,
    /// Which protocol phase to fault.
    pub phase: FaultPhase,
    /// How many times the fault fires before it is spent.
    pub count: u32,
}

/// Parses a comma-separated fault plan. Returns `None` if any spec is
/// malformed (an unparseable plan is a configuration error worth surfacing,
/// not silently ignoring — callers treat `None` as "reject").
///
/// Syntax per spec: `kind@exchange:w<worker>[:<ms>][:route|:fill][*<count>]`.
pub fn parse_fault_plan(raw: &str) -> Option<Vec<FaultSpec>> {
    let mut plan = Vec::new();
    for spec in raw.split(',') {
        let spec = spec.trim();
        if spec.is_empty() {
            continue;
        }
        plan.push(parse_fault_spec(spec)?);
    }
    Some(plan)
}

/// Parses one `kind@exchange:w<worker>[:<ms>][:route|:fill][*<count>]` spec.
fn parse_fault_spec(spec: &str) -> Option<FaultSpec> {
    let (body, count) = match spec.split_once('*') {
        Some((body, count)) => (body, count.trim().parse().ok().filter(|&c| c > 0)?),
        None => (spec, 1),
    };
    let (kind, rest) = body.split_once('@')?;
    let kind = match kind.trim() {
        "kill" => FaultKind::Kill,
        "delay" => FaultKind::Delay,
        "trunc" => FaultKind::TruncateFrame,
        "corrupt" => FaultKind::CorruptFrame,
        _ => return None,
    };
    let mut fields = rest.split(':');
    let exchange: u64 = fields.next()?.trim().parse().ok().filter(|&e| e > 0)?;
    let worker = fields.next()?.trim().strip_prefix('w')?.parse().ok()?;
    let mut ms = 0;
    let mut phase = FaultPhase::Any;
    for field in fields {
        let field = field.trim();
        match field {
            "route" => phase = FaultPhase::Route,
            "fill" => phase = FaultPhase::Fill,
            _ => ms = field.parse().ok()?,
        }
    }
    Some(FaultSpec {
        kind,
        exchange,
        worker,
        ms,
        phase,
        count,
    })
}

/// The process-wide fault plan from `DGO_FAULT_PLAN`, read once per process.
/// Unset or empty → empty plan; a malformed plan aborts at first use (a
/// typo'd chaos run must not silently become a fault-free run).
pub fn fault_plan() -> &'static [FaultSpec] {
    static PLAN: OnceLock<Vec<FaultSpec>> = OnceLock::new();
    PLAN.get_or_init(|| match std::env::var("DGO_FAULT_PLAN") {
        Ok(raw) => {
            parse_fault_plan(&raw).unwrap_or_else(|| panic!("DGO_FAULT_PLAN is malformed: {raw:?}"))
        }
        Err(_) => Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_apply_without_override() {
        // The test environment must not set the override; guard the
        // assumption so a poisoned environment fails loudly, not subtly.
        if std::env::var("DGO_INLINE_THRESHOLD").is_ok() {
            return;
        }
        assert_eq!(
            exchange_inline_threshold(),
            DEFAULT_EXCHANGE_INLINE_THRESHOLD
        );
        assert_eq!(stage_inline_threshold(), DEFAULT_STAGE_INLINE_THRESHOLD);
    }

    #[test]
    fn codec_switch_parsing() {
        assert!(parse_codec_switch(None));
        assert!(parse_codec_switch(Some("")));
        assert!(parse_codec_switch(Some("1")));
        assert!(parse_codec_switch(Some("on")));
        assert!(parse_codec_switch(Some("yes")));
        assert!(!parse_codec_switch(Some("0")));
        assert!(!parse_codec_switch(Some(" 0 ")));
        assert!(!parse_codec_switch(Some("false")));
        assert!(!parse_codec_switch(Some("FALSE")));
        assert!(!parse_codec_switch(Some("off")));
    }

    #[test]
    fn codec_default_is_on() {
        // The test environment must not disable the codec; guard the
        // assumption so a poisoned environment fails loudly. (The CI matrix
        // runs a dedicated DGO_WIRE_CODEC=0 leg as a separate process.)
        if std::env::var("DGO_WIRE_CODEC").is_ok() {
            return;
        }
        assert!(wire_codec_enabled());
    }

    #[test]
    fn override_parsing() {
        assert_eq!(parse_override(None), None);
        assert_eq!(parse_override(Some("")), None);
        assert_eq!(parse_override(Some("not a number")), None);
        assert_eq!(parse_override(Some("-3")), None);
        assert_eq!(parse_override(Some("0")), Some(0));
        assert_eq!(parse_override(Some(" 2048 ")), Some(2048));
    }

    #[test]
    fn worker_knob_defaults() {
        // Guard against a poisoned environment, as above.
        if std::env::var("DGO_WORKER_TIMEOUT_MS").is_ok()
            || std::env::var("DGO_WORKER_RETRIES").is_ok()
        {
            return;
        }
        assert_eq!(worker_timeout_ms(), DEFAULT_WORKER_TIMEOUT_MS);
        assert_eq!(worker_retries(), DEFAULT_WORKER_RETRIES);
    }

    #[test]
    fn positive_u64_parsing() {
        assert_eq!(parse_positive_u64(None), None);
        assert_eq!(parse_positive_u64(Some("")), None);
        assert_eq!(parse_positive_u64(Some("0")), None);
        assert_eq!(parse_positive_u64(Some("nope")), None);
        assert_eq!(parse_positive_u64(Some(" 1500 ")), Some(1500));
    }

    #[test]
    fn fault_plan_parses_minimal_spec() {
        let plan = parse_fault_plan("kill@2:w0").unwrap();
        assert_eq!(
            plan,
            vec![FaultSpec {
                kind: FaultKind::Kill,
                exchange: 2,
                worker: 0,
                ms: 0,
                phase: FaultPhase::Any,
                count: 1,
            }]
        );
    }

    #[test]
    fn fault_plan_parses_full_spec_list() {
        let plan =
            parse_fault_plan("delay@5:w1:300:fill, corrupt@1:w2:route*3 ,trunc@9:w0").unwrap();
        assert_eq!(plan.len(), 3);
        assert_eq!(plan[0].kind, FaultKind::Delay);
        assert_eq!(plan[0].ms, 300);
        assert_eq!(plan[0].phase, FaultPhase::Fill);
        assert_eq!(plan[1].kind, FaultKind::CorruptFrame);
        assert_eq!(plan[1].phase, FaultPhase::Route);
        assert_eq!(plan[1].count, 3);
        assert_eq!(plan[2].kind, FaultKind::TruncateFrame);
        assert_eq!(plan[2].exchange, 9);
    }

    #[test]
    fn fault_plan_empty_and_malformed() {
        assert_eq!(parse_fault_plan(""), Some(vec![]));
        assert_eq!(parse_fault_plan(" , "), Some(vec![]));
        assert!(parse_fault_plan("explode@1:w0").is_none()); // unknown kind
        assert!(parse_fault_plan("kill@0:w0").is_none()); // exchange is 1-based
        assert!(parse_fault_plan("kill@1:0").is_none()); // missing 'w'
        assert!(parse_fault_plan("kill@1:w0*0").is_none()); // zero count
        assert!(parse_fault_plan("kill@1:w0:sideways").is_none()); // bad phase
        assert!(parse_fault_plan("kill@1").is_none()); // missing worker
    }
}
