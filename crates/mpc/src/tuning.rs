//! Inline-execution cutoffs for the parallel substrate, in one place.
//!
//! Parallel fan-out is only worth its scheduling overhead above some input
//! size; below it, running inline on the calling thread is faster. Those
//! cutoffs used to be scattered constants (`PARALLEL_THRESHOLD` in the
//! parallel and sharded backends, a private 1024-item floor in
//! `dgo_core::stage`) whose values encoded per-call *thread-spawn* cost —
//! obsolete now that the compat-rayon substrate runs a persistent
//! work-stealing pool and a parallel call only costs a few queue pushes.
//! This module is the single source of truth for both knobs.
//!
//! Two distinct cutoffs remain because the work units differ by orders of
//! magnitude: an exchange processes whole per-machine outboxes per item,
//! a stage map processes one vertex per item.
//!
//! # `DGO_INLINE_THRESHOLD`
//!
//! Setting the environment variable `DGO_INLINE_THRESHOLD=<n>` overrides
//! *both* cutoffs with `n` for tuning experiments (`0` forces parallel
//! paths everywhere, a huge value forces inline everywhere). The variable
//! is read once per process and cached; changing it mid-process has no
//! effect. Invalid values are ignored.
//!
//! Crossing a cutoff never changes results — only where the work runs.
//! The conformance tests in this module's users pin that down by comparing
//! outputs just below and just above each cutoff.
//!
//! # `DGO_WIRE_CODEC`
//!
//! The view-tree wire codec (`dgo_core::wire` — delta/varint compression of
//! the Lemma 4.1 exponentiation bundles) is on by default; setting
//! `DGO_WIRE_CODEC=0` (or `false`/`off`) reverts the bundle metering to the
//! flat two-words-per-node model. Like the inline threshold, the variable is
//! read once per process and cached. The switch only changes the *metered
//! communication words* (identically on every backend); results, layers,
//! colors, and errors never depend on it.

use std::sync::OnceLock;

/// Default minimum number of exchange messages (outbox entries in flight)
/// before a backend's meter/route/drain loops fan out to the pool.
pub const DEFAULT_EXCHANGE_INLINE_THRESHOLD: usize = 4096;

/// Default minimum number of per-vertex items before a
/// `dgo_core::stage::StageExecutor` map fans out to the pool.
pub const DEFAULT_STAGE_INLINE_THRESHOLD: usize = 1024;

/// Messages-per-exchange cutoff: at or below this, backend exchanges run
/// inline (the sharded backend additionally collapses to a single flat
/// shard). Honors [`DGO_INLINE_THRESHOLD`](self#dgo_inline_threshold).
pub fn exchange_inline_threshold() -> usize {
    override_threshold().unwrap_or(DEFAULT_EXCHANGE_INLINE_THRESHOLD)
}

/// Items-per-stage cutoff: below this, stage maps run inline. Honors
/// [`DGO_INLINE_THRESHOLD`](self#dgo_inline_threshold).
pub fn stage_inline_threshold() -> usize {
    override_threshold().unwrap_or(DEFAULT_STAGE_INLINE_THRESHOLD)
}

/// Whether the view-tree wire codec is enabled (the default): bundle
/// metering charges the delta/varint-encoded length instead of the flat two
/// words per node. Honors [`DGO_WIRE_CODEC`](self#dgo_wire_codec), read once
/// per process.
pub fn wire_codec_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| parse_codec_switch(std::env::var("DGO_WIRE_CODEC").ok().as_deref()))
}

/// Parses the codec switch: only an explicit `0`/`false`/`off` (trimmed,
/// case-insensitive) disables it; unset, empty, or anything else keeps the
/// codec on.
fn parse_codec_switch(raw: Option<&str>) -> bool {
    match raw {
        Some(v) => {
            let v = v.trim();
            !(v == "0" || v.eq_ignore_ascii_case("false") || v.eq_ignore_ascii_case("off"))
        }
        None => true,
    }
}

/// The cached `DGO_INLINE_THRESHOLD` override, if set and valid.
fn override_threshold() -> Option<usize> {
    static OVERRIDE: OnceLock<Option<usize>> = OnceLock::new();
    *OVERRIDE.get_or_init(|| parse_override(std::env::var("DGO_INLINE_THRESHOLD").ok().as_deref()))
}

/// Parses an override value: `None`/empty/invalid → no override.
fn parse_override(raw: Option<&str>) -> Option<usize> {
    raw?.trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_apply_without_override() {
        // The test environment must not set the override; guard the
        // assumption so a poisoned environment fails loudly, not subtly.
        if std::env::var("DGO_INLINE_THRESHOLD").is_ok() {
            return;
        }
        assert_eq!(
            exchange_inline_threshold(),
            DEFAULT_EXCHANGE_INLINE_THRESHOLD
        );
        assert_eq!(stage_inline_threshold(), DEFAULT_STAGE_INLINE_THRESHOLD);
    }

    #[test]
    fn codec_switch_parsing() {
        assert!(parse_codec_switch(None));
        assert!(parse_codec_switch(Some("")));
        assert!(parse_codec_switch(Some("1")));
        assert!(parse_codec_switch(Some("on")));
        assert!(parse_codec_switch(Some("yes")));
        assert!(!parse_codec_switch(Some("0")));
        assert!(!parse_codec_switch(Some(" 0 ")));
        assert!(!parse_codec_switch(Some("false")));
        assert!(!parse_codec_switch(Some("FALSE")));
        assert!(!parse_codec_switch(Some("off")));
    }

    #[test]
    fn codec_default_is_on() {
        // The test environment must not disable the codec; guard the
        // assumption so a poisoned environment fails loudly. (The CI matrix
        // runs a dedicated DGO_WIRE_CODEC=0 leg as a separate process.)
        if std::env::var("DGO_WIRE_CODEC").is_ok() {
            return;
        }
        assert!(wire_codec_enabled());
    }

    #[test]
    fn override_parsing() {
        assert_eq!(parse_override(None), None);
        assert_eq!(parse_override(Some("")), None);
        assert_eq!(parse_override(Some("not a number")), None);
        assert_eq!(parse_override(Some("-3")), None);
        assert_eq!(parse_override(Some("0")), Some(0));
        assert_eq!(parse_override(Some(" 2048 ")), Some(2048));
    }
}
