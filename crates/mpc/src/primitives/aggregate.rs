//! Key-wise aggregation with combiner pre-reduction.
//!
//! Aggregating values by key (min-combining layer proposals in Algorithm 4,
//! summing counters, ...) is a constant-round MPC primitive: each machine
//! first combines locally (the MapReduce "combiner" trick), then sends one
//! record per distinct key to the key's home machine. The pre-combine is what
//! keeps hot keys (e.g. a star center receiving `n-1` proposals) within the
//! per-machine load cap: at most `M` records per key cross the network.

use crate::backend::ExecutionBackend;
use crate::error::Result;
use crate::word::WirePayload;
use std::collections::BTreeMap;

/// Aggregates `(key, value)` items by key with the associative, commutative
/// `combine` function. Returns, per machine, the combined record for every
/// key homed there (sorted by key for determinism).
///
/// Costs one exchange round (after free local pre-combining).
///
/// # Errors
///
/// Propagates capacity errors from the exchange.
///
/// # Examples
///
/// ```
/// use dgo_mpc::{Cluster, ClusterConfig};
/// use dgo_mpc::primitives::aggregate_by_key;
///
/// let mut cluster = Cluster::new(ClusterConfig::new(2, 64));
/// let items = vec![vec![(7u64, 3u64), (8, 1)], vec![(7, 2)]];
/// let out = aggregate_by_key(&mut cluster, items, u64::min)?;
/// // Key 7 homes on machine 7 % 2 = 1; min(3, 2) = 2.
/// assert_eq!(out[1], vec![(7, 2)]);
/// assert_eq!(out[0], vec![(8, 1)]);
/// # Ok::<(), dgo_mpc::MpcError>(())
/// ```
pub fn aggregate_by_key<B, V, F>(
    cluster: &mut B,
    items: Vec<Vec<(u64, V)>>,
    mut combine: F,
) -> Result<Vec<Vec<(u64, V)>>>
where
    B: ExecutionBackend,
    V: WirePayload + Copy + Send + Sync,
    F: FnMut(V, V) -> V,
{
    let m = cluster.num_machines();
    // Local pre-combine on each machine.
    let mut outbox: Vec<Vec<(usize, (u64, V))>> = (0..m).map(|_| Vec::new()).collect();
    for (machine, local) in items.into_iter().enumerate() {
        // A BTreeMap both pre-combines and yields records already
        // key-sorted, keeping the outbox order deterministic.
        let mut combined: BTreeMap<u64, V> = BTreeMap::new();
        for (key, value) in local {
            combined
                .entry(key)
                .and_modify(|acc| *acc = combine(*acc, value))
                .or_insert(value);
        }
        for (key, value) in combined {
            outbox[machine].push((cluster.home(key), (key, value)));
        }
    }
    let inbox = cluster.exchange(outbox)?;
    let mut out: Vec<Vec<(u64, V)>> = Vec::with_capacity(m);
    for received in inbox {
        let mut combined: BTreeMap<u64, V> = BTreeMap::new();
        for (key, value) in received {
            combined
                .entry(key)
                .and_modify(|acc| *acc = combine(*acc, value))
                .or_insert(value);
        }
        out.push(combined.into_iter().collect());
    }
    Ok(out)
}

/// Counts occurrences of each key. Convenience wrapper over
/// [`aggregate_by_key`] with unit counts.
///
/// # Errors
///
/// Propagates capacity errors from the exchange.
pub fn count_by_key<B: ExecutionBackend>(
    cluster: &mut B,
    keys: Vec<Vec<u64>>,
) -> Result<Vec<Vec<(u64, u64)>>> {
    let items = keys
        .into_iter()
        .map(|ks| ks.into_iter().map(|k| (k, 1u64)).collect())
        .collect();
    aggregate_by_key(cluster, items, |a, b| a + b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Cluster;
    use crate::config::ClusterConfig;

    #[test]
    fn min_aggregation() {
        let mut c = Cluster::new(ClusterConfig::new(3, 64));
        let items = vec![
            vec![(0u64, 5u64), (1, 7), (2, 9)],
            vec![(0, 3), (1, 8)],
            vec![(0, 6)],
        ];
        let out = aggregate_by_key(&mut c, items, u64::min).unwrap();
        assert_eq!(out[0], vec![(0, 3)]); // 0 % 3 = 0
        assert_eq!(out[1], vec![(1, 7)]);
        assert_eq!(out[2], vec![(2, 9)]);
    }

    #[test]
    fn hot_key_fits_thanks_to_precombine() {
        // 2 machines, S = 8: 100 values for one key would blow the receive
        // cap without pre-combining; with it only 2 records cross.
        let mut c = Cluster::new(ClusterConfig::new(2, 8));
        let items = vec![
            (0..100).map(|i| (5u64, i as u64)).collect::<Vec<_>>(),
            (0..100)
                .map(|i| (5u64, (100 + i) as u64))
                .collect::<Vec<_>>(),
        ];
        let out = aggregate_by_key(&mut c, items, u64::min).unwrap();
        assert_eq!(out[1], vec![(5, 0)]);
    }

    #[test]
    fn count_by_key_counts() {
        let mut c = Cluster::new(ClusterConfig::new(2, 64));
        let keys = vec![vec![4u64, 4, 5], vec![4, 5, 6]];
        let out = count_by_key(&mut c, keys).unwrap();
        assert_eq!(out[0], vec![(4, 3), (6, 1)]);
        assert_eq!(out[1], vec![(5, 2)]);
    }

    #[test]
    fn empty_input() {
        let mut c = Cluster::new(ClusterConfig::new(2, 8));
        let out = aggregate_by_key::<_, u64, _>(&mut c, vec![vec![], vec![]], u64::min).unwrap();
        assert!(out.iter().all(Vec::is_empty));
        assert_eq!(c.metrics().rounds, 1);
    }

    #[test]
    fn output_sorted_by_key() {
        let mut c = Cluster::new(ClusterConfig::new(1, 64));
        let items = vec![vec![(9u64, 1u64), (3, 1), (6, 1), (0, 1)]];
        let out = aggregate_by_key(&mut c, items, u64::min).unwrap();
        let keys: Vec<u64> = out[0].iter().map(|&(k, _)| k).collect();
        assert_eq!(keys, vec![0, 3, 6, 9]);
    }
}
