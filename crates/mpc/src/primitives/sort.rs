//! Constant-round distributed sorting.
//!
//! Sorting is the Swiss-army knife of MPC algorithm design: the classic
//! result of Goodrich–Sitchinava–Zhang \[GSZ11\] sorts `N` items in `O(1)`
//! rounds with `n^δ` memory per machine. The simulator computes the sorted
//! order in-process and charges the model cost: [`SORT_ROUNDS`] rounds, each
//! moving the full data volume, with per-machine load equal to the largest
//! machine share.

use crate::backend::ExecutionBackend;
use crate::error::Result;
use crate::word::WordSized;

/// Rounds charged per distributed sort (sample-sort: sample, partition,
/// route, local sort — a constant independent of data size \[GSZ11\]).
pub const SORT_ROUNDS: u64 = 3;

/// Sorts items distributed over machines, returning them globally sorted and
/// evenly rebalanced: machine 0 holds the smallest block, machine `M-1` the
/// largest.
///
/// # Errors
///
/// Propagates capacity errors if any machine's share exceeds `S`.
///
/// # Examples
///
/// ```
/// use dgo_mpc::{Cluster, ClusterConfig};
/// use dgo_mpc::primitives::distributed_sort;
///
/// let mut cluster = Cluster::new(ClusterConfig::new(2, 64));
/// let data = vec![vec![5u32, 1], vec![4, 2, 3]];
/// let sorted = distributed_sort(&mut cluster, data)?;
/// let flat: Vec<u32> = sorted.into_iter().flatten().collect();
/// assert_eq!(flat, vec![1, 2, 3, 4, 5]);
/// # Ok::<(), dgo_mpc::MpcError>(())
/// ```
pub fn distributed_sort<B: ExecutionBackend, T: Ord + WordSized>(
    cluster: &mut B,
    data: Vec<Vec<T>>,
) -> Result<Vec<Vec<T>>> {
    let m = cluster.num_machines();
    let input_max_load: usize = data
        .iter()
        .map(|machine| machine.iter().map(WordSized::words).sum::<usize>())
        .max()
        .unwrap_or(0);
    let mut all: Vec<T> = data.into_iter().flatten().collect();
    let total_words: usize = all.iter().map(WordSized::words).sum();
    all.sort_unstable();
    // Rebalance into contiguous blocks of near-equal item count.
    let n = all.len();
    let base = n / m;
    let extra = n % m;
    let mut out: Vec<Vec<T>> = Vec::with_capacity(m);
    let mut iter = all.into_iter();
    let mut output_max_load = 0usize;
    for machine in 0..m {
        let take = base + usize::from(machine < extra);
        let block: Vec<T> = iter.by_ref().take(take).collect();
        output_max_load = output_max_load.max(block.iter().map(WordSized::words).sum());
        out.push(block);
    }
    let max_load = input_max_load.max(output_max_load);
    cluster.charge_rounds(SORT_ROUNDS, total_words * SORT_ROUNDS as usize, max_load)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Cluster;
    use crate::config::ClusterConfig;

    #[test]
    fn sorts_and_balances() {
        let mut c = Cluster::new(ClusterConfig::new(3, 64));
        let data = vec![vec![9u32, 3], vec![7, 1, 5], vec![2]];
        let sorted = distributed_sort(&mut c, data).unwrap();
        let flat: Vec<u32> = sorted.iter().flatten().copied().collect();
        assert_eq!(flat, vec![1, 2, 3, 5, 7, 9]);
        assert_eq!(sorted[0].len(), 2);
        assert_eq!(sorted[1].len(), 2);
        assert_eq!(sorted[2].len(), 2);
        assert_eq!(c.metrics().rounds, SORT_ROUNDS);
    }

    #[test]
    fn uneven_counts_spread_front_loaded() {
        let mut c = Cluster::new(ClusterConfig::new(3, 64));
        let data = vec![vec![4u32, 3, 2, 1], vec![], vec![]];
        let sorted = distributed_sort(&mut c, data).unwrap();
        assert_eq!(sorted[0], vec![1, 2]);
        assert_eq!(sorted[1], vec![3]);
        assert_eq!(sorted[2], vec![4]);
    }

    #[test]
    fn empty_input_ok() {
        let mut c = Cluster::new(ClusterConfig::new(2, 8));
        let sorted = distributed_sort::<_, u32>(&mut c, vec![vec![], vec![]]).unwrap();
        assert!(sorted.iter().all(Vec::is_empty));
        assert_eq!(c.metrics().rounds, SORT_ROUNDS);
    }

    #[test]
    fn capacity_violation_detected() {
        let mut c = Cluster::new(ClusterConfig::new(2, 4));
        // 10 one-word items over 2 machines: 5 words per machine > S = 4.
        let data = vec![(0..10u32).collect::<Vec<_>>(), vec![]];
        assert!(distributed_sort(&mut c, data).is_err());
    }

    #[test]
    fn sorts_tuples_lexicographically() {
        let mut c = Cluster::new(ClusterConfig::new(2, 64));
        let data = vec![vec![(2u32, 1u32), (1, 9)], vec![(1, 2), (2, 0)]];
        let sorted = distributed_sort(&mut c, data).unwrap();
        let flat: Vec<(u32, u32)> = sorted.into_iter().flatten().collect();
        assert_eq!(flat, vec![(1, 2), (1, 9), (2, 0), (2, 1)]);
    }
}
