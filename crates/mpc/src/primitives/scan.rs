//! Prefix sums and one-to-all broadcast.
//!
//! Rank computation by prefix sum underpins the sorting-based matching of
//! Lemma 4.1 ("the difference in the ranks of the two items ... tells `v`
//! how many nodes want its bundle"); one-to-all value broadcast distributes
//! global scalars (thresholds, stage offsets) in `O(1)` rounds via the
//! standard broadcast tree.

use crate::backend::ExecutionBackend;
use crate::error::Result;
use crate::primitives::broadcast::broadcast_tree_rounds;
use crate::word::WordSized;

/// Exclusive prefix sums over distributed sequences: element `j` of machine
/// `i` receives the sum of every element strictly before it in the global
/// concatenation order (machine 0 first).
///
/// Costs 2 rounds: one to aggregate per-machine totals at a coordinator,
/// one to scatter the per-machine offsets (the classic two-phase scan).
///
/// # Errors
///
/// Propagates capacity violations (per-machine data must fit in `S`).
///
/// # Examples
///
/// ```
/// use dgo_mpc::{Cluster, ClusterConfig};
/// use dgo_mpc::primitives::prefix_sums;
///
/// let mut cluster = Cluster::new(ClusterConfig::new(2, 64));
/// let out = prefix_sums(&mut cluster, vec![vec![3, 1], vec![2, 4]])?;
/// assert_eq!(out, vec![vec![0, 3], vec![4, 6]]);
/// # Ok::<(), dgo_mpc::MpcError>(())
/// ```
pub fn prefix_sums<B: ExecutionBackend>(
    cluster: &mut B,
    data: Vec<Vec<u64>>,
) -> Result<Vec<Vec<u64>>> {
    let machines = cluster.num_machines();
    let max_share: usize = data.iter().map(Vec::len).max().unwrap_or(0);
    // Phase 1: per-machine totals to the coordinator (machine 0).
    // Phase 2: machine offsets back out.
    let volume = 2 * machines;
    let load = machines.max(max_share).max(1);
    cluster.charge_rounds(2, volume, load)?;

    let mut offset = 0u64;
    let mut out = Vec::with_capacity(data.len());
    for machine in data {
        let mut local = Vec::with_capacity(machine.len());
        for value in machine {
            local.push(offset);
            offset += value;
        }
        out.push(local);
    }
    Ok(out)
}

/// Broadcasts one value from a source machine to all machines via a
/// broadcast tree with fan-out `√S`.
///
/// # Errors
///
/// Propagates capacity violations.
///
/// # Examples
///
/// ```
/// use dgo_mpc::{Cluster, ClusterConfig};
/// use dgo_mpc::primitives::broadcast_value;
///
/// let mut cluster = Cluster::new(ClusterConfig::new(9, 64));
/// let copies = broadcast_value(&mut cluster, 42u64)?;
/// assert_eq!(copies.len(), 9);
/// assert!(copies.iter().all(|&c| c == 42));
/// # Ok::<(), dgo_mpc::MpcError>(())
/// ```
pub fn broadcast_value<B: ExecutionBackend, T: Copy + WordSized>(
    cluster: &mut B,
    value: T,
) -> Result<Vec<T>> {
    let machines = cluster.num_machines();
    let fanout = ((cluster.local_memory() as f64).sqrt().floor() as usize).max(2);
    let rounds = broadcast_tree_rounds(machines, fanout).max(1);
    let volume = machines * value.words();
    let load = fanout * value.words();
    cluster.charge_rounds(rounds, volume, load)?;
    Ok(vec![value; machines])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Cluster;
    use crate::config::ClusterConfig;

    #[test]
    fn prefix_sums_simple() {
        let mut c = Cluster::new(ClusterConfig::new(3, 64));
        let out = prefix_sums(&mut c, vec![vec![1, 2], vec![], vec![3]]).unwrap();
        assert_eq!(out, vec![vec![0, 1], vec![], vec![3]]);
        assert_eq!(c.metrics().rounds, 2);
    }

    #[test]
    fn prefix_sums_empty() {
        let mut c = Cluster::new(ClusterConfig::new(2, 8));
        let out = prefix_sums(&mut c, vec![vec![], vec![]]).unwrap();
        assert!(out.iter().all(Vec::is_empty));
    }

    #[test]
    fn prefix_sums_ranks_match_sequential() {
        let mut c = Cluster::new(ClusterConfig::new(4, 256));
        let data: Vec<Vec<u64>> = vec![vec![5; 10], vec![5; 10], vec![5; 10], vec![5; 10]];
        let out = prefix_sums(&mut c, data).unwrap();
        let flat: Vec<u64> = out.into_iter().flatten().collect();
        for (i, &v) in flat.iter().enumerate() {
            assert_eq!(v, 5 * i as u64);
        }
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let mut c = Cluster::new(ClusterConfig::new(20, 64));
        let out = broadcast_value(&mut c, 7u32).unwrap();
        assert_eq!(out, vec![7u32; 20]);
        // Fan-out 8 over 20 machines: 2 rounds.
        assert_eq!(c.metrics().rounds, 2);
    }

    #[test]
    fn broadcast_single_machine_one_round() {
        let mut c = Cluster::new(ClusterConfig::new(1, 64));
        broadcast_value(&mut c, 1u8).unwrap();
        assert_eq!(c.metrics().rounds, 1);
    }

    #[test]
    fn prefix_sum_capacity_violation() {
        let mut c = Cluster::new(ClusterConfig::new(2, 4));
        // 10 elements on one machine > S = 4.
        let data = vec![(0..10u64).collect::<Vec<_>>(), vec![]];
        assert!(prefix_sums(&mut c, data).is_err());
    }
}
