//! Bundle replication and gathering (the paper's Lemma 4.1).
//!
//! Lemma 4.1 ("directed exponentiation" support): every node `v` holds an
//! information bundle `B_v`, every node `u` wants the bundles of a list
//! `L_u`; provided the per-consumer volume fits in `n^δ` and the total volume
//! is `O(m + n)`, the task completes in `O(1)` MPC rounds via (1) a sort to
//! count requested copies, (2) a broadcast tree that replicates each bundle
//! `k_v` times growing by an `n^{δ/2}` fan-out per round, and (3) a
//! rank-matching delivery. [`gather_bundles`] implements exactly that cost
//! model.

use crate::backend::ExecutionBackend;
use crate::error::Result;
use crate::primitives::sort::SORT_ROUNDS;
use crate::word::WordSized;
use std::collections::BTreeMap;

/// Rounds a broadcast tree needs to make `copies` copies with the given
/// per-round `fanout` (at least 1 round once any copying happens).
///
/// # Examples
///
/// ```
/// use dgo_mpc::primitives::broadcast_tree_rounds;
/// assert_eq!(broadcast_tree_rounds(1, 10), 0);
/// assert_eq!(broadcast_tree_rounds(10, 10), 1);
/// assert_eq!(broadcast_tree_rounds(101, 10), 3);
/// ```
pub fn broadcast_tree_rounds(copies: usize, fanout: usize) -> u64 {
    if copies <= 1 {
        return 0;
    }
    let fanout = fanout.max(2) as u128;
    let mut have: u128 = 1;
    let mut rounds = 0u64;
    while have < copies as u128 {
        have = have.saturating_mul(fanout);
        rounds += 1;
    }
    rounds
}

/// Delivers requested bundles to consumers (Lemma 4.1).
///
/// * `bundles`: `key -> payload` held by the keys' home machines.
/// * `requests`: `(consumer, bundle_key)` pairs; requests for keys with no
///   bundle are ignored.
///
/// Returns `consumer -> [(bundle_key, payload)]` with each consumer's list
/// sorted by bundle key.
///
/// Cost charged: one sort (copy counting), a broadcast tree of depth
/// `log_{√S}(max copies)`, and one delivery round.
///
/// # Errors
///
/// Capacity errors if the per-consumer volume or balanced per-machine volume
/// exceeds `S` (the preconditions (A)/(B) of Lemma 4.1 are violated).
pub fn gather_bundles<B: ExecutionBackend, P: Clone + WordSized>(
    cluster: &mut B,
    bundles: &BTreeMap<u64, P>,
    requests: &[(u64, u64)],
) -> Result<BTreeMap<u64, Vec<(u64, P)>>> {
    let m = cluster.num_machines();
    let s = cluster.local_memory();

    // Phase 1: count copies per bundle (sorting-based, SORT_ROUNDS).
    let mut copies: BTreeMap<u64, usize> = BTreeMap::new();
    let mut per_consumer_words: BTreeMap<u64, usize> = BTreeMap::new();
    let mut total_delivered = 0usize;
    for &(consumer, key) in requests {
        if let Some(payload) = bundles.get(&key) {
            *copies.entry(key).or_insert(0) += 1;
            let w = 1 + payload.words();
            *per_consumer_words.entry(consumer).or_insert(0) += w;
            total_delivered += w;
        }
    }
    let count_volume = 2 * requests.len(); // (key, consumer) pairs
    let count_load = count_volume.div_ceil(m).max(1).min(count_volume.max(1));
    cluster.charge_rounds(SORT_ROUNDS, count_volume * SORT_ROUNDS as usize, count_load)?;

    // Phase 2: broadcast-tree replication with fan-out sqrt(S) (the paper's
    // n^{δ/2} growth factor).
    let fanout = ((s as f64).sqrt().floor() as usize).max(2);
    let max_copies = copies.values().copied().max().unwrap_or(0);
    let tree_rounds = broadcast_tree_rounds(max_copies, fanout);
    if tree_rounds > 0 {
        let per_round_load = total_delivered.div_ceil(m).max(1);
        cluster.charge_rounds(tree_rounds, total_delivered, per_round_load)?;
    }

    // Phase 3: rank-matched delivery; the binding constraint is each
    // consumer's own inbox volume (precondition (A) of Lemma 4.1).
    let max_consumer = per_consumer_words.values().copied().max().unwrap_or(0);
    let delivery_load = max_consumer.max(total_delivered.div_ceil(m)).max(1);
    cluster.charge_rounds(1, total_delivered, delivery_load)?;

    // Materialize results.
    let mut out: BTreeMap<u64, Vec<(u64, P)>> = BTreeMap::new();
    for &(consumer, key) in requests {
        if let Some(payload) = bundles.get(&key) {
            out.entry(consumer)
                .or_default()
                .push((key, payload.clone()));
        }
    }
    for list in out.values_mut() {
        list.sort_unstable_by_key(|&(k, _)| k);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Cluster;
    use crate::config::ClusterConfig;

    fn cluster(machines: usize, memory: usize) -> Cluster {
        Cluster::new(ClusterConfig::new(machines, memory))
    }

    #[test]
    fn tree_rounds_edge_cases() {
        assert_eq!(broadcast_tree_rounds(0, 4), 0);
        assert_eq!(broadcast_tree_rounds(1, 4), 0);
        assert_eq!(broadcast_tree_rounds(2, 4), 1);
        assert_eq!(broadcast_tree_rounds(16, 4), 2);
        assert_eq!(broadcast_tree_rounds(17, 4), 3);
        // Fanout below 2 is clamped to 2.
        assert_eq!(broadcast_tree_rounds(8, 0), 3);
    }

    #[test]
    fn gather_delivers_sorted() {
        let mut c = cluster(2, 1024);
        let mut bundles = BTreeMap::new();
        bundles.insert(10u64, vec![1u64, 2]);
        bundles.insert(20u64, vec![3u64]);
        let requests = vec![(0u64, 20u64), (0, 10), (1, 10)];
        let out = gather_bundles(&mut c, &bundles, &requests).unwrap();
        assert_eq!(out[&0], vec![(10, vec![1, 2]), (20, vec![3])]);
        assert_eq!(out[&1], vec![(10, vec![1, 2])]);
        assert!(c.metrics().rounds > SORT_ROUNDS);
    }

    #[test]
    fn missing_keys_ignored() {
        let mut c = cluster(2, 1024);
        let bundles: BTreeMap<u64, u64> = BTreeMap::new();
        let out = gather_bundles(&mut c, &bundles, &[(0, 99)]).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn consumer_overload_errors() {
        let mut c = cluster(2, 8);
        let mut bundles = BTreeMap::new();
        bundles.insert(0u64, vec![0u64; 20]); // 20-word bundle > S = 8
        let err = gather_bundles(&mut c, &bundles, &[(1, 0)]).unwrap_err();
        assert!(err.to_string().contains("capacity"));
    }

    #[test]
    fn replication_rounds_grow_with_copies() {
        // Fanout sqrt(64) = 8; 40 copies of one bundle force a deeper
        // broadcast tree than a single copy.
        let mut single = cluster(4, 64);
        let mut many = cluster(4, 64);
        let mut bundles = BTreeMap::new();
        bundles.insert(0u64, 1u64);
        gather_bundles(&mut single, &bundles, &[(1, 0)]).unwrap();
        let reqs: Vec<(u64, u64)> = (0..40).map(|i| (i, 0)).collect();
        gather_bundles(&mut many, &bundles, &reqs).unwrap();
        assert!(many.metrics().rounds > single.metrics().rounds);
    }

    #[test]
    fn empty_requests() {
        let mut c = cluster(2, 64);
        let mut bundles = BTreeMap::new();
        bundles.insert(0u64, 5u64);
        let out = gather_bundles(&mut c, &bundles, &[]).unwrap();
        assert!(out.is_empty());
    }
}
