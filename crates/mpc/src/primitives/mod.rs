//! Standard constant-round MPC primitives.
//!
//! The paper's implementation claims (Claims 3.5 and 3.11, Lemma 4.1) defer
//! to "standard MPC primitives developed in previous works, e.g.
//! [ASS+18, Gha]": constant-round sorting, broadcast trees, and key-wise
//! aggregation. This module provides those with faithful round/load metering.

mod aggregate;
mod broadcast;
mod scan;
mod sort;

pub use aggregate::{aggregate_by_key, count_by_key};
pub use broadcast::{broadcast_tree_rounds, gather_bundles};
pub use scan::{broadcast_value, prefix_sums};
pub use sort::{distributed_sort, SORT_ROUNDS};
