//! Multi-instance execution: host-parallel composition of independent MPC
//! instances.
//!
//! Several places in the paper compose *independent* runs of the same
//! machinery that execute concurrently on disjoint sections of the cluster:
//! footnote 2 runs the layering for every coreness guess `(1+ε)^i` "in
//! parallel", Theorem 1.1's large-`λ` path layers every edge part of the
//! Lemma 2.1 partition in parallel, and Lemma 3.15's boosting is a bundle of
//! independent repetitions. The simulator models that composition with
//! [`Metrics::merge_parallel`] (max rounds, summed words and memory) — but a
//! purely metered composition still executes one instance after another on
//! the host.
//!
//! [`InstanceGroup`] turns the metered parallelism into wall-clock
//! parallelism: it owns one [`ExecutionBackend`] per logical instance, fans a
//! caller closure across them on up to `jobs` host threads, and composes the
//! per-instance metrics with the paper's parallel-composition semantics,
//! including an aggregate global-memory check across the whole group.
//! Because every instance runs on its own private backend and outputs are
//! collected by instance index, results are **bit-identical to the
//! sequential host loop at any job count** — thread count is purely a
//! wall-clock decision, exactly like the backend choice.
//!
//! `jobs` composes *multiplicatively* with any host parallelism the
//! per-instance backend uses internally: `jobs` instances of
//! [`ParallelBackend`](crate::ParallelBackend) can each fan their metering
//! across all cores, oversubscribing the host. When fanning many instances,
//! pair the group with sequential per-instance backends and let the group
//! supply the parallelism.
//!
//! ```
//! use dgo_mpc::{ClusterConfig, ExecutionBackend, InstanceGroup, SequentialBackend};
//!
//! // Three independent instances, two host threads.
//! let mut group =
//!     InstanceGroup::<SequentialBackend>::uniform(ClusterConfig::new(2, 64), 3, 2);
//! let echoes = group.run_all(|i, backend| {
//!     let mut outbox: Vec<Vec<(usize, u64)>> = vec![vec![]; backend.num_machines()];
//!     outbox[0].push((1, i as u64));
//!     Ok::<u64, dgo_mpc::MpcError>(backend.exchange(outbox)?[1][0])
//! })?;
//! assert_eq!(echoes, vec![0, 1, 2]);
//! let metrics = group.into_metrics()?;
//! assert_eq!(metrics.rounds, 1); // parallel composition: max, not sum
//! assert_eq!(metrics.total_comm_words, 3); // volume sums
//! # Ok::<(), dgo_mpc::MpcError>(())
//! ```

use crate::backend::ExecutionBackend;
use crate::config::ClusterConfig;
use crate::error::{MpcError, Result};
use crate::metrics::Metrics;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolves a caller-facing `jobs` knob to a concrete host thread count:
/// `0` selects all available cores (rayon's pool size), any other value is
/// taken literally. The result never affects computed outputs — only
/// wall-clock.
pub fn resolve_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        rayon::current_num_threads()
    } else {
        jobs
    }
}

/// Divides one host-thread budget between an outer instance fan-out and the
/// data-parallel stages running *inside* each instance, so the two tiers
/// share the pool instead of multiplying into oversubscription: with
/// `instances` independent instances, the outer tier gets
/// `min(resolve_jobs(jobs), max(instances, 1))` threads and the remaining
/// budget factor goes to each instance's inner stages.
///
/// The inner budgets are *per instance* ([`JobSplit::inner`]): the division
/// remainder is distributed one extra thread to the first
/// `budget mod outer` instances instead of being floored away (the old
/// `(outer, inner)` tuple idled `budget − outer·⌊budget/outer⌋` threads —
/// a third of the budget at `jobs = 6, instances = 4`). At most `outer`
/// instances run concurrently and at most `budget mod outer < outer` of
/// them are boosted, so every concurrent set stays within
/// `Σ inner ≤ resolve_jobs(jobs)`. Purely a wall-clock decision — like
/// `jobs` itself, the split never affects computed outputs.
pub fn split_jobs(jobs: usize, instances: usize) -> JobSplit {
    let budget = resolve_jobs(jobs).max(1);
    let outer = budget.min(instances.max(1));
    JobSplit {
        outer,
        base: budget / outer,
        boosted: budget % outer,
    }
}

/// The two-tier thread-budget split computed by [`split_jobs`]: `outer`
/// host threads fan the instances, and instance `i` budgets
/// [`inner(i)`](JobSplit::inner) threads for its internal stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobSplit {
    outer: usize,
    base: usize,
    boosted: usize,
}

impl JobSplit {
    /// Host threads for the outer instance fan-out.
    pub fn outer(&self) -> usize {
        self.outer
    }

    /// Inner thread budget of instance `instance`: the floored factor, plus
    /// one remainder thread for the first `budget mod outer` instances.
    /// Fewer than `outer` instances are boosted, so any `outer` instances
    /// running concurrently fit the overall budget.
    pub fn inner(&self, instance: usize) -> usize {
        self.base + usize::from(instance < self.boosted)
    }

    /// The worst-case concurrent thread use: `outer` instances live at once,
    /// all boosted ones among them — exactly the resolved budget.
    pub fn max_concurrent(&self) -> usize {
        self.outer * self.base + self.boosted
    }
}

/// Applies the aggregate group-memory check of the parallel composition:
/// the summed global-memory peak of `instances` composed instances must fit
/// their aggregate `capacity` (the union cluster hosting every disjoint
/// section). Shared by [`InstanceGroup::into_metrics`] and host-side
/// compositions that manage backends internally, so the semantics cannot
/// drift.
///
/// # Errors
///
/// [`MpcError::GroupMemoryExceeded`] when over capacity and `strict`;
/// relaxed groups record a violation instead.
pub fn check_group_capacity(
    metrics: &mut Metrics,
    instances: usize,
    capacity: usize,
    strict: bool,
) -> Result<()> {
    if metrics.peak_global_memory > capacity {
        if strict {
            return Err(MpcError::GroupMemoryExceeded {
                instances,
                words: metrics.peak_global_memory,
                capacity,
            });
        }
        metrics.record_violation();
    }
    Ok(())
}

/// Sets an abort flag when dropped during a panic unwind (disarmed with
/// `mem::forget` on the normal path), so sibling workers stop claiming work.
struct AbortOnPanic<'a>(&'a AtomicBool);

impl Drop for AbortOnPanic<'_> {
    fn drop(&mut self) {
        self.0.store(true, Ordering::Release);
    }
}

/// Fans `run(i)` over `0..len` across up to `jobs` host threads and returns
/// the outputs in index order. The deterministic-concurrency building block
/// under [`InstanceGroup::run_all`], usable directly by compositions whose
/// instances manage their own backends internally.
///
/// Workers claim indices dynamically (next unclaimed, via one shared
/// counter), so skewed per-index costs balance across threads without
/// affecting outputs.
///
/// # Errors
///
/// Returns the error of the *lowest-index* failing call — the same error a
/// sequential loop stopping at the first failure would surface — and stops
/// claiming further indices. Because indices are claimed in order, every
/// index below the lowest failing one always completes first; which higher
/// indices ran is timing-dependent but unobservable in the result.
pub fn run_indexed<T, E, F>(len: usize, jobs: usize, run: F) -> std::result::Result<Vec<T>, E>
where
    F: Fn(usize) -> std::result::Result<T, E> + Sync,
    T: Send,
    E: Send,
{
    let mut slots: Vec<Option<std::result::Result<T, E>>> = (0..len).map(|_| None).collect();
    let threads = resolve_jobs(jobs).max(1).min(len.max(1));
    if threads <= 1 {
        for (i, slot) in slots.iter_mut().enumerate() {
            let result = run(i);
            let failed = result.is_err();
            *slot = Some(result);
            if failed {
                break;
            }
        }
    } else {
        let cells: Vec<Mutex<&mut Option<std::result::Result<T, E>>>> =
            slots.iter_mut().map(Mutex::new).collect();
        let next = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);
        rayon::scope(|s| {
            for _ in 0..threads {
                let (run, cells, next, abort) = (&run, &cells, &next, &abort);
                s.spawn(move || loop {
                    if abort.load(Ordering::Acquire) {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= cells.len() {
                        break;
                    }
                    // A panicking `run` must also stop the siblings; the
                    // panic itself resurfaces when the scope joins.
                    let panic_guard = AbortOnPanic(abort);
                    let result = run(i);
                    std::mem::forget(panic_guard);
                    if result.is_err() {
                        abort.store(true, Ordering::Release);
                    }
                    **cells[i].lock().expect("slot claimed by one worker") = Some(result);
                });
            }
        });
    }
    let mut outputs = Vec::with_capacity(len);
    for slot in slots {
        // Indices run in claim order until an error, so the slots form a
        // filled prefix: every `None` sits behind some earlier `Err`.
        match slot.expect("indices below the first error always ran") {
            Ok(output) => outputs.push(output),
            Err(error) => return Err(error),
        }
    }
    Ok(outputs)
}

/// A group of independent MPC instances that execute host-parallel and
/// compose as the paper's parallel composition (disjoint cluster sections:
/// max rounds, summed communication and memory).
///
/// Construct with one [`ClusterConfig`] per instance ([`InstanceGroup::new`])
/// or a shared shape ([`InstanceGroup::uniform`]), fan work across the
/// instances with [`run_all`](InstanceGroup::run_all), then collect the
/// composed [`Metrics`] with [`into_metrics`](InstanceGroup::into_metrics).
#[derive(Debug)]
pub struct InstanceGroup<B> {
    backends: Vec<B>,
    jobs: usize,
}

impl<B: ExecutionBackend> InstanceGroup<B> {
    /// Creates a group with one backend per configuration, running on up to
    /// `jobs` host threads (`0` = all available cores).
    pub fn new<I>(configs: I, jobs: usize) -> Self
    where
        I: IntoIterator<Item = ClusterConfig>,
    {
        InstanceGroup {
            backends: configs.into_iter().map(B::from_config).collect(),
            jobs: resolve_jobs(jobs),
        }
    }

    /// Creates a group of `instances` identically-shaped backends.
    pub fn uniform(config: ClusterConfig, instances: usize, jobs: usize) -> Self {
        Self::new(std::iter::repeat_n(config, instances), jobs)
    }

    /// Number of instances in the group.
    pub fn len(&self) -> usize {
        self.backends.len()
    }

    /// Whether the group has no instances.
    pub fn is_empty(&self) -> bool {
        self.backends.is_empty()
    }

    /// The resolved host thread budget.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs `run(i, backend_i)` for every instance `i`, fanned across up to
    /// [`jobs`](InstanceGroup::jobs) host threads, and returns the outputs in
    /// instance order.
    ///
    /// Instances are independent: each closure invocation gets exclusive
    /// access to its own backend, so outputs and per-instance metrics are
    /// bit-identical to running the instances in a sequential host loop,
    /// regardless of the thread count. Worker threads claim instances
    /// dynamically (next unclaimed index), so skewed per-instance costs
    /// balance across threads without affecting outputs.
    ///
    /// # Errors
    ///
    /// If any instance fails, the error of the *lowest-index* failing
    /// instance is returned — the same error a sequential loop that stops at
    /// the first failure would surface — and no further instances are
    /// started. Instances are claimed in index order, so every instance
    /// below the lowest failing one always completes; which later instances
    /// ran is timing-dependent but unobservable in the result.
    pub fn run_all<T, E, F>(&mut self, run: F) -> std::result::Result<Vec<T>, E>
    where
        B: Send,
        F: Fn(usize, &mut B) -> std::result::Result<T, E> + Sync,
        T: Send,
        E: Send,
    {
        // One cell per instance; each index is claimed by exactly one
        // run_indexed worker, so every lock is uncontended.
        let cells: Vec<Mutex<&mut B>> = self.backends.iter_mut().map(Mutex::new).collect();
        run_indexed(cells.len(), self.jobs, |i| {
            let mut backend = cells[i].lock().expect("backend claimed by one worker");
            run(i, &mut **backend)
        })
    }

    /// Consumes the group and composes the per-instance metrics with the
    /// parallel-composition semantics ([`Metrics::merge_parallel`], folded in
    /// instance order): rounds are the max over instances, communication and
    /// global memory sum.
    ///
    /// The summed global-memory peak is checked against the group's aggregate
    /// capacity (the sum of every instance's `M · S`): the composed run must
    /// fit the union cluster that hosts all the disjoint sections.
    ///
    /// # Errors
    ///
    /// [`MpcError::GroupMemoryExceeded`] if the aggregate peak overshoots the
    /// aggregate capacity and any instance is strict; relaxed groups record a
    /// violation instead.
    pub fn into_metrics(self) -> Result<Metrics> {
        let instances = self.backends.len();
        let mut merged = Metrics::new();
        let mut capacity = 0usize;
        let mut strict = false;
        for backend in self.backends {
            let config = *backend.config();
            capacity = capacity.saturating_add(config.global_memory());
            strict |= config.strict;
            merged.merge_parallel(&backend.into_metrics());
        }
        check_group_capacity(&mut merged, instances, capacity, strict)?;
        Ok(merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{ParallelBackend, SequentialBackend};

    fn ping(i: usize, backend: &mut SequentialBackend) -> Result<u64> {
        let mut outbox: Vec<Vec<(usize, u64)>> = vec![vec![]; backend.num_machines()];
        outbox[0].push((1, i as u64 * 10));
        Ok(backend.exchange(outbox)?[1][0])
    }

    #[test]
    fn outputs_in_instance_order_at_any_job_count() {
        for jobs in [1usize, 2, 3, 8, 64] {
            let mut group =
                InstanceGroup::<SequentialBackend>::uniform(ClusterConfig::new(2, 64), 5, jobs);
            let out = group.run_all(ping).unwrap();
            assert_eq!(out, vec![0, 10, 20, 30, 40], "jobs = {jobs}");
        }
    }

    #[test]
    fn metrics_compose_in_parallel() {
        let mut group =
            InstanceGroup::<SequentialBackend>::uniform(ClusterConfig::new(2, 64), 4, 2);
        group
            .run_all(|i, backend| {
                // Instance i charges i+1 rounds of one word each.
                backend.charge_rounds(i as u64 + 1, i + 1, 1)
            })
            .unwrap();
        let metrics = group.into_metrics().unwrap();
        assert_eq!(metrics.rounds, 4); // max over instances
        assert_eq!(metrics.total_comm_words, 1 + 2 + 3 + 4); // volume sums
    }

    #[test]
    fn composition_matches_sequential_fold() {
        // The group's composed metrics equal a hand-rolled sequential loop
        // folding merge_parallel in instance order.
        let configs: Vec<ClusterConfig> = (1..5).map(|m| ClusterConfig::new(m, 64)).collect();
        let mut expected = Metrics::new();
        for (i, &config) in configs.iter().enumerate() {
            let mut backend = SequentialBackend::new(config);
            ping_any(i, &mut backend).unwrap();
            expected.merge_parallel(&backend.into_metrics());
        }
        let mut group = InstanceGroup::<SequentialBackend>::new(configs, 3);
        group.run_all(ping_any).unwrap();
        assert_eq!(group.into_metrics().unwrap(), expected);
    }

    fn ping_any(i: usize, backend: &mut SequentialBackend) -> Result<()> {
        backend.charge_rounds(1 + i as u64 % 3, 4 * (i + 1), 2)?;
        backend.checkpoint_residency(&vec![3; backend.num_machines()])?;
        Ok(())
    }

    #[test]
    fn lowest_index_error_wins() {
        for jobs in [1usize, 4] {
            let mut group =
                InstanceGroup::<SequentialBackend>::uniform(ClusterConfig::new(2, 64), 6, jobs);
            let out: std::result::Result<Vec<()>, usize> =
                group.run_all(|i, _| if i >= 2 { Err(i) } else { Ok(()) });
            assert_eq!(out.unwrap_err(), 2, "jobs = {jobs}");
        }
    }

    #[test]
    fn error_short_circuits_remaining_instances() {
        // jobs = 1 must stop at the first error like the sequential loops it
        // replaced; threaded runs must stop claiming new instances.
        for jobs in [1usize, 3] {
            let ran = AtomicUsize::new(0);
            let mut group =
                InstanceGroup::<SequentialBackend>::uniform(ClusterConfig::new(2, 64), 64, jobs);
            let out: std::result::Result<Vec<()>, usize> = group.run_all(|i, _| {
                ran.fetch_add(1, Ordering::Relaxed);
                if i >= 2 {
                    Err(i)
                } else {
                    Ok(())
                }
            });
            assert_eq!(out.unwrap_err(), 2, "jobs = {jobs}");
            // Sequential: exactly instances 0, 1, 2. Threaded: the abort flag
            // stops claiming well short of all 64.
            let ran = ran.load(Ordering::Relaxed);
            if jobs == 1 {
                assert_eq!(ran, 3);
            } else {
                assert!(ran < 64, "threaded run claimed every instance");
            }
        }
    }

    #[test]
    fn dynamic_claiming_keeps_outputs_ordered_under_skew() {
        // Wildly skewed per-instance costs: dynamic claiming reorders the
        // *execution*, never the outputs.
        let mut group =
            InstanceGroup::<SequentialBackend>::uniform(ClusterConfig::new(2, 64), 12, 4);
        let out = group
            .run_all(|i, backend| {
                if i == 0 {
                    // One expensive instance pinned on one worker.
                    for _ in 0..200 {
                        backend.charge_rounds(1, 1, 1)?;
                    }
                }
                ping(i, backend)
            })
            .unwrap();
        assert_eq!(out, (0..12).map(|i| i as u64 * 10).collect::<Vec<_>>());
    }

    #[test]
    fn empty_group_is_fine() {
        let mut group = InstanceGroup::<SequentialBackend>::new(std::iter::empty(), 4);
        assert!(group.is_empty());
        let out: Vec<u8> = group.run_all(|_, _| Ok::<_, MpcError>(1)).unwrap();
        assert!(out.is_empty());
        assert_eq!(group.into_metrics().unwrap(), Metrics::new());
    }

    #[test]
    fn aggregate_memory_check_strict_errors() {
        // One relaxed instance overshoots its residency (allowed locally, the
        // aggregate sum then overshoots the group capacity); a strict sibling
        // makes the group check hard-fail.
        let configs = vec![ClusterConfig::new(1, 8).relaxed(), ClusterConfig::new(1, 8)];
        let mut group = InstanceGroup::<SequentialBackend>::new(configs, 1);
        group
            .run_all(|i, backend| backend.checkpoint_residency(&[if i == 0 { 100 } else { 1 }]))
            .unwrap();
        let err = group.into_metrics().unwrap_err();
        assert!(matches!(
            err,
            MpcError::GroupMemoryExceeded {
                instances: 2,
                words: 101,
                capacity: 16,
            }
        ));
    }

    #[test]
    fn aggregate_memory_check_relaxed_records_violation() {
        let configs = vec![
            ClusterConfig::new(1, 8).relaxed(),
            ClusterConfig::new(1, 8).relaxed(),
        ];
        let mut group = InstanceGroup::<SequentialBackend>::new(configs, 2);
        group
            .run_all(|_, backend| backend.checkpoint_residency(&[100]))
            .unwrap();
        let metrics = group.into_metrics().unwrap();
        assert_eq!(metrics.peak_global_memory, 200);
        // Two local residency violations plus the aggregate one.
        assert_eq!(metrics.violations, 3);
    }

    #[test]
    fn works_with_parallel_backend_instances() {
        // Instance-level parallelism composes with the rayon backend.
        let mut group = InstanceGroup::<ParallelBackend>::uniform(ClusterConfig::new(3, 64), 4, 0);
        let out = group
            .run_all(|i, backend| {
                let mut outbox: Vec<Vec<(usize, u64)>> = vec![vec![]; backend.num_machines()];
                outbox[i % 3].push(((i + 1) % 3, i as u64));
                Ok::<u64, MpcError>(backend.exchange(outbox)?[(i + 1) % 3][0])
            })
            .unwrap();
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    /// The first `instances` inner budgets of a split, for readable asserts.
    fn inner_budgets(split: JobSplit, instances: usize) -> Vec<usize> {
        (0..instances).map(|i| split.inner(i)).collect()
    }

    #[test]
    fn split_jobs_shares_the_budget() {
        // More instances than threads: all threads go to the outer tier.
        let split = split_jobs(4, 16);
        assert_eq!(split.outer(), 4);
        assert_eq!(inner_budgets(split, 4), vec![1, 1, 1, 1]);
        // Fewer instances than threads: the leftover factor goes inward.
        let split = split_jobs(8, 2);
        assert_eq!((split.outer(), split.inner(0), split.inner(1)), (2, 4, 4));
        // One instance: everything goes to the vertex stages.
        let split = split_jobs(6, 1);
        assert_eq!((split.outer(), split.inner(0)), (1, 6));
        // Degenerate shapes floor at one thread each.
        assert_eq!(split_jobs(1, 5).outer(), 1);
        assert_eq!(split_jobs(1, 5).inner(0), 1);
        let split = split_jobs(3, 0);
        assert_eq!((split.outer(), split.inner(0)), (1, 3));
    }

    #[test]
    fn split_jobs_distributes_the_remainder() {
        // Regression: the floored split used to idle the remainder —
        // jobs=6, instances=4 yielded (outer=4, inner=1), wasting a third
        // of the budget. The first `6 mod 4 = 2` instances now get the
        // extra threads.
        let split = split_jobs(6, 4);
        assert_eq!(split.outer(), 4);
        assert_eq!(inner_budgets(split, 4), vec![2, 2, 1, 1]);
        assert_eq!(split.max_concurrent(), 6);
        // jobs=8, instances=3: 8 = 3·2 + 2 → two boosted instances.
        let split = split_jobs(8, 3);
        assert_eq!(split.outer(), 3);
        assert_eq!(inner_budgets(split, 3), vec![3, 3, 2]);
        assert_eq!(split.max_concurrent(), 8);
        // Boosted instances beyond the first `remainder` stay at the base
        // budget even when there are more instances than outer threads.
        let split = split_jobs(7, 5);
        assert_eq!(split.outer(), 5);
        assert_eq!(inner_budgets(split, 5), vec![2, 2, 1, 1, 1]);
    }

    #[test]
    fn split_jobs_concurrent_use_never_exceeds_budget() {
        for jobs in 1..=16usize {
            for instances in 1..=16usize {
                let split = split_jobs(jobs, instances);
                // The worst concurrent set: `outer` instances at once,
                // including every boosted one (there are fewer boosted
                // instances than outer slots by construction).
                let worst: usize = (0..split.outer().min(instances))
                    .map(|i| split.inner(i))
                    .sum();
                assert!(worst <= jobs, "jobs={jobs} instances={instances}");
                assert!(
                    split.max_concurrent() <= jobs,
                    "jobs={jobs} instances={instances}"
                );
                // And the budget is used fully when instances allow it.
                assert_eq!(
                    split.max_concurrent(),
                    jobs,
                    "jobs={jobs} instances={instances}: budget left idle"
                );
            }
        }
    }

    #[test]
    fn jobs_resolution() {
        assert!(resolve_jobs(0) >= 1);
        assert_eq!(resolve_jobs(1), 1);
        assert_eq!(resolve_jobs(7), 7);
        let group = InstanceGroup::<SequentialBackend>::uniform(ClusterConfig::new(1, 8), 2, 5);
        assert_eq!(group.jobs(), 5);
        assert_eq!(group.len(), 2);
    }
}
