//! Cluster configuration: machine count and per-machine memory.

use serde::{Deserialize, Serialize};

/// Configuration of a simulated MPC cluster.
///
/// The strongly sublinear regime (the paper's setting) has per-machine memory
/// `S = n^δ` words for a constant `δ ∈ (0, 1)`, and enough machines that the
/// global memory `M · S` is `Ω(m + n)` with polylog slack.
///
/// # Examples
///
/// ```
/// use dgo_mpc::ClusterConfig;
///
/// // A cluster sized for a graph with n = 10_000, m = 40_000 at δ = 0.5.
/// let cfg = ClusterConfig::for_graph(10_000, 40_000, 0.5);
/// assert!(cfg.local_memory >= 100); // n^0.5
/// assert!(cfg.num_machines * cfg.local_memory >= 2 * 40_000 + 10_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of machines `M`.
    pub num_machines: usize,
    /// Per-machine memory capacity `S` in words.
    pub local_memory: usize,
    /// Whether constraint violations are hard errors (`true`) or are only
    /// recorded in the metrics (`false`). Experiments run strict; exploratory
    /// parameter sweeps may relax.
    pub strict: bool,
}

impl ClusterConfig {
    /// Creates an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if `num_machines == 0` or `local_memory == 0`.
    pub fn new(num_machines: usize, local_memory: usize) -> Self {
        assert!(num_machines > 0, "cluster needs at least one machine");
        assert!(local_memory > 0, "machines need nonzero memory");
        ClusterConfig {
            num_machines,
            local_memory,
            strict: true,
        }
    }

    /// Sizes a cluster for an `n`-vertex, `m`-edge graph in the strongly
    /// sublinear regime with exponent `delta`.
    ///
    /// `S = max(64, ⌈n^delta⌉)` (the floor keeps toy instances runnable) and
    /// `M` is chosen so `M · S ≥ 4 · (2m + n)` — global memory `Θ(m + n)`
    /// with a constant slack factor for the algorithms' bookkeeping, matching
    /// the `Õ(m + n)` global-memory clause of Theorems 1.1/1.2.
    ///
    /// # Panics
    ///
    /// Panics if `delta` is not in `(0, 1]`.
    pub fn for_graph(n: usize, m: usize, delta: f64) -> Self {
        assert!(
            delta > 0.0 && delta <= 1.0,
            "delta must be in (0, 1], got {delta}"
        );
        let s = ((n.max(2) as f64).powf(delta).ceil() as usize).max(64);
        let needed = 4 * (2 * m + n) + s;
        let machines = needed.div_ceil(s).max(1);
        ClusterConfig {
            num_machines: machines,
            local_memory: s,
            strict: true,
        }
    }

    /// Returns a copy with strict checking disabled (violations are recorded
    /// in metrics instead of erroring).
    pub fn relaxed(mut self) -> Self {
        self.strict = false;
        self
    }

    /// Total (global) memory `M · S` in words.
    pub fn global_memory(&self) -> usize {
        self.num_machines * self.local_memory
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_config() {
        let c = ClusterConfig::new(8, 1024);
        assert_eq!(c.num_machines, 8);
        assert_eq!(c.local_memory, 1024);
        assert!(c.strict);
        assert_eq!(c.global_memory(), 8 * 1024);
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn zero_machines_panics() {
        ClusterConfig::new(0, 10);
    }

    #[test]
    #[should_panic(expected = "nonzero memory")]
    fn zero_memory_panics() {
        ClusterConfig::new(1, 0);
    }

    #[test]
    fn for_graph_sublinear() {
        let c = ClusterConfig::for_graph(1_000_000, 4_000_000, 0.5);
        // S ~ sqrt(1e6) = 1000.
        assert!(c.local_memory >= 1000 && c.local_memory < 1100);
        assert!(c.global_memory() >= 4 * (2 * 4_000_000 + 1_000_000));
    }

    #[test]
    fn for_graph_floor_on_tiny_inputs() {
        let c = ClusterConfig::for_graph(10, 5, 0.3);
        assert_eq!(c.local_memory, 64);
        assert!(c.num_machines >= 1);
    }

    #[test]
    #[should_panic(expected = "delta")]
    fn for_graph_rejects_bad_delta() {
        ClusterConfig::for_graph(100, 100, 0.0);
    }

    #[test]
    fn relaxed_flips_strict() {
        let c = ClusterConfig::new(2, 2).relaxed();
        assert!(!c.strict);
    }

    #[test]
    fn delta_monotone_in_memory() {
        let small = ClusterConfig::for_graph(100_000, 100_000, 0.3);
        let large = ClusterConfig::for_graph(100_000, 100_000, 0.7);
        assert!(small.local_memory < large.local_memory);
        assert!(small.num_machines > large.num_machines);
    }
}
