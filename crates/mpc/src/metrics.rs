//! Round, communication, and memory metering.
//!
//! The experiment harness reads these counters to produce the round-complexity
//! and memory tables (experiments E1 and E5): the simulator's *only* job
//! beyond computing correct outputs is to meter faithfully.

use serde::{Deserialize, Serialize};

/// Statistics for one communication round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundStats {
    /// Global round index (1-based).
    pub round: u64,
    /// Total words moved across the cluster in this round.
    pub total_words: usize,
    /// Maximum words any single machine sent.
    pub max_sent: usize,
    /// Maximum words any single machine received.
    pub max_received: usize,
}

/// Cumulative metrics for a cluster's lifetime.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Metrics {
    /// Number of synchronous rounds executed.
    pub rounds: u64,
    /// Total words communicated over all rounds.
    pub total_comm_words: usize,
    /// Max over rounds of the max per-machine load (sent or received).
    pub max_round_load: usize,
    /// Peak resident words observed on any machine at a residency checkpoint.
    pub peak_machine_memory: usize,
    /// Peak total resident words across all machines at a checkpoint
    /// (the *global memory* actually used).
    pub peak_global_memory: usize,
    /// Peak resident view-tree arena bytes on any *simulated machine* (the
    /// flat-arena component of the certified words: the `ViewTree` columns +
    /// children pool balanced over machines at the exponentiation
    /// checkpoints). A per-machine figure like
    /// [`peak_machine_memory`](Metrics::peak_machine_memory) — concurrent
    /// instances occupy disjoint machine sets, so both merge directions take
    /// the max (it is *not* a summed host-wide total). Zero for algorithms
    /// that never hold trees.
    pub peak_tree_bytes: usize,
    /// Words the Lemma 4.1 view-tree bundles actually cost on the wire (the
    /// delta/varint-encoded lengths when the `dgo_core::wire` codec is on,
    /// the flat lengths when it is off), summed over every delivered copy.
    /// A volume-like counter: a subset of
    /// [`total_comm_words`](Metrics::total_comm_words) that both merge
    /// directions sum. Zero for algorithms that never ship trees.
    pub bundle_wire_words: usize,
    /// Words the same bundles would have cost under the flat
    /// two-words-per-node model — the baseline the experiment tables print
    /// next to [`bundle_wire_words`](Metrics::bundle_wire_words) so the
    /// codec's certified saving is visible without a second run.
    pub bundle_flat_words: usize,
    /// Number of constraint violations recorded (only grows in relaxed mode;
    /// strict clusters error out instead).
    pub violations: u64,
    /// Per-round log (capped; see [`Metrics::ROUND_LOG_CAP`]).
    pub round_log: Vec<RoundStats>,
}

impl Metrics {
    /// Round log entries kept before the log stops growing (the scalar
    /// counters keep counting regardless).
    pub const ROUND_LOG_CAP: usize = 100_000;

    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Records one communication round.
    ///
    /// Backend-implementor API: called by
    /// [`ExecutionBackend`](crate::ExecutionBackend) implementations (and the
    /// trait's metering defaults); algorithm code never calls this directly.
    pub fn record_round(&mut self, total_words: usize, max_sent: usize, max_received: usize) {
        self.rounds += 1;
        self.total_comm_words += total_words;
        self.max_round_load = self.max_round_load.max(max_sent).max(max_received);
        if self.round_log.len() < Self::ROUND_LOG_CAP {
            self.round_log.push(RoundStats {
                round: self.rounds,
                total_words,
                max_sent,
                max_received,
            });
        }
    }

    /// Records a residency checkpoint (`per_machine[i]` = words resident on
    /// machine `i`). Backend-implementor API, like
    /// [`record_round`](Metrics::record_round).
    pub fn record_residency(&mut self, per_machine: &[usize]) {
        let peak = per_machine.iter().copied().max().unwrap_or(0);
        let total: usize = per_machine.iter().sum();
        self.peak_machine_memory = self.peak_machine_memory.max(peak);
        self.peak_global_memory = self.peak_global_memory.max(total);
    }

    /// Records the per-machine resident tree-arena bytes at a checkpoint
    /// (`per_machine[i]` = arena bytes held by machine `i`). Unlike
    /// [`record_residency`](Metrics::record_residency) this is pure
    /// observability — arena bytes are a host-footprint figure, not words,
    /// so no capacity constraint applies.
    pub fn record_tree_bytes(&mut self, per_machine: &[usize]) {
        let peak = per_machine.iter().copied().max().unwrap_or(0);
        self.peak_tree_bytes = self.peak_tree_bytes.max(peak);
    }

    /// Records one batch of Lemma 4.1 tree-bundle traffic: `wire` words as
    /// actually charged (post-codec) and `flat` words under the
    /// two-words-per-node baseline. Called by the algorithm layer (which
    /// owns the encoding), not by backends — the totals are therefore
    /// backend-independent by construction.
    pub fn record_bundle_words(&mut self, wire: usize, flat: usize) {
        self.bundle_wire_words += wire;
        self.bundle_flat_words += flat;
    }

    /// Records a soft constraint violation (relaxed mode).
    /// Backend-implementor API, like [`record_round`](Metrics::record_round).
    pub fn record_violation(&mut self) {
        self.violations += 1;
    }

    /// Merges another metrics object into this one, summing rounds and
    /// communication and taking maxima of the peaks. Used when an algorithm
    /// runs sub-phases on scratch clusters (e.g. per-part orientation after
    /// the Lemma 2.1 edge partition runs conceptually in parallel; rounds are
    /// then combined with [`Metrics::merge_parallel`] instead).
    pub fn merge_sequential(&mut self, other: &Metrics) {
        self.rounds += other.rounds;
        self.total_comm_words += other.total_comm_words;
        self.max_round_load = self.max_round_load.max(other.max_round_load);
        self.peak_machine_memory = self.peak_machine_memory.max(other.peak_machine_memory);
        self.peak_global_memory += other.peak_global_memory;
        self.peak_tree_bytes = self.peak_tree_bytes.max(other.peak_tree_bytes);
        self.bundle_wire_words += other.bundle_wire_words;
        self.bundle_flat_words += other.bundle_flat_words;
        self.violations += other.violations;
    }

    /// Merges metrics of phases that execute *concurrently* on disjoint parts
    /// of the cluster: rounds are the max, communication sums, memory sums.
    pub fn merge_parallel(&mut self, other: &Metrics) {
        self.rounds = self.rounds.max(other.rounds);
        self.total_comm_words += other.total_comm_words;
        self.max_round_load = self.max_round_load.max(other.max_round_load);
        self.peak_machine_memory = self.peak_machine_memory.max(other.peak_machine_memory);
        self.peak_global_memory += other.peak_global_memory;
        self.peak_tree_bytes = self.peak_tree_bytes.max(other.peak_tree_bytes);
        self.bundle_wire_words += other.bundle_wire_words;
        self.bundle_flat_words += other.bundle_flat_words;
        self.violations += other.violations;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_round_accumulates() {
        let mut m = Metrics::new();
        m.record_round(100, 30, 40);
        m.record_round(50, 50, 10);
        assert_eq!(m.rounds, 2);
        assert_eq!(m.total_comm_words, 150);
        assert_eq!(m.max_round_load, 50);
        assert_eq!(m.round_log.len(), 2);
        assert_eq!(m.round_log[1].round, 2);
    }

    #[test]
    fn residency_tracks_peaks() {
        let mut m = Metrics::new();
        m.record_residency(&[10, 20, 5]);
        m.record_residency(&[1, 1, 1]);
        assert_eq!(m.peak_machine_memory, 20);
        assert_eq!(m.peak_global_memory, 35);
    }

    #[test]
    fn residency_empty_is_noop() {
        let mut m = Metrics::new();
        m.record_residency(&[]);
        assert_eq!(m.peak_machine_memory, 0);
    }

    #[test]
    fn merge_sequential_sums_rounds() {
        let mut a = Metrics::new();
        a.record_round(10, 5, 5);
        let mut b = Metrics::new();
        b.record_round(20, 9, 9);
        b.record_round(20, 9, 9);
        a.merge_sequential(&b);
        assert_eq!(a.rounds, 3);
        assert_eq!(a.total_comm_words, 50);
        assert_eq!(a.max_round_load, 9);
    }

    #[test]
    fn merge_parallel_takes_max_rounds() {
        let mut a = Metrics::new();
        a.record_round(10, 5, 5);
        let mut b = Metrics::new();
        b.record_round(20, 9, 9);
        b.record_round(20, 9, 9);
        a.merge_parallel(&b);
        assert_eq!(a.rounds, 2);
        assert_eq!(a.total_comm_words, 50);
    }

    #[test]
    fn tree_bytes_track_per_machine_peak() {
        let mut m = Metrics::new();
        m.record_tree_bytes(&[100, 300, 50]);
        m.record_tree_bytes(&[10, 10, 10]);
        assert_eq!(m.peak_tree_bytes, 300);
        m.record_tree_bytes(&[]);
        assert_eq!(m.peak_tree_bytes, 300);
        let mut other = Metrics::new();
        other.record_tree_bytes(&[700]);
        m.merge_parallel(&other);
        assert_eq!(m.peak_tree_bytes, 700);
        let mut seq = Metrics::new();
        seq.merge_sequential(&m);
        assert_eq!(seq.peak_tree_bytes, 700);
    }

    #[test]
    fn bundle_words_sum_in_both_merge_directions() {
        let mut m = Metrics::new();
        m.record_bundle_words(30, 100);
        m.record_bundle_words(10, 40);
        assert_eq!(m.bundle_wire_words, 40);
        assert_eq!(m.bundle_flat_words, 140);
        let mut other = Metrics::new();
        other.record_bundle_words(5, 20);
        let mut par = m.clone();
        par.merge_parallel(&other);
        assert_eq!(par.bundle_wire_words, 45);
        assert_eq!(par.bundle_flat_words, 160);
        let mut seq = m.clone();
        seq.merge_sequential(&other);
        assert_eq!(seq.bundle_wire_words, 45);
        assert_eq!(seq.bundle_flat_words, 160);
    }

    #[test]
    fn violations_count() {
        let mut m = Metrics::new();
        m.record_violation();
        m.record_violation();
        assert_eq!(m.violations, 2);
    }
}
