//! Pluggable execution backends.
//!
//! Every MPC algorithm in the workspace runs against the [`ExecutionBackend`]
//! trait rather than a concrete simulator, so the execution substrate can be
//! swapped without touching algorithm code:
//!
//! * [`SequentialBackend`] — the deterministic single-threaded reference
//!   implementation (the original `Cluster`);
//! * [`ParallelBackend`] — identical semantics and metrics, with
//!   counting-sort message routing into flat pre-counted per-destination
//!   buffers and rayon-parallel per-machine metering;
//! * [`ShardedBackend`] — machines partitioned into `K` contiguous shards,
//!   each owning its slice of inboxes: per-shard counting-sort routing on
//!   the shard's own thread, then a batched cross-shard handoff where every
//!   ordered shard pair moves one pre-counted contiguous buffer;
//! * [`ProcessBackend`] — the sharded shape pushed across a process
//!   boundary: every shard is a supervised `dgo-worker` OS process speaking
//!   the framed pipe protocol, with deterministic crash recovery and fault
//!   injection.
//!
//! All of them are observationally equivalent: same inbox contents in the
//! same deterministic `(source, production)` order, same errors, same
//! metrics — property-tested in the workspace's `backend_equivalence` suite.
//! Picking a backend is therefore purely a host-performance decision;
//! [`BackendKind`] names the choices for configuration surfaces (CLI flags,
//! configs).
//!
//! Shared metering semantics (round charging, residency checkpoints, key
//! homing) live in this trait's default methods so backends cannot drift.

mod parallel;
pub(crate) mod process;
mod sequential;
pub(crate) mod sharded;

pub use parallel::ParallelBackend;
pub use process::{worker_peak_rss_bytes, ProcessBackend};
pub use sequential::{Cluster, SequentialBackend};
pub use sharded::ShardedBackend;

use crate::config::ClusterConfig;
use crate::error::{MpcError, Result};
use crate::metrics::Metrics;
use crate::word::WirePayload;
use std::fmt;
use std::str::FromStr;

/// The execution substrate of the MPC simulator: synchronous message
/// exchange plus faithful round/load/memory accounting.
///
/// Implementations must be *observationally deterministic*: identical call
/// sequences produce identical inboxes (messages to machine `d` arrive in
/// `(source, production)` order), identical errors, and identical
/// [`Metrics`]. Algorithms may then be written once and executed on any
/// backend.
///
/// The capacity- and residency-accounting methods have default
/// implementations over [`config`](ExecutionBackend::config) and
/// [`metrics_mut`](ExecutionBackend::metrics_mut) so every backend meters
/// identically; only [`exchange`](ExecutionBackend::exchange) — the part
/// with real routing work — is backend-specific.
pub trait ExecutionBackend {
    /// Creates a backend for the given cluster shape.
    fn from_config(config: ClusterConfig) -> Self
    where
        Self: Sized;

    /// The configuration this backend runs under.
    fn config(&self) -> &ClusterConfig;

    /// Metrics accumulated so far.
    fn metrics(&self) -> &Metrics;

    /// Mutable access to the metrics, for the metering defaults and for
    /// backend implementations recording rounds.
    fn metrics_mut(&mut self) -> &mut Metrics;

    /// Consumes the backend, returning its metrics.
    fn into_metrics(self) -> Metrics
    where
        Self: Sized;

    /// Executes one synchronous communication round.
    ///
    /// `outbox[src]` holds `(destination, message)` pairs produced by machine
    /// `src`. Returns `inbox[dst]` = messages delivered to machine `dst`, in
    /// deterministic `(source, production)` order.
    ///
    /// Messages are [`WirePayload`] so any backend — including the
    /// multi-process one, which moves them over pipes — can transport them;
    /// in-process backends never serialize.
    ///
    /// # Errors
    ///
    /// * [`MpcError::WrongClusterWidth`] if `outbox.len() != M`.
    /// * [`MpcError::UnknownMachine`] for an out-of-range destination.
    /// * [`MpcError::CapacityExceeded`] in strict mode if any machine sends
    ///   or receives more than `S` words.
    fn exchange<T: WirePayload + Send + Sync>(
        &mut self,
        outbox: Vec<Vec<(usize, T)>>,
    ) -> Result<Vec<Vec<T>>>;

    /// Number of machines `M`.
    fn num_machines(&self) -> usize {
        self.config().num_machines
    }

    /// Per-machine memory capacity `S` in words.
    fn local_memory(&self) -> usize {
        self.config().local_memory
    }

    /// The home machine of an integer key: round-robin `key mod M`
    /// (deterministic placement).
    fn home(&self, key: u64) -> usize {
        (key % self.config().num_machines as u64) as usize
    }

    /// Charges `rounds` synchronous rounds for a primitive whose internal
    /// message schedule is not materialized (e.g. the constant-round sorting
    /// network of \[GSZ11\]); `total_words` is the overall volume moved and
    /// `max_load` the worst per-machine load in any of those rounds.
    ///
    /// The volume is spread across the rounds with the division remainder
    /// distributed one word per round from the front, so the recorded
    /// `total_comm_words` equals `total_words` exactly. With `rounds == 0`
    /// nothing is recorded (the capacity check still runs) — callers
    /// charging a nonzero volume must charge at least one round.
    ///
    /// # Errors
    ///
    /// [`MpcError::CapacityExceeded`] in strict mode if `max_load > S`.
    fn charge_rounds(&mut self, rounds: u64, total_words: usize, max_load: usize) -> Result<()> {
        debug_assert!(
            rounds > 0 || total_words == 0,
            "charging {total_words} words over zero rounds drops them from the metrics"
        );
        let capacity = self.config().local_memory;
        if max_load > capacity {
            if self.config().strict {
                // Aggregate charges know only the worst per-machine load, not
                // which machine carries it.
                return Err(MpcError::CapacityExceeded {
                    machine: None,
                    round: self.metrics().rounds + 1,
                    words: max_load,
                    capacity,
                    direction: "send",
                });
            }
            self.metrics_mut().record_violation();
        }
        let spread = rounds.max(1) as usize;
        let base = total_words / spread;
        let remainder = total_words % spread;
        for i in 0..rounds as usize {
            let words = base + usize::from(i < remainder);
            self.metrics_mut().record_round(words, max_load, max_load);
        }
        Ok(())
    }

    /// Enforces the per-round communication constraint after an exchange's
    /// loads are tallied: machines are checked in order, send before
    /// receive; strict mode errors on the first offense, relaxed mode
    /// records one violation per offense.
    ///
    /// Backend-implementor API: `exchange` implementations call this so the
    /// constraint semantics cannot drift between backends.
    ///
    /// # Errors
    ///
    /// [`MpcError::CapacityExceeded`] in strict mode.
    fn check_round_capacity(
        &mut self,
        sent: &[usize],
        received: &[usize],
        round: u64,
    ) -> Result<()> {
        let capacity = self.config().local_memory;
        let strict = self.config().strict;
        for machine in 0..sent.len() {
            if sent[machine] > capacity {
                if strict {
                    return Err(MpcError::CapacityExceeded {
                        machine: Some(machine),
                        round,
                        words: sent[machine],
                        capacity,
                        direction: "send",
                    });
                }
                self.metrics_mut().record_violation();
            }
            if received[machine] > capacity {
                if strict {
                    return Err(MpcError::CapacityExceeded {
                        machine: Some(machine),
                        round,
                        words: received[machine],
                        capacity,
                        direction: "receive",
                    });
                }
                self.metrics_mut().record_violation();
            }
        }
        Ok(())
    }

    /// Residency checkpoint: asserts that `per_machine[i]` words fit in `S`
    /// on every machine, and records peaks in the metrics.
    ///
    /// # Errors
    ///
    /// [`MpcError::MemoryExceeded`] in strict mode on the first over-budget
    /// machine; [`MpcError::WrongClusterWidth`] on a mis-sized slice.
    fn checkpoint_residency(&mut self, per_machine: &[usize]) -> Result<()> {
        let machines = self.config().num_machines;
        if per_machine.len() != machines {
            return Err(MpcError::WrongClusterWidth {
                expected: machines,
                found: per_machine.len(),
            });
        }
        self.metrics_mut().record_residency(per_machine);
        let capacity = self.config().local_memory;
        let strict = self.config().strict;
        for (machine, &words) in per_machine.iter().enumerate() {
            if words > capacity {
                if strict {
                    return Err(MpcError::MemoryExceeded {
                        machine,
                        words,
                        capacity,
                    });
                }
                self.metrics_mut().record_violation();
            }
        }
        Ok(())
    }

    /// Distributes `count` keyed items (`0..count`) over machines by home
    /// placement, returning per-machine key lists. Helper for loading inputs.
    fn scatter_keys(&self, count: u64) -> Vec<Vec<u64>> {
        let mut out: Vec<Vec<u64>> = (0..self.config().num_machines)
            .map(|_| Vec::new())
            .collect();
        for key in 0..count {
            out[self.home(key)].push(key);
        }
        out
    }
}

/// Names the built-in backends for configuration surfaces (CLI flags,
/// experiment configs). Dispatch to the concrete type with
/// [`dispatch_backend!`](crate::dispatch_backend).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// The single-threaded reference backend ([`SequentialBackend`]).
    #[default]
    Sequential,
    /// The rayon-parallel backend ([`ParallelBackend`]).
    Parallel,
    /// The shard-partitioned backend ([`ShardedBackend`]), optionally with an
    /// explicit shard count (`sharded:K` on the command line; `None` = auto).
    Sharded {
        /// Shard count override, applied through
        /// [`ShardedBackend::set_default_shards`] at dispatch time.
        shards: Option<usize>,
    },
    /// The supervised multi-process backend ([`ProcessBackend`]),
    /// optionally with an explicit worker count (`process:K` on the command
    /// line; `None` = auto).
    Process {
        /// Worker count override, applied through
        /// [`ProcessBackend::set_default_workers`] at dispatch time.
        workers: Option<usize>,
    },
}

impl BackendKind {
    /// Every selectable backend (the sharded and process entries with their
    /// auto shard/worker counts).
    pub const ALL: [BackendKind; 4] = [
        BackendKind::Sequential,
        BackendKind::Parallel,
        BackendKind::Sharded { shards: None },
        BackendKind::Process { workers: None },
    ];

    /// The flag/config name of this backend.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Sequential => "sequential",
            BackendKind::Parallel => "parallel",
            BackendKind::Sharded { .. } => "sharded",
            BackendKind::Process { .. } => "process",
        }
    }

    /// Quoted, comma-separated list of every backend name, for error
    /// messages. Derived from [`BackendKind::ALL`] so it cannot drift when
    /// backends are added.
    pub fn name_list() -> String {
        Self::ALL
            .map(|kind| format!("{:?}", kind.name()))
            .join(", ")
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendKind::Sharded {
                shards: Some(shards),
            } => write!(f, "sharded:{shards}"),
            BackendKind::Process {
                workers: Some(workers),
            } => write!(f, "process:{workers}"),
            other => f.write_str(other.name()),
        }
    }
}

impl FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        // `sharded` takes an optional `:K` shard-count suffix.
        if let Some(count) = s
            .strip_prefix("sharded:")
            .or_else(|| s.strip_prefix("shard:"))
        {
            return match count.parse::<usize>() {
                Ok(shards) if shards >= 1 => Ok(BackendKind::Sharded {
                    shards: Some(shards),
                }),
                _ => Err(format!(
                    "bad shard count {count:?} in backend {s:?} (expected sharded:<K> with K >= 1)"
                )),
            };
        }
        // `process` takes an optional `:K` worker-count suffix.
        if let Some(count) = s
            .strip_prefix("process:")
            .or_else(|| s.strip_prefix("proc:"))
        {
            return match count.parse::<usize>() {
                Ok(workers) if workers >= 1 => Ok(BackendKind::Process {
                    workers: Some(workers),
                }),
                _ => Err(format!(
                    "bad worker count {count:?} in backend {s:?} (expected process:<K> with K >= 1)"
                )),
            };
        }
        match s {
            "sequential" | "seq" => Ok(BackendKind::Sequential),
            "parallel" | "par" => Ok(BackendKind::Parallel),
            "sharded" | "shard" => Ok(BackendKind::Sharded { shards: None }),
            "process" | "proc" => Ok(BackendKind::Process { workers: None }),
            other => Err(format!(
                "unknown backend {other:?} (expected one of {})",
                BackendKind::name_list()
            )),
        }
    }
}

/// Expands the body once per [`BackendKind`] match arm, binding the chosen
/// concrete backend type to the given identifier:
///
/// ```
/// use dgo_mpc::{dispatch_backend, BackendKind, ClusterConfig, ExecutionBackend};
///
/// let kind: BackendKind = "parallel".parse().unwrap();
/// let machines = dispatch_backend!(kind, B => {
///     let backend = B::from_config(ClusterConfig::new(4, 64));
///     backend.num_machines()
/// });
/// assert_eq!(machines, 4);
/// ```
#[macro_export]
macro_rules! dispatch_backend {
    ($kind:expr, $backend:ident => $body:block) => {
        match $kind {
            $crate::BackendKind::Sequential => {
                type $backend = $crate::SequentialBackend;
                $body
            }
            $crate::BackendKind::Parallel => {
                type $backend = $crate::ParallelBackend;
                $body
            }
            $crate::BackendKind::Sharded { shards } => {
                // Entry points construct backends internally via
                // `from_config`, so the shard-count override travels through
                // the process default. Results and metrics are identical at
                // any shard count, so the side channel is wall-clock only.
                $crate::ShardedBackend::set_default_shards(shards);
                type $backend = $crate::ShardedBackend;
                $body
            }
            $crate::BackendKind::Process { workers } => {
                // Same side channel as the sharded arm: worker count never
                // affects results or metrics, only process topology.
                $crate::ProcessBackend::set_default_workers(workers);
                type $backend = $crate::ProcessBackend;
                $body
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_parses_and_displays() {
        assert_eq!(
            "sequential".parse::<BackendKind>().unwrap(),
            BackendKind::Sequential
        );
        assert_eq!("par".parse::<BackendKind>().unwrap(), BackendKind::Parallel);
        assert!("threads".parse::<BackendKind>().is_err());
        assert_eq!(BackendKind::Parallel.to_string(), "parallel");
        assert_eq!(BackendKind::default(), BackendKind::Sequential);
    }

    #[test]
    fn sharded_kind_parses_with_optional_shard_count() {
        assert_eq!(
            "sharded".parse::<BackendKind>().unwrap(),
            BackendKind::Sharded { shards: None }
        );
        assert_eq!(
            "sharded:7".parse::<BackendKind>().unwrap(),
            BackendKind::Sharded { shards: Some(7) }
        );
        assert_eq!(
            "shard:2".parse::<BackendKind>().unwrap(),
            BackendKind::Sharded { shards: Some(2) }
        );
        assert!("sharded:0".parse::<BackendKind>().is_err());
        assert!("sharded:many".parse::<BackendKind>().is_err());
        assert_eq!(BackendKind::Sharded { shards: None }.to_string(), "sharded");
        assert_eq!(
            BackendKind::Sharded { shards: Some(4) }.to_string(),
            "sharded:4"
        );
        assert_eq!(BackendKind::Sharded { shards: Some(4) }.name(), "sharded");
    }

    #[test]
    fn process_kind_parses_with_optional_worker_count() {
        assert_eq!(
            "process".parse::<BackendKind>().unwrap(),
            BackendKind::Process { workers: None }
        );
        assert_eq!(
            "process:4".parse::<BackendKind>().unwrap(),
            BackendKind::Process { workers: Some(4) }
        );
        assert_eq!(
            "proc:2".parse::<BackendKind>().unwrap(),
            BackendKind::Process { workers: Some(2) }
        );
        assert!("process:0".parse::<BackendKind>().is_err());
        assert!("process:auto".parse::<BackendKind>().is_err());
        assert_eq!(
            BackendKind::Process { workers: None }.to_string(),
            "process"
        );
        assert_eq!(
            BackendKind::Process { workers: Some(3) }.to_string(),
            "process:3"
        );
        assert_eq!(BackendKind::Process { workers: Some(3) }.name(), "process");
    }

    #[test]
    fn name_list_covers_every_backend() {
        let list = BackendKind::name_list();
        for kind in BackendKind::ALL {
            assert!(list.contains(kind.name()), "{list} missing {}", kind.name());
        }
    }

    #[test]
    fn dispatch_selects_concrete_type() {
        // The Sharded/Process arms write the process-wide default counts.
        let _guard = process::TEST_DEFAULTS_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for kind in BackendKind::ALL {
            let machines = dispatch_backend!(kind, B => {
                let backend = B::from_config(ClusterConfig::new(3, 32));
                backend.num_machines()
            });
            assert_eq!(machines, 3);
        }
    }

    #[test]
    fn charge_rounds_distributes_remainder_exactly() {
        // Regression: integer division used to drop `total_words % rounds`,
        // under-counting total_comm_words (13 words over 3 rounds recorded
        // as 12). The remainder now spreads one word per round from the
        // front.
        let mut backend = SequentialBackend::from_config(ClusterConfig::new(2, 64));
        backend.charge_rounds(3, 13, 8).unwrap();
        assert_eq!(backend.metrics().rounds, 3);
        assert_eq!(backend.metrics().total_comm_words, 13);
        let words: Vec<usize> = backend
            .metrics()
            .round_log
            .iter()
            .map(|r| r.total_words)
            .collect();
        assert_eq!(words, vec![5, 4, 4]);
    }

    #[test]
    fn charge_rounds_zero_rounds_records_nothing() {
        let mut backend = SequentialBackend::from_config(ClusterConfig::new(2, 64));
        backend.charge_rounds(0, 0, 4).unwrap();
        assert_eq!(backend.metrics().rounds, 0);
        assert_eq!(backend.metrics().total_comm_words, 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "zero rounds")]
    fn charge_rounds_zero_rounds_with_volume_is_a_bug() {
        let mut backend = SequentialBackend::from_config(ClusterConfig::new(2, 64));
        let _ = backend.charge_rounds(0, 10, 4);
    }

    #[test]
    fn charge_rounds_exact_division_unchanged() {
        let mut backend = SequentialBackend::from_config(ClusterConfig::new(2, 64));
        backend.charge_rounds(3, 12, 4).unwrap();
        assert_eq!(backend.metrics().total_comm_words, 12);
        let words: Vec<usize> = backend
            .metrics()
            .round_log
            .iter()
            .map(|r| r.total_words)
            .collect();
        assert_eq!(words, vec![4, 4, 4]);
    }
}
