//! The fault-tolerant multi-process execution backend.
//!
//! [`ProcessBackend`] runs each of `K` machine shards in a separate OS
//! process (the `dgo-worker` helper binary shipped with this crate),
//! exchanging pre-counted contiguous cross-shard batches over pipes in the
//! framed protocol of [`crate::frame`]. It is the distribution-shaped
//! sibling of [`ShardedBackend`](crate::ShardedBackend): the same two-phase
//! route/fill structure, but the per-shard work happens in isolated address
//! spaces, so a worker can *crash* without taking the computation down.
//!
//! # Supervision and recovery
//!
//! Workers are stateless request servers: the parent owns the outboxes, the
//! metrics, and all retry bookkeeping. The supervisor detects
//!
//! * **death** — the worker's pipe closes or a frame arrives truncated;
//! * **unresponsiveness** — no response within the per-phase deadline:
//!   the base `DGO_WORKER_TIMEOUT_MS` ([`crate::tuning::worker_timeout_ms`])
//!   plus a size-proportional grace of 1 ms per KiB of request payload
//!   (a 1 MiB/s processing floor), so scale-regime exchanges that
//!   legitimately move hundreds of megabytes through one pipe are never
//!   mistaken for a hang while a genuinely stuck worker is still killed
//!   promptly;
//! * **protocol violations** — bad magic/version/checksum or a malformed
//!   payload;
//!
//! and recovers by killing the worker, respawning it with bounded
//! exponential backoff, and **replaying the identical request**
//! (`DGO_WORKER_RETRIES` attempts). Because requests are pure functions of
//! parent-held state, a recovered exchange is bit-identical to an
//! undisturbed one — results, errors, and [`Metrics`] all match
//! [`SequentialBackend`](crate::SequentialBackend) even under injected
//! worker kills. When recovery is exhausted, the typed error surfaces:
//! [`MpcError::WorkerCrashed`], [`MpcError::WorkerTimeout`], or
//! [`MpcError::Protocol`].
//!
//! # Fault injection
//!
//! A deterministic fault plan (`DGO_FAULT_PLAN`, or
//! [`with_fault_plan`](ProcessBackend::with_fault_plan) /
//! [`set_default_fault_plan`](ProcessBackend::set_default_fault_plan))
//! injects kills, delays, truncated frames, and corrupted frames at exact
//! (exchange, worker, phase) coordinates. Directives travel *in-band* in the
//! request payload and are decremented at send time, so a replayed request
//! never re-fires a spent fault — each fault is injected exactly the planned
//! number of times.
//!
//! # Degradation
//!
//! If the worker binary cannot be found or launched at first use, the
//! backend logs a downgrade once and falls back to in-process sharded
//! execution ([`exchange_inline_on`]) with identical observable behavior;
//! [`is_degraded`](ProcessBackend::is_degraded) reports it.

use crate::backend::sharded::{
    exchange_inline_on, record_exchange_tallies, MergedTallies, ShardedBackend,
};
use crate::backend::ExecutionBackend;
use crate::config::ClusterConfig;
use crate::error::{MpcError, Result};
use crate::frame::{self, kind, FrameError};
use crate::metrics::Metrics;
use crate::tuning::{
    fault_plan, parse_fault_plan, worker_retries, worker_timeout_ms, FaultKind, FaultPhase,
    FaultSpec,
};
use crate::word::WirePayload;
use crate::worker::WordCursor;
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::{Mutex, Once, PoisonError};
use std::time::Duration;

/// Process-wide default worker count consulted by [`ProcessBackend::new`]
/// (`0` = auto): the `--backend process:K` side channel, mirroring
/// [`ShardedBackend::set_default_shards`].
static DEFAULT_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Process-wide default fault plan, taking precedence over `DGO_FAULT_PLAN`
/// (which is read once per process and therefore useless to tests).
static DEFAULT_FAULT_PLAN: Mutex<Option<Vec<FaultSpec>>> = Mutex::new(None);

/// High-water mark of the summed worker-process peak RSS, in bytes, across
/// every [`ProcessBackend`] this process has run.
static WORKER_PEAK_RSS: AtomicU64 = AtomicU64::new(0);

/// Logs the in-process downgrade once per process.
static DEGRADE_LOG: Once = Once::new();

/// Peak combined resident-set high-water mark (bytes) of all shard worker
/// processes any [`ProcessBackend`] has supervised in this process, from the
/// workers' own `VmHWM` reports. The parent's `VmHWM` does not include its
/// children, so memory reporting sums this in.
pub fn worker_peak_rss_bytes() -> u64 {
    WORKER_PEAK_RSS.load(Ordering::Relaxed)
}

/// Serializes unit tests that mutate the process-wide defaults above.
#[cfg(test)]
pub(crate) static TEST_DEFAULTS_LOCK: Mutex<()> = Mutex::new(());

/// A fault from the plan plus its remaining fire budget.
#[derive(Debug, Clone)]
struct FaultState {
    spec: FaultSpec,
    remaining: u32,
}

/// One live supervised worker: the child process, its request pipe, and the
/// reader thread draining its response pipe into a channel (so the parent
/// can wait with a deadline).
#[derive(Debug)]
struct WorkerHandle {
    child: Child,
    stdin: ChildStdin,
    rx: Receiver<std::result::Result<(u8, Vec<u64>), FrameError>>,
    reader: Option<std::thread::JoinHandle<()>>,
}

impl Drop for WorkerHandle {
    fn drop(&mut self) {
        // Kill + wait reaps the child (no zombies, no orphans); the closed
        // pipe ends the reader thread.
        let _ = self.child.kill();
        let _ = self.child.wait();
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
    }
}

/// Worker-pool lifecycle: spawn is lazy (first exchange), and a failed
/// launch downgrades to in-process execution permanently for this backend.
#[derive(Debug)]
enum WorkerState {
    NotSpawned,
    Degraded,
    Live(Vec<WorkerHandle>),
}

/// Why a supervised request failed, before mapping to a typed [`MpcError`].
#[derive(Debug, Clone, Copy)]
enum PhaseFailure {
    Crashed,
    Timeout,
    Protocol(&'static str),
}

impl PhaseFailure {
    fn into_mpc(self, worker: usize, phase: &'static str, timeout_ms: u64) -> MpcError {
        match self {
            PhaseFailure::Crashed => MpcError::WorkerCrashed { worker, phase },
            PhaseFailure::Timeout => MpcError::WorkerTimeout {
                worker,
                phase,
                timeout_ms,
            },
            PhaseFailure::Protocol(detail) => MpcError::Protocol { worker, detail },
        }
    }
}

/// Phase-1 result of one worker, parsed from its `ROUTE_RESP`: the metering
/// tallies plus raw per-destination-shard segment blobs ready to forward in
/// `FILL_REQ`s.
struct RoutePass {
    sent: Vec<usize>,
    received: Vec<usize>,
    inbox_counts: Vec<usize>,
    segments: Vec<Vec<u64>>,
}

/// A simulated MPC cluster whose `K` machine shards run as supervised
/// separate OS processes, with deterministic crash recovery. Observationally
/// identical to [`SequentialBackend`](crate::SequentialBackend) at any
/// worker count — including under injected faults that recovery absorbs.
///
/// # Examples
///
/// ```no_run
/// use dgo_mpc::{ClusterConfig, ExecutionBackend, ProcessBackend};
///
/// let mut cluster = ProcessBackend::new(ClusterConfig::new(4, 1024)).with_workers(2);
/// let mut outbox: Vec<Vec<(usize, u64)>> = vec![vec![]; 4];
/// outbox[0].push((3, 99)); // crosses from worker 0's shard into worker 1's
/// let inbox = cluster.exchange(outbox)?;
/// assert_eq!(inbox[3], vec![99]);
/// # Ok::<(), dgo_mpc::MpcError>(())
/// ```
#[derive(Debug)]
pub struct ProcessBackend {
    config: ClusterConfig,
    metrics: Metrics,
    workers: usize,
    timeout_ms: u64,
    retries: u32,
    faults: Vec<FaultState>,
    worker_bin: Option<PathBuf>,
    state: WorkerState,
    /// Per-worker peak RSS in bytes, from the workers' own reports.
    worker_rss: Vec<u64>,
    /// 1-based count of exchange calls — the fault plan's coordinate system.
    exchanges: u64,
}

impl ProcessBackend {
    /// Creates a backend with the process default worker count (set by
    /// [`set_default_workers`](ProcessBackend::set_default_workers), else
    /// the host's available parallelism), the environment's supervision
    /// knobs, and the ambient fault plan. Workers are spawned lazily on the
    /// first exchange.
    pub fn new(config: ClusterConfig) -> Self {
        let workers = Self::default_workers().unwrap_or_else(rayon::current_num_threads);
        let plan = DEFAULT_FAULT_PLAN
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
            .unwrap_or_else(|| fault_plan().to_vec());
        let workers = ShardedBackend::effective_shards(workers, config.num_machines);
        ProcessBackend {
            config,
            metrics: Metrics::new(),
            workers,
            timeout_ms: worker_timeout_ms(),
            retries: worker_retries(),
            faults: plan
                .into_iter()
                .map(|spec| FaultState {
                    remaining: spec.count,
                    spec,
                })
                .collect(),
            worker_bin: None,
            state: WorkerState::NotSpawned,
            worker_rss: Vec::new(),
            exchanges: 0,
        }
    }

    /// Overrides the worker count `K`, normalized exactly like
    /// [`ShardedBackend::with_shards`] (the contiguous `⌈M/K⌉`-wide
    /// partition's effective count). Results and metrics are identical for
    /// every worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(
            matches!(self.state, WorkerState::NotSpawned),
            "worker count is fixed once workers have spawned"
        );
        self.workers = ShardedBackend::effective_shards(workers, self.config.num_machines);
        self
    }

    /// Overrides the per-phase supervision deadline in milliseconds (0 is
    /// clamped to 1). Tests use this to exercise [`MpcError::WorkerTimeout`]
    /// quickly.
    pub fn with_timeout_ms(mut self, timeout_ms: u64) -> Self {
        self.timeout_ms = timeout_ms.max(1);
        self
    }

    /// Overrides the recovery retry budget (attempts = retries + 1).
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Replaces the fault plan with one parsed from the `DGO_FAULT_PLAN`
    /// syntax (see [`crate::tuning`]).
    ///
    /// # Panics
    ///
    /// On a malformed plan — a typo'd chaos experiment must fail loudly.
    pub fn with_fault_plan(mut self, plan: &str) -> Self {
        let plan =
            parse_fault_plan(plan).unwrap_or_else(|| panic!("malformed fault plan: {plan:?}"));
        self.faults = plan
            .into_iter()
            .map(|spec| FaultState {
                remaining: spec.count,
                spec,
            })
            .collect();
        self
    }

    /// Overrides the worker binary path (tests point this at nonexistent or
    /// broken binaries to exercise degradation and spawn failure). Default:
    /// `DGO_WORKER_BIN`, else `dgo-worker` next to the current executable or
    /// its parent directory.
    pub fn with_worker_bin(mut self, path: impl Into<PathBuf>) -> Self {
        self.worker_bin = Some(path.into());
        self
    }

    /// The worker count `K` this backend shards over.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Whether the backend has downgraded to in-process sharded execution
    /// because the worker binary could not be launched.
    pub fn is_degraded(&self) -> bool {
        matches!(self.state, WorkerState::Degraded)
    }

    /// Sets the process-wide default worker count used by backends
    /// constructed without an explicit
    /// [`with_workers`](ProcessBackend::with_workers) — the channel through
    /// which `--backend process:K` reaches entry points constructing
    /// backends internally via
    /// [`from_config`](crate::ExecutionBackend::from_config). `None`
    /// restores auto. Safe to leave set: the worker count never affects
    /// results or metrics.
    pub fn set_default_workers(workers: Option<usize>) {
        DEFAULT_WORKERS.store(workers.unwrap_or(0), Ordering::Relaxed);
    }

    /// The process-wide default worker count, if one has been set.
    pub fn default_workers() -> Option<usize> {
        match DEFAULT_WORKERS.load(Ordering::Relaxed) {
            0 => None,
            workers => Some(workers),
        }
    }

    /// Sets (or with `None` clears) the process-wide default fault plan,
    /// which takes precedence over `DGO_FAULT_PLAN` for subsequently
    /// constructed backends. This is how tests inject faults into algorithm
    /// entry points that construct backends internally via `from_config` —
    /// the environment variable is read once per process, so it cannot be
    /// flipped per test.
    ///
    /// # Panics
    ///
    /// On a malformed plan.
    pub fn set_default_fault_plan(plan: Option<&str>) {
        let parsed = plan
            .map(|p| parse_fault_plan(p).unwrap_or_else(|| panic!("malformed fault plan: {p:?}")));
        *DEFAULT_FAULT_PLAN
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = parsed;
    }

    /// Resolves the worker binary path: explicit override, `DGO_WORKER_BIN`,
    /// then `dgo-worker` beside the current executable or its parent
    /// directory (covering `target/<profile>/deps/` test binaries and
    /// `target/<profile>/examples/`).
    fn worker_binary(&self) -> Option<PathBuf> {
        if let Some(path) = &self.worker_bin {
            return Some(path.clone());
        }
        if let Some(path) = crate::tuning::worker_bin_override() {
            return Some(PathBuf::from(path));
        }
        let exe = std::env::current_exe().ok()?;
        let dir = exe.parent()?;
        let mut candidates = vec![dir.join("dgo-worker")];
        if let Some(parent) = dir.parent() {
            candidates.push(parent.join("dgo-worker"));
        }
        candidates.into_iter().find(|c| c.is_file())
    }

    /// Downgrades to in-process sharded execution, logging once per process.
    fn degrade(&mut self, why: &str) {
        DEGRADE_LOG.call_once(|| {
            eprintln!(
                "dgo-mpc: process backend degraded to in-process sharded execution ({why}); \
                 results are unaffected"
            );
        });
        self.state = WorkerState::Degraded;
    }

    /// Spawns one worker and waits for its HELLO frame.
    fn spawn_one(&self, bin: &Path) -> std::result::Result<WorkerHandle, PhaseFailure> {
        let mut child = Command::new(bin)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .map_err(|_| PhaseFailure::Crashed)?;
        let (stdin, mut stdout) = match (child.stdin.take(), child.stdout.take()) {
            (Some(stdin), Some(stdout)) => (stdin, stdout),
            _ => {
                // Both were requested as piped above; missing handles mean
                // the spawn is unusable — reap it and surface a typed error.
                let _ = child.kill();
                let _ = child.wait();
                return Err(PhaseFailure::Protocol("worker stdio pipes missing"));
            }
        };
        let (tx, rx) = std::sync::mpsc::channel();
        let reader = std::thread::spawn(move || loop {
            match frame::read_frame(&mut stdout, frame::DEFAULT_MAX_PAYLOAD_WORDS) {
                Ok(frame) => {
                    if tx.send(Ok(frame)).is_err() {
                        return;
                    }
                }
                Err(e) => {
                    let _ = tx.send(Err(e));
                    return;
                }
            }
        });
        let handle = WorkerHandle {
            child,
            stdin,
            rx,
            reader: Some(reader),
        };
        match handle
            .rx
            .recv_timeout(Duration::from_millis(self.timeout_ms))
        {
            Ok(Ok((kind::HELLO, _))) => Ok(handle),
            Ok(Ok(_)) => Err(PhaseFailure::Protocol("expected HELLO frame")),
            Ok(Err(_)) | Err(RecvTimeoutError::Disconnected) => Err(PhaseFailure::Crashed),
            Err(RecvTimeoutError::Timeout) => Err(PhaseFailure::Timeout),
        }
    }

    /// Spawns worker `k` with bounded exponential backoff between attempts.
    fn spawn_with_retry(&self, bin: &Path, k: usize) -> Result<WorkerHandle> {
        let mut attempt = 0u32;
        loop {
            match self.spawn_one(bin) {
                Ok(handle) => return Ok(handle),
                Err(failure) => {
                    if attempt >= self.retries {
                        return Err(failure.into_mpc(k, "spawn", self.timeout_ms));
                    }
                    std::thread::sleep(backoff(attempt));
                    attempt += 1;
                }
            }
        }
    }

    /// Ensures the worker pool is live; returns `false` when degraded to the
    /// in-process path. Launch failures degrade only when the binary is
    /// unavailable *before any worker has ever run*; later failures are
    /// typed errors (a half-distributed downgrade would be surprising).
    fn ensure_workers(&mut self) -> Result<bool> {
        match self.state {
            WorkerState::Degraded => return Ok(false),
            WorkerState::Live(_) => return Ok(true),
            WorkerState::NotSpawned => {}
        }
        let Some(bin) = self.worker_binary() else {
            self.degrade("worker binary not found");
            return Ok(false);
        };
        if !bin.is_file() {
            self.degrade("worker binary not found");
            return Ok(false);
        }
        let mut handles = Vec::with_capacity(self.workers);
        for k in 0..self.workers {
            handles.push(self.spawn_with_retry(&bin, k)?);
        }
        self.state = WorkerState::Live(handles);
        self.worker_rss = vec![0; self.workers];
        Ok(true)
    }

    /// Replaces a failed worker with a fresh process (the old handle's drop
    /// kills and reaps it).
    fn respawn(&mut self, k: usize) -> Result<()> {
        let bin = self.worker_binary().ok_or(MpcError::WorkerCrashed {
            worker: k,
            phase: "spawn",
        })?;
        let handle = self.spawn_with_retry(&bin, k)?;
        if let WorkerState::Live(workers) = &mut self.state {
            workers[k] = handle;
        }
        Ok(())
    }

    /// Scans the fault plan for a live directive at these coordinates,
    /// spending one firing. Returns the in-band `(fault_code, fault_arg)`
    /// request words.
    fn arm_fault(&mut self, worker: usize, phase: FaultPhase) -> (u64, u64) {
        let exchange = self.exchanges;
        for fault in &mut self.faults {
            if fault.remaining > 0
                && fault.spec.exchange == exchange
                && fault.spec.worker == worker
                && (fault.spec.phase == FaultPhase::Any || fault.spec.phase == phase)
            {
                fault.remaining -= 1;
                let code = match fault.spec.kind {
                    FaultKind::Kill => 1,
                    FaultKind::Delay => 2,
                    FaultKind::TruncateFrame => 3,
                    FaultKind::CorruptFrame => 4,
                };
                return (code, fault.spec.ms);
            }
        }
        (0, 0)
    }

    /// Writes a request to worker `k`. Write errors are deliberately
    /// swallowed: a dead worker surfaces on the read side, where the retry
    /// machinery lives.
    fn send_to(&mut self, k: usize, req_kind: u8, payload: &[u64]) {
        if let WorkerState::Live(workers) = &mut self.state {
            let _ = frame::write_frame(&mut workers[k].stdin, req_kind, payload);
        }
    }

    /// Waits for worker `k`'s response with the supervision deadline.
    fn read_response(
        &mut self,
        k: usize,
        expect: u8,
        deadline_ms: u64,
    ) -> std::result::Result<Vec<u64>, PhaseFailure> {
        let WorkerState::Live(workers) = &mut self.state else {
            return Err(PhaseFailure::Crashed);
        };
        match workers[k]
            .rx
            .recv_timeout(Duration::from_millis(deadline_ms))
        {
            Ok(Ok((frame_kind, payload))) if frame_kind == expect => Ok(payload),
            Ok(Ok(_)) => Err(PhaseFailure::Protocol("unexpected frame kind")),
            Ok(Err(e)) => Err(match e {
                FrameError::Eof | FrameError::Truncated | FrameError::Io(_) => {
                    PhaseFailure::Crashed
                }
                other => PhaseFailure::Protocol(frame_detail(other)),
            }),
            Err(RecvTimeoutError::Timeout) => Err(PhaseFailure::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(PhaseFailure::Crashed),
        }
    }

    /// Runs one protocol phase across all workers: send every request
    /// (fault-armed), then collect responses in worker order, recovering
    /// each failure by respawn-and-replay until the retry budget is spent.
    fn run_phase(
        &mut self,
        mut requests: Vec<Vec<u64>>,
        req_kind: u8,
        resp_kind: u8,
        phase_name: &'static str,
        fault_phase: FaultPhase,
    ) -> Result<Vec<Vec<u64>>> {
        for (k, request) in requests.iter_mut().enumerate() {
            let (code, arg) = self.arm_fault(k, fault_phase);
            request[0] = code;
            request[1] = arg;
        }
        for (k, request) in requests.iter().enumerate() {
            self.send_to(k, req_kind, request);
        }
        let mut responses = Vec::with_capacity(requests.len());
        for (k, request) in requests.iter_mut().enumerate() {
            let deadline_ms = effective_deadline_ms(self.timeout_ms, request.len());
            let mut attempt = 0u32;
            let payload = loop {
                match self.read_response(k, resp_kind, deadline_ms) {
                    Ok(payload) => break payload,
                    Err(failure) => {
                        if attempt >= self.retries {
                            return Err(failure.into_mpc(k, phase_name, deadline_ms));
                        }
                        std::thread::sleep(backoff(attempt));
                        attempt += 1;
                        self.respawn(k)?;
                        // Replay the identical request. The fault plan is
                        // re-scanned: a spent fault stays spent, a
                        // multi-count fault deliberately re-fires.
                        let (code, arg) = self.arm_fault(k, fault_phase);
                        request[0] = code;
                        request[1] = arg;
                        self.send_to(k, req_kind, request);
                    }
                }
            };
            self.note_worker_rss(k, payload.first().copied().unwrap_or(0));
            responses.push(payload);
        }
        Ok(responses)
    }

    /// Folds a worker's self-reported peak RSS into the per-worker maxima
    /// and the process-wide aggregate high-water mark.
    fn note_worker_rss(&mut self, k: usize, vmhwm: u64) {
        if k >= self.worker_rss.len() {
            return;
        }
        self.worker_rss[k] = self.worker_rss[k].max(vmhwm);
        let sum: u64 = self.worker_rss.iter().sum();
        WORKER_PEAK_RSS.fetch_max(sum, Ordering::Relaxed);
    }

    /// The distributed exchange: encode per-shard `ROUTE_REQ`s, merge the
    /// workers' tallies, meter, then fan the ordered segments back out as
    /// `FILL_REQ`s and decode the returned inbox streams.
    fn exchange_process<T: WirePayload>(
        &mut self,
        outbox: Vec<Vec<(usize, T)>>,
        round: u64,
        shard_width: usize,
        num_shards: usize,
    ) -> Result<Vec<Vec<T>>> {
        let machines = self.config.num_machines;
        // Encode shard requests; the scan doubles as the sequential
        // backend's eager destination check, in the same global
        // (source, production) order.
        let mut requests = Vec::with_capacity(num_shards);
        let mut src_counts = Vec::with_capacity(num_shards);
        for sources in outbox.chunks(shard_width) {
            let mut payload = vec![
                0,
                0,
                machines as u64,
                shard_width as u64,
                num_shards as u64,
                sources.len() as u64,
            ];
            for msgs in sources {
                payload.push(msgs.len() as u64);
                for (dst, message) in msgs {
                    if *dst >= machines {
                        return Err(MpcError::UnknownMachine {
                            machine: *dst,
                            num_machines: machines,
                        });
                    }
                    payload.push(*dst as u64);
                    payload.push(message.words() as u64);
                    let len_slot = payload.len();
                    payload.push(0);
                    message.encode_words(&mut payload);
                    payload[len_slot] = (payload.len() - len_slot - 1) as u64;
                }
            }
            src_counts.push(sources.len());
            requests.push(payload);
        }
        drop(outbox);
        let responses = self.run_phase(
            requests,
            kind::ROUTE_REQ,
            kind::ROUTE_RESP,
            "route",
            FaultPhase::Route,
        )?;
        let mut passes = Vec::with_capacity(num_shards);
        for (k, response) in responses.iter().enumerate() {
            let pass = parse_route_resp(response, machines, src_counts[k], num_shards).ok_or(
                MpcError::Protocol {
                    worker: k,
                    detail: "malformed route response",
                },
            )?;
            passes.push(pass);
        }
        let mut tallies = MergedTallies {
            sent: Vec::with_capacity(machines),
            received: vec![0; machines],
            inbox_counts: vec![0; machines],
            first_invalid: None,
        };
        for pass in &passes {
            tallies.sent.extend_from_slice(&pass.sent);
            for (acc, add) in tallies.received.iter_mut().zip(&pass.received) {
                *acc += add;
            }
            for (acc, add) in tallies.inbox_counts.iter_mut().zip(&pass.inbox_counts) {
                *acc += add;
            }
        }
        if tallies.sent.len() != machines {
            return Err(MpcError::Protocol {
                worker: 0,
                detail: "route responses cover the wrong machine count",
            });
        }
        self.check_round_capacity(&tallies.sent, &tallies.received, round)?;
        record_exchange_tallies(self, &tallies);
        // Fill phase: destination shard t receives the t-th segment of every
        // route pass, in ascending source-shard order — the global
        // (source, production) inbox order.
        let mut fill_requests = Vec::with_capacity(num_shards);
        for t in 0..num_shards {
            let base = t * shard_width;
            let len = machines.min(base + shard_width) - base;
            let mut payload = vec![0, 0, base as u64, len as u64, num_shards as u64];
            for pass in &passes {
                payload.extend_from_slice(&pass.segments[t]);
            }
            fill_requests.push(payload);
        }
        drop(passes);
        let responses = self.run_phase(
            fill_requests,
            kind::FILL_REQ,
            kind::FILL_RESP,
            "fill",
            FaultPhase::Fill,
        )?;
        let mut inbox: Vec<Vec<T>> = Vec::with_capacity(machines);
        for (t, response) in responses.iter().enumerate() {
            let base = t * shard_width;
            let len = machines.min(base + shard_width) - base;
            let shard_inboxes =
                decode_fill_resp::<T>(response, len, &tallies.inbox_counts[base..base + len])
                    .ok_or(MpcError::Protocol {
                        worker: t,
                        detail: "malformed fill response",
                    })?;
            inbox.extend(shard_inboxes);
        }
        Ok(inbox)
    }
}

/// Bounded exponential backoff before recovery attempt `attempt`.
fn backoff(attempt: u32) -> Duration {
    Duration::from_millis(10u64 << attempt.min(4))
}

/// The per-phase supervision deadline for a request of `payload_words`
/// words: the configured base plus 1 ms of grace per KiB of payload (a
/// 1 MiB/s processing floor — far below any real pipe + counting-sort
/// throughput, even on one contended core). Scale-regime exchanges that
/// legitimately stream hundreds of megabytes are never declared stuck,
/// while a hung worker on a small exchange still dies after the base
/// deadline.
fn effective_deadline_ms(base_ms: u64, payload_words: usize) -> u64 {
    base_ms.saturating_add(payload_words as u64 / 128)
}

/// Maps a non-crash frame error onto a static protocol detail string.
fn frame_detail(e: FrameError) -> &'static str {
    match e {
        FrameError::BadMagic(_) => "bad frame magic",
        FrameError::BadVersion(_) => "unsupported frame version",
        FrameError::BadReserved(_) => "nonzero reserved header byte",
        FrameError::Oversized { .. } => "oversized frame payload",
        FrameError::BadChecksum => "frame checksum mismatch",
        FrameError::TrailingBytes(_) => "trailing bytes past frame",
        FrameError::Eof | FrameError::Truncated | FrameError::Io(_) => "worker stream ended",
    }
}

/// Parses a `ROUTE_RESP` payload. `None` on any structural violation —
/// including a reported invalid destination, which the parent's own encode
/// scan has already ruled out.
fn parse_route_resp(
    payload: &[u64],
    machines: usize,
    src_count: usize,
    num_shards: usize,
) -> Option<RoutePass> {
    let mut c = WordCursor::new(payload);
    let _vmhwm = c.next()?;
    if c.next()? != u64::MAX {
        return None;
    }
    if c.next_usize()? != src_count {
        return None;
    }
    let sent = to_usizes(c.take(src_count)?)?;
    if c.next_usize()? != machines {
        return None;
    }
    let received = to_usizes(c.take(machines)?)?;
    let inbox_counts = to_usizes(c.take(machines)?)?;
    if c.next_usize()? != num_shards {
        return None;
    }
    let mut segments = Vec::with_capacity(num_shards);
    for _ in 0..num_shards {
        let start = c.pos();
        let count = c.next_usize()?;
        for _ in 0..count {
            let _dst = c.next()?;
            let enc_len = c.next_usize()?;
            c.take(enc_len)?;
        }
        segments.push(payload[start..c.pos()].to_vec());
    }
    if !c.is_empty() {
        return None;
    }
    Some(RoutePass {
        sent,
        received,
        inbox_counts,
        segments,
    })
}

/// Parses a `FILL_RESP` payload into typed per-machine inboxes, enforcing
/// the pre-counted message counts and strict canonical decode of every
/// message.
fn decode_fill_resp<T: WirePayload>(
    payload: &[u64],
    shard_len: usize,
    expected_counts: &[usize],
) -> Option<Vec<Vec<T>>> {
    let mut c = WordCursor::new(payload);
    let _vmhwm = c.next()?;
    if c.next_usize()? != shard_len {
        return None;
    }
    let mut inboxes = Vec::with_capacity(shard_len);
    for &expected in expected_counts {
        let count = c.next_usize()?;
        if count != expected {
            return None;
        }
        let mut inbox = Vec::with_capacity(count);
        for _ in 0..count {
            let enc_len = c.next_usize()?;
            let mut enc = c.take(enc_len)?;
            let value = T::decode_words(&mut enc)?;
            if !enc.is_empty() {
                return None;
            }
            inbox.push(value);
        }
        inboxes.push(inbox);
    }
    if !c.is_empty() {
        return None;
    }
    Some(inboxes)
}

fn to_usizes(words: &[u64]) -> Option<Vec<usize>> {
    words.iter().map(|&w| usize::try_from(w).ok()).collect()
}

impl ExecutionBackend for ProcessBackend {
    fn from_config(config: ClusterConfig) -> Self {
        ProcessBackend::new(config)
    }

    fn config(&self) -> &ClusterConfig {
        &self.config
    }

    fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    fn into_metrics(self) -> Metrics {
        // `self` still drops (killing the workers); Metrics is Clone-cheap
        // relative to process teardown.
        self.metrics.clone()
    }

    fn exchange<T: WirePayload + Send + Sync>(
        &mut self,
        outbox: Vec<Vec<(usize, T)>>,
    ) -> Result<Vec<Vec<T>>> {
        let machines = self.config.num_machines;
        if outbox.len() != machines {
            return Err(MpcError::WrongClusterWidth {
                expected: machines,
                found: outbox.len(),
            });
        }
        let round = self.metrics.rounds + 1;
        self.exchanges += 1;
        let shard_width = machines.div_ceil(self.workers);
        let num_shards = machines.div_ceil(shard_width);
        debug_assert_eq!(num_shards, self.workers, "stored count must be effective");
        if !self.ensure_workers()? {
            // Degraded: the in-process sharded reference path, same
            // partition, bit-identical observables. Every exchange goes
            // through here once degraded — no respawn attempts per round.
            let mut outbox = outbox;
            return exchange_inline_on(self, &mut outbox, round, shard_width, num_shards);
        }
        self.exchange_process(outbox, round, shard_width, num_shards)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SequentialBackend;

    fn config(machines: usize, memory: usize) -> ClusterConfig {
        ClusterConfig::new(machines, memory)
    }

    #[test]
    fn worker_count_normalizes_like_shards() {
        let backend = ProcessBackend::new(config(10, 64)).with_workers(7);
        assert_eq!(backend.workers(), 5);
        assert_eq!(
            ProcessBackend::new(config(3, 64))
                .with_workers(100)
                .workers(),
            3
        );
        assert_eq!(
            ProcessBackend::new(config(3, 64)).with_workers(0).workers(),
            1
        );
    }

    #[test]
    fn default_workers_side_channel() {
        let _guard = TEST_DEFAULTS_LOCK
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        ProcessBackend::set_default_workers(Some(2));
        let backend = ProcessBackend::new(config(8, 64));
        ProcessBackend::set_default_workers(None);
        assert_eq!(backend.workers(), 2);
    }

    #[test]
    fn degrades_when_binary_missing_and_matches_sequential() {
        let outbox: Vec<Vec<(usize, u64)>> =
            vec![vec![(1, 10), (3, 11)], vec![(0, 20)], vec![], vec![(3, 30)]];
        let mut seq = SequentialBackend::new(config(4, 64));
        let expected = ExecutionBackend::exchange(&mut seq, outbox.clone()).unwrap();
        let mut backend = ProcessBackend::new(config(4, 64))
            .with_workers(2)
            .with_worker_bin("/nonexistent/dgo-worker");
        let inbox = backend.exchange(outbox).unwrap();
        assert!(backend.is_degraded());
        assert_eq!(inbox, expected);
        assert_eq!(backend.metrics(), seq.metrics());
    }

    #[test]
    fn degraded_unknown_machine_parity() {
        let outbox: Vec<Vec<(usize, u64)>> = vec![vec![(9, 1)], vec![]];
        let mut backend =
            ProcessBackend::new(config(2, 64)).with_worker_bin("/nonexistent/dgo-worker");
        assert_eq!(
            backend.exchange(outbox).unwrap_err(),
            MpcError::UnknownMachine {
                machine: 9,
                num_machines: 2
            }
        );
        assert_eq!(backend.metrics().rounds, 0);
    }

    #[test]
    fn route_resp_parse_rejects_corruption() {
        // A structurally valid response for 1 machine, 1 source, 1 shard.
        let good = vec![
            0,        // vmhwm
            u64::MAX, // no invalid destination
            1,
            1, // src_count, sent
            1,
            1, // machines, received
            1, // inbox_counts
            1, // segments
            1,
            0,
            1,
            42, // segment: one msg to machine 0, enc [42]
        ];
        assert!(parse_route_resp(&good, 1, 1, 1).is_some());
        assert!(parse_route_resp(&good, 2, 1, 1).is_none(), "machine count");
        assert!(parse_route_resp(&good, 1, 2, 1).is_none(), "src count");
        assert!(parse_route_resp(&good, 1, 1, 2).is_none(), "shard count");
        assert!(parse_route_resp(&good[..good.len() - 1], 1, 1, 1).is_none());
        let mut trailing = good.clone();
        trailing.push(7);
        assert!(parse_route_resp(&trailing, 1, 1, 1).is_none());
        let mut invalid = good;
        invalid[1] = 5; // worker claims an invalid destination the parent never sent
        assert!(parse_route_resp(&invalid, 1, 1, 1).is_none());
    }

    #[test]
    fn fill_resp_decode_is_strict() {
        // One machine, one u64 message.
        let good = vec![0, 1, 1, 1, 42];
        assert_eq!(
            decode_fill_resp::<u64>(&good, 1, &[1]),
            Some(vec![vec![42u64]])
        );
        assert!(decode_fill_resp::<u64>(&good, 1, &[2]).is_none(), "count");
        assert!(decode_fill_resp::<u64>(&good[..4], 1, &[1]).is_none());
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(decode_fill_resp::<u64>(&trailing, 1, &[1]).is_none());
        // Non-canonical: enc longer than the type consumes.
        let overlong = vec![0, 1, 1, 2, 42, 43];
        assert!(decode_fill_resp::<u64>(&overlong, 1, &[1]).is_none());
    }

    #[test]
    fn fault_arming_spends_the_budget() {
        let mut backend = ProcessBackend::new(config(4, 64))
            .with_workers(2)
            .with_fault_plan("kill@2:w1*2,delay@1:w0:50:fill");
        backend.exchanges = 1;
        assert_eq!(backend.arm_fault(0, FaultPhase::Route), (0, 0), "fill-only");
        assert_eq!(backend.arm_fault(0, FaultPhase::Fill), (2, 50));
        assert_eq!(backend.arm_fault(0, FaultPhase::Fill), (0, 0), "spent");
        backend.exchanges = 2;
        assert_eq!(backend.arm_fault(1, FaultPhase::Route), (1, 0));
        assert_eq!(backend.arm_fault(1, FaultPhase::Fill), (1, 0), "count 2");
        assert_eq!(backend.arm_fault(1, FaultPhase::Route), (0, 0), "spent");
    }

    #[test]
    fn backoff_is_bounded() {
        assert_eq!(backoff(0), Duration::from_millis(10));
        assert_eq!(backoff(3), Duration::from_millis(80));
        assert_eq!(backoff(60), Duration::from_millis(160), "shift capped");
    }

    #[test]
    fn deadline_scales_with_payload() {
        // Small requests keep the base deadline exactly.
        assert_eq!(effective_deadline_ms(100, 0), 100);
        assert_eq!(effective_deadline_ms(100, 127), 100);
        // 1 ms of grace per KiB (128 words) of payload.
        assert_eq!(effective_deadline_ms(100, 128), 101);
        assert_eq!(effective_deadline_ms(100, 128 * 1024), 1124);
        // Saturates instead of wrapping.
        assert_eq!(effective_deadline_ms(u64::MAX, usize::MAX), u64::MAX);
    }
}
