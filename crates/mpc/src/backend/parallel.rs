//! The parallel execution backend.
//!
//! [`ParallelBackend`] meters exactly like [`SequentialBackend`] but routes
//! exchanges through flat, pre-counted per-destination buffers (counting-sort
//! routing) and fans the per-machine metering work — word counting,
//! destination validation, per-destination tallies — out across threads with
//! rayon's fork-join primitives:
//!
//! 1. **Parallel metering pass**: sources are split into contiguous chunks,
//!    one task per thread; each task tallies per-source sent words,
//!    per-destination received words, and per-destination message counts for
//!    its chunk. Partials merge left-to-right in chunk order, so the merged
//!    tallies — and the *first* invalid destination in `(source, production)`
//!    order — are identical to a sequential scan.
//! 2. **Counting-sort routing**: every destination buffer is allocated once
//!    at its exact final size from the pre-counted tallies, then filled in a
//!    single deterministic `(source, production)`-order pass — no per-message
//!    `Vec` growth reallocations.
//!
//! The result is bit-identical to the sequential backend (same inboxes, same
//! errors, same metrics) — the equivalence is property-tested. The tallying
//! pass fans out across all cores; the routing fill stays a single
//! deterministic pass (pre-sized, so it is one move per message with no
//! reallocation), which bounds the end-to-end speedup on exchange-dominated
//! workloads — parallelizing the fill over destinations from the per-chunk
//! counts is the natural next step. Small exchanges fall back to an inline
//! single-chunk pass so thread fan-out never costs more than it saves.
//!
//! [`SequentialBackend`]: crate::SequentialBackend

use crate::backend::ExecutionBackend;
use crate::config::ClusterConfig;
use crate::error::{MpcError, Result};
use crate::metrics::Metrics;
use crate::word::{WirePayload, WordSized};

use crate::tuning::exchange_inline_threshold;

/// A simulated MPC cluster with rayon-parallel metering and counting-sort
/// message routing. Observationally identical to
/// [`SequentialBackend`](crate::SequentialBackend).
///
/// # Examples
///
/// ```
/// use dgo_mpc::{ClusterConfig, ExecutionBackend, ParallelBackend};
///
/// let mut cluster = ParallelBackend::new(ClusterConfig::new(4, 1024));
/// let mut outbox: Vec<Vec<(usize, u64)>> = vec![vec![]; 4];
/// outbox[0].push((3, 99));
/// let inbox = cluster.exchange(outbox)?;
/// assert_eq!(inbox[3], vec![99]);
/// assert_eq!(cluster.metrics().rounds, 1);
/// # Ok::<(), dgo_mpc::MpcError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ParallelBackend {
    config: ClusterConfig,
    metrics: Metrics,
    threads: usize,
}

/// Merged output of the parallel metering pass. Chunk partials concatenate
/// (`sent`) or sum (`received`, `counts`) in chunk order, so the merge of any
/// chunking equals the sequential scan.
struct MeterPass {
    /// Words sent per source machine, in source order.
    sent: Vec<usize>,
    /// Words received per destination machine.
    received: Vec<usize>,
    /// Messages (not words) per destination machine, for buffer pre-counting.
    counts: Vec<usize>,
    /// First out-of-range destination in `(source, production)` order.
    first_invalid: Option<usize>,
}

impl ParallelBackend {
    /// Creates a backend using all available parallelism.
    pub fn new(config: ClusterConfig) -> Self {
        ParallelBackend {
            config,
            metrics: Metrics::new(),
            threads: rayon::current_num_threads(),
        }
    }

    /// Overrides the thread fan-out (1 = always inline). Results are
    /// identical for every thread count; only wall-clock changes.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The metering pass: per-source sent words, per-destination received
    /// words and message counts, and the first invalid destination.
    fn meter<T: WordSized + Send + Sync>(
        &self,
        outbox: &[Vec<(usize, T)>],
        threads: usize,
    ) -> MeterPass {
        let machines = self.config.num_machines;
        rayon::chunk_map_reduce(
            outbox,
            threads,
            |_, chunk| {
                let mut pass = MeterPass {
                    sent: Vec::with_capacity(chunk.len()),
                    received: vec![0usize; machines],
                    counts: vec![0usize; machines],
                    first_invalid: None,
                };
                for msgs in chunk {
                    let mut src_sent = 0usize;
                    for (dst, payload) in msgs {
                        if *dst >= machines {
                            if pass.first_invalid.is_none() {
                                pass.first_invalid = Some(*dst);
                            }
                            continue;
                        }
                        let words = payload.words();
                        src_sent += words;
                        pass.received[*dst] += words;
                        pass.counts[*dst] += 1;
                    }
                    pass.sent.push(src_sent);
                }
                pass
            },
            |mut a, b| {
                a.sent.extend(b.sent);
                for (acc, add) in a.received.iter_mut().zip(&b.received) {
                    *acc += add;
                }
                for (acc, add) in a.counts.iter_mut().zip(&b.counts) {
                    *acc += add;
                }
                if a.first_invalid.is_none() {
                    a.first_invalid = b.first_invalid;
                }
                a
            },
        )
        .unwrap_or(MeterPass {
            sent: Vec::new(),
            received: vec![0; machines],
            counts: vec![0; machines],
            first_invalid: None,
        })
    }
}

impl ExecutionBackend for ParallelBackend {
    fn from_config(config: ClusterConfig) -> Self {
        ParallelBackend::new(config)
    }

    fn config(&self) -> &ClusterConfig {
        &self.config
    }

    fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    fn into_metrics(self) -> Metrics {
        self.metrics
    }

    fn exchange<T: WirePayload + Send + Sync>(
        &mut self,
        outbox: Vec<Vec<(usize, T)>>,
    ) -> Result<Vec<Vec<T>>> {
        let machines = self.config.num_machines;
        if outbox.len() != machines {
            return Err(MpcError::WrongClusterWidth {
                expected: machines,
                found: outbox.len(),
            });
        }
        let round = self.metrics.rounds + 1;
        let total_messages: usize = outbox.iter().map(Vec::len).sum();
        let threads = if total_messages < exchange_inline_threshold() {
            1
        } else {
            self.threads
        };
        let pass = self.meter(&outbox, threads);
        if let Some(machine) = pass.first_invalid {
            return Err(MpcError::UnknownMachine {
                machine,
                num_machines: machines,
            });
        }
        self.check_round_capacity(&pass.sent, &pass.received, round)?;
        let total: usize = pass.sent.iter().sum();
        let max_sent = pass.sent.iter().copied().max().unwrap_or(0);
        let max_received = pass.received.iter().copied().max().unwrap_or(0);
        self.metrics.record_round(total, max_sent, max_received);
        // Counting-sort routing: each destination buffer is pre-sized from
        // the metering pass, then filled in one (source, production)-order
        // pass — deterministic inbox order with zero growth reallocations.
        let mut inbox: Vec<Vec<T>> = pass
            .counts
            .iter()
            .map(|&count| Vec::with_capacity(count))
            .collect();
        for msgs in outbox {
            for (dst, payload) in msgs {
                inbox[dst].push(payload);
            }
        }
        Ok(inbox)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SequentialBackend;

    /// Deterministic pseudo-random outbox generator (SplitMix64; the crate
    /// deliberately has no rand dependency).
    fn random_outbox(machines: usize, per_machine: usize, mut seed: u64) -> Vec<Vec<(usize, u64)>> {
        let mut next = move || {
            seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = seed;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        (0..machines)
            .map(|_| {
                (0..per_machine)
                    .map(|_| ((next() as usize) % machines, next() % 1000))
                    .collect()
            })
            .collect()
    }

    type ExchangeOutcome = (
        Result<Vec<Vec<u64>>>,
        Result<Vec<Vec<u64>>>,
        Metrics,
        Metrics,
    );

    fn run_both(config: ClusterConfig, outbox: Vec<Vec<(usize, u64)>>) -> ExchangeOutcome {
        let mut seq = SequentialBackend::new(config);
        let mut par = ParallelBackend::new(config).with_threads(4);
        let seq_out = ExecutionBackend::exchange(&mut seq, outbox.clone());
        let par_out = par.exchange(outbox);
        (seq_out, par_out, seq.into_metrics(), par.into_metrics())
    }

    #[test]
    fn matches_sequential_on_random_traffic() {
        for seed in 0..8 {
            let outbox = random_outbox(16, 50, seed);
            let (seq_out, par_out, seq_metrics, par_metrics) =
                run_both(ClusterConfig::new(16, 4096), outbox);
            assert_eq!(seq_out.unwrap(), par_out.unwrap(), "seed {seed}");
            assert_eq!(seq_metrics, par_metrics, "seed {seed}");
        }
    }

    #[test]
    fn large_exchange_crosses_parallel_threshold() {
        // 64 machines x 128 messages = 8192 > the inline cutoff: the
        // chunked parallel path must still match sequential bit-for-bit.
        let outbox = random_outbox(64, 128, 42);
        assert!(outbox.iter().map(Vec::len).sum::<usize>() > exchange_inline_threshold());
        let (seq_out, par_out, seq_metrics, par_metrics) =
            run_both(ClusterConfig::new(64, 1 << 20), outbox);
        assert_eq!(seq_out.unwrap(), par_out.unwrap());
        assert_eq!(seq_metrics, par_metrics);
    }

    #[test]
    fn inbox_order_is_source_then_production() {
        let mut par = ParallelBackend::new(ClusterConfig::new(3, 64));
        let outbox: Vec<Vec<(usize, u64)>> = vec![
            vec![(2, 10), (2, 11)],
            vec![(2, 20)],
            vec![(2, 30), (2, 31)],
        ];
        let inbox = par.exchange(outbox).unwrap();
        assert_eq!(inbox[2], vec![10, 11, 20, 30, 31]);
        assert!(inbox[0].is_empty() && inbox[1].is_empty());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let outbox = random_outbox(32, 300, 7);
        let mut reference: Option<(Vec<Vec<u64>>, Metrics)> = None;
        for threads in [1, 2, 3, 8, 19] {
            let mut par =
                ParallelBackend::new(ClusterConfig::new(32, 1 << 20)).with_threads(threads);
            let inbox = par.exchange(outbox.clone()).unwrap();
            let metrics = par.into_metrics();
            match &reference {
                None => reference = Some((inbox, metrics)),
                Some((ref_inbox, ref_metrics)) => {
                    assert_eq!(&inbox, ref_inbox, "threads = {threads}");
                    assert_eq!(&metrics, ref_metrics, "threads = {threads}");
                }
            }
        }
    }

    #[test]
    fn error_parity_unknown_machine() {
        let outbox: Vec<Vec<(usize, u64)>> = vec![vec![(0, 1)], vec![(9, 2), (17, 3)]];
        let (seq_out, par_out, _, _) = run_both(ClusterConfig::new(2, 64), outbox);
        // Both report the first out-of-range destination in scan order.
        assert_eq!(seq_out.unwrap_err(), par_out.unwrap_err());
    }

    #[test]
    fn error_parity_capacity() {
        let outbox: Vec<Vec<(usize, u64)>> = vec![(0..9).map(|i| (1usize, i)).collect(), vec![]];
        let (seq_out, par_out, _, _) = run_both(ClusterConfig::new(2, 4), outbox);
        assert_eq!(seq_out.unwrap_err(), par_out.unwrap_err());
    }

    #[test]
    fn relaxed_violations_match() {
        let outbox: Vec<Vec<(usize, u64)>> = vec![(0..9).map(|i| (1usize, i)).collect(), vec![]];
        let (seq_out, par_out, seq_metrics, par_metrics) =
            run_both(ClusterConfig::new(2, 4).relaxed(), outbox);
        assert_eq!(seq_out.unwrap(), par_out.unwrap());
        assert_eq!(seq_metrics.violations, par_metrics.violations);
        assert_eq!(seq_metrics, par_metrics);
    }

    #[test]
    fn wrong_width_rejected() {
        let mut par = ParallelBackend::new(ClusterConfig::new(3, 64));
        let outbox: Vec<Vec<(usize, u64)>> = vec![vec![]];
        assert!(matches!(
            par.exchange(outbox),
            Err(MpcError::WrongClusterWidth {
                expected: 3,
                found: 1
            })
        ));
    }

    #[test]
    fn shared_metering_defaults_apply() {
        // charge_rounds / checkpoint_residency come from the trait defaults:
        // remainder spreading and strict checks behave exactly as sequential.
        let mut par = ParallelBackend::new(ClusterConfig::new(2, 64));
        par.charge_rounds(3, 13, 8).unwrap();
        assert_eq!(par.metrics().total_comm_words, 13);
        par.checkpoint_residency(&[4, 64]).unwrap();
        assert_eq!(par.metrics().peak_machine_memory, 64);
        assert!(par.checkpoint_residency(&[65, 0]).is_err());
    }
}
