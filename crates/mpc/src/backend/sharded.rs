//! The shard-partitioned execution backend.
//!
//! [`ShardedBackend`] partitions the `M` simulated machines into `K`
//! contiguous *shards*; each shard owns the slice of per-machine inboxes for
//! its machine range. Where [`ParallelBackend`] parallelizes the metering of
//! one big routing table, the sharded backend partitions the routing table
//! itself — the shape a distributed deployment takes, where each shard is a
//! host owning a machine range and cross-shard traffic moves as batched
//! transfers rather than per-message sends. `exchange` has two phases:
//!
//! 1. **Per-shard counting-sort routing**: each shard scans the outboxes of
//!    *its own* machines, tallies per-source sent words, per-destination
//!    received words, and per-destination message counts, then
//!    counting-sorts its messages into `K` pre-counted contiguous segment
//!    buffers — one per destination shard, each in `(source, production)`
//!    order. The shard-local segment (`s → s`) is routed by the same pass;
//!    no other shard ever touches it.
//! 2. **Batched cross-shard handoff**: every ordered shard pair `(s, t)` has
//!    exactly one pre-counted contiguous buffer, handed to the destination
//!    shard whole. Shard `t` drains the segments of source shards `0, 1, …,
//!    K−1` in order into its own pre-sized inbox slice, so cross-shard
//!    traffic is metered and moved as `K²` batches rather than per-message —
//!    and the global `(source, production)` inbox order falls out of the
//!    ascending source-shard drain, because shards are contiguous ascending
//!    machine ranges.
//!
//! Above the inline cutoff
//! ([`tuning::exchange_inline_threshold`](crate::tuning)), the phases run as
//! a **software pipeline over source shards** on the shared worker pool:
//! while source shard `s`'s segments drain into the inboxes (one task per
//! destination shard — destinations own disjoint inbox ranges), shard `s+1`
//! is routed concurrently. A per-iteration fork-join barrier keeps the
//! drains in ascending source order, so the pipeline only overlaps *when*
//! work happens, never what it produces.
//!
//! Capacity and residency checks run through the shared
//! [`ExecutionBackend`] defaults on the merged per-machine tallies, so
//! errors, violations, and [`Metrics`] are **bit-identical to
//! [`SequentialBackend`] at any shard count and any thread budget** —
//! property-tested in the workspace's `backend_equivalence` suite across
//! shard counts. Both `K` and the thread budget are purely wall-clock knobs.
//!
//! The shard count defaults to the host's available parallelism and can be
//! set per backend ([`with_shards`](ShardedBackend::with_shards)) or
//! process-wide for configuration surfaces
//! ([`set_default_shards`](ShardedBackend::set_default_shards) — this is what
//! `--backend sharded:K` sets, since algorithm entry points construct their
//! backends internally through
//! [`from_config`](crate::ExecutionBackend::from_config)). The pipeline's
//! tasks share the persistent worker pool with the instance and vertex-stage
//! tiers the same way [`ParallelBackend`] does: small exchanges run inline,
//! and [`with_threads`](ShardedBackend::with_threads)`(1)` forces the inline
//! path.
//!
//! [`ParallelBackend`]: crate::ParallelBackend
//! [`SequentialBackend`]: crate::SequentialBackend

use crate::backend::ExecutionBackend;
use crate::config::ClusterConfig;
use crate::error::{MpcError, Result};
use crate::metrics::Metrics;
use crate::tuning::exchange_inline_threshold;
use crate::word::{WirePayload, WordSized};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide default shard count consulted by [`ShardedBackend::new`]
/// (`0` = auto: the host's available parallelism). Configuration surfaces
/// (`--backend sharded:K`) set it through
/// [`ShardedBackend::set_default_shards`]; because results and metrics are
/// identical at any shard count, the side channel is purely a wall-clock /
/// batching knob.
static DEFAULT_SHARDS: AtomicUsize = AtomicUsize::new(0);

/// A simulated MPC cluster partitioned into `K` contiguous machine shards,
/// with per-shard counting-sort routing and batched cross-shard handoff.
/// Observationally identical to [`SequentialBackend`](crate::SequentialBackend)
/// at any shard count.
///
/// # Examples
///
/// ```
/// use dgo_mpc::{ClusterConfig, ExecutionBackend, ShardedBackend};
///
/// let mut cluster = ShardedBackend::new(ClusterConfig::new(4, 1024)).with_shards(2);
/// let mut outbox: Vec<Vec<(usize, u64)>> = vec![vec![]; 4];
/// outbox[0].push((3, 99)); // crosses from shard 0 into shard 1
/// let inbox = cluster.exchange(outbox)?;
/// assert_eq!(inbox[3], vec![99]);
/// assert_eq!(cluster.metrics().rounds, 1);
/// # Ok::<(), dgo_mpc::MpcError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ShardedBackend {
    config: ClusterConfig,
    metrics: Metrics,
    shards: usize,
    threads: usize,
}

/// Phase-1 output of one shard: the metering tallies for its machine range
/// plus its `K` ordered outgoing segment buffers (one per destination shard,
/// pre-counted, `(source, production)` order).
pub(crate) struct ShardPass<T> {
    /// Words sent per source machine of this shard, in source order.
    pub(crate) sent: Vec<usize>,
    /// Words received per destination machine (full cluster width).
    pub(crate) received: Vec<usize>,
    /// Messages (not words) per destination machine, for inbox pre-sizing.
    pub(crate) inbox_counts: Vec<usize>,
    /// First out-of-range destination in this shard's scan order.
    pub(crate) first_invalid: Option<usize>,
    /// Outgoing `(destination, payload)` segments, one per destination
    /// shard. Empty when the shard saw an invalid destination (the exchange
    /// aborts, so the routing work is skipped).
    pub(crate) segments: Vec<Vec<(usize, T)>>,
}

/// Phase 1 for one shard: meter the shard's outboxes, then counting-sort the
/// messages into per-destination-shard segments at exact capacity.
pub(crate) fn route_one_shard<T: WordSized>(
    sources: &mut [Vec<(usize, T)>],
    machines: usize,
    shard_width: usize,
    num_shards: usize,
) -> ShardPass<T> {
    let mut sent = Vec::with_capacity(sources.len());
    let mut received = vec![0usize; machines];
    let mut inbox_counts = vec![0usize; machines];
    let mut first_invalid = None;
    for msgs in sources.iter() {
        let mut src_sent = 0usize;
        for (dst, payload) in msgs {
            if *dst >= machines {
                if first_invalid.is_none() {
                    first_invalid = Some(*dst);
                }
                continue;
            }
            let words = payload.words();
            src_sent += words;
            received[*dst] += words;
            inbox_counts[*dst] += 1;
        }
        sent.push(src_sent);
    }
    let segments = if first_invalid.is_some() {
        // The exchange aborts with UnknownMachine; nothing is delivered.
        Vec::new()
    } else {
        let mut capacities = vec![0usize; num_shards];
        for (dst, &count) in inbox_counts.iter().enumerate() {
            capacities[dst / shard_width] += count;
        }
        let mut segments: Vec<Vec<(usize, T)>> = capacities
            .iter()
            .map(|&cap| Vec::with_capacity(cap))
            .collect();
        for msgs in sources.iter_mut() {
            for (dst, payload) in msgs.drain(..) {
                segments[dst / shard_width].push((dst, payload));
            }
        }
        segments
    };
    ShardPass {
        sent,
        received,
        inbox_counts,
        first_invalid,
        segments,
    }
}

/// Phase 2 for one destination shard: drain the per-source-shard segments in
/// ascending shard order into the shard's pre-sized inbox slice. Ascending
/// contiguous source shards make the per-destination order the global
/// `(source, production)` order.
fn fill_one_shard<T>(base: usize, inboxes: &mut [Vec<T>], segments: &mut [Vec<(usize, T)>]) {
    for segment in segments.iter_mut() {
        for (dst, payload) in segment.drain(..) {
            inboxes[dst - base].push(payload);
        }
    }
}

/// Merged per-machine tallies of a sequence of shard passes, folded in shard
/// order — identical to a sequential scan, because shards are contiguous
/// ascending source ranges.
pub(crate) struct MergedTallies {
    /// Words sent per source machine.
    pub(crate) sent: Vec<usize>,
    /// Words received per destination machine.
    pub(crate) received: Vec<usize>,
    /// Messages per destination machine (inbox pre-sizing).
    pub(crate) inbox_counts: Vec<usize>,
    /// Lowest shard's first out-of-range destination, if any.
    pub(crate) first_invalid: Option<usize>,
}

pub(crate) fn merge_tallies<T>(passes: &[ShardPass<T>], machines: usize) -> MergedTallies {
    let mut sent = Vec::with_capacity(machines);
    let mut received = vec![0usize; machines];
    let mut inbox_counts = vec![0usize; machines];
    let mut first_invalid = None;
    for pass in passes {
        sent.extend_from_slice(&pass.sent);
        for (acc, add) in received.iter_mut().zip(&pass.received) {
            *acc += add;
        }
        for (acc, add) in inbox_counts.iter_mut().zip(&pass.inbox_counts) {
            *acc += add;
        }
        if first_invalid.is_none() {
            first_invalid = pass.first_invalid;
        }
    }
    MergedTallies {
        sent,
        received,
        inbox_counts,
        first_invalid,
    }
}

impl ShardedBackend {
    /// Creates a backend with the process default shard count (set by
    /// [`set_default_shards`](ShardedBackend::set_default_shards), else the
    /// host's available parallelism) and all available threads. The shard
    /// count is normalized as in [`with_shards`](ShardedBackend::with_shards).
    pub fn new(config: ClusterConfig) -> Self {
        let shards = Self::default_shards().unwrap_or_else(rayon::current_num_threads);
        ShardedBackend {
            shards: Self::effective_shards(shards, config.num_machines),
            config,
            metrics: Metrics::new(),
            threads: rayon::current_num_threads(),
        }
    }

    /// The shard count the contiguous equal-width partition actually
    /// produces for a request of `shards` over `machines`: with width
    /// `⌈M/K⌉`, the last shards can be absorbed by the rounding (e.g. 10
    /// machines at K = 7 → width 2 → 5 shards), so the stored — and
    /// [`shards`](ShardedBackend::shards)-reported — count is the effective
    /// one, keeping the observability contract honest. Shared with the
    /// multi-process backend, whose worker count normalizes the same way.
    pub(crate) fn effective_shards(shards: usize, machines: usize) -> usize {
        let width = machines.div_ceil(shards.clamp(1, machines));
        machines.div_ceil(width)
    }

    /// Overrides the shard count `K`, normalized to the count the
    /// contiguous `⌈M/K⌉`-wide partition actually yields (at most `M`; a
    /// non-divisible `M` can absorb trailing shards —
    /// [`shards`](ShardedBackend::shards) reports the effective count).
    /// Results and metrics are identical for every shard count; only the
    /// routing batch structure — and therefore wall-clock — changes.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = Self::effective_shards(shards, self.config.num_machines);
        self
    }

    /// Overrides the exchange's host-parallelism knob: `1` forces the
    /// strictly inline two-phase path, anything larger enables the pipelined
    /// path (whose tasks run on the shared worker pool). Results are
    /// identical for every setting.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The shard count `K` this backend routes with.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Sets the process-wide default shard count used by backends
    /// constructed without an explicit
    /// [`with_shards`](ShardedBackend::with_shards) — the channel through
    /// which `--backend sharded:K` reaches entry points that construct
    /// backends internally via
    /// [`from_config`](crate::ExecutionBackend::from_config). `None` restores
    /// auto (the host's available parallelism). Safe to leave set: the shard
    /// count never affects results or metrics.
    pub fn set_default_shards(shards: Option<usize>) {
        DEFAULT_SHARDS.store(shards.unwrap_or(0), Ordering::Relaxed);
    }

    /// The process-wide default shard count, if one has been set.
    pub fn default_shards() -> Option<usize> {
        match DEFAULT_SHARDS.load(Ordering::Relaxed) {
            0 => None,
            shards => Some(shards),
        }
    }

    /// The inline reference exchange: route every shard, merge the tallies,
    /// check, then fill pre-sized inboxes shard by shard — strictly
    /// two-phase, all on the calling thread. This is the behavior the
    /// pipelined path must reproduce bit-for-bit. Shared with the
    /// multi-process backend's in-process degradation path via
    /// [`exchange_inline_on`].
    fn exchange_inline<T: WordSized + Send>(
        &mut self,
        outbox: &mut [Vec<(usize, T)>],
        round: u64,
        shard_width: usize,
        num_shards: usize,
    ) -> Result<Vec<Vec<T>>> {
        exchange_inline_on(self, outbox, round, shard_width, num_shards)
    }

    /// The pipelined exchange: a software pipeline over source shards that
    /// overlaps phase 1 and phase 2 — while source shard `s`'s segments
    /// drain into the inboxes (one task per destination shard; destination
    /// shards own disjoint inbox ranges), shard `s+1` is being routed
    /// concurrently. The per-iteration fork-join barrier means every source
    /// `s` finishes draining before source `s+1` starts, so each destination
    /// still receives its segments in ascending source-shard order — the
    /// global `(source, production)` inbox order of the reference path.
    ///
    /// Tallies merge in shard order after the loop, and capacity checks and
    /// metrics recording run on the merged totals exactly as in
    /// [`exchange_inline`](Self::exchange_inline) — an invalid destination
    /// aborts with the lowest shard's error before its drain, and the
    /// speculatively filled inboxes are discarded on every error path, so
    /// results, errors, and metrics are bit-identical. Inbox capacity is
    /// reserved incrementally from each pass's exact per-machine counts.
    fn exchange_pipelined<T: WordSized + Send + Sync>(
        &mut self,
        outbox: &mut [Vec<(usize, T)>],
        round: u64,
        shard_width: usize,
        num_shards: usize,
    ) -> Result<Vec<Vec<T>>> {
        let machines = self.config.num_machines;
        let mut inbox: Vec<Vec<T>> = (0..machines).map(|_| Vec::new()).collect();
        let mut remaining = outbox.chunks_mut(shard_width);
        let first = remaining
            .next()
            .expect("at least one shard for a non-empty cluster");
        let mut current = route_one_shard(first, machines, shard_width, num_shards);
        let mut done: Vec<ShardPass<T>> = Vec::with_capacity(num_shards);
        loop {
            if let Some(machine) = current.first_invalid {
                // Routing runs in ascending shard order, so the first
                // invalid seen is the lowest shard's — the error the
                // sequential scan reports. Partially filled inboxes are
                // dropped; no round is recorded.
                return Err(MpcError::UnknownMachine {
                    machine,
                    num_machines: machines,
                });
            }
            let next_slice = remaining.next();
            let next = rayon::scope(|scope| {
                let route_next = next_slice.map(|shard| {
                    scope.spawn(move || route_one_shard(shard, machines, shard_width, num_shards))
                });
                let ShardPass {
                    segments,
                    inbox_counts,
                    ..
                } = &mut current;
                let counts: &[usize] = inbox_counts;
                for ((dst_shard, inboxes), segment) in inbox
                    .chunks_mut(shard_width)
                    .enumerate()
                    .zip(segments.iter_mut())
                {
                    if segment.is_empty() {
                        continue;
                    }
                    scope.spawn(move || {
                        let base = dst_shard * shard_width;
                        for (m, slot) in inboxes.iter_mut().enumerate() {
                            slot.reserve(counts[base + m]);
                        }
                        for (dst, payload) in segment.drain(..) {
                            inboxes[dst - base].push(payload);
                        }
                    });
                }
                route_next.map(|handle| match handle.join() {
                    Ok(pass) => pass,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
            });
            done.push(current);
            match next {
                Some(pass) => current = pass,
                None => break,
            }
        }
        let tallies = merge_tallies(&done, machines);
        debug_assert!(tallies.first_invalid.is_none(), "checked per iteration");
        self.check_round_capacity(&tallies.sent, &tallies.received, round)?;
        self.record_exchange(&tallies);
        debug_assert!(inbox
            .iter()
            .zip(&tallies.inbox_counts)
            .all(|(slot, &count)| slot.len() == count));
        Ok(inbox)
    }

    /// Records the merged exchange tallies as one round of [`Metrics`] —
    /// the single metrics-mutation point both exchange paths share.
    fn record_exchange(&mut self, tallies: &MergedTallies) {
        record_exchange_tallies(self, tallies);
    }
}

/// Records merged exchange tallies as one round of [`Metrics`] on any
/// backend — the single metrics-mutation rule every shard-partitioned
/// exchange path (inline, pipelined, multi-process) shares.
pub(crate) fn record_exchange_tallies<B: ExecutionBackend>(
    backend: &mut B,
    tallies: &MergedTallies,
) {
    let total: usize = tallies.sent.iter().sum();
    let max_sent = tallies.sent.iter().copied().max().unwrap_or(0);
    let max_received = tallies.received.iter().copied().max().unwrap_or(0);
    backend
        .metrics_mut()
        .record_round(total, max_sent, max_received);
}

/// The strictly two-phase shard-partitioned exchange, generic over the
/// metering backend: route every shard, merge the tallies in shard order,
/// run the shared capacity check, record the round, then drain pre-sized
/// inboxes destination shard by destination shard in ascending source-shard
/// order. Bit-identical to [`SequentialBackend`](crate::SequentialBackend)
/// for any partition — this is both [`ShardedBackend`]'s inline path and the
/// multi-process backend's in-process degradation path.
pub(crate) fn exchange_inline_on<B: ExecutionBackend, T: WordSized>(
    backend: &mut B,
    outbox: &mut [Vec<(usize, T)>],
    round: u64,
    shard_width: usize,
    num_shards: usize,
) -> Result<Vec<Vec<T>>> {
    let machines = backend.config().num_machines;
    let mut passes: Vec<ShardPass<T>> = outbox
        .chunks_mut(shard_width)
        .map(|shard| route_one_shard(shard, machines, shard_width, num_shards))
        .collect();
    let tallies = merge_tallies(&passes, machines);
    if let Some(machine) = tallies.first_invalid {
        return Err(MpcError::UnknownMachine {
            machine,
            num_machines: machines,
        });
    }
    backend.check_round_capacity(&tallies.sent, &tallies.received, round)?;
    record_exchange_tallies(backend, &tallies);
    let mut inbox: Vec<Vec<T>> = tallies
        .inbox_counts
        .iter()
        .map(|&count| Vec::with_capacity(count))
        .collect();
    for (dst_shard, inboxes) in inbox.chunks_mut(shard_width).enumerate() {
        // Drain this destination's segment from every source pass in
        // ascending source-shard order — the global inbox order.
        for pass in passes.iter_mut() {
            debug_assert_eq!(pass.segments.len(), num_shards, "one segment per dest");
            fill_one_shard(
                dst_shard * shard_width,
                inboxes,
                &mut pass.segments[dst_shard..=dst_shard],
            );
        }
    }
    Ok(inbox)
}

impl ExecutionBackend for ShardedBackend {
    fn from_config(config: ClusterConfig) -> Self {
        ShardedBackend::new(config)
    }

    fn config(&self) -> &ClusterConfig {
        &self.config
    }

    fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    fn into_metrics(self) -> Metrics {
        self.metrics
    }

    fn exchange<T: WirePayload + Send + Sync>(
        &mut self,
        outbox: Vec<Vec<(usize, T)>>,
    ) -> Result<Vec<Vec<T>>> {
        let machines = self.config.num_machines;
        if outbox.len() != machines {
            return Err(MpcError::WrongClusterWidth {
                expected: machines,
                found: outbox.len(),
            });
        }
        let round = self.metrics.rounds + 1;
        // Contiguous near-equal shards: shard s owns machines
        // [s·width, min((s+1)·width, M)). `shards` is already the effective
        // count of this partition (normalized at construction).
        let shard_width = machines.div_ceil(self.shards);
        let num_shards = machines.div_ceil(shard_width);
        debug_assert_eq!(
            num_shards, self.shards,
            "stored shard count must be effective"
        );
        let total_messages: usize = outbox.iter().map(Vec::len).sum();
        let mut outbox = outbox;
        // Small exchanges skip the shard partition entirely: one flat inline
        // pass over all machines. At this size the per-shard segment
        // bookkeeping is pure overhead — BENCH_engine.json had
        // `engine_exchange/sharded16/64` ~2× sequential before this cutoff
        // (`<=` so a payload of exactly the threshold, the raw-exchange
        // bench leg, is covered). Above the cutoff the two-phase shard
        // structure stays: inline when a thread budget of 1 or a single
        // shard rules out overlap, pipelined otherwise. All three paths
        // produce bit-identical results, errors, and metrics — the cutoff is
        // purely a scheduling-overhead knob.
        if total_messages <= exchange_inline_threshold() {
            self.exchange_inline(&mut outbox, round, machines, 1)
        } else if self.threads <= 1 || num_shards <= 1 {
            self.exchange_inline(&mut outbox, round, shard_width, num_shards)
        } else {
            self.exchange_pipelined(&mut outbox, round, shard_width, num_shards)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SequentialBackend;

    /// Deterministic pseudo-random outbox generator (SplitMix64; the crate
    /// deliberately has no rand dependency).
    fn random_outbox(machines: usize, per_machine: usize, mut seed: u64) -> Vec<Vec<(usize, u64)>> {
        let mut next = move || {
            seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = seed;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        (0..machines)
            .map(|_| {
                (0..per_machine)
                    .map(|_| ((next() as usize) % machines, next() % 1000))
                    .collect()
            })
            .collect()
    }

    fn run_sequential(
        config: ClusterConfig,
        outbox: Vec<Vec<(usize, u64)>>,
    ) -> (Result<Vec<Vec<u64>>>, Metrics) {
        let mut seq = SequentialBackend::new(config);
        let out = ExecutionBackend::exchange(&mut seq, outbox);
        (out, seq.into_metrics())
    }

    #[test]
    fn matches_sequential_at_every_shard_count() {
        let config = ClusterConfig::new(16, 4096);
        for seed in 0..4 {
            let outbox = random_outbox(16, 50, seed);
            let (seq_out, seq_metrics) = run_sequential(config, outbox.clone());
            let seq_out = seq_out.unwrap();
            for shards in [1usize, 2, 3, 7, 16, 64] {
                let mut backend = ShardedBackend::new(config).with_shards(shards);
                let inbox = backend.exchange(outbox.clone()).unwrap();
                assert_eq!(inbox, seq_out, "seed {seed}, shards {shards}");
                assert_eq!(
                    backend.into_metrics(),
                    seq_metrics,
                    "seed {seed}, shards {shards}"
                );
            }
        }
    }

    #[test]
    fn large_exchange_crosses_parallel_threshold() {
        // 64 machines x 128 messages = 8192 > the inline cutoff: the
        // pipelined path must still match sequential bit-for-bit.
        let config = ClusterConfig::new(64, 1 << 20);
        let outbox = random_outbox(64, 128, 42);
        assert!(outbox.iter().map(Vec::len).sum::<usize>() > exchange_inline_threshold());
        let (seq_out, seq_metrics) = run_sequential(config, outbox.clone());
        for (shards, threads) in [(2usize, 2usize), (7, 3), (64, 8)] {
            let mut backend = ShardedBackend::new(config)
                .with_shards(shards)
                .with_threads(threads);
            let inbox = backend.exchange(outbox.clone()).unwrap();
            assert_eq!(inbox, *seq_out.as_ref().unwrap(), "shards {shards}");
            assert_eq!(backend.into_metrics(), seq_metrics, "shards {shards}");
        }
    }

    #[test]
    fn outputs_identical_across_inline_cutoff() {
        // One message on either side of the inline cutoff — `<= threshold`
        // takes the flat single-shard path regardless of configured shard
        // count, `> threshold` the sharded (pipelined) one. Every path must
        // match sequential bit-for-bit (inboxes AND metrics) at every shard
        // count.
        let threshold = exchange_inline_threshold();
        let machines = 16usize;
        let config = ClusterConfig::new(machines, 1 << 20);
        for shards in [4, 16] {
            for total in [threshold - 1, threshold, threshold + 1] {
                let per_machine = total / machines;
                let mut outbox = random_outbox(machines, per_machine, 5);
                let mut extra = total - per_machine * machines;
                for msgs in outbox.iter_mut() {
                    if extra == 0 {
                        break;
                    }
                    msgs.push((3, 77));
                    extra -= 1;
                }
                assert_eq!(outbox.iter().map(Vec::len).sum::<usize>(), total);
                let (seq_out, seq_metrics) = run_sequential(config, outbox.clone());
                let mut backend = ShardedBackend::new(config)
                    .with_shards(shards)
                    .with_threads(4);
                let inbox = backend.exchange(outbox).unwrap();
                assert_eq!(
                    inbox,
                    seq_out.unwrap(),
                    "shards = {shards}, total = {total}"
                );
                assert_eq!(
                    backend.into_metrics(),
                    seq_metrics,
                    "shards = {shards}, total = {total}"
                );
            }
        }
    }

    #[test]
    fn pipelined_error_parity_unknown_machine_late_shard() {
        // The invalid destination sits in the *last* shard, forcing the
        // pipeline to speculatively drain earlier shards before discovering
        // the error — which must still match sequential exactly, with no
        // round recorded.
        let machines = 16usize;
        let config = ClusterConfig::new(machines, 1 << 20);
        let mut outbox = random_outbox(machines, 512, 9);
        outbox[machines - 1].push((machines + 5, 1));
        assert!(outbox.iter().map(Vec::len).sum::<usize>() > exchange_inline_threshold());
        let (seq_out, _) = run_sequential(config, outbox.clone());
        let mut backend = ShardedBackend::new(config).with_shards(4).with_threads(4);
        let err = backend.exchange(outbox).unwrap_err();
        assert_eq!(err, *seq_out.as_ref().unwrap_err());
        assert_eq!(backend.metrics().rounds, 0, "no round recorded on error");
    }

    #[test]
    fn inbox_order_is_source_then_production_across_shards() {
        // Destination 2 sits in the last shard; sources span all shards. The
        // ascending source-shard drain must reproduce global source order.
        let mut backend = ShardedBackend::new(ClusterConfig::new(3, 64)).with_shards(3);
        let outbox: Vec<Vec<(usize, u64)>> = vec![
            vec![(2, 10), (2, 11)],
            vec![(2, 20)],
            vec![(2, 30), (2, 31)],
        ];
        let inbox = backend.exchange(outbox).unwrap();
        assert_eq!(inbox[2], vec![10, 11, 20, 30, 31]);
        assert!(inbox[0].is_empty() && inbox[1].is_empty());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let config = ClusterConfig::new(32, 1 << 20);
        let outbox = random_outbox(32, 300, 7);
        let mut reference: Option<(Vec<Vec<u64>>, Metrics)> = None;
        for threads in [1usize, 2, 3, 8, 19] {
            let mut backend = ShardedBackend::new(config)
                .with_shards(5)
                .with_threads(threads);
            let inbox = backend.exchange(outbox.clone()).unwrap();
            let metrics = backend.into_metrics();
            match &reference {
                None => reference = Some((inbox, metrics)),
                Some((ref_inbox, ref_metrics)) => {
                    assert_eq!(&inbox, ref_inbox, "threads = {threads}");
                    assert_eq!(&metrics, ref_metrics, "threads = {threads}");
                }
            }
        }
    }

    #[test]
    fn error_parity_unknown_machine() {
        // Both backends report the first out-of-range destination in global
        // (source, production) scan order, even when a *later* shard also
        // holds one.
        let config = ClusterConfig::new(4, 64);
        let outbox: Vec<Vec<(usize, u64)>> =
            vec![vec![(0, 1)], vec![(9, 2), (17, 3)], vec![], vec![(77, 4)]];
        let (seq_out, _) = run_sequential(config, outbox.clone());
        for shards in [1usize, 2, 4] {
            let mut backend = ShardedBackend::new(config).with_shards(shards);
            let err = backend.exchange(outbox.clone()).unwrap_err();
            assert_eq!(err, *seq_out.as_ref().unwrap_err(), "shards {shards}");
            assert_eq!(backend.metrics().rounds, 0, "no round recorded on error");
        }
    }

    #[test]
    fn error_parity_capacity() {
        let config = ClusterConfig::new(2, 4);
        let outbox: Vec<Vec<(usize, u64)>> = vec![(0..9).map(|i| (1usize, i)).collect(), vec![]];
        let (seq_out, _) = run_sequential(config, outbox.clone());
        for shards in [1usize, 2] {
            let mut backend = ShardedBackend::new(config).with_shards(shards);
            let err = backend.exchange(outbox.clone()).unwrap_err();
            assert_eq!(err, *seq_out.as_ref().unwrap_err(), "shards {shards}");
        }
    }

    #[test]
    fn relaxed_violations_match() {
        let config = ClusterConfig::new(2, 4).relaxed();
        let outbox: Vec<Vec<(usize, u64)>> = vec![(0..9).map(|i| (1usize, i)).collect(), vec![]];
        let (seq_out, seq_metrics) = run_sequential(config, outbox.clone());
        let mut backend = ShardedBackend::new(config).with_shards(2);
        let inbox = backend.exchange(outbox).unwrap();
        assert_eq!(inbox, seq_out.unwrap());
        assert_eq!(backend.into_metrics(), seq_metrics);
    }

    #[test]
    fn wrong_width_rejected() {
        let mut backend = ShardedBackend::new(ClusterConfig::new(3, 64));
        let outbox: Vec<Vec<(usize, u64)>> = vec![vec![]];
        assert!(matches!(
            backend.exchange(outbox),
            Err(MpcError::WrongClusterWidth {
                expected: 3,
                found: 1
            })
        ));
    }

    #[test]
    fn shared_metering_defaults_apply() {
        // charge_rounds / checkpoint_residency come from the trait defaults:
        // remainder spreading and strict checks behave exactly as sequential.
        let mut backend = ShardedBackend::new(ClusterConfig::new(2, 64)).with_shards(2);
        backend.charge_rounds(3, 13, 8).unwrap();
        assert_eq!(backend.metrics().total_comm_words, 13);
        backend.checkpoint_residency(&[4, 64]).unwrap();
        assert_eq!(backend.metrics().peak_machine_memory, 64);
        assert!(backend.checkpoint_residency(&[65, 0]).is_err());
    }

    #[test]
    fn shard_count_clamps_to_machine_count() {
        let backend = ShardedBackend::new(ClusterConfig::new(3, 64)).with_shards(100);
        assert_eq!(backend.shards(), 3);
        let backend = ShardedBackend::new(ClusterConfig::new(3, 64)).with_shards(0);
        assert_eq!(backend.shards(), 1);
    }

    #[test]
    fn shards_reports_the_effective_partition() {
        // 10 machines at a requested K = 7: the ⌈10/7⌉ = 2-wide contiguous
        // partition yields 5 shards, and that is what shards() must report
        // (and what exchange routes with).
        let config = ClusterConfig::new(10, 4096);
        let backend = ShardedBackend::new(config).with_shards(7);
        assert_eq!(backend.shards(), 5);
        // Divisible counts are taken as requested.
        assert_eq!(ShardedBackend::new(config).with_shards(5).shards(), 5);
        assert_eq!(ShardedBackend::new(config).with_shards(2).shards(), 2);
        // The normalized count still routes identically to sequential.
        let outbox = random_outbox(10, 30, 3);
        let (seq_out, seq_metrics) = run_sequential(config, outbox.clone());
        let mut backend = ShardedBackend::new(config).with_shards(7);
        let inbox = backend.exchange(outbox).unwrap();
        assert_eq!(inbox, seq_out.unwrap());
        assert_eq!(backend.into_metrics(), seq_metrics);
    }

    #[test]
    fn empty_traffic_still_charges_the_round() {
        let config = ClusterConfig::new(5, 16);
        let (seq_out, seq_metrics) = run_sequential(config, vec![vec![]; 5]);
        let mut backend = ShardedBackend::new(config).with_shards(2);
        let inbox: Vec<Vec<u64>> = backend.exchange(vec![vec![]; 5]).unwrap();
        assert_eq!(inbox, seq_out.unwrap());
        assert_eq!(backend.into_metrics(), seq_metrics);
    }
}
