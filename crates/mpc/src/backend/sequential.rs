//! The sequential (reference) execution backend.
//!
//! [`SequentialBackend`] is the deterministic single-threaded metering
//! simulator: operations compute their results in-process while the backend
//! faithfully accounts rounds, per-machine communication loads, and resident
//! memory against the model constraints of the paper's §1.1 — per round, no
//! machine may send or receive more than its memory capacity `S`, and
//! resident data must fit in `S`.
//!
//! In `strict` mode a violation aborts the computation with an error (the
//! algorithm does not fit the machine); in relaxed mode it is recorded in the
//! metrics so parameter sweeps can chart how far out of budget a
//! configuration is.
//!
//! Every other backend is defined by equivalence to this one: identical
//! inboxes, errors, and metrics for identical call sequences.

use crate::backend::ExecutionBackend;
use crate::config::ClusterConfig;
use crate::error::{MpcError, Result};
use crate::metrics::Metrics;
use crate::word::{WirePayload, WordSized};

/// Backwards-compatible name for the reference backend: the original
/// simulator type was called `Cluster` before the backend trait existed.
pub type Cluster = SequentialBackend;

/// A simulated MPC cluster: `M` machines with `S` words of memory each,
/// executed sequentially and deterministically.
///
/// # Examples
///
/// ```
/// use dgo_mpc::{ClusterConfig, SequentialBackend};
///
/// let mut cluster = SequentialBackend::new(ClusterConfig::new(4, 1024));
/// // Machine 0 sends one word to machine 3.
/// let mut outbox: Vec<Vec<(usize, u64)>> = vec![vec![]; 4];
/// outbox[0].push((3, 99));
/// let inbox = cluster.exchange(outbox)?;
/// assert_eq!(inbox[3], vec![99]);
/// assert_eq!(cluster.metrics().rounds, 1);
/// # Ok::<(), dgo_mpc::MpcError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SequentialBackend {
    config: ClusterConfig,
    metrics: Metrics,
}

impl SequentialBackend {
    /// Creates a backend from a configuration.
    pub fn new(config: ClusterConfig) -> Self {
        SequentialBackend {
            config,
            metrics: Metrics::new(),
        }
    }

    /// The configuration this backend runs under.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Number of machines `M`.
    pub fn num_machines(&self) -> usize {
        self.config.num_machines
    }

    /// Per-machine memory capacity `S` in words.
    pub fn local_memory(&self) -> usize {
        self.config.local_memory
    }

    /// Metrics accumulated so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Consumes the backend, returning its metrics.
    pub fn into_metrics(self) -> Metrics {
        self.metrics
    }

    /// The home machine of an integer key: round-robin `key mod M`, so
    /// range-structured data (vertex ids) spreads evenly; the mapping is
    /// deterministic.
    pub fn home(&self, key: u64) -> usize {
        ExecutionBackend::home(self, key)
    }

    /// Executes one synchronous communication round; see
    /// [`ExecutionBackend::exchange`].
    ///
    /// # Errors
    ///
    /// * [`MpcError::WrongClusterWidth`] if `outbox.len() != M`.
    /// * [`MpcError::UnknownMachine`] for an out-of-range destination.
    /// * [`MpcError::CapacityExceeded`] in strict mode if any machine sends
    ///   or receives more than `S` words.
    pub fn exchange<T: WordSized>(&mut self, outbox: Vec<Vec<(usize, T)>>) -> Result<Vec<Vec<T>>> {
        let m = self.config.num_machines;
        if outbox.len() != m {
            return Err(MpcError::WrongClusterWidth {
                expected: m,
                found: outbox.len(),
            });
        }
        let round = self.metrics.rounds + 1;
        let mut sent = vec![0usize; m];
        let mut received = vec![0usize; m];
        for (src, msgs) in outbox.iter().enumerate() {
            for (dst, payload) in msgs {
                if *dst >= m {
                    return Err(MpcError::UnknownMachine {
                        machine: *dst,
                        num_machines: m,
                    });
                }
                let w = payload.words();
                sent[src] += w;
                received[*dst] += w;
            }
        }
        ExecutionBackend::check_round_capacity(self, &sent, &received, round)?;
        let total: usize = sent.iter().sum();
        let max_sent = sent.iter().copied().max().unwrap_or(0);
        let max_received = received.iter().copied().max().unwrap_or(0);
        self.metrics.record_round(total, max_sent, max_received);
        let mut inbox: Vec<Vec<T>> = (0..m).map(|_| Vec::new()).collect();
        for msgs in outbox {
            for (dst, payload) in msgs {
                inbox[dst].push(payload);
            }
        }
        Ok(inbox)
    }

    /// Charges `rounds` synchronous rounds for an unmaterialized primitive;
    /// see [`ExecutionBackend::charge_rounds`].
    ///
    /// # Errors
    ///
    /// [`MpcError::CapacityExceeded`] in strict mode if `max_load > S`.
    pub fn charge_rounds(
        &mut self,
        rounds: u64,
        total_words: usize,
        max_load: usize,
    ) -> Result<()> {
        ExecutionBackend::charge_rounds(self, rounds, total_words, max_load)
    }

    /// Residency checkpoint; see [`ExecutionBackend::checkpoint_residency`].
    ///
    /// # Errors
    ///
    /// [`MpcError::MemoryExceeded`] in strict mode on the first over-budget
    /// machine.
    pub fn checkpoint_residency(&mut self, per_machine: &[usize]) -> Result<()> {
        ExecutionBackend::checkpoint_residency(self, per_machine)
    }

    /// Distributes `count` keyed items (`0..count`) over machines by home
    /// placement, returning per-machine key lists. Helper for loading inputs.
    pub fn scatter_keys(&self, count: u64) -> Vec<Vec<u64>> {
        ExecutionBackend::scatter_keys(self, count)
    }
}

impl ExecutionBackend for SequentialBackend {
    fn from_config(config: ClusterConfig) -> Self {
        SequentialBackend::new(config)
    }

    fn config(&self) -> &ClusterConfig {
        &self.config
    }

    fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    fn into_metrics(self) -> Metrics {
        self.metrics
    }

    fn exchange<T: WirePayload + Send + Sync>(
        &mut self,
        outbox: Vec<Vec<(usize, T)>>,
    ) -> Result<Vec<Vec<T>>> {
        SequentialBackend::exchange(self, outbox)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SequentialBackend {
        SequentialBackend::new(ClusterConfig::new(3, 8))
    }

    #[test]
    fn exchange_routes_messages() {
        let mut c = small();
        let outbox: Vec<Vec<(usize, u32)>> = vec![vec![(1, 10), (2, 20)], vec![(0, 30)], vec![]];
        let inbox = c.exchange(outbox).unwrap();
        assert_eq!(inbox[0], vec![30]);
        assert_eq!(inbox[1], vec![10]);
        assert_eq!(inbox[2], vec![20]);
        assert_eq!(c.metrics().rounds, 1);
        assert_eq!(c.metrics().total_comm_words, 3);
    }

    #[test]
    fn exchange_rejects_wrong_width() {
        let mut c = small();
        let outbox: Vec<Vec<(usize, u32)>> = vec![vec![]];
        assert!(matches!(
            c.exchange(outbox),
            Err(MpcError::WrongClusterWidth {
                expected: 3,
                found: 1
            })
        ));
    }

    #[test]
    fn exchange_rejects_unknown_destination() {
        let mut c = small();
        let outbox: Vec<Vec<(usize, u32)>> = vec![vec![(7, 1)], vec![], vec![]];
        assert!(matches!(
            c.exchange(outbox),
            Err(MpcError::UnknownMachine { machine: 7, .. })
        ));
    }

    #[test]
    fn strict_send_capacity_enforced() {
        let mut c = small(); // S = 8
        let outbox: Vec<Vec<(usize, u64)>> =
            vec![(0..9).map(|i| (1usize, i)).collect(), vec![], vec![]];
        let err = c.exchange(outbox).unwrap_err();
        assert!(matches!(
            err,
            MpcError::CapacityExceeded {
                direction: "send",
                ..
            }
        ));
    }

    #[test]
    fn strict_receive_capacity_enforced() {
        let mut c = small(); // S = 8; two senders each send 5 words to machine 2
        let outbox: Vec<Vec<(usize, u64)>> = vec![
            (0..5).map(|i| (2usize, i)).collect(),
            (0..5).map(|i| (2usize, i)).collect(),
            vec![],
        ];
        let err = c.exchange(outbox).unwrap_err();
        assert!(matches!(
            err,
            MpcError::CapacityExceeded {
                machine: Some(2),
                direction: "receive",
                ..
            }
        ));
    }

    #[test]
    fn relaxed_mode_records_violation() {
        let mut c = SequentialBackend::new(ClusterConfig::new(2, 4).relaxed());
        let outbox: Vec<Vec<(usize, u64)>> = vec![(0..9).map(|i| (1usize, i)).collect(), vec![]];
        let inbox = c.exchange(outbox).unwrap();
        assert_eq!(inbox[1].len(), 9);
        assert!(c.metrics().violations >= 1);
    }

    #[test]
    fn charge_rounds_accumulates() {
        let mut c = small();
        c.charge_rounds(3, 12, 4).unwrap();
        assert_eq!(c.metrics().rounds, 3);
        assert_eq!(c.metrics().total_comm_words, 12);
        assert_eq!(c.metrics().max_round_load, 4);
    }

    #[test]
    fn charge_rounds_capacity_checked() {
        let mut c = small(); // S = 8
        assert!(c.charge_rounds(1, 100, 100).is_err());
    }

    #[test]
    fn residency_checkpoint() {
        let mut c = small();
        c.checkpoint_residency(&[1, 8, 0]).unwrap();
        assert_eq!(c.metrics().peak_machine_memory, 8);
        let err = c.checkpoint_residency(&[9, 0, 0]).unwrap_err();
        assert!(matches!(
            err,
            MpcError::MemoryExceeded {
                machine: 0,
                words: 9,
                capacity: 8
            }
        ));
    }

    #[test]
    fn residency_wrong_width() {
        let mut c = small();
        assert!(c.checkpoint_residency(&[1, 2]).is_err());
    }

    #[test]
    fn scatter_keys_covers_all() {
        let c = small();
        let scattered = c.scatter_keys(10);
        let total: usize = scattered.iter().map(Vec::len).sum();
        assert_eq!(total, 10);
        for (machine, keys) in scattered.iter().enumerate() {
            for &k in keys {
                assert_eq!(c.home(k), machine);
            }
        }
    }

    #[test]
    fn home_is_deterministic_and_in_range() {
        let c = small();
        for k in 0..100u64 {
            assert!(c.home(k) < 3);
            assert_eq!(c.home(k), c.home(k));
        }
    }

    #[test]
    fn cluster_alias_still_works() {
        // Downstream code and docs predating the backend trait use `Cluster`.
        let mut c: Cluster = Cluster::new(ClusterConfig::new(2, 16));
        let inbox = c.exchange(vec![vec![(1usize, 5u64)], vec![]]).unwrap();
        assert_eq!(inbox[1], vec![5]);
    }
}
