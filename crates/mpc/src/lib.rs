//! # dgo-mpc — a metering simulator for scalable MPC with pluggable backends
//!
//! The Massively Parallel Computation model (§1.1 of the paper;
//! [KSV10, GSZ11, BKS17, ANOY14]) has `M` machines with `S` words of local
//! memory each; computation proceeds in synchronous rounds, and per round no
//! machine may send or receive more than `S` words. The *strongly sublinear*
//! (scalable) regime sets `S = n^δ` for constant `δ ∈ (0, 1)`.
//!
//! No reusable MPC runtime exists in the Rust ecosystem, so this crate
//! provides one as a *metering simulator*: algorithms execute in-process and
//! deterministically, while the backend accounts every round, every
//! per-machine communication load, and resident memory against the model's
//! constraints. Strict mode turns violations into hard [`MpcError`]s —
//! an algorithm that completes under strict metering is a certificate that
//! it fits the model at that `(M, S)`.
//!
//! ## Execution backends
//!
//! All simulator operations live behind the [`ExecutionBackend`] trait
//! (`exchange` / `charge_rounds` / `checkpoint_residency` / metrics), and
//! every algorithm crate in the workspace is generic over it. Three backends
//! ship:
//!
//! * [`SequentialBackend`] — the deterministic, single-threaded reference
//!   implementation ([`Cluster`] is a backwards-compatible alias);
//! * [`ParallelBackend`] — observationally identical (same inboxes, errors,
//!   and metrics — property-tested), but routes messages through flat,
//!   pre-counted per-destination buffers (counting-sort routing) and runs
//!   the per-machine metering in parallel with rayon;
//! * [`ShardedBackend`] — observationally identical again, but partitions
//!   the machines into `K` contiguous shards that route their own slice of
//!   inboxes (per-shard counting sort) and exchange cross-shard traffic as
//!   pre-counted contiguous batches — the distribution-ready shape where a
//!   shard maps to a host;
//! * [`ProcessBackend`] — the fault-tolerant multi-process realization of
//!   the sharded shape: each shard runs as a supervised separate OS process
//!   (the `dgo-worker` helper binary) speaking the framed protocol of
//!   [`frame`] over pipes, with deterministic crash recovery
//!   (kill/respawn/replay), per-phase deadlines, and deterministic fault
//!   injection (`DGO_FAULT_PLAN`) for chaos testing.
//!
//! Pick a backend by constructing it (or via [`BackendKind`] +
//! [`dispatch_backend!`] on configuration surfaces) and hand it to any
//! algorithm entry point:
//!
//! ```
//! use dgo_mpc::{ClusterConfig, ExecutionBackend, ParallelBackend, SequentialBackend};
//!
//! let cfg = ClusterConfig::new(4, 1024);
//! // Same algorithm code runs on either backend:
//! fn ping<B: ExecutionBackend>(backend: &mut B) -> dgo_mpc::Result<u64> {
//!     let mut outbox: Vec<Vec<(usize, u64)>> = vec![vec![]; backend.num_machines()];
//!     outbox[0].push((1, 42));
//!     Ok(backend.exchange(outbox)?[1][0])
//! }
//! assert_eq!(ping(&mut SequentialBackend::new(cfg))?, 42);
//! assert_eq!(ping(&mut ParallelBackend::new(cfg))?, 42);
//! # Ok::<(), dgo_mpc::MpcError>(())
//! ```
//!
//! ## Multi-instance execution
//!
//! Algorithm compositions that the paper runs "in parallel" on disjoint
//! cluster sections (the coreness guess ladder of footnote 2, Theorem 1.1's
//! per-part layerings) execute host-parallel through
//! [`InstanceGroup`](crate::instance::InstanceGroup): one backend per logical
//! instance, a caller closure fanned across `jobs` host threads, and metrics
//! composed with [`Metrics::merge_parallel`] plus an aggregate global-memory
//! check. Outputs are bit-identical to a sequential host loop at any job
//! count.
//!
//! # Example: a round of communication under metering
//!
//! ```
//! use dgo_mpc::{Cluster, ClusterConfig};
//!
//! // n = 10_000-vertex graph, δ = 0.5 → S ≈ 100 words/machine.
//! let cfg = ClusterConfig::for_graph(10_000, 40_000, 0.5);
//! let mut cluster = Cluster::new(cfg);
//!
//! let mut outbox: Vec<Vec<(usize, u64)>> = vec![vec![]; cluster.num_machines()];
//! outbox[0].push((1, 42));
//! let inbox = cluster.exchange(outbox)?;
//! assert_eq!(inbox[1], vec![42]);
//! assert_eq!(cluster.metrics().rounds, 1);
//! # Ok::<(), dgo_mpc::MpcError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod backend;
mod config;
mod error;
pub mod frame;
pub mod instance;
mod metrics;
pub mod primitives;
pub mod tuning;
mod word;
mod worker;

pub use backend::{
    worker_peak_rss_bytes, BackendKind, Cluster, ExecutionBackend, ParallelBackend, ProcessBackend,
    SequentialBackend, ShardedBackend,
};
pub use config::ClusterConfig;
pub use error::{MpcError, Result};
pub use instance::{resolve_jobs, split_jobs, InstanceGroup, JobSplit};
pub use metrics::{Metrics, RoundStats};
pub use word::{packed_words, total_words, WirePayload, WordSized, BYTES_PER_WORD};
pub use worker::worker_main;
