//! # dgo-mpc — a metering simulator for scalable MPC
//!
//! The Massively Parallel Computation model (§1.1 of the paper;
//! [KSV10, GSZ11, BKS17, ANOY14]) has `M` machines with `S` words of local
//! memory each; computation proceeds in synchronous rounds, and per round no
//! machine may send or receive more than `S` words. The *strongly sublinear*
//! (scalable) regime sets `S = n^δ` for constant `δ ∈ (0, 1)`.
//!
//! No reusable MPC runtime exists in the Rust ecosystem, so this crate
//! provides one as a *metering simulator*: algorithms execute in-process and
//! deterministically, while the [`Cluster`] accounts every round, every
//! per-machine communication load, and resident memory against the model's
//! constraints. Strict mode turns violations into hard [`MpcError`]s —
//! an algorithm that completes under strict metering is a certificate that
//! it fits the model at that `(M, S)`.
//!
//! # Example: a round of communication under metering
//!
//! ```
//! use dgo_mpc::{Cluster, ClusterConfig};
//!
//! // n = 10_000-vertex graph, δ = 0.5 → S ≈ 100 words/machine.
//! let cfg = ClusterConfig::for_graph(10_000, 40_000, 0.5);
//! let mut cluster = Cluster::new(cfg);
//!
//! let mut outbox: Vec<Vec<(usize, u64)>> = vec![vec![]; cluster.num_machines()];
//! outbox[0].push((1, 42));
//! let inbox = cluster.exchange(outbox)?;
//! assert_eq!(inbox[1], vec![42]);
//! assert_eq!(cluster.metrics().rounds, 1);
//! # Ok::<(), dgo_mpc::MpcError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cluster;
mod config;
mod error;
mod metrics;
pub mod primitives;
mod word;

pub use cluster::Cluster;
pub use config::ClusterConfig;
pub use error::{MpcError, Result};
pub use metrics::{Metrics, RoundStats};
pub use word::{total_words, WordSized};
