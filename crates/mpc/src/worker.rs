//! Shard-worker side of the multi-process backend.
//!
//! The `dgo-worker` helper binary is a thin wrapper around [`worker_main`]:
//! a *stateless* request server that speaks the framed protocol of
//! [`crate::frame`] over stdin/stdout. The parent
//! ([`ProcessBackend`](crate::ProcessBackend)) owns all durable state — the
//! outboxes, the metrics, the retry bookkeeping — so crash recovery is
//! simply "respawn and resend the same request": the replayed response is
//! bit-identical by construction.
//!
//! Messages travel as opaque pre-encoded word blobs (`[dst, enc_len,
//! enc...]`); the worker meters with the separately-carried model word count
//! and never interprets payload contents. Each request's first two payload
//! words are a fault directive (injected deterministically by the parent's
//! fault plan, see [`crate::tuning`]): `0` none, `1` exit instead of
//! answering, `2` sleep before answering, `3` truncate the response frame,
//! `4` corrupt one response byte so the checksum fails.
//!
//! Request payloads (after the two fault words):
//!
//! * `ROUTE_REQ`: `[machines, shard_width, num_shards, src_count]`, then per
//!   source `[msg_count]` and per message `[dst, model_words, enc_len,
//!   enc...]`. The worker meters per-source sent / per-destination received
//!   words and message counts, records the first out-of-range destination,
//!   and counting-sorts the messages into per-destination-shard segments in
//!   `(source, production)` order — exactly
//!   [`route_one_shard`](crate::backend) over opaque payloads.
//! * `FILL_REQ`: `[shard_base, shard_len, seg_count]`, then per segment
//!   `[msg_count]` and per message `[dst, enc_len, enc...]`, segments in
//!   ascending source-shard order. The worker drains them into per-machine
//!   inboxes — [`fill_one_shard`](crate::backend) over opaque payloads.
//!
//! Every response leads with the worker's peak RSS in bytes (`VmHWM`), so
//! the parent can aggregate true memory high-water marks across the process
//! tree.

use crate::frame::{self, kind, FrameError};
use std::io::Write;

/// A strict forward-only reader over a word slice, tracking its position so
/// callers can capture raw sub-ranges.
pub(crate) struct WordCursor<'a> {
    words: &'a [u64],
    pos: usize,
}

impl<'a> WordCursor<'a> {
    /// Starts a cursor at the front of `words`.
    pub(crate) fn new(words: &'a [u64]) -> Self {
        WordCursor { words, pos: 0 }
    }

    /// The number of words consumed so far.
    pub(crate) fn pos(&self) -> usize {
        self.pos
    }

    /// Whether every word has been consumed.
    pub(crate) fn is_empty(&self) -> bool {
        self.pos == self.words.len()
    }

    /// Pops the next word, or `None` at the end.
    pub(crate) fn next(&mut self) -> Option<u64> {
        let word = *self.words.get(self.pos)?;
        self.pos += 1;
        Some(word)
    }

    /// Pops the next word as a `usize`, rejecting values that do not fit.
    pub(crate) fn next_usize(&mut self) -> Option<usize> {
        usize::try_from(self.next()?).ok()
    }

    /// Takes the next `n` words as a slice, or `None` if fewer remain.
    pub(crate) fn take(&mut self, n: usize) -> Option<&'a [u64]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.words.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }
}

/// The worker's own peak resident set size in bytes (`VmHWM` from
/// `/proc/self/status`), or 0 where procfs is unavailable.
pub(crate) fn own_peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kib: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kib * 1024;
        }
    }
    0
}

/// Routes one shard's outboxes: meter, then counting-sort into
/// per-destination-shard segments. Returns the `ROUTE_RESP` payload, or
/// `None` if the request is malformed.
pub(crate) fn handle_route(req: &[u64]) -> Option<Vec<u64>> {
    let mut c = WordCursor::new(req);
    let machines = c.next_usize()?;
    let shard_width = c.next_usize()?;
    let num_shards = c.next_usize()?;
    let src_count = c.next_usize()?;
    if machines == 0 || shard_width == 0 || num_shards == 0 {
        return None;
    }
    let mut sent: Vec<u64> = Vec::with_capacity(src_count);
    let mut received = vec![0u64; machines];
    let mut inbox_counts = vec![0u64; machines];
    let mut first_invalid: Option<u64> = None;
    // Valid messages in (source, production) scan order: (dst, enc range).
    let mut messages: Vec<(usize, &[u64])> = Vec::new();
    for _ in 0..src_count {
        let msg_count = c.next_usize()?;
        let mut src_sent = 0u64;
        for _ in 0..msg_count {
            let dst = c.next()?;
            let model_words = c.next()?;
            let enc_len = c.next_usize()?;
            let enc = c.take(enc_len)?;
            if dst >= machines as u64 {
                if first_invalid.is_none() {
                    first_invalid = Some(dst);
                }
                continue;
            }
            let dst = dst as usize;
            src_sent += model_words;
            received[dst] += model_words;
            inbox_counts[dst] += 1;
            messages.push((dst, enc));
        }
        sent.push(src_sent);
    }
    if !c.is_empty() {
        return None;
    }
    let mut resp = vec![
        own_peak_rss_bytes(),
        first_invalid.unwrap_or(u64::MAX),
        src_count as u64,
    ];
    resp.extend_from_slice(&sent);
    resp.push(machines as u64);
    resp.extend_from_slice(&received);
    resp.extend_from_slice(&inbox_counts);
    if first_invalid.is_some() {
        // The exchange aborts with UnknownMachine; routing work is skipped.
        resp.push(0);
        return Some(resp);
    }
    // Counting-sort into per-destination-shard segments, preserving scan
    // order within each segment.
    let mut segments: Vec<Vec<u64>> = vec![Vec::new(); num_shards];
    for (dst, enc) in messages {
        let segment = &mut segments[dst / shard_width];
        segment.push(dst as u64);
        segment.push(enc.len() as u64);
        segment.extend_from_slice(enc);
    }
    resp.push(num_shards as u64);
    for (dst_shard, segment) in segments.iter().enumerate() {
        let msg_count = inbox_counts
            [dst_shard * shard_width..machines.min((dst_shard + 1) * shard_width)]
            .iter()
            .sum::<u64>();
        resp.push(msg_count);
        resp.extend_from_slice(segment);
    }
    Some(resp)
}

/// Fills one destination shard's inboxes from ordered per-source-shard
/// segments. Returns the `FILL_RESP` payload, or `None` if the request is
/// malformed (including a destination outside the shard's machine range).
pub(crate) fn handle_fill(req: &[u64]) -> Option<Vec<u64>> {
    let mut c = WordCursor::new(req);
    let shard_base = c.next_usize()?;
    let shard_len = c.next_usize()?;
    let seg_count = c.next_usize()?;
    let mut inboxes: Vec<Vec<&[u64]>> = vec![Vec::new(); shard_len];
    for _ in 0..seg_count {
        let msg_count = c.next_usize()?;
        for _ in 0..msg_count {
            let dst = c.next_usize()?;
            let enc_len = c.next_usize()?;
            let enc = c.take(enc_len)?;
            let slot = dst.checked_sub(shard_base)?;
            inboxes.get_mut(slot)?.push(enc);
        }
    }
    if !c.is_empty() {
        return None;
    }
    let mut resp = vec![own_peak_rss_bytes(), shard_len as u64];
    for inbox in inboxes {
        resp.push(inbox.len() as u64);
        for enc in inbox {
            resp.push(enc.len() as u64);
            resp.extend_from_slice(enc);
        }
    }
    Some(resp)
}

/// Exit codes distinguishing why a worker quit, for post-mortem debugging
/// (`0` = clean EOF shutdown).
mod exit_code {
    /// An injected kill fault fired.
    pub const FAULT_KILL: i32 = 101;
    /// The parent's stream violated the frame protocol.
    pub const BAD_FRAME: i32 = 102;
    /// A request payload was malformed or of an unknown kind.
    pub const BAD_REQUEST: i32 = 103;
    /// An injected truncate fault fired (the stream is unusable after).
    pub const FAULT_TRUNCATED: i32 = 104;
    /// Writing a response failed (the parent went away).
    pub const WRITE_FAILED: i32 = 105;
}

/// Serves the shard-worker protocol on stdin/stdout until the parent closes
/// the request pipe; never returns. This is the entire `dgo-worker` binary.
pub fn worker_main() -> ! {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut input = stdin.lock();
    let mut output = stdout.lock();
    if frame::write_frame(&mut output, kind::HELLO, &[u64::from(std::process::id())]).is_err() {
        std::process::exit(exit_code::WRITE_FAILED);
    }
    loop {
        let (req_kind, payload) =
            match frame::read_frame(&mut input, frame::DEFAULT_MAX_PAYLOAD_WORDS) {
                Ok(frame) => frame,
                Err(FrameError::Eof) => std::process::exit(0),
                Err(_) => std::process::exit(exit_code::BAD_FRAME),
            };
        if payload.len() < 2 {
            std::process::exit(exit_code::BAD_REQUEST);
        }
        let (fault_code, fault_arg) = (payload[0], payload[1]);
        match fault_code {
            1 => std::process::exit(exit_code::FAULT_KILL),
            2 => std::thread::sleep(std::time::Duration::from_millis(fault_arg)),
            _ => {}
        }
        let (resp_kind, resp) = match req_kind {
            kind::ROUTE_REQ => (kind::ROUTE_RESP, handle_route(&payload[2..])),
            kind::FILL_REQ => (kind::FILL_RESP, handle_fill(&payload[2..])),
            _ => std::process::exit(exit_code::BAD_REQUEST),
        };
        let Some(resp) = resp else {
            std::process::exit(exit_code::BAD_REQUEST);
        };
        let result = match fault_code {
            3 => {
                // Truncate: stop mid-frame, then die — the reader must see
                // Truncated, never a short garbage payload.
                let bytes = frame::encode_frame(resp_kind, &resp);
                let keep = frame::HEADER_BYTES
                    .min(bytes.len() - 1)
                    .max(bytes.len() / 2);
                let result = output
                    .write_all(&bytes[..keep])
                    .and_then(|()| output.flush());
                drop(result);
                std::process::exit(exit_code::FAULT_TRUNCATED);
            }
            4 => {
                // Corrupt: flip one byte so the checksum fails, then keep
                // serving — the parent decides our fate.
                let mut bytes = frame::encode_frame(resp_kind, &resp);
                let target = if bytes.len() > frame::HEADER_BYTES {
                    bytes.len() - 1
                } else {
                    frame::HEADER_BYTES - 1 // empty payload: damage the checksum
                };
                bytes[target] ^= 0x20;
                output.write_all(&bytes).and_then(|()| output.flush())
            }
            _ => frame::write_frame(&mut output, resp_kind, &resp),
        };
        if result.is_err() {
            std::process::exit(exit_code::WRITE_FAILED);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cursor_basics() {
        let words = [1u64, 2, 3, 4];
        let mut c = WordCursor::new(&words);
        assert_eq!(c.next(), Some(1));
        assert_eq!(c.pos(), 1);
        assert_eq!(c.take(2), Some(&[2u64, 3][..]));
        assert!(!c.is_empty());
        assert_eq!(c.next_usize(), Some(4));
        assert!(c.is_empty());
        assert_eq!(c.next(), None);
        assert_eq!(c.take(1), None);
    }

    /// Builds a ROUTE_REQ body (fault words stripped) from typed outboxes,
    /// one word of payload per message, enc = the value itself.
    fn route_req(
        machines: usize,
        shard_width: usize,
        num_shards: usize,
        sources: &[Vec<(u64, u64)>],
    ) -> Vec<u64> {
        let mut req = vec![
            machines as u64,
            shard_width as u64,
            num_shards as u64,
            sources.len() as u64,
        ];
        for msgs in sources {
            req.push(msgs.len() as u64);
            for &(dst, value) in msgs {
                req.extend_from_slice(&[dst, 1, 1, value]);
            }
        }
        req
    }

    #[test]
    fn route_meters_and_segments() {
        // 4 machines, 2 shards of width 2; this worker owns sources {0, 1}.
        let req = route_req(4, 2, 2, &[vec![(0, 10), (3, 11)], vec![(2, 12), (0, 13)]]);
        let resp = handle_route(&req).unwrap();
        let mut c = WordCursor::new(&resp);
        let _vmhwm = c.next().unwrap();
        assert_eq!(c.next(), Some(u64::MAX), "no invalid destination");
        assert_eq!(c.next(), Some(2), "src_count");
        assert_eq!(c.take(2), Some(&[2u64, 2][..]), "per-source sent words");
        assert_eq!(c.next(), Some(4), "machines");
        assert_eq!(c.take(4), Some(&[2u64, 0, 1, 1][..]), "received words");
        assert_eq!(c.take(4), Some(&[2u64, 0, 1, 1][..]), "inbox counts");
        assert_eq!(c.next(), Some(2), "segments");
        // Segment for shard 0 (machines 0-1): msgs to 0 in scan order.
        assert_eq!(c.next(), Some(2), "segment 0 count");
        assert_eq!(c.take(3), Some(&[0u64, 1, 10][..]));
        assert_eq!(c.take(3), Some(&[0u64, 1, 13][..]));
        // Segment for shard 1 (machines 2-3).
        assert_eq!(c.next(), Some(2), "segment 1 count");
        assert_eq!(c.take(3), Some(&[3u64, 1, 11][..]));
        assert_eq!(c.take(3), Some(&[2u64, 1, 12][..]));
        assert!(c.is_empty());
    }

    #[test]
    fn route_reports_first_invalid_and_skips_segments() {
        let req = route_req(2, 2, 1, &[vec![(9, 1), (17, 2), (0, 3)]]);
        let resp = handle_route(&req).unwrap();
        let mut c = WordCursor::new(&resp);
        let _vmhwm = c.next().unwrap();
        assert_eq!(c.next(), Some(9), "first out-of-range destination");
        assert_eq!(c.next(), Some(1), "src_count");
        // The valid message is still metered, the invalid ones are not.
        assert_eq!(c.take(1), Some(&[1u64][..]), "sent");
        assert_eq!(c.next(), Some(2), "machines");
        assert_eq!(c.take(2), Some(&[1u64, 0][..]), "received");
        assert_eq!(c.take(2), Some(&[1u64, 0][..]), "inbox counts");
        assert_eq!(c.next(), Some(0), "no segments on abort");
        assert!(c.is_empty());
    }

    #[test]
    fn route_rejects_malformed() {
        assert!(handle_route(&[]).is_none());
        // enc_len runs past the end.
        assert!(handle_route(&[2, 2, 1, 1, 1, 0, 1, 99]).is_none());
        // Trailing garbage.
        assert!(handle_route(&[2, 2, 1, 1, 0, 7]).is_none());
        // Zero machines.
        assert!(handle_route(&[0, 1, 1, 0]).is_none());
    }

    #[test]
    fn fill_orders_by_machine_then_segment() {
        // Shard of machines {2, 3}; two source segments in shard order.
        let req = vec![
            2, 2, 2, // base, len, segments
            2, /**/ 3, 1, 30, /**/ 2, 1, 20, // segment 0: to m3, then m2
            1, /**/ 2, 1, 21, // segment 1: to m2
        ];
        let resp = handle_fill(&req).unwrap();
        let mut c = WordCursor::new(&resp);
        let _vmhwm = c.next().unwrap();
        assert_eq!(c.next(), Some(2), "shard_len");
        // Machine 2: segment 0's msg before segment 1's.
        assert_eq!(c.next(), Some(2));
        assert_eq!(c.take(2), Some(&[1u64, 20][..]));
        assert_eq!(c.take(2), Some(&[1u64, 21][..]));
        // Machine 3.
        assert_eq!(c.next(), Some(1));
        assert_eq!(c.take(2), Some(&[1u64, 30][..]));
        assert!(c.is_empty());
    }

    #[test]
    fn fill_rejects_out_of_shard_destination() {
        // base 2, len 2: machine 5 is outside [2, 4).
        assert!(handle_fill(&[2, 2, 1, 1, 5, 1, 40]).is_none());
        // ... and below the base.
        assert!(handle_fill(&[2, 2, 1, 1, 1, 1, 40]).is_none());
        // Trailing garbage.
        assert!(handle_fill(&[2, 1, 0, 8]).is_none());
    }

    #[test]
    fn fill_empty_segments_yield_empty_inboxes() {
        let resp = handle_fill(&[0, 3, 2, 0, 0]).unwrap();
        assert_eq!(&resp[1..], &[3, 0, 0, 0]);
    }

    #[test]
    fn own_rss_positive_under_procfs() {
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(own_peak_rss_bytes() > 0);
        }
    }
}
