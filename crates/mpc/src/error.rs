//! Error types for the MPC simulator.

use std::error::Error as StdError;
use std::fmt;

/// Errors surfaced by the cluster when the strongly-sublinear-memory
/// constraints of the model are violated.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MpcError {
    /// A machine tried to send or receive more than its memory capacity `S`
    /// within one round (the communication constraint of §1.1).
    CapacityExceeded {
        /// Machine that violated the constraint, or `None` when the offending
        /// load is a per-machine *maximum* not attributed to a specific
        /// machine (unmaterialized primitives charged via `charge_rounds`).
        machine: Option<usize>,
        /// Round in which the violation occurred (1-based, global counter).
        round: u64,
        /// Words the machine attempted to move.
        words: usize,
        /// The per-machine capacity `S`.
        capacity: usize,
        /// `"send"` or `"receive"`.
        direction: &'static str,
    },
    /// A machine's resident data exceeded its local memory `S` at a
    /// checkpoint.
    MemoryExceeded {
        /// Machine over budget.
        machine: usize,
        /// Resident words at the checkpoint.
        words: usize,
        /// The per-machine capacity `S`.
        capacity: usize,
    },
    /// A message was addressed to a machine id `>= num_machines`.
    UnknownMachine {
        /// The invalid destination.
        machine: usize,
        /// Number of machines in the cluster.
        num_machines: usize,
    },
    /// An operation received per-machine input of the wrong width.
    WrongClusterWidth {
        /// Expected number of machines.
        expected: usize,
        /// Number of per-machine entries supplied.
        found: usize,
    },
    /// The summed global-memory peak of a parallel instance group exceeded
    /// the group's aggregate capacity (the union cluster hosting every
    /// instance's disjoint section cannot fit the composition).
    GroupMemoryExceeded {
        /// Number of instances composed in the group.
        instances: usize,
        /// Aggregate peak resident words across all instances.
        words: usize,
        /// Aggregate capacity: the sum of every instance's `M · S`.
        capacity: usize,
    },
    /// A shard worker process of the multi-process backend died (its pipe
    /// closed or it exited) and respawn-and-replay recovery was exhausted.
    WorkerCrashed {
        /// Index of the crashed shard worker.
        worker: usize,
        /// Protocol phase in flight: `"spawn"`, `"route"`, or `"fill"`.
        phase: &'static str,
    },
    /// A shard worker process failed to answer within the supervision
    /// deadline and respawn-and-replay recovery was exhausted.
    WorkerTimeout {
        /// Index of the unresponsive shard worker.
        worker: usize,
        /// Protocol phase in flight: `"spawn"`, `"route"`, or `"fill"`.
        phase: &'static str,
        /// The deadline that expired, in milliseconds.
        timeout_ms: u64,
    },
    /// A shard worker sent bytes that violate the framed wire protocol
    /// (bad magic/version, checksum mismatch, malformed payload) and
    /// recovery was exhausted.
    Protocol {
        /// Index of the offending shard worker.
        worker: usize,
        /// What was violated.
        detail: &'static str,
    },
}

impl fmt::Display for MpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpcError::CapacityExceeded { machine: Some(machine), round, words, capacity, direction } => write!(
                f,
                "machine {machine} would {direction} {words} words in round {round}, capacity is {capacity}"
            ),
            MpcError::CapacityExceeded { machine: None, round, words, capacity, direction } => write!(
                f,
                "worst-loaded machine would {direction} {words} words in round {round}, capacity is {capacity}"
            ),
            MpcError::MemoryExceeded { machine, words, capacity } => write!(
                f,
                "machine {machine} holds {words} words, local memory is {capacity}"
            ),
            MpcError::UnknownMachine { machine, num_machines } => {
                write!(f, "destination machine {machine} out of range (cluster has {num_machines})")
            }
            MpcError::WrongClusterWidth { expected, found } => {
                write!(f, "per-machine input has {found} entries, cluster has {expected} machines")
            }
            MpcError::GroupMemoryExceeded { instances, words, capacity } => write!(
                f,
                "instance group of {instances} holds {words} words combined, aggregate capacity is {capacity}"
            ),
            MpcError::WorkerCrashed { worker, phase } => {
                write!(f, "shard worker {worker} crashed during {phase} and recovery was exhausted")
            }
            MpcError::WorkerTimeout { worker, phase, timeout_ms } => write!(
                f,
                "shard worker {worker} unresponsive during {phase} for {timeout_ms} ms and recovery was exhausted"
            ),
            MpcError::Protocol { worker, detail } => {
                write!(f, "shard worker {worker} violated the wire protocol: {detail}")
            }
        }
    }
}

impl StdError for MpcError {}

/// Convenience result alias for cluster operations.
pub type Result<T> = std::result::Result<T, MpcError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_capacity() {
        let e = MpcError::CapacityExceeded {
            machine: Some(2),
            round: 9,
            words: 100,
            capacity: 64,
            direction: "send",
        };
        let s = e.to_string();
        assert!(s.contains("machine 2"));
        assert!(s.contains("send 100 words"));
        assert!(s.contains("round 9"));
    }

    #[test]
    fn display_capacity_unattributed() {
        // Aggregate charges (charge_rounds) know only the worst per-machine
        // load, not which machine carries it — no sentinel machine id.
        let e = MpcError::CapacityExceeded {
            machine: None,
            round: 3,
            words: 70,
            capacity: 64,
            direction: "send",
        };
        let s = e.to_string();
        assert!(s.contains("worst-loaded machine"));
        assert!(!s.contains("18446744073709551615"), "sentinel leaked: {s}");
    }

    #[test]
    fn display_group_memory() {
        let e = MpcError::GroupMemoryExceeded {
            instances: 4,
            words: 900,
            capacity: 512,
        };
        assert_eq!(
            e.to_string(),
            "instance group of 4 holds 900 words combined, aggregate capacity is 512"
        );
    }

    #[test]
    fn error_is_send_sync_static() {
        fn check<T: Send + Sync + 'static>() {}
        check::<MpcError>();
    }

    #[test]
    fn display_worker_errors() {
        let e = MpcError::WorkerCrashed {
            worker: 3,
            phase: "route",
        };
        assert_eq!(
            e.to_string(),
            "shard worker 3 crashed during route and recovery was exhausted"
        );
        let e = MpcError::WorkerTimeout {
            worker: 0,
            phase: "fill",
            timeout_ms: 250,
        };
        let s = e.to_string();
        assert!(s.contains("worker 0"));
        assert!(s.contains("fill"));
        assert!(s.contains("250 ms"));
        let e = MpcError::Protocol {
            worker: 1,
            detail: "frame checksum mismatch",
        };
        assert_eq!(
            e.to_string(),
            "shard worker 1 violated the wire protocol: frame checksum mismatch"
        );
    }

    #[test]
    fn display_memory() {
        let e = MpcError::MemoryExceeded {
            machine: 0,
            words: 10,
            capacity: 5,
        };
        assert_eq!(e.to_string(), "machine 0 holds 10 words, local memory is 5");
    }
}
