//! Word-size accounting and the word-stream payload codec.
//!
//! The MPC model measures memory and communication in *words* of `O(log n)`
//! bits — one word describes a vertex id, an edge endpoint, a layer number,
//! etc. (paper §1.1). Everything the simulator meters implements
//! [`WordSized`].
//!
//! Messages that cross a *process* boundary (the multi-process
//! [`ProcessBackend`](crate::ProcessBackend)) additionally implement
//! [`WirePayload`]: a canonical, self-delimiting encoding into `u64` words
//! that round-trips losslessly and rejects non-canonical streams on decode.
//! Every type the algorithms exchange — scalars, small tuples, options,
//! vectors — has an implementation, mirroring the [`WordSized`] impls.

/// Types whose transmission/storage cost in MPC words is known.
///
/// Implementations must be consistent: the same value always reports the
/// same size, and container impls sum their elements.
///
/// # Examples
///
/// ```
/// use dgo_mpc::WordSized;
///
/// assert_eq!(5u32.words(), 1);
/// assert_eq!((1u64, 2u64).words(), 2);
/// assert_eq!(vec![1u32, 2, 3].words(), 3);
/// ```
pub trait WordSized {
    /// Size of this value in MPC words.
    fn words(&self) -> usize;
}

macro_rules! impl_word_sized_scalar {
    ($($t:ty),*) => {
        $(impl WordSized for $t {
            fn words(&self) -> usize { 1 }
        })*
    };
}

impl_word_sized_scalar!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl<A: WordSized, B: WordSized> WordSized for (A, B) {
    fn words(&self) -> usize {
        self.0.words() + self.1.words()
    }
}

impl<A: WordSized, B: WordSized, C: WordSized> WordSized for (A, B, C) {
    fn words(&self) -> usize {
        self.0.words() + self.1.words() + self.2.words()
    }
}

impl<A: WordSized, B: WordSized, C: WordSized, D: WordSized> WordSized for (A, B, C, D) {
    fn words(&self) -> usize {
        self.0.words() + self.1.words() + self.2.words() + self.3.words()
    }
}

impl<T: WordSized> WordSized for Vec<T> {
    fn words(&self) -> usize {
        self.iter().map(WordSized::words).sum()
    }
}

impl<T: WordSized> WordSized for &T {
    fn words(&self) -> usize {
        (*self).words()
    }
}

impl<T: WordSized> WordSized for Option<T> {
    fn words(&self) -> usize {
        // An Option always costs at least the discriminant word.
        1 + self.as_ref().map_or(0, WordSized::words)
    }
}

/// Total word count of a slice of sized values.
pub fn total_words<T: WordSized>(items: &[T]) -> usize {
    items.iter().map(WordSized::words).sum()
}

/// Canonical word-stream codec for exchange payloads.
///
/// A value encodes to a self-delimiting sequence of `u64` words and decodes
/// back from the front of a word slice, advancing it. The codec is strict:
/// `decode_words` returns `None` for any stream `encode_words` could not have
/// produced (out-of-range scalars, bad discriminants, truncation), so
/// corruption on a process boundary surfaces as a typed error instead of a
/// silently different value.
///
/// The encoded length may exceed [`WordSized::words`] (containers carry a
/// length prefix); model metering always charges `words()`, never the
/// transport length.
///
/// # Examples
///
/// ```
/// use dgo_mpc::WirePayload;
///
/// let mut words = Vec::new();
/// (7u64, 3u32).encode_words(&mut words);
/// let mut rest: &[u64] = &words;
/// assert_eq!(<(u64, u32)>::decode_words(&mut rest), Some((7, 3)));
/// assert!(rest.is_empty());
/// ```
pub trait WirePayload: WordSized + Sized {
    /// Appends this value's canonical word encoding to `out`.
    fn encode_words(&self, out: &mut Vec<u64>);

    /// Decodes one value from the front of `words`, advancing the slice past
    /// the consumed prefix. `None` if the stream is truncated or not
    /// canonical; `words` is then in an unspecified position.
    fn decode_words(words: &mut &[u64]) -> Option<Self>;
}

/// Pops the next word off the front of the slice.
#[inline]
fn take_word(words: &mut &[u64]) -> Option<u64> {
    let (&first, rest) = words.split_first()?;
    *words = rest;
    Some(first)
}

macro_rules! impl_wire_payload_unsigned {
    ($($t:ty),*) => {
        $(impl WirePayload for $t {
            fn encode_words(&self, out: &mut Vec<u64>) {
                out.push(*self as u64);
            }
            fn decode_words(words: &mut &[u64]) -> Option<Self> {
                <$t>::try_from(take_word(words)?).ok()
            }
        })*
    };
}

macro_rules! impl_wire_payload_signed {
    ($($t:ty),*) => {
        $(impl WirePayload for $t {
            fn encode_words(&self, out: &mut Vec<u64>) {
                // Sign-extend through i64 so the one-word form is canonical.
                out.push(*self as i64 as u64);
            }
            fn decode_words(words: &mut &[u64]) -> Option<Self> {
                <$t>::try_from(take_word(words)? as i64).ok()
            }
        })*
    };
}

impl_wire_payload_unsigned!(u8, u16, u32, u64, usize);
impl_wire_payload_signed!(i8, i16, i32, i64, isize);

impl WirePayload for bool {
    fn encode_words(&self, out: &mut Vec<u64>) {
        out.push(u64::from(*self));
    }
    fn decode_words(words: &mut &[u64]) -> Option<Self> {
        match take_word(words)? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

impl<A: WirePayload, B: WirePayload> WirePayload for (A, B) {
    fn encode_words(&self, out: &mut Vec<u64>) {
        self.0.encode_words(out);
        self.1.encode_words(out);
    }
    fn decode_words(words: &mut &[u64]) -> Option<Self> {
        Some((A::decode_words(words)?, B::decode_words(words)?))
    }
}

impl<A: WirePayload, B: WirePayload, C: WirePayload> WirePayload for (A, B, C) {
    fn encode_words(&self, out: &mut Vec<u64>) {
        self.0.encode_words(out);
        self.1.encode_words(out);
        self.2.encode_words(out);
    }
    fn decode_words(words: &mut &[u64]) -> Option<Self> {
        Some((
            A::decode_words(words)?,
            B::decode_words(words)?,
            C::decode_words(words)?,
        ))
    }
}

impl<A: WirePayload, B: WirePayload, C: WirePayload, D: WirePayload> WirePayload for (A, B, C, D) {
    fn encode_words(&self, out: &mut Vec<u64>) {
        self.0.encode_words(out);
        self.1.encode_words(out);
        self.2.encode_words(out);
        self.3.encode_words(out);
    }
    fn decode_words(words: &mut &[u64]) -> Option<Self> {
        Some((
            A::decode_words(words)?,
            B::decode_words(words)?,
            C::decode_words(words)?,
            D::decode_words(words)?,
        ))
    }
}

impl<T: WirePayload> WirePayload for Option<T> {
    fn encode_words(&self, out: &mut Vec<u64>) {
        match self {
            None => out.push(0),
            Some(value) => {
                out.push(1);
                value.encode_words(out);
            }
        }
    }
    fn decode_words(words: &mut &[u64]) -> Option<Self> {
        match take_word(words)? {
            0 => Some(None),
            1 => Some(Some(T::decode_words(words)?)),
            _ => None,
        }
    }
}

impl<T: WirePayload> WirePayload for Vec<T> {
    fn encode_words(&self, out: &mut Vec<u64>) {
        out.push(self.len() as u64);
        for item in self {
            item.encode_words(out);
        }
    }
    fn decode_words(words: &mut &[u64]) -> Option<Self> {
        let len = take_word(words)?;
        // Each element costs at least one word, so a length beyond the
        // remaining stream can never be satisfied — reject before sizing any
        // allocation off a corrupted prefix.
        if len as usize > words.len() {
            return None;
        }
        let mut items = Vec::with_capacity(len as usize);
        for _ in 0..len {
            items.push(T::decode_words(words)?);
        }
        Some(items)
    }
}

/// Bytes one MPC word carries when a byte-granular stream (e.g. the
/// `dgo_core::wire` varint codec) is packed into the word model: the model's
/// `O(log n)` words are realized as `u64` here, so eight bytes ride per word.
pub const BYTES_PER_WORD: usize = 8;

/// Words a packed byte stream of `bytes` bytes occupies: the stream is laid
/// into whole words ([`BYTES_PER_WORD`] bytes each), the last word
/// zero-padded — the charging rule for byte-granular wire encodings.
pub const fn packed_words(bytes: usize) -> usize {
    bytes.div_ceil(BYTES_PER_WORD)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_are_one_word() {
        assert_eq!(0u8.words(), 1);
        assert_eq!(u64::MAX.words(), 1);
        assert_eq!(true.words(), 1);
        assert_eq!((-3i64).words(), 1);
    }

    #[test]
    fn tuples_sum() {
        assert_eq!((1u32, 2u32).words(), 2);
        assert_eq!((1u32, 2u32, 3u32).words(), 3);
        assert_eq!((1u32, 2u32, 3u32, 4u32).words(), 4);
        assert_eq!(((1u32, 2u32), 3u32).words(), 3);
    }

    #[test]
    fn vec_sums_elements() {
        let v: Vec<(u32, u32)> = vec![(1, 2), (3, 4)];
        assert_eq!(v.words(), 4);
        let empty: Vec<u32> = vec![];
        assert_eq!(empty.words(), 0);
    }

    #[test]
    fn option_counts_discriminant() {
        assert_eq!(None::<u32>.words(), 1);
        assert_eq!(Some(7u32).words(), 2);
    }

    #[test]
    fn total_words_over_slice() {
        assert_eq!(total_words(&[1u32, 2, 3]), 3);
        assert_eq!(total_words::<u32>(&[]), 0);
    }

    #[test]
    fn reference_delegates() {
        let x = 5u64;
        assert_eq!(x.words(), 1);
    }

    #[test]
    fn packed_words_rounds_up() {
        assert_eq!(packed_words(0), 0);
        assert_eq!(packed_words(1), 1);
        assert_eq!(packed_words(BYTES_PER_WORD), 1);
        assert_eq!(packed_words(BYTES_PER_WORD + 1), 2);
        assert_eq!(packed_words(5 * BYTES_PER_WORD), 5);
    }

    fn round_trip<T: WirePayload + PartialEq + std::fmt::Debug>(value: T) {
        let mut words = Vec::new();
        value.encode_words(&mut words);
        let mut rest: &[u64] = &words;
        assert_eq!(T::decode_words(&mut rest), Some(value));
        assert!(rest.is_empty(), "decode must consume the whole encoding");
    }

    #[test]
    fn payload_scalars_round_trip() {
        round_trip(0u8);
        round_trip(u8::MAX);
        round_trip(u32::MAX);
        round_trip(u64::MAX);
        round_trip(usize::MAX);
        round_trip(-1i8);
        round_trip(i32::MIN);
        round_trip(i64::MIN);
        round_trip(true);
        round_trip(false);
    }

    #[test]
    fn payload_compounds_round_trip() {
        round_trip((5u64, 9u64));
        round_trip((1u32, -2i64, 3usize));
        round_trip((1u8, 2u16, 3u32, 4u64));
        round_trip(Some((7u64, 8u64)));
        round_trip(None::<u64>);
        round_trip(vec![1u64, 2, 3]);
        round_trip(Vec::<u32>::new());
        round_trip(vec![(1u64, 2u64), (3, 4)]);
    }

    #[test]
    fn payload_decode_is_strict() {
        // Out-of-range scalar.
        let words = [300u64];
        assert_eq!(u8::decode_words(&mut &words[..]), None);
        // Bad bool / Option discriminants.
        assert_eq!(bool::decode_words(&mut &[2u64][..]), None);
        assert_eq!(Option::<u64>::decode_words(&mut &[2u64, 0][..]), None);
        // Truncated tuple and vector.
        assert_eq!(<(u64, u64)>::decode_words(&mut &[1u64][..]), None);
        assert_eq!(Vec::<u64>::decode_words(&mut &[3u64, 1, 2][..]), None);
        // Vector length far beyond the stream must not allocate or loop.
        assert_eq!(Vec::<u64>::decode_words(&mut &[u64::MAX, 0][..]), None);
        // Empty stream.
        assert_eq!(u64::decode_words(&mut &[][..]), None);
    }

    #[test]
    fn payload_signed_sign_extends() {
        let mut words = Vec::new();
        (-1i32).encode_words(&mut words);
        assert_eq!(words, vec![u64::MAX]);
        assert_eq!(i32::decode_words(&mut &words[..]), Some(-1));
        // A value outside i32 range is rejected, not wrapped.
        let too_big = [(i32::MAX as i64 + 1) as u64];
        assert_eq!(i32::decode_words(&mut &too_big[..]), None);
    }

    #[test]
    fn payload_decode_advances_slice() {
        let mut words = Vec::new();
        (4u64, 5u64).encode_words(&mut words);
        9u64.encode_words(&mut words);
        let mut rest: &[u64] = &words;
        assert_eq!(<(u64, u64)>::decode_words(&mut rest), Some((4, 5)));
        assert_eq!(rest, &[9u64]);
    }
}
