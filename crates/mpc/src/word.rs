//! Word-size accounting.
//!
//! The MPC model measures memory and communication in *words* of `O(log n)`
//! bits — one word describes a vertex id, an edge endpoint, a layer number,
//! etc. (paper §1.1). Everything the simulator meters implements
//! [`WordSized`].

/// Types whose transmission/storage cost in MPC words is known.
///
/// Implementations must be consistent: the same value always reports the
/// same size, and container impls sum their elements.
///
/// # Examples
///
/// ```
/// use dgo_mpc::WordSized;
///
/// assert_eq!(5u32.words(), 1);
/// assert_eq!((1u64, 2u64).words(), 2);
/// assert_eq!(vec![1u32, 2, 3].words(), 3);
/// ```
pub trait WordSized {
    /// Size of this value in MPC words.
    fn words(&self) -> usize;
}

macro_rules! impl_word_sized_scalar {
    ($($t:ty),*) => {
        $(impl WordSized for $t {
            fn words(&self) -> usize { 1 }
        })*
    };
}

impl_word_sized_scalar!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl<A: WordSized, B: WordSized> WordSized for (A, B) {
    fn words(&self) -> usize {
        self.0.words() + self.1.words()
    }
}

impl<A: WordSized, B: WordSized, C: WordSized> WordSized for (A, B, C) {
    fn words(&self) -> usize {
        self.0.words() + self.1.words() + self.2.words()
    }
}

impl<A: WordSized, B: WordSized, C: WordSized, D: WordSized> WordSized for (A, B, C, D) {
    fn words(&self) -> usize {
        self.0.words() + self.1.words() + self.2.words() + self.3.words()
    }
}

impl<T: WordSized> WordSized for Vec<T> {
    fn words(&self) -> usize {
        self.iter().map(WordSized::words).sum()
    }
}

impl<T: WordSized> WordSized for &T {
    fn words(&self) -> usize {
        (*self).words()
    }
}

impl<T: WordSized> WordSized for Option<T> {
    fn words(&self) -> usize {
        // An Option always costs at least the discriminant word.
        1 + self.as_ref().map_or(0, WordSized::words)
    }
}

/// Total word count of a slice of sized values.
pub fn total_words<T: WordSized>(items: &[T]) -> usize {
    items.iter().map(WordSized::words).sum()
}

/// Bytes one MPC word carries when a byte-granular stream (e.g. the
/// `dgo_core::wire` varint codec) is packed into the word model: the model's
/// `O(log n)` words are realized as `u64` here, so eight bytes ride per word.
pub const BYTES_PER_WORD: usize = 8;

/// Words a packed byte stream of `bytes` bytes occupies: the stream is laid
/// into whole words ([`BYTES_PER_WORD`] bytes each), the last word
/// zero-padded — the charging rule for byte-granular wire encodings.
pub const fn packed_words(bytes: usize) -> usize {
    bytes.div_ceil(BYTES_PER_WORD)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_are_one_word() {
        assert_eq!(0u8.words(), 1);
        assert_eq!(u64::MAX.words(), 1);
        assert_eq!(true.words(), 1);
        assert_eq!((-3i64).words(), 1);
    }

    #[test]
    fn tuples_sum() {
        assert_eq!((1u32, 2u32).words(), 2);
        assert_eq!((1u32, 2u32, 3u32).words(), 3);
        assert_eq!((1u32, 2u32, 3u32, 4u32).words(), 4);
        assert_eq!(((1u32, 2u32), 3u32).words(), 3);
    }

    #[test]
    fn vec_sums_elements() {
        let v: Vec<(u32, u32)> = vec![(1, 2), (3, 4)];
        assert_eq!(v.words(), 4);
        let empty: Vec<u32> = vec![];
        assert_eq!(empty.words(), 0);
    }

    #[test]
    fn option_counts_discriminant() {
        assert_eq!(None::<u32>.words(), 1);
        assert_eq!(Some(7u32).words(), 2);
    }

    #[test]
    fn total_words_over_slice() {
        assert_eq!(total_words(&[1u32, 2, 3]), 3);
        assert_eq!(total_words::<u32>(&[]), 0);
    }

    #[test]
    fn reference_delegates() {
        let x = 5u64;
        assert_eq!(x.words(), 1);
    }

    #[test]
    fn packed_words_rounds_up() {
        assert_eq!(packed_words(0), 0);
        assert_eq!(packed_words(1), 1);
        assert_eq!(packed_words(BYTES_PER_WORD), 1);
        assert_eq!(packed_words(BYTES_PER_WORD + 1), 2);
        assert_eq!(packed_words(5 * BYTES_PER_WORD), 5);
    }
}
