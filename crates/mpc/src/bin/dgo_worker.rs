//! `dgo-worker` — shard worker of the multi-process execution backend.
//!
//! Spawned by [`dgo_mpc::ProcessBackend`], one per machine shard; speaks the
//! framed protocol on stdin/stdout and exits when the parent closes the
//! request pipe. Not intended for standalone use.

fn main() -> ! {
    dgo_mpc::worker_main()
}
