//! The `dgo-lint` CLI.
//!
//! ```text
//! dgo-lint [--root <dir>] [--config <file>] [--format text|json] [--out <file>]
//! ```
//!
//! Exit codes: `0` clean, `1` diagnostics found, `2` usage or config error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

struct Cli {
    root: PathBuf,
    config: Option<PathBuf>,
    format: Format,
    out: Option<PathBuf>,
}

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        root: PathBuf::from("."),
        config: None,
        format: Format::Text,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} expects a value"));
        match arg.as_str() {
            "--root" => cli.root = PathBuf::from(value("--root")?),
            "--config" => cli.config = Some(PathBuf::from(value("--config")?)),
            "--out" => cli.out = Some(PathBuf::from(value("--out")?)),
            "--format" => {
                cli.format = match value("--format")?.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}` (text|json)")),
                }
            }
            "--help" | "-h" => {
                println!(
                    "dgo-lint [--root <dir>] [--config <file>] [--format text|json] [--out <file>]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(cli)
}

fn run() -> Result<bool, String> {
    let cli = parse_args()?;
    let config_path = cli
        .config
        .clone()
        .unwrap_or_else(|| cli.root.join("lint.toml"));
    let config = dgo_lint::load_config(&config_path)?;
    let report = dgo_lint::lint_workspace(&cli.root, &config)?;
    let rendered = match cli.format {
        Format::Json => report.to_json(),
        Format::Text => {
            let mut text = String::new();
            for d in &report.diagnostics {
                text.push_str(&d.render());
                text.push('\n');
            }
            text.push_str(&format!(
                "dgo-lint: {} file(s) scanned, {} diagnostic(s)\n",
                report.files.len(),
                report.diagnostics.len()
            ));
            text
        }
    };
    if let Some(out) = &cli.out {
        std::fs::write(out, &rendered)
            .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    } else {
        print!("{rendered}");
    }
    Ok(report.is_clean())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(message) => {
            eprintln!("dgo-lint: error: {message}");
            ExitCode::from(2)
        }
    }
}
