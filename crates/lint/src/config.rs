//! `lint.toml` parsing — a hand-rolled subset of TOML, for the same reason
//! the lexer is hand-rolled: the linter must build offline with zero
//! dependencies.
//!
//! Supported syntax (everything the checked-in `lint.toml` needs):
//!
//! * `[[rule]]` table-array headers;
//! * `key = "string"`, `key = true/false`, `key = 123`;
//! * `key = ["a", "b"]` string arrays (single-line);
//! * `#` comments and blank lines.
//!
//! Anything else is a hard error — a config typo must fail loudly, not
//! silently disable a rule.

use std::fmt;

/// Scoping and metadata for one lint rule, as declared in `lint.toml`.
#[derive(Debug, Clone)]
pub struct RuleConfig {
    /// Rule id, e.g. `"R1"`. Must match a detector the engine knows.
    pub id: String,
    /// Human summary shown in diagnostics.
    pub summary: String,
    /// Whether the rule runs at all.
    pub enabled: bool,
    /// Path prefixes (relative, `/`-separated) the rule is limited to.
    /// Empty means the whole workspace.
    pub include: Vec<String>,
    /// Path prefixes the rule never fires in (sanctioned call sites).
    pub exclude: Vec<String>,
    /// Whether `#[cfg(test)]` regions, `#[test]` fns, and `tests/` files
    /// are skipped. Most rules guard production determinism and skip test
    /// code; R5 (unsafe audit) applies everywhere.
    pub skip_test_code: bool,
}

impl RuleConfig {
    fn new(id: String) -> Self {
        RuleConfig {
            id,
            summary: String::new(),
            enabled: true,
            include: Vec::new(),
            exclude: Vec::new(),
            skip_test_code: true,
        }
    }

    /// Whether `path` (workspace-relative, `/`-separated) is in this rule's
    /// scope: inside an `include` prefix (if any) and outside every
    /// `exclude` prefix.
    pub fn applies_to(&self, path: &str) -> bool {
        if !self.include.is_empty() && !self.include.iter().any(|p| path_has_prefix(path, p)) {
            return false;
        }
        !self.exclude.iter().any(|p| path_has_prefix(path, p))
    }
}

/// Prefix match on whole path components: `crates/mpc` matches
/// `crates/mpc/src/lib.rs` but not `crates/mpc2/src/lib.rs`.
fn path_has_prefix(path: &str, prefix: &str) -> bool {
    let prefix = prefix.trim_end_matches('/');
    path == prefix
        || path
            .strip_prefix(prefix)
            .is_some_and(|rest| rest.starts_with('/'))
}

/// The parsed `lint.toml`.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// All declared rules, in file order.
    pub rules: Vec<RuleConfig>,
}

impl Config {
    /// The config entry for `id`, if declared.
    pub fn rule(&self, id: &str) -> Option<&RuleConfig> {
        self.rules.iter().find(|r| r.id == id)
    }
}

/// A config parse failure with its 1-based line number.
#[derive(Debug)]
pub struct ConfigError {
    /// 1-based line in the config file.
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

/// One parsed value on the right of `=`.
enum Value {
    Str(String),
    Bool(bool),
    /// Accepted by the grammar so future numeric knobs parse, though no
    /// current key consumes one.
    Int(#[allow(dead_code)] i64),
    StrArray(Vec<String>),
}

/// Parses the config source. See the module docs for the accepted subset.
pub fn parse(source: &str) -> Result<Config, ConfigError> {
    let mut config = Config::default();
    let mut current: Option<RuleConfig> = None;
    for (idx, raw) in source.lines().enumerate() {
        let lineno = (idx + 1) as u32;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[rule]]" {
            if let Some(done) = current.take() {
                config.rules.push(finish_rule(done, lineno)?);
            }
            current = Some(RuleConfig::new(String::new()));
            continue;
        }
        if line.starts_with('[') {
            return Err(ConfigError {
                line: lineno,
                message: format!("unsupported table header `{line}` (only [[rule]] is known)"),
            });
        }
        let (key, value) = parse_assignment(line, lineno)?;
        let rule = current.as_mut().ok_or_else(|| ConfigError {
            line: lineno,
            message: format!("key `{key}` outside any [[rule]] table"),
        })?;
        apply_key(rule, &key, value, lineno)?;
    }
    if let Some(done) = current.take() {
        let last_line = source.lines().count() as u32;
        config.rules.push(finish_rule(done, last_line)?);
    }
    Ok(config)
}

fn finish_rule(rule: RuleConfig, lineno: u32) -> Result<RuleConfig, ConfigError> {
    if rule.id.is_empty() {
        return Err(ConfigError {
            line: lineno,
            message: "[[rule]] is missing its `id`".to_string(),
        });
    }
    Ok(rule)
}

fn apply_key(
    rule: &mut RuleConfig,
    key: &str,
    value: Value,
    lineno: u32,
) -> Result<(), ConfigError> {
    let mismatch = |expected: &str| ConfigError {
        line: lineno,
        message: format!("`{key}` expects {expected}"),
    };
    match key {
        "id" => match value {
            Value::Str(s) => rule.id = s,
            _ => return Err(mismatch("a string")),
        },
        "summary" => match value {
            Value::Str(s) => rule.summary = s,
            _ => return Err(mismatch("a string")),
        },
        "enabled" => match value {
            Value::Bool(b) => rule.enabled = b,
            _ => return Err(mismatch("a bool")),
        },
        "include" => match value {
            Value::StrArray(v) => rule.include = v,
            _ => return Err(mismatch("a string array")),
        },
        "exclude" => match value {
            Value::StrArray(v) => rule.exclude = v,
            _ => return Err(mismatch("a string array")),
        },
        "skip_test_code" => match value {
            Value::Bool(b) => rule.skip_test_code = b,
            _ => return Err(mismatch("a bool")),
        },
        other => {
            return Err(ConfigError {
                line: lineno,
                message: format!("unknown key `{other}`"),
            })
        }
    }
    Ok(())
}

/// Strips a `#` comment, respecting `#` inside double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_assignment(line: &str, lineno: u32) -> Result<(String, Value), ConfigError> {
    let (key, rest) = line.split_once('=').ok_or_else(|| ConfigError {
        line: lineno,
        message: format!("expected `key = value`, got `{line}`"),
    })?;
    let key = key.trim().to_string();
    let value = parse_value(rest.trim(), lineno)?;
    Ok((key, value))
}

fn parse_value(text: &str, lineno: u32) -> Result<Value, ConfigError> {
    if text == "true" {
        return Ok(Value::Bool(true));
    }
    if text == "false" {
        return Ok(Value::Bool(false));
    }
    if text.starts_with('"') {
        return Ok(Value::Str(parse_string(text, lineno)?.0));
    }
    if text.starts_with('[') {
        if !text.ends_with(']') {
            return Err(ConfigError {
                line: lineno,
                message: "arrays must open and close on one line".to_string(),
            });
        }
        let mut items = Vec::new();
        let mut rest = text[1..text.len() - 1].trim();
        while !rest.is_empty() {
            let (item, consumed) = parse_string(rest, lineno)?;
            items.push(item);
            rest = rest[consumed..].trim_start();
            if let Some(after) = rest.strip_prefix(',') {
                rest = after.trim_start();
            } else if !rest.is_empty() {
                return Err(ConfigError {
                    line: lineno,
                    message: "expected `,` between array items".to_string(),
                });
            }
        }
        return Ok(Value::StrArray(items));
    }
    text.parse::<i64>()
        .map(Value::Int)
        .map_err(|_| ConfigError {
            line: lineno,
            message: format!("cannot parse value `{text}`"),
        })
}

/// Parses a leading `"…"`; returns the unescaped content and the number of
/// bytes consumed from `text`.
fn parse_string(text: &str, lineno: u32) -> Result<(String, usize), ConfigError> {
    let mut chars = text.char_indices();
    match chars.next() {
        Some((_, '"')) => {}
        _ => {
            return Err(ConfigError {
                line: lineno,
                message: format!("expected a quoted string at `{text}`"),
            })
        }
    }
    let mut out = String::new();
    let mut escaped = false;
    for (i, c) in chars {
        if escaped {
            out.push(match c {
                'n' => '\n',
                't' => '\t',
                other => other,
            });
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == '"' {
            return Ok((out, i + c.len_utf8()));
        } else {
            out.push(c);
        }
    }
    Err(ConfigError {
        line: lineno,
        message: "unterminated string".to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_rule_tables() {
        let cfg = parse(
            r#"
# top comment
[[rule]]
id = "R1"
summary = "no raw threads"
include = ["crates", "src"]
exclude = ["crates/compat/rayon"]

[[rule]]
id = "R5"
skip_test_code = false
"#,
        )
        .expect("valid config");
        assert_eq!(cfg.rules.len(), 2);
        let r1 = cfg.rule("R1").expect("R1 present");
        assert_eq!(r1.summary, "no raw threads");
        assert_eq!(r1.include, vec!["crates", "src"]);
        assert!(r1.skip_test_code);
        let r5 = cfg.rule("R5").expect("R5 present");
        assert!(!r5.skip_test_code);
        assert!(r5.enabled);
    }

    #[test]
    fn scope_matching_respects_components() {
        let mut rule = RuleConfig::new("R0".to_string());
        rule.include = vec!["crates/mpc".to_string()];
        assert!(rule.applies_to("crates/mpc/src/lib.rs"));
        assert!(!rule.applies_to("crates/mpc2/src/lib.rs"));
        rule.exclude = vec!["crates/mpc/src/tuning.rs".to_string()];
        assert!(!rule.applies_to("crates/mpc/src/tuning.rs"));
    }

    #[test]
    fn rejects_unknown_keys_and_orphan_keys() {
        assert!(parse("[[rule]]\nid = \"R1\"\nbogus = 1\n").is_err());
        assert!(parse("id = \"R1\"\n").is_err());
        assert!(parse("[[rule]]\nsummary = \"no id\"\n").is_err());
    }

    #[test]
    fn comments_and_hash_in_strings() {
        let cfg = parse("[[rule]]\nid = \"R#1\" # trailing\n").expect("valid");
        assert_eq!(cfg.rules[0].id, "R#1");
    }
}
