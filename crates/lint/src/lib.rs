//! `dgo-lint` — an offline, zero-dependency invariant linter for the dgo
//! workspace.
//!
//! The workspace's conformance bar (results, errors, and metrics
//! bit-identical across every backend × parallelism tier) rests on
//! contracts no compiler checks: parallelism only through the compat-rayon
//! pool, knob reads only in `dgo_mpc::tuning`, no hash-ordered iteration on
//! metered paths, audited `unsafe`, typed errors on supervised paths, and
//! explicit atomic orderings. This crate enforces them statically: a
//! hand-rolled lexer ([`lexer`]) feeds a token-sequence rule engine
//! ([`rules`]) scoped by a checked-in config ([`config`], `lint.toml`).
//!
//! Run it as `cargo run -p dgo-lint`, or through the workspace-clean gate
//! in `tests/lint_clean.rs`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod lexer;
pub mod rules;

use std::fs;
use std::path::{Path, PathBuf};

pub use config::Config;
pub use rules::Diagnostic;

/// The outcome of linting a whole workspace.
#[derive(Debug)]
pub struct Report {
    /// Workspace root the walk started from.
    pub root: String,
    /// Workspace-relative paths of every `.rs` file scanned, sorted.
    pub files: Vec<String>,
    /// All diagnostics, sorted by (path, line, col, rule).
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Whether the workspace is clean.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Renders the machine-readable JSON report (hand-rolled writer — the
    /// crate takes no dependencies).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"root\": {},\n", json_string(&self.root)));
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files.len()));
        out.push_str(&format!(
            "  \"diagnostic_count\": {},\n",
            self.diagnostics.len()
        ));
        out.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"col\": {}, \"message\": {}}}",
                json_string(&d.rule),
                json_string(&d.path),
                d.line,
                d.col,
                json_string(&d.message)
            ));
        }
        if !self.diagnostics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Escapes a string for JSON output.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Loads and parses `lint.toml` from `path`.
pub fn load_config(path: &Path) -> Result<Config, String> {
    let text = fs::read_to_string(path)
        .map_err(|e| format!("cannot read config {}: {e}", path.display()))?;
    config::parse(&text).map_err(|e| e.to_string())
}

/// Lints every workspace `.rs` file under `root` with `config`.
///
/// The walk is deterministic (sorted), and skips `target/`, hidden
/// directories, and anything named `fixtures` (lint-rule fixtures are
/// deliberate violations).
pub fn lint_workspace(root: &Path, config: &Config) -> Result<Report, String> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut diagnostics = Vec::new();
    for rel in &files {
        let source =
            fs::read_to_string(root.join(rel)).map_err(|e| format!("cannot read {rel}: {e}"))?;
        diagnostics.extend(rules::lint_source(rel, &source, config)?);
    }
    diagnostics
        .sort_by(|a, b| (&a.path, a.line, a.col, &a.rule).cmp(&(&b.path, b.line, b.col, &b.rule)));
    Ok(Report {
        root: root.display().to_string(),
        files,
        diagnostics,
    })
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), String> {
    let entries =
        fs::read_dir(dir).map_err(|e| format!("cannot read dir {}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("walk error under {}: {e}", dir.display()))?;
        paths.push(entry.path());
    }
    paths.sort();
    for path in paths {
        let name = match path.file_name().and_then(|n| n.to_str()) {
            Some(n) => n,
            None => continue, // non-UTF-8 name: not one of ours
        };
        if path.is_dir() {
            if name.starts_with('.') || name == "target" || name == "fixtures" {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| format!("path {} escapes root: {e}", path.display()))?;
            let rel = rel
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn json_report_shape() {
        let report = Report {
            root: "/ws".to_string(),
            files: vec!["src/lib.rs".to_string()],
            diagnostics: vec![Diagnostic {
                rule: "R1".to_string(),
                path: "src/lib.rs".to_string(),
                line: 3,
                col: 9,
                message: "raw `thread::spawn`".to_string(),
            }],
        };
        let json = report.to_json();
        assert!(json.contains("\"diagnostic_count\": 1"));
        assert!(json.contains("\"rule\": \"R1\""));
        assert!(json.contains("\"line\": 3"));
    }
}
