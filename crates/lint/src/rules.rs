//! The rule engine: seven invariant detectors over the token stream.
//!
//! Each rule guards a documented workspace contract (see `lint.toml` and the
//! README's "Static analysis" section):
//!
//! | id | invariant |
//! |----|-----------|
//! | R1 | no `std::thread::spawn`/`scope`/`Builder` outside the compat-rayon pool and the supervisor's reader threads |
//! | R2 | `std::env::var*` only in `dgo_mpc::tuning` and `dgo_bench::report` (knobs read once per process) |
//! | R3 | no `Instant::now`/`SystemTime` in the deterministic crates (`dgo_core`, `dgo_graph`) |
//! | R4 | no `HashMap`/`HashSet` in non-test `dgo_core`/`dgo_mpc` code (iteration-order nondeterminism on metered paths) |
//! | R5 | every `unsafe` is preceded by a `// SAFETY:` comment |
//! | R6 | no `.unwrap()`/`.expect()` in the process supervisor / worker request loop (typed errors only) |
//! | R7 | every atomic `.load(..)`/`.store(..)` names its `Ordering` in the call |
//!
//! Detection is token-sequence matching, not type-aware analysis, so some
//! rules over-approximate (R4 flags any `HashMap` mention; R7 flags any
//! `.load(`/`.store(` without an ordering). The escape hatch is explicit and
//! auditable: `// dgo-lint: allow(<rule>)` on the offending line (or alone on
//! the line above) suppresses exactly that rule there.

use std::collections::{BTreeMap, BTreeSet};

use crate::config::{Config, RuleConfig};
use crate::lexer::{lex, Token, TokenKind};

/// The rule ids the engine implements, in report order.
pub const KNOWN_RULES: [&str; 7] = ["R1", "R2", "R3", "R4", "R5", "R6", "R7"];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule id (`R1`..`R7`).
    pub rule: String,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// `path:line:col: rule: message` — the text-format output line.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: {} [{}]",
            self.path, self.line, self.col, self.message, self.rule
        )
    }
}

/// Per-file token stream plus the derived line maps every rule shares.
pub struct FileAnalysis {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Full token stream, comments included.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of the non-comment tokens.
    pub code: Vec<usize>,
    /// `true` for tokens inside a `#[test]` / `#[cfg(test)]` item.
    pub in_test_region: Vec<bool>,
    /// Lines carrying at least one code token (multi-line literals mark
    /// every line they span).
    code_lines: BTreeSet<u32>,
    /// Lines fully or partly covered by an attribute (`#[...]`), which the
    /// SAFETY-comment walk may step over.
    attr_lines: BTreeSet<u32>,
    /// Lines on which a comment containing `SAFETY:` appears.
    safety_lines: BTreeSet<u32>,
    /// Line → rule ids suppressed there by `// dgo-lint: allow(...)`.
    allows: BTreeMap<u32, BTreeSet<String>>,
    /// Whether the path has a `tests/` component (integration-test code).
    pub is_test_file: bool,
}

impl FileAnalysis {
    /// Lexes `source` and computes all the shared line maps.
    pub fn new(path: &str, source: &str) -> Self {
        let tokens = lex(source);
        let code: Vec<usize> = (0..tokens.len())
            .filter(|&i| !tokens[i].is_comment())
            .collect();
        let in_test_region = mark_test_regions(&tokens, &code);
        let attr_lines = mark_attr_lines(&tokens, &code);

        let mut code_lines = BTreeSet::new();
        for &i in &code {
            for line in tokens[i].line..=tokens[i].end_line {
                code_lines.insert(line);
            }
        }

        let mut safety_lines = BTreeSet::new();
        let mut allows: BTreeMap<u32, BTreeSet<String>> = BTreeMap::new();
        for (i, t) in tokens.iter().enumerate() {
            if !t.is_comment() {
                continue;
            }
            if t.text.contains("SAFETY:") {
                for line in t.line..=t.end_line {
                    safety_lines.insert(line);
                }
            }
            for rule in parse_allow_ids(&t.text) {
                // The allow covers the comment's own line; a comment that
                // *starts* its line (no code before it) also covers the
                // next line, supporting the line-above style.
                allows.entry(t.line).or_default().insert(rule.clone());
                let code_before = tokens[..i]
                    .iter()
                    .rev()
                    .take_while(|p| p.end_line >= t.line)
                    .any(|p| !p.is_comment() && p.end_line == t.line);
                if !code_before {
                    allows.entry(t.end_line + 1).or_default().insert(rule);
                }
            }
        }

        let is_test_file = path.split('/').any(|c| c == "tests");
        FileAnalysis {
            path: path.to_string(),
            tokens,
            code,
            in_test_region,
            code_lines,
            attr_lines,
            safety_lines,
            allows,
            is_test_file,
        }
    }

    fn token(&self, code_idx: usize) -> &Token {
        &self.tokens[self.code[code_idx]]
    }

    fn ident_at(&self, code_idx: usize, name: &str) -> bool {
        self.code
            .get(code_idx)
            .is_some_and(|&i| self.tokens[i].is_ident(name))
    }

    fn punct_at(&self, code_idx: usize, c: char) -> bool {
        self.code
            .get(code_idx)
            .is_some_and(|&i| self.tokens[i].is_punct(c))
    }

    fn path_sep_at(&self, code_idx: usize) -> bool {
        self.punct_at(code_idx, ':') && self.punct_at(code_idx + 1, ':')
    }

    fn allowed(&self, rule: &str, line: u32) -> bool {
        self.allows.get(&line).is_some_and(|s| s.contains(rule))
    }
}

/// A raw detector finding: the index (into `analysis.code`) of the
/// offending token, plus the message.
struct Hit {
    code_idx: usize,
    message: String,
}

/// Runs every enabled, in-scope rule from `config` over one file.
///
/// Returns `Err` if the config names a rule the engine does not implement —
/// a config typo must not silently disable enforcement.
pub fn lint_source(path: &str, source: &str, config: &Config) -> Result<Vec<Diagnostic>, String> {
    for rule in &config.rules {
        if !KNOWN_RULES.contains(&rule.id.as_str()) {
            return Err(format!(
                "lint.toml declares unknown rule `{}` (known: {})",
                rule.id,
                KNOWN_RULES.join(", ")
            ));
        }
    }
    let analysis = FileAnalysis::new(path, source);
    let mut out = Vec::new();
    for rule in &config.rules {
        if !rule.enabled || !rule.applies_to(path) {
            continue;
        }
        if rule.skip_test_code && analysis.is_test_file {
            continue;
        }
        let hits = match rule.id.as_str() {
            "R1" => detect_raw_threads(&analysis),
            "R2" => detect_env_reads(&analysis),
            "R3" => detect_wall_clock(&analysis),
            "R4" => detect_hash_collections(&analysis),
            "R5" => detect_undocumented_unsafe(&analysis),
            "R6" => detect_unwrap(&analysis),
            "R7" => detect_unordered_atomics(&analysis),
            _ => unreachable!("validated above"),
        };
        for hit in hits {
            let token_idx = analysis.code[hit.code_idx];
            if rule.skip_test_code && analysis.in_test_region[token_idx] {
                continue;
            }
            let t = &analysis.tokens[token_idx];
            if analysis.allowed(&rule.id, t.line) {
                continue;
            }
            out.push(Diagnostic {
                rule: rule.id.clone(),
                path: path.to_string(),
                line: t.line,
                col: t.col,
                message: compose_message(rule, &hit.message),
            });
        }
    }
    out.sort_by(|a, b| (a.line, a.col, &a.rule).cmp(&(b.line, b.col, &b.rule)));
    Ok(out)
}

fn compose_message(rule: &RuleConfig, detail: &str) -> String {
    if rule.summary.is_empty() {
        detail.to_string()
    } else {
        format!("{detail} ({})", rule.summary)
    }
}

/// R1: `thread::spawn`, `thread::scope`, `thread::Builder`.
fn detect_raw_threads(a: &FileAnalysis) -> Vec<Hit> {
    let mut hits = Vec::new();
    for k in 0..a.code.len() {
        if a.ident_at(k, "thread") && a.path_sep_at(k + 1) {
            for target in ["spawn", "scope", "Builder"] {
                if a.ident_at(k + 3, target) {
                    hits.push(Hit {
                        code_idx: k,
                        message: format!("raw `thread::{target}`"),
                    });
                }
            }
        }
    }
    hits
}

/// R2: `env::var`, `env::var_os`, `env::vars`, `env::vars_os`.
fn detect_env_reads(a: &FileAnalysis) -> Vec<Hit> {
    let mut hits = Vec::new();
    for k in 0..a.code.len() {
        if a.ident_at(k, "env") && a.path_sep_at(k + 1) {
            let target = &a.code.get(k + 3).map(|&i| &a.tokens[i]);
            if let Some(t) = target {
                if t.kind == TokenKind::Ident && t.text.starts_with("var") {
                    hits.push(Hit {
                        code_idx: k,
                        message: format!("environment read `env::{}`", t.text),
                    });
                }
            }
        }
    }
    hits
}

/// R3: `Instant::now` and any `SystemTime` mention.
fn detect_wall_clock(a: &FileAnalysis) -> Vec<Hit> {
    let mut hits = Vec::new();
    for k in 0..a.code.len() {
        if a.ident_at(k, "Instant") && a.path_sep_at(k + 1) && a.ident_at(k + 3, "now") {
            hits.push(Hit {
                code_idx: k,
                message: "wall-clock read `Instant::now`".to_string(),
            });
        }
        if a.ident_at(k, "SystemTime") {
            hits.push(Hit {
                code_idx: k,
                message: "wall-clock type `SystemTime`".to_string(),
            });
        }
    }
    hits
}

/// R4: any `HashMap`/`HashSet` mention. Deliberately over-approximate —
/// proving "never iterated" needs type-aware analysis; a lookup-only map
/// carries a `// dgo-lint: allow(R4)` with its justification instead.
fn detect_hash_collections(a: &FileAnalysis) -> Vec<Hit> {
    let mut hits = Vec::new();
    for k in 0..a.code.len() {
        for name in ["HashMap", "HashSet"] {
            if a.ident_at(k, name) {
                hits.push(Hit {
                    code_idx: k,
                    message: format!("hash-ordered collection `{name}`"),
                });
            }
        }
    }
    hits
}

/// R5: every `unsafe` token must have a `SAFETY:` comment within its own
/// statement's lines or on a contiguous comment/attribute line run directly
/// above the statement. The statement start is found by scanning code
/// tokens back to the previous `;`, `{`, or `}`, so
/// `let x =\n    unsafe { .. };` accepts a comment above the `let`.
fn detect_undocumented_unsafe(a: &FileAnalysis) -> Vec<Hit> {
    let mut hits = Vec::new();
    for k in 0..a.code.len() {
        if !a.ident_at(k, "unsafe") {
            continue;
        }
        let mut s = k;
        while s > 0 {
            let t = a.token(s - 1);
            if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') || t.is_punct(']') {
                break;
            }
            s -= 1;
        }
        let start = a.token(s).line;
        let mut documented = (start..=a.token(k).line).any(|line| a.safety_lines.contains(&line));
        let mut line = start;
        while !documented && line > 1 {
            line -= 1;
            if a.safety_lines.contains(&line) {
                documented = true;
            } else if a.code_lines.contains(&line) && !a.attr_lines.contains(&line) {
                break; // hit real code: the comment run above has ended
            }
        }
        if !documented {
            hits.push(Hit {
                code_idx: k,
                message: "`unsafe` without a `// SAFETY:` comment".to_string(),
            });
        }
    }
    hits
}

/// R6: `.unwrap()` / `.expect(` calls.
fn detect_unwrap(a: &FileAnalysis) -> Vec<Hit> {
    let mut hits = Vec::new();
    for k in 0..a.code.len() {
        if !a.punct_at(k, '.') {
            continue;
        }
        for target in ["unwrap", "expect"] {
            if a.ident_at(k + 1, target) && a.punct_at(k + 2, '(') {
                hits.push(Hit {
                    code_idx: k + 1,
                    message: format!("`.{target}()` on a supervised path"),
                });
            }
        }
    }
    hits
}

/// R7: `.load(...)` / `.store(...)` whose argument list never names a
/// memory ordering (`Ordering::X` or a bare variant).
fn detect_unordered_atomics(a: &FileAnalysis) -> Vec<Hit> {
    const ORDERINGS: [&str; 6] = [
        "Ordering", "Relaxed", "Acquire", "Release", "AcqRel", "SeqCst",
    ];
    let mut hits = Vec::new();
    for k in 0..a.code.len() {
        if !a.punct_at(k, '.') {
            continue;
        }
        for target in ["load", "store"] {
            if !(a.ident_at(k + 1, target) && a.punct_at(k + 2, '(')) {
                continue;
            }
            // Scan the argument list for an ordering mention.
            let mut depth = 0usize;
            let mut named = false;
            let mut j = k + 2;
            while j < a.code.len() {
                let t = a.token(j);
                if t.is_punct('(') {
                    depth += 1;
                } else if t.is_punct(')') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if t.kind == TokenKind::Ident && ORDERINGS.contains(&t.text.as_str()) {
                    named = true;
                }
                j += 1;
            }
            if !named {
                hits.push(Hit {
                    code_idx: k + 1,
                    message: format!("atomic `.{target}(..)` without a named `Ordering`"),
                });
            }
        }
    }
    hits
}

/// Returns the rule ids listed in a `dgo-lint: allow(R1, R4)` marker inside
/// a comment, or empty if the comment has no marker.
fn parse_allow_ids(comment: &str) -> Vec<String> {
    let Some(after) = comment.split("dgo-lint:").nth(1) else {
        return Vec::new();
    };
    let Some(open) = after.find("allow(") else {
        return Vec::new();
    };
    let inner = &after[open + "allow(".len()..];
    let Some(close) = inner.find(')') else {
        return Vec::new();
    };
    inner[..close]
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect()
}

/// Marks every token inside an item annotated `#[test]`, `#[cfg(test)]`, or
/// any `cfg(...)` whose normalized text mentions `test` (but not
/// `not(test`). The item extent runs through the matching close brace, or
/// the terminating semicolon for brace-less items.
fn mark_test_regions(tokens: &[Token], code: &[usize]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut k = 0;
    while k < code.len() {
        let is_attr_start = tokens[code[k]].is_punct('#')
            && code.get(k + 1).is_some_and(|&i| tokens[i].is_punct('['));
        if !is_attr_start {
            k += 1;
            continue;
        }
        let (text, after) = read_attr(tokens, code, k);
        if !is_test_attr(&text) {
            k = after;
            continue;
        }
        // Step over any further attributes on the same item.
        let mut j = after;
        while j < code.len()
            && tokens[code[j]].is_punct('#')
            && code.get(j + 1).is_some_and(|&i| tokens[i].is_punct('['))
        {
            j = read_attr(tokens, code, j).1;
        }
        let end = item_end(tokens, code, j);
        for &ti in &code[k..=end] {
            mask[ti] = true;
        }
        k = end + 1;
    }
    mask
}

/// Reads the attribute starting at code index `k` (on `#`). Returns the
/// normalized inner text (token texts joined without spaces) and the code
/// index just past the closing `]`.
fn read_attr(tokens: &[Token], code: &[usize], k: usize) -> (String, usize) {
    let mut text = String::new();
    let mut depth = 0usize;
    let mut j = k + 1; // on `[`
    while j < code.len() {
        let t = &tokens[code[j]];
        if t.is_punct('[') {
            depth += 1;
            if depth > 1 {
                text.push('[');
            }
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return (text, j + 1);
            }
            text.push(']');
        } else {
            text.push_str(&t.text);
        }
        j += 1;
    }
    (text, code.len())
}

fn is_test_attr(normalized: &str) -> bool {
    normalized == "test"
        || normalized.ends_with("::test")
        || (normalized.starts_with("cfg(")
            && normalized.contains("test")
            && !normalized.contains("not(test"))
}

/// The code index of the token ending the item that starts at code index
/// `j`: the close brace matching the first open brace, or the first
/// top-level semicolon if no brace is seen first.
fn item_end(tokens: &[Token], code: &[usize], j: usize) -> usize {
    let mut depth = 0usize;
    let mut seen_brace = false;
    let mut i = j;
    while i < code.len() {
        let t = &tokens[code[i]];
        if t.is_punct('{') {
            depth += 1;
            seen_brace = true;
        } else if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            if depth == 0 && seen_brace {
                return i;
            }
        } else if t.is_punct(';') && !seen_brace {
            return i;
        }
        i += 1;
    }
    code.len().saturating_sub(1)
}

/// Marks the lines spanned by every attribute, so the R5 upward walk can
/// step over `#[allow(unsafe_code)]` between the SAFETY comment and the
/// `unsafe` token.
fn mark_attr_lines(tokens: &[Token], code: &[usize]) -> BTreeSet<u32> {
    let mut lines = BTreeSet::new();
    let mut k = 0;
    while k < code.len() {
        let is_attr_start = tokens[code[k]].is_punct('#')
            && code.get(k + 1).is_some_and(|&i| tokens[i].is_punct('['));
        if !is_attr_start {
            k += 1;
            continue;
        }
        let (_, after) = read_attr(tokens, code, k);
        for &ti in &code[k..after.min(code.len())] {
            for line in tokens[ti].line..=tokens[ti].end_line {
                lines.insert(line);
            }
        }
        k = after;
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_marker_parsing() {
        assert_eq!(parse_allow_ids("// dgo-lint: allow(R2)"), vec!["R2"]);
        assert_eq!(
            parse_allow_ids("// dgo-lint: allow(R1, R4)"),
            vec!["R1", "R4"]
        );
        assert!(parse_allow_ids("// plain comment").is_empty());
        assert!(parse_allow_ids("// dgo-lint: allow(").is_empty());
    }

    #[test]
    fn test_attr_recognition() {
        assert!(is_test_attr("test"));
        assert!(is_test_attr("cfg(test)"));
        assert!(is_test_attr("cfg(all(test,feature=\"x\"))"));
        assert!(!is_test_attr("cfg(not(test))"));
        assert!(!is_test_attr("cfg(feature=\"fast\")"));
        assert!(!is_test_attr("derive(Debug)"));
    }

    #[test]
    fn test_region_covers_mod_and_fn() {
        let src = r#"
fn production() { let x = 1; }

#[cfg(test)]
mod tests {
    #[test]
    fn check() { inner(); }
}

fn also_production() {}
"#;
        let a = FileAnalysis::new("crates/x/src/lib.rs", src);
        let ident_state: Vec<(String, bool)> = a
            .tokens
            .iter()
            .zip(&a.in_test_region)
            .filter(|(t, _)| t.kind == TokenKind::Ident)
            .map(|(t, &m)| (t.text.clone(), m))
            .collect();
        let lookup = |name: &str| {
            ident_state
                .iter()
                .find(|(t, _)| t == name)
                .map(|(_, m)| *m)
                .expect("ident present")
        };
        assert!(!lookup("production"));
        assert!(lookup("tests"));
        assert!(lookup("inner"));
        assert!(!lookup("also_production"));
    }
}
