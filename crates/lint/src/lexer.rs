//! A hand-rolled Rust lexer, just deep enough for invariant linting.
//!
//! The rule engine needs to know, for every byte of a source file, whether
//! it is *code*, *comment*, or *literal* — a grep would flag `thread::spawn`
//! inside a doc comment or a string. This lexer tokenizes the constructs
//! where that distinction is subtle:
//!
//! * line comments (`//`, `///`, `//!`) and block comments (`/* */`)
//!   including **nested** block comments;
//! * string literals with escapes, raw strings with any number of hashes
//!   (`r"…"`, `r##"…"##`), byte strings (`b"…"`, `br#"…"#`), and C strings
//!   (`c"…"`);
//! * char literals vs lifetimes (`'a'` vs `'a`), including escaped chars
//!   (`'\''`, `'\u{1F600}'`);
//! * raw identifiers (`r#match`) vs raw strings (`r#"…"#`).
//!
//! Everything else is deliberately coarse: numbers are a single token class
//! (suffixes and radix prefixes are swallowed, `1.5` lexes as three tokens),
//! and punctuation is one token per character (`::` is two `Punct(':')`
//! tokens). The rules only pattern-match identifier/punct sequences, so the
//! coarseness costs nothing.
//!
//! Comments are kept as tokens (with their full text) because two rules read
//! them: `unsafe-needs-safety-comment` looks for `// SAFETY:` above each
//! `unsafe`, and the suppression engine looks for `// dgo-lint: allow(…)`.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unsafe`, `thread`, `HashMap`, `r#match`).
    Ident,
    /// A lifetime or loop label (`'a`, `'static`, `'outer`).
    Lifetime,
    /// Character or byte literal (`'x'`, `b'\n'`).
    CharLit,
    /// String literal of any flavor (plain, raw, byte, C).
    StrLit,
    /// Numeric literal (integer or the leading part of a float).
    NumLit,
    /// One punctuation character.
    Punct,
    /// `// …` comment (text includes the slashes).
    LineComment,
    /// `/* … */` comment, possibly spanning lines and nesting.
    BlockComment,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// The token's exact source text.
    pub text: String,
    /// 1-based line of the first character.
    pub line: u32,
    /// 1-based column (in characters) of the first character.
    pub col: u32,
    /// 1-based line of the last character (differs from `line` only for
    /// block comments and multi-line string literals).
    pub end_line: u32,
}

impl Token {
    /// Whether this token is trivia (a comment) rather than code.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.starts_with(c)
    }
}

/// Character-level cursor with line/column tracking.
struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn new(source: &str) -> Self {
        Cursor {
            chars: source.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenizes `source`. Never fails: unterminated constructs are closed at
/// end of input (a linter must degrade gracefully on half-written code),
/// and any unexpected byte becomes a [`TokenKind::Punct`].
pub fn lex(source: &str) -> Vec<Token> {
    let mut cur = Cursor::new(source);
    let mut out = Vec::new();
    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        let token = if c == '/' && cur.peek(1) == Some('/') {
            lex_line_comment(&mut cur)
        } else if c == '/' && cur.peek(1) == Some('*') {
            lex_block_comment(&mut cur)
        } else if c == '\'' {
            lex_quote(&mut cur)
        } else if c == '"' {
            (TokenKind::StrLit, lex_string(&mut cur))
        } else if is_ident_start(c) {
            lex_ident_or_prefixed(&mut cur)
        } else if c.is_ascii_digit() {
            lex_number(&mut cur)
        } else {
            (
                TokenKind::Punct,
                cur.bump().map(String::from).unwrap_or_default(),
            )
        };
        out.push(Token {
            kind: token.0,
            text: token.1,
            line,
            col,
            end_line: prev_line(&cur),
        });
    }
    out
}

/// The line the *previous* character (the token's last) landed on: after a
/// trailing newline bump the cursor already sits on the next line.
fn prev_line(cur: &Cursor) -> u32 {
    if cur.col == 1 && cur.line > 1 {
        cur.line - 1
    } else {
        cur.line
    }
}

fn lex_line_comment(cur: &mut Cursor) -> (TokenKind, String) {
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if c == '\n' {
            break;
        }
        text.push(c);
        cur.bump();
    }
    (TokenKind::LineComment, text)
}

fn lex_block_comment(cur: &mut Cursor) -> (TokenKind, String) {
    let mut text = String::new();
    let mut depth = 0usize;
    while let Some(c) = cur.peek(0) {
        if c == '/' && cur.peek(1) == Some('*') {
            depth += 1;
            text.push_str("/*");
            cur.bump();
            cur.bump();
        } else if c == '*' && cur.peek(1) == Some('/') {
            depth -= 1;
            text.push_str("*/");
            cur.bump();
            cur.bump();
            if depth == 0 {
                break;
            }
        } else {
            text.push(c);
            cur.bump();
        }
    }
    (TokenKind::BlockComment, text)
}

/// `'` starts either a lifetime/label (`'a`, `'static`) or a char literal
/// (`'a'`, `'\n'`, `'('`). Disambiguation: after `'x` where `x` starts an
/// identifier, a following `'` makes it a char literal; anything else makes
/// it a lifetime. Escapes and non-identifier chars are always char literals.
fn lex_quote(cur: &mut Cursor) -> (TokenKind, String) {
    let mut text = String::new();
    text.push(cur.bump().expect("caller saw a quote")); // the opening '
    match cur.peek(0) {
        Some('\\') => {
            text.push_str(&lex_char_body_escape(cur));
            (TokenKind::CharLit, text)
        }
        Some(c) if is_ident_start(c) => {
            // Consume the identifier run, then decide.
            while let Some(c) = cur.peek(0) {
                if is_ident_continue(c) {
                    text.push(c);
                    cur.bump();
                } else {
                    break;
                }
            }
            if cur.peek(0) == Some('\'') {
                text.push('\'');
                cur.bump();
                (TokenKind::CharLit, text)
            } else {
                (TokenKind::Lifetime, text)
            }
        }
        Some('\'') => {
            // `''` — not valid Rust; consume both quotes and move on.
            text.push('\'');
            cur.bump();
            (TokenKind::CharLit, text)
        }
        Some(c) => {
            // Punctuation char literal like '(' or '"'.
            text.push(c);
            cur.bump();
            if cur.peek(0) == Some('\'') {
                text.push('\'');
                cur.bump();
            }
            (TokenKind::CharLit, text)
        }
        None => (TokenKind::CharLit, text),
    }
}

/// The `\…'` tail of an escaped char literal (cursor on the backslash).
fn lex_char_body_escape(cur: &mut Cursor) -> String {
    let mut text = String::new();
    text.push(cur.bump().expect("caller saw a backslash"));
    if let Some(esc) = cur.bump() {
        text.push(esc);
        if esc == 'u' && cur.peek(0) == Some('{') {
            while let Some(c) = cur.bump() {
                text.push(c);
                if c == '}' {
                    break;
                }
            }
        } else if esc == 'x' {
            for _ in 0..2 {
                if let Some(c) = cur.bump() {
                    text.push(c);
                }
            }
        }
    }
    if cur.peek(0) == Some('\'') {
        text.push('\'');
        cur.bump();
    }
    text
}

/// A plain `"…"` string with escape handling (cursor on the opening quote).
fn lex_string(cur: &mut Cursor) -> String {
    let mut text = String::new();
    text.push(cur.bump().expect("caller saw a quote"));
    while let Some(c) = cur.bump() {
        text.push(c);
        if c == '\\' {
            if let Some(escaped) = cur.bump() {
                text.push(escaped);
            }
        } else if c == '"' {
            break;
        }
    }
    text
}

/// A raw string: cursor on the `r` (the `b`/`c` prefix, if any, was already
/// consumed by the caller). Handles any number of hashes.
fn lex_raw_string(cur: &mut Cursor, text: &mut String) {
    text.push(cur.bump().expect("caller saw an r")); // the r
    let mut hashes = 0usize;
    while cur.peek(0) == Some('#') {
        hashes += 1;
        text.push('#');
        cur.bump();
    }
    if cur.peek(0) == Some('"') {
        text.push('"');
        cur.bump();
    }
    // Scan for `"` followed by `hashes` hashes.
    'outer: while let Some(c) = cur.bump() {
        text.push(c);
        if c == '"' {
            for i in 0..hashes {
                if cur.peek(0) != Some('#') {
                    // Not the terminator; the hashes seen so far (i of them)
                    // were already appended on previous iterations? No —
                    // none were consumed yet. Re-scan from here.
                    let _ = i;
                    continue 'outer;
                }
                text.push('#');
                cur.bump();
            }
            break;
        }
    }
}

/// Identifier, or one of the literal prefixes `r`/`b`/`c`/`br`/`rb` that
/// turn into raw strings, byte strings, or raw identifiers.
fn lex_ident_or_prefixed(cur: &mut Cursor) -> (TokenKind, String) {
    let first = cur.peek(0).expect("caller saw a char");
    // Raw string r"…" / r#…# — but r#ident is a raw identifier.
    if first == 'r' {
        let next = cur.peek(1);
        if next == Some('"') {
            let mut text = String::new();
            lex_raw_string(cur, &mut text);
            return (TokenKind::StrLit, text);
        }
        if next == Some('#') {
            // r#"…"# raw string vs r#ident raw identifier.
            let mut k = 1;
            while cur.peek(k) == Some('#') {
                k += 1;
            }
            if cur.peek(k) == Some('"') {
                let mut text = String::new();
                lex_raw_string(cur, &mut text);
                return (TokenKind::StrLit, text);
            }
            // Raw identifier: consume r# then the identifier.
            let mut text = String::new();
            text.push(cur.bump().expect("r"));
            text.push(cur.bump().expect("#"));
            while let Some(c) = cur.peek(0) {
                if is_ident_continue(c) {
                    text.push(c);
                    cur.bump();
                } else {
                    break;
                }
            }
            return (TokenKind::Ident, text);
        }
    }
    // Byte / C-string prefixes: b"…", br"…", br#"…"#, b'…', c"…".
    if first == 'b' || first == 'c' {
        match cur.peek(1) {
            Some('"') => {
                let mut text = String::new();
                text.push(cur.bump().expect("prefix"));
                text.push_str(&lex_string(cur));
                return (TokenKind::StrLit, text);
            }
            Some('\'') if first == 'b' => {
                let mut text = String::new();
                text.push(cur.bump().expect("prefix"));
                let (_, quoted) = lex_quote(cur);
                text.push_str(&quoted);
                return (TokenKind::CharLit, text);
            }
            Some('r') if first == 'b' && matches!(cur.peek(2), Some('"') | Some('#')) => {
                let mut text = String::new();
                text.push(cur.bump().expect("prefix"));
                lex_raw_string(cur, &mut text);
                return (TokenKind::StrLit, text);
            }
            _ => {}
        }
    }
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if is_ident_continue(c) {
            text.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    (TokenKind::Ident, text)
}

/// Numeric literal: digits plus anything identifier-like (radix prefixes,
/// `_` separators, type suffixes). Dots are *not* consumed, so `1..n` and
/// float literals lex as multiple tokens — irrelevant to every rule.
fn lex_number(cur: &mut Cursor) -> (TokenKind, String) {
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if is_ident_continue(c) {
            text.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    (TokenKind::NumLit, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    fn code_idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* outer /* inner */ still comment */ b");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[0], (TokenKind::Ident, "a".into()));
        assert_eq!(toks[1].0, TokenKind::BlockComment);
        assert!(toks[1].1.contains("inner"));
        assert_eq!(toks[2], (TokenKind::Ident, "b".into()));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r####"let s = r##"quote " and "# inside"##;"####);
        let strs: Vec<_> = toks.iter().filter(|t| t.0 == TokenKind::StrLit).collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].1.contains(r##"and "#"##));
        // Nothing after the raw string terminator leaked into it.
        assert!(toks.last().expect("semi").1 == ";");
    }

    #[test]
    fn lifetime_vs_char_literal() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'a'; let s = 'static; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.0 == TokenKind::Lifetime)
            .map(|t| t.1.clone())
            .collect();
        let chars: Vec<_> = toks
            .iter()
            .filter(|t| t.0 == TokenKind::CharLit)
            .map(|t| t.1.clone())
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a", "'static"]);
        assert_eq!(chars, vec!["'a'"]);
    }

    #[test]
    fn escaped_char_literals() {
        let toks = kinds(r"let q = '\''; let n = '\n'; let u = '\u{1F600}'; let x = '\x7f';");
        let chars: Vec<_> = toks
            .iter()
            .filter(|t| t.0 == TokenKind::CharLit)
            .map(|t| t.1.clone())
            .collect();
        assert_eq!(chars, vec![r"'\''", r"'\n'", r"'\u{1F600}'", r"'\x7f'"]);
    }

    #[test]
    fn comment_markers_inside_strings() {
        // `//` and `/*` inside a string literal must not start comments.
        let toks = kinds(r#"let url = "https://example.com/*path"; done"#);
        assert!(toks.iter().all(|t| t.0 != TokenKind::LineComment));
        assert!(toks.iter().all(|t| t.0 != TokenKind::BlockComment));
        assert_eq!(toks.last().expect("ident").1, "done");
    }

    #[test]
    fn quotes_inside_comments() {
        let toks = kinds("// it's \"quoted\"\nnext");
        assert_eq!(toks[0].0, TokenKind::LineComment);
        assert_eq!(toks[1], (TokenKind::Ident, "next".into()));
    }

    #[test]
    fn byte_and_c_strings() {
        let toks =
            kinds(r###"let a = b"bytes"; let b = br#"raw"#; let c = c"cstr"; let d = b'x';"###);
        let strs = toks.iter().filter(|t| t.0 == TokenKind::StrLit).count();
        let chars = toks.iter().filter(|t| t.0 == TokenKind::CharLit).count();
        assert_eq!(strs, 3);
        assert_eq!(chars, 1);
    }

    #[test]
    fn raw_identifiers() {
        assert_eq!(code_idents("let r#match = 1;"), vec!["let", "r#match"]);
    }

    #[test]
    fn string_escapes_do_not_end_early() {
        let toks = kinds(r#"let s = "a\"b// not a comment"; after"#);
        assert_eq!(toks.iter().filter(|t| t.0 == TokenKind::StrLit).count(), 1);
        assert_eq!(toks.last().expect("ident").1, "after");
    }

    #[test]
    fn positions_track_lines_and_columns() {
        let toks = lex("ab\n  cd /* x\ny */ ef");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
        assert_eq!(toks[2].kind, TokenKind::BlockComment);
        assert_eq!((toks[2].line, toks[2].end_line), (2, 3));
        assert_eq!((toks[3].line, toks[3].col), (3, 6));
    }

    #[test]
    fn unterminated_constructs_close_at_eof() {
        assert_eq!(lex("/* never closed").len(), 1);
        assert_eq!(lex("\"never closed").len(), 1);
        assert_eq!(lex("r#\"never closed").len(), 1);
    }
}
