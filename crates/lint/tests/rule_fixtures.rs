//! One positive (fires) and one negative (stays quiet) fixture per rule.
//!
//! Fixtures are raw-string literals, not files on disk: string contents are
//! invisible to the lexer-driven detectors, so this test file itself stays
//! clean under the workspace lint gate while still proving every rule fires.

use dgo_lint::config::parse;
use dgo_lint::rules::{lint_source, Diagnostic};

/// Lints `source` as if it lived at `path`, under a config enabling exactly
/// `rule` with the given extra config lines.
fn run(rule: &str, extra: &str, path: &str, source: &str) -> Vec<Diagnostic> {
    let config = parse(&format!("[[rule]]\nid = \"{rule}\"\n{extra}")).expect("fixture config");
    lint_source(path, source, &config).expect("known rule")
}

fn rules_of(diags: &[Diagnostic]) -> Vec<&str> {
    diags.iter().map(|d| d.rule.as_str()).collect()
}

// --- R1: raw thread primitives ---

#[test]
fn r1_fires_on_thread_spawn() {
    let src = r#"
pub fn run() {
    let h = std::thread::spawn(|| 1 + 1);
    h.join().ok();
}
"#;
    let diags = run("R1", "", "crates/core/src/x.rs", src);
    assert_eq!(rules_of(&diags), ["R1"]);
    assert_eq!((diags[0].line, diags[0].col), (3, 18));
}

#[test]
fn r1_quiet_on_pool_spawn_and_excluded_path() {
    // The compat pool's own API is not `thread::` and never matches...
    let quiet = run(
        "R1",
        "",
        "crates/core/src/x.rs",
        "pub fn run() { rayon::scope(|s| s.spawn(|| ())); }",
    );
    assert!(quiet.is_empty());
    // ...and the sanctioned site is excluded by scope.
    let excluded = run(
        "R1",
        "exclude = [\"crates/compat/rayon\"]\n",
        "crates/compat/rayon/src/lib.rs",
        "pub fn run() { std::thread::spawn(|| ()); }",
    );
    assert!(excluded.is_empty());
}

// --- R2: environment reads ---

#[test]
fn r2_fires_on_env_var_variants() {
    let src = r#"
fn knobs() {
    let a = std::env::var("DGO_JOBS");
    let b = std::env::var_os("DGO_JOBS");
}
"#;
    let diags = run("R2", "", "crates/core/src/x.rs", src);
    assert_eq!(rules_of(&diags), ["R2", "R2"]);
}

#[test]
fn r2_quiet_on_compile_time_env_and_args() {
    let src = r#"
fn fine() {
    let dir = env!("CARGO_MANIFEST_DIR");
    let args = std::env::args();
}
"#;
    assert!(run("R2", "", "crates/core/src/x.rs", src).is_empty());
}

// --- R3: wall clock in deterministic crates ---

#[test]
fn r3_fires_on_instant_and_system_time() {
    let src = r#"
fn timing() {
    let t0 = std::time::Instant::now();
    let wall = std::time::SystemTime::now();
}
"#;
    let diags = run(
        "R3",
        "include = [\"crates/core/src\"]\n",
        "crates/core/src/x.rs",
        src,
    );
    assert_eq!(rules_of(&diags), ["R3", "R3"]);
}

#[test]
fn r3_quiet_outside_included_scope() {
    let diags = run(
        "R3",
        "include = [\"crates/core/src\"]\n",
        "crates/bench/src/x.rs",
        "fn timing() { let t0 = std::time::Instant::now(); }",
    );
    assert!(diags.is_empty());
}

// --- R4: hash-ordered collections ---

#[test]
fn r4_fires_on_hash_map_mention() {
    let src = r#"
use std::collections::HashMap;
fn meter(m: &HashMap<u64, usize>) -> usize { m.len() }
"#;
    let diags = run("R4", "", "crates/core/src/x.rs", src);
    assert_eq!(rules_of(&diags), ["R4", "R4"]);
}

#[test]
fn r4_quiet_on_btree_map_and_allowed_line() {
    let quiet = run(
        "R4",
        "",
        "crates/core/src/x.rs",
        "use std::collections::BTreeMap;\nfn f(m: &BTreeMap<u64, u64>) {}\n",
    );
    assert!(quiet.is_empty());
    let allowed = run(
        "R4",
        "",
        "crates/core/src/x.rs",
        "use std::collections::HashMap; // dgo-lint: allow(R4) — lookup-only\n",
    );
    assert!(allowed.is_empty());
}

// --- R5: SAFETY-audited unsafe ---

#[test]
fn r5_fires_on_undocumented_unsafe() {
    let src = r#"
fn read(p: *const u32) -> u32 {
    unsafe { *p }
}
"#;
    let diags = run(
        "R5",
        "skip_test_code = false\n",
        "crates/graph/src/x.rs",
        src,
    );
    assert_eq!(rules_of(&diags), ["R5"]);
}

#[test]
fn r5_quiet_with_safety_comment_even_across_statement_lines() {
    let src = r#"
fn read(p: *const u32) -> u32 {
    // SAFETY: caller guarantees p is valid and aligned.
    let v =
        unsafe { *p };
    v
}
"#;
    assert!(run(
        "R5",
        "skip_test_code = false\n",
        "crates/graph/src/x.rs",
        src
    )
    .is_empty());
}

// --- R6: unwrap/expect on supervised paths ---

#[test]
fn r6_fires_on_unwrap_and_expect() {
    let src = r#"
fn supervise(r: Result<u32, ()>) -> u32 {
    let a = r.unwrap();
    let b = r.expect("fine");
    a + b
}
"#;
    let diags = run("R6", "", "crates/mpc/src/worker.rs", src);
    assert_eq!(rules_of(&diags), ["R6", "R6"]);
}

#[test]
fn r6_quiet_on_unwrap_or_family() {
    let src = r#"
fn supervise(r: Result<u32, ()>) -> u32 {
    r.unwrap_or(0) + r.unwrap_or_else(|_| 1) + r.unwrap_or_default()
}
"#;
    assert!(run("R6", "", "crates/mpc/src/worker.rs", src).is_empty());
}

// --- R7: named atomic orderings ---

#[test]
fn r7_fires_on_orderingless_load_store() {
    let src = r#"
use std::sync::atomic::AtomicUsize;
fn f(a: &AtomicUsize, ord: std::sync::atomic::Ordering) {
    let v = a.load(ord_from_somewhere());
    a.store(v + 1, hidden_default());
}
"#;
    let diags = run("R7", "skip_test_code = false\n", "crates/mpc/src/x.rs", src);
    assert_eq!(rules_of(&diags), ["R7", "R7"]);
}

#[test]
fn r7_quiet_when_ordering_is_named() {
    let src = r#"
use std::sync::atomic::{AtomicUsize, Ordering};
fn f(a: &AtomicUsize) {
    let v = a.load(Ordering::Acquire);
    a.store(v + 1, Ordering::Release);
    a.store(v, std::sync::atomic::Ordering::SeqCst);
}
"#;
    assert!(run("R7", "skip_test_code = false\n", "crates/mpc/src/x.rs", src).is_empty());
}

// --- Cross-cutting mechanics ---

#[test]
fn test_regions_are_skipped_when_configured() {
    let src = r#"
#[cfg(test)]
mod tests {
    #[test]
    fn probe() {
        let v = std::env::var("ANYTHING");
    }
}
"#;
    assert!(run("R2", "", "crates/core/src/x.rs", src).is_empty());
    // But with skip_test_code = false, the same source fires.
    assert_eq!(
        rules_of(&run(
            "R2",
            "skip_test_code = false\n",
            "crates/core/src/x.rs",
            src
        )),
        ["R2"]
    );
}

#[test]
fn tests_directory_files_are_exempt() {
    let src = "fn f() { let v = std::env::var(\"ANYTHING\"); }";
    assert!(run("R2", "", "tests/probe.rs", src).is_empty());
    assert_eq!(rules_of(&run("R2", "", "src/probe.rs", src)), ["R2"]);
}

#[test]
fn violations_inside_strings_and_comments_never_fire() {
    let src = r##"
// std::thread::spawn in a comment is fine.
fn f() -> &'static str {
    /* std::env::var("X") in a block comment too */
    "std::thread::spawn(|| ()) and HashMap in a string"
}
"##;
    for rule in ["R1", "R2", "R4"] {
        assert!(run(rule, "", "crates/core/src/x.rs", src).is_empty());
    }
}

#[test]
fn allow_comment_is_rule_specific() {
    let src = "use std::collections::HashMap; // dgo-lint: allow(R1)\n";
    // Allowing R1 does not suppress R4.
    assert_eq!(
        rules_of(&run("R4", "", "crates/core/src/x.rs", src)),
        ["R4"]
    );
}

#[test]
fn unknown_rule_in_config_is_an_error() {
    let config = parse("[[rule]]\nid = \"R99\"\n").expect("parses");
    assert!(lint_source("src/x.rs", "fn main() {}", &config).is_err());
}
