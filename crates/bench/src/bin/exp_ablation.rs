//! E6: parameter ablations — k_factor, budget, and step-count sweeps.
//!
//! Usage: `cargo run -p dgo-bench --release --bin exp_ablation [-- --n 8192] [-- --backend parallel]`

use dgo_bench::{backend_from_args, dispatch_backend, e6_ablation, n_from_args};

fn main() {
    let n = n_from_args(1 << 13);
    dispatch_backend!(backend_from_args(), B => {
        for table in e6_ablation::<B>(n) {
            println!("{table}");
        }
    });
}
