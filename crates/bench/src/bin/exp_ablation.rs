//! E6: parameter ablations — k_factor, budget, and step-count sweeps.
//!
//! Usage: `cargo run -p dgo-bench --release --bin exp_ablation [-- --n 8192]`

use dgo_bench::{e6_ablation, n_from_args};

fn main() {
    for table in e6_ablation(n_from_args(1 << 13)) {
        println!("{table}");
    }
}
