//! E6: parameter ablations — k_factor, budget, and step-count sweeps.
//!
//! Usage: `cargo run -p dgo-bench --release --bin exp_ablation [-- --n 8192] [-- --backend parallel] [-- --jobs 8]`

use dgo_bench::{backend_from_args, dispatch_backend, e6_ablation, jobs_from_args, n_from_args};

fn main() {
    let n = n_from_args(1 << 13);
    let jobs = jobs_from_args();
    dispatch_backend!(backend_from_args(), B => {
        for table in e6_ablation::<B>(n, jobs) {
            println!("{table}");
        }
    });
}
