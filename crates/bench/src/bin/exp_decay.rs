//! E4: layer-tail decay — Lemma 3.15 property 2, plus path-count mass.
//!
//! Usage: `cargo run -p dgo-bench --release --bin exp_decay [-- --n 16384] [-- --backend parallel] [-- --jobs 8]`

use dgo_bench::{backend_from_args, dispatch_backend, e4_decay, jobs_from_args, n_from_args};
use dgo_graph::generators::Family;

fn main() {
    let n = n_from_args(1 << 14);
    let jobs = jobs_from_args();
    dispatch_backend!(backend_from_args(), B => {
        for family in [Family::SparseGnm, Family::PowerLaw] {
            println!("{}", e4_decay::<B>(n, family, jobs));
        }
    });
}
