//! E5: memory compliance — peak machine words vs S = n^δ.
//!
//! Usage: `cargo run -p dgo-bench --release --bin exp_memory [-- --big]`

use dgo_bench::{e5_memory, sizes_from_args};

fn main() {
    println!("{}", e5_memory(&sizes_from_args()));
}
