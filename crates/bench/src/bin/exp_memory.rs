//! E5: memory compliance — peak machine words vs S = n^δ.
//!
//! Usage: `cargo run -p dgo-bench --release --bin exp_memory [-- --big] [-- --backend parallel] [-- --jobs 8]`

use dgo_bench::{
    backend_from_args, dispatch_backend, e5_memory, e5_wire, jobs_from_args, sizes_from_args,
};

fn main() {
    let sizes = sizes_from_args();
    let jobs = jobs_from_args();
    dispatch_backend!(backend_from_args(), B => {
        println!("{}", e5_memory::<B>(&sizes, jobs));
        println!("{}", e5_wire::<B>(&sizes, jobs));
    });
}
