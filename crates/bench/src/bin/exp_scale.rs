//! Scale harness: ingestion and end-to-end orientation at the 10⁷–10⁸-edge
//! regime, persisted as `BENCH_scale.json`.
//!
//! Generates (or reads with `--input`) an edge-list text buffer, then times
//! every phase separately and records one report leg each:
//!
//! * `scale/parse/{seed,fast}` — edge-list text → normalized pairs. `seed`
//!   is the original line-by-line `String` path kept verbatim below; `fast`
//!   is [`dgo_graph::io::parse_edge_list`], the chunk-parallel byte parser.
//! * `scale/build/{seed,fast}` — pairs → CSR. `seed` is the full-list
//!   sort+dedup ([`Graph::from_edges_by_sort`]); `fast` is the counting-sort
//!   build ([`Graph::from_normalized_unsorted`]). The two graphs are
//!   asserted bit-identical before anything else runs.
//! * `scale/orient/<backend>` and `scale/coreness/<backend>` — end-to-end
//!   `orient` + approximate coreness on the parsed graph, on every
//!   execution backend including the supervised multi-process one (or a
//!   single backend, with `--backend`).
//!
//! Every leg carries `peak_rss_bytes` (the kernel's `VmHWM` high-water mark
//! — monotonic, so read legs in order) next to the usual wall-clock, comm
//! words, and peak tree bytes, making memory claims machine-checkable per
//! PR.
//!
//! Usage:
//!
//! ```bash
//! cargo run -p dgo-bench --release --bin exp_scale                 # 10⁷ edges
//! cargo run -p dgo-bench --release --bin exp_scale -- --edges 100000000
//! cargo run -p dgo-bench --release --bin exp_scale -- --input soc-live.txt
//! cargo run -p dgo-bench --release --bin exp_scale -- --backend sharded:4 --jobs 0
//! DGO_SCALE_SMOKE=1 cargo run -p dgo-bench --release --bin exp_scale  # ~10⁵ edges (CI)
//! ```

use dgo_bench::report::{
    env_ingest_jobs, peak_rss_bytes, resolved_jobs, scale_smoke, BenchLeg, BenchReport,
};
use dgo_bench::{backend_from_args, dispatch_backend, jobs_from_args, BackendKind, ShardedBackend};
use dgo_core::{approximate_coreness_on, orient_on, Params};
use dgo_graph::generators::gnm;
use dgo_graph::io::{parse_edge_list, write_edge_list};
use dgo_graph::Graph;
use std::time::Instant;

/// Coreness approximation quality used by the harness (matches E7's default
/// regime: a (2+ε)-approximation ladder at ε = 0.5).
const EPS: f64 = 0.5;

/// Average degree of the generated G(n, m) instance: `n = m / 4` gives
/// `2m/n = 8`, the sparse SNAP-like regime where ingestion, not density,
/// is the bottleneck.
const AVG_DEGREE: usize = 8;

fn flag_value<T: std::str::FromStr>(flag: &str) -> Option<T> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

/// Times one closure and pushes its leg; returns the closure's output.
/// `samples: 1` — at this scale a single end-to-end run is the measurement.
#[allow(clippy::too_many_arguments)]
fn leg<T>(
    report: &mut BenchReport,
    name: &str,
    jobs: usize,
    backend: &str,
    shards: usize,
    comm_words: usize,
    peak_tree_bytes: usize,
    body: impl FnOnce() -> T,
) -> T {
    let start = Instant::now();
    let out = body();
    let wall = start.elapsed().as_secs_f64();
    println!("{name:<32} {wall:>10.3}s");
    report.push(BenchLeg {
        name: name.to_string(),
        wall_seconds: wall,
        samples: 1,
        jobs,
        backend: backend.to_string(),
        shards,
        comm_words,
        peak_tree_bytes,
        peak_rss_bytes: peak_rss_bytes(),
    });
    out
}

/// The pre-counting-sort ingestion pipeline, kept verbatim as the baseline
/// the `scale/{parse,build}/seed` legs measure: `BufRead::lines` with one
/// heap `String` per line into `(usize, usize)` staging pairs, then the
/// full-list sort+dedup CSR build.
mod seed_path {
    use dgo_graph::{Graph, GraphError};
    use std::io::{BufRead, Read};

    pub fn parse(reader: impl Read) -> Result<(usize, Vec<(usize, usize)>), GraphError> {
        const NODES_TAG: &str = "nodes:";
        let buffered = std::io::BufReader::new(reader);
        let mut edges: Vec<(usize, usize)> = Vec::new();
        let mut declared_nodes: Option<usize> = None;
        let mut max_id = 0usize;
        let mut saw_vertex = false;
        for (line_no, line) in buffered.lines().enumerate() {
            let line = line.map_err(|e| GraphError::InvalidParameter {
                reason: format!("i/o error on line {}: {e}", line_no + 1),
            })?;
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            if let Some(comment) = trimmed.strip_prefix('#') {
                let comment = comment.trim();
                if comment
                    .get(..NODES_TAG.len())
                    .is_some_and(|tag| tag.eq_ignore_ascii_case(NODES_TAG))
                {
                    let count = comment[NODES_TAG.len()..]
                        .split_whitespace()
                        .next()
                        .unwrap_or("");
                    declared_nodes =
                        Some(count.parse().map_err(|_| GraphError::InvalidParameter {
                            reason: format!("bad nodes header on line {}", line_no + 1),
                        })?);
                }
                continue;
            }
            let mut parts = trimmed.split_whitespace();
            let (u, v) = match (parts.next(), parts.next()) {
                (Some(u), Some(v)) => (u, v),
                _ => {
                    return Err(GraphError::InvalidParameter {
                        reason: format!("line {} is not an edge: {trimmed:?}", line_no + 1),
                    })
                }
            };
            let parse = |s: &str| -> Result<usize, GraphError> {
                s.parse().map_err(|_| GraphError::InvalidParameter {
                    reason: format!("bad vertex id {s:?} on line {}", line_no + 1),
                })
            };
            let (u, v) = (parse(u)?, parse(v)?);
            max_id = max_id.max(u).max(v);
            saw_vertex = true;
            edges.push((u, v));
        }
        let n = declared_nodes.unwrap_or(if saw_vertex { max_id + 1 } else { 0 });
        Ok((n, edges))
    }

    pub fn build(n: usize, edges: &[(usize, usize)]) -> Result<Graph, GraphError> {
        Graph::from_edges_by_sort(n, edges)
    }
}

fn main() {
    let smoke = scale_smoke();
    let default_edges: usize = if smoke { 100_000 } else { 10_000_000 };
    let target_edges: usize = flag_value("--edges").unwrap_or(default_edges);
    let seed: u64 = flag_value("--seed").unwrap_or(97);
    let jobs = jobs_from_args();
    let input: Option<String> = flag_value("--input");
    let backends: Vec<BackendKind> = match std::env::args().any(|a| a == "--backend") {
        true => vec![backend_from_args()],
        false => BackendKind::ALL.to_vec(),
    };
    let mut report = BenchReport::new("scale");
    let ingest = env_ingest_jobs();

    // ---- The edge-list text buffer ----------------------------------------
    let text: Vec<u8> = match &input {
        Some(path) => {
            std::fs::read(path).unwrap_or_else(|e| panic!("cannot read edge list {path:?}: {e}"))
        }
        None => {
            let n = (target_edges / (AVG_DEGREE / 2)).max(2);
            let start = Instant::now();
            let g = gnm(n, target_edges, seed);
            println!(
                "generated G({n}, {}) in {:.3}s",
                g.num_edges(),
                start.elapsed().as_secs_f64()
            );
            let mut buffer = Vec::with_capacity(target_edges * 16);
            write_edge_list(&g, &mut buffer).expect("in-memory write");
            buffer
        }
    };
    println!(
        "edge-list buffer: {:.1} MiB, ingest threads: {ingest}, algorithm jobs: {jobs}",
        text.len() as f64 / (1 << 20) as f64
    );

    // ---- Ingestion: seed path vs fast path --------------------------------
    let (n_seed, pairs_seed) = leg(&mut report, "scale/parse/seed", 1, "host", 0, 0, 0, || {
        seed_path::parse(text.as_slice()).expect("seed parse")
    });
    let seed_parse_s = report.legs.last().expect("pushed").wall_seconds;
    let g_seed = leg(&mut report, "scale/build/seed", 1, "host", 0, 0, 0, || {
        seed_path::build(n_seed, &pairs_seed).expect("seed build")
    });
    let seed_build_s = report.legs.last().expect("pushed").wall_seconds;
    drop(pairs_seed);

    let (n_fast, pairs_fast) = leg(
        &mut report,
        "scale/parse/fast",
        ingest,
        "host",
        0,
        0,
        0,
        || parse_edge_list(&text).expect("fast parse"),
    );
    let fast_parse_s = report.legs.last().expect("pushed").wall_seconds;
    let graph = leg(
        &mut report,
        "scale/build/fast",
        ingest,
        "host",
        0,
        0,
        0,
        || Graph::from_normalized_unsorted(n_fast, &pairs_fast, ingest),
    );
    let fast_build_s = report.legs.last().expect("pushed").wall_seconds;
    drop(pairs_fast);

    assert_eq!(
        graph, g_seed,
        "fast ingestion must be bit-identical to the seed path"
    );
    drop(g_seed);
    let speedup = (seed_parse_s + seed_build_s) / (fast_parse_s + fast_build_s).max(1e-12);
    println!(
        "ingestion (parse + build): seed {:.3}s, fast {:.3}s — {speedup:.2}x",
        seed_parse_s + seed_build_s,
        fast_parse_s + fast_build_s
    );
    println!(
        "graph: n = {}, m = {}",
        graph.num_vertices(),
        graph.num_edges()
    );

    // ---- End-to-end algorithms on every backend ---------------------------
    let mut params = Params::practical(graph.num_vertices());
    params.jobs = jobs;
    for kind in backends {
        let name = kind.name();
        let shards = match kind {
            BackendKind::Sharded { shards } => shards.unwrap_or_else(dgo_mpc_auto_shards),
            // Worker processes fill the same report column: both count the
            // contiguous machine-shard partitions of the exchange.
            BackendKind::Process { workers } => workers.unwrap_or_else(dgo_mpc_auto_shards),
            _ => 0,
        };
        dispatch_backend!(kind, B => {
            let result = leg(
                &mut report,
                &format!("scale/orient/{name}"),
                resolved_jobs(jobs),
                name,
                shards,
                0,
                0,
                || orient_on::<B>(&graph, &params).expect("orient"),
            );
            let last = report.legs.last_mut().expect("pushed");
            last.comm_words = result.metrics.total_comm_words;
            last.peak_tree_bytes = result.metrics.peak_tree_bytes;
            println!(
                "  orient/{name}: max out-degree {}, rounds {}, comm words {}",
                result.orientation.max_out_degree(),
                result.metrics.rounds,
                result.metrics.total_comm_words
            );
            drop(result);

            let coreness = leg(
                &mut report,
                &format!("scale/coreness/{name}"),
                resolved_jobs(jobs),
                name,
                shards,
                0,
                0,
                || approximate_coreness_on::<B>(&graph, EPS, &params).expect("coreness"),
            );
            let last = report.legs.last_mut().expect("pushed");
            last.comm_words = coreness.metrics.total_comm_words;
            last.peak_tree_bytes = coreness.metrics.peak_tree_bytes;
            println!(
                "  coreness/{name}: ladder of {} guesses, comm words {}",
                coreness.stats.len(),
                coreness.metrics.total_comm_words
            );
        });
    }

    // Workspace root: two levels above this package's manifest dir.
    match report.write_in(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write bench report: {e}"),
    }
}

/// The shard count `sharded` legs resolve to when no explicit `:K` was given.
fn dgo_mpc_auto_shards() -> usize {
    ShardedBackend::default_shards().unwrap_or_else(|| resolved_jobs(0))
}
