//! E2: orientation quality — max outdegree vs arboricity, ours vs BE08.
//!
//! Usage: `cargo run -p dgo-bench --release --bin exp_outdegree [-- --n 8192]`

use dgo_bench::{e2_outdegree, n_from_args};

fn main() {
    println!("{}", e2_outdegree(n_from_args(1 << 13)));
}
