//! E2: orientation quality — max outdegree vs arboricity, ours vs BE08.
//!
//! Usage: `cargo run -p dgo-bench --release --bin exp_outdegree [-- --n 8192] [-- --backend parallel] [-- --jobs 8]`

use dgo_bench::{backend_from_args, dispatch_backend, e2_outdegree, jobs_from_args, n_from_args};

fn main() {
    let n = n_from_args(1 << 13);
    let jobs = jobs_from_args();
    dispatch_backend!(backend_from_args(), B => {
        println!("{}", e2_outdegree::<B>(n, jobs));
    });
}
