//! E7: approximate coreness (paper footnote 2 / GLM19) vs exact.
//!
//! Usage: `cargo run -p dgo-bench --release --bin exp_coreness [-- --n 8192] [-- --backend parallel] [-- --jobs 8]`

use dgo_bench::{backend_from_args, dispatch_backend, e7_coreness, jobs_from_args, n_from_args};

fn main() {
    let n = n_from_args(1 << 13);
    let jobs = jobs_from_args();
    dispatch_backend!(backend_from_args(), B => {
        println!("{}", e7_coreness::<B>(n, jobs));
    });
}
