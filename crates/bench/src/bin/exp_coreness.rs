//! E7: approximate coreness (paper footnote 2 / GLM19) vs exact.
//!
//! Usage: `cargo run -p dgo-bench --release --bin exp_coreness [-- --n 8192] [-- --backend parallel]`

use dgo_bench::{backend_from_args, dispatch_backend, e7_coreness, n_from_args};

fn main() {
    let n = n_from_args(1 << 13);
    dispatch_backend!(backend_from_args(), B => {
        println!("{}", e7_coreness::<B>(n));
    });
}
