//! E7: approximate coreness (paper footnote 2 / GLM19) vs exact.
//!
//! Usage: `cargo run -p dgo-bench --release --bin exp_coreness [-- --n 8192]`

use dgo_bench::{e7_coreness, n_from_args};

fn main() {
    println!("{}", e7_coreness(n_from_args(1 << 13)));
}
