//! The full experiment suite (E1–E7). EXPERIMENTS.md records this output.
//!
//! Usage: `cargo run -p dgo-bench --release --bin exp_all [-- --big]`

use dgo_bench::{
    e1_rounds, e2_outdegree, e3_colors, e4_decay, e5_memory, e6_ablation, e7_coreness,
    sizes_from_args,
};
use dgo_graph::generators::Family;

fn main() {
    let sizes = sizes_from_args();
    let n_mid = sizes[sizes.len() / 2];

    println!("# dgo experiment suite\n");
    for family in [Family::SparseGnm, Family::Tree, Family::PowerLaw] {
        println!("{}", e1_rounds(&sizes, family));
    }
    println!("{}", e2_outdegree(n_mid));
    println!("{}", e3_colors(n_mid));
    for family in [Family::SparseGnm, Family::PowerLaw] {
        println!("{}", e4_decay(n_mid, family));
    }
    println!("{}", e5_memory(&sizes[..sizes.len().min(3)]));
    for table in e6_ablation(n_mid) {
        println!("{table}");
    }
    println!("{}", e7_coreness(n_mid));
}
