//! The full experiment suite (E1–E7). EXPERIMENTS.md records this output.
//!
//! Usage: `cargo run -p dgo-bench --release --bin exp_all [-- --big] [-- --backend parallel] [-- --jobs 8]`

use dgo_bench::{
    backend_from_args, dispatch_backend, e1_rounds, e2_outdegree, e3_colors, e4_decay, e5_memory,
    e5_wire, e6_ablation, e7_coreness, jobs_from_args, sizes_from_args,
};
use dgo_graph::generators::Family;

fn main() {
    let sizes = sizes_from_args();
    let n_mid = sizes[sizes.len() / 2];
    let kind = backend_from_args();
    let jobs = jobs_from_args();

    println!("# dgo experiment suite (backend: {kind}, jobs: {jobs})\n");
    dispatch_backend!(kind, B => {
        for family in [Family::SparseGnm, Family::Tree, Family::PowerLaw] {
            println!("{}", e1_rounds::<B>(&sizes, family, jobs));
        }
        println!("{}", e2_outdegree::<B>(n_mid, jobs));
        println!("{}", e3_colors::<B>(n_mid, jobs));
        for family in [Family::SparseGnm, Family::PowerLaw] {
            println!("{}", e4_decay::<B>(n_mid, family, jobs));
        }
        println!("{}", e5_memory::<B>(&sizes[..sizes.len().min(3)], jobs));
        println!("{}", e5_wire::<B>(&sizes[..sizes.len().min(3)], jobs));
        for table in e6_ablation::<B>(n_mid, jobs) {
            println!("{table}");
        }
        println!("{}", e7_coreness::<B>(n_mid, jobs));
    });
}
