//! The full experiment suite (E1–E7). EXPERIMENTS.md records this output.
//!
//! Usage: `cargo run -p dgo-bench --release --bin exp_all [-- --big] [-- --backend parallel]`

use dgo_bench::{
    backend_from_args, dispatch_backend, e1_rounds, e2_outdegree, e3_colors, e4_decay, e5_memory,
    e6_ablation, e7_coreness, sizes_from_args,
};
use dgo_graph::generators::Family;

fn main() {
    let sizes = sizes_from_args();
    let n_mid = sizes[sizes.len() / 2];
    let kind = backend_from_args();

    println!("# dgo experiment suite (backend: {kind})\n");
    dispatch_backend!(kind, B => {
        for family in [Family::SparseGnm, Family::Tree, Family::PowerLaw] {
            println!("{}", e1_rounds::<B>(&sizes, family));
        }
        println!("{}", e2_outdegree::<B>(n_mid));
        println!("{}", e3_colors::<B>(n_mid));
        for family in [Family::SparseGnm, Family::PowerLaw] {
            println!("{}", e4_decay::<B>(n_mid, family));
        }
        println!("{}", e5_memory::<B>(&sizes[..sizes.len().min(3)]));
        for table in e6_ablation::<B>(n_mid) {
            println!("{table}");
        }
        println!("{}", e7_coreness::<B>(n_mid));
    });
}
