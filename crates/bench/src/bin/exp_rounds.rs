//! E1: round-complexity comparison — ours vs direct simulation vs models.
//!
//! Usage: `cargo run -p dgo-bench --release --bin exp_rounds [-- --big]`

use dgo_bench::{e1_rounds, sizes_from_args};
use dgo_graph::generators::Family;

fn main() {
    let sizes = sizes_from_args();
    for family in [Family::SparseGnm, Family::Tree, Family::PowerLaw] {
        println!("{}", e1_rounds(&sizes, family));
    }
}
