//! E1: round-complexity comparison — ours vs direct simulation vs models.
//!
//! Usage: `cargo run -p dgo-bench --release --bin exp_rounds [-- --big] [-- --backend parallel] [-- --jobs 8]`

use dgo_bench::{backend_from_args, dispatch_backend, e1_rounds, jobs_from_args, sizes_from_args};
use dgo_graph::generators::Family;

fn main() {
    let sizes = sizes_from_args();
    let jobs = jobs_from_args();
    dispatch_backend!(backend_from_args(), B => {
        for family in [Family::SparseGnm, Family::Tree, Family::PowerLaw] {
            println!("{}", e1_rounds::<B>(&sizes, family, jobs));
        }
    });
}
