//! E3: coloring quality — palette size vs Δ+1 vs the λ·loglog budget.
//!
//! Usage: `cargo run -p dgo-bench --release --bin exp_colors [-- --n 8192]`

use dgo_bench::{e3_colors, n_from_args};

fn main() {
    println!("{}", e3_colors(n_from_args(1 << 13)));
}
