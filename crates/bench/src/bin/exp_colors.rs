//! E3: coloring quality — palette size vs Δ+1 vs the λ·loglog budget.
//!
//! Usage: `cargo run -p dgo-bench --release --bin exp_colors [-- --n 8192] [-- --backend parallel]`

use dgo_bench::{backend_from_args, dispatch_backend, e3_colors, n_from_args};

fn main() {
    let n = n_from_args(1 << 13);
    dispatch_backend!(backend_from_args(), B => {
        println!("{}", e3_colors::<B>(n));
    });
}
