//! E3: coloring quality — palette size vs Δ+1 vs the λ·loglog budget.
//!
//! Usage: `cargo run -p dgo-bench --release --bin exp_colors [-- --n 8192] [-- --backend parallel] [-- --jobs 8]`

use dgo_bench::{backend_from_args, dispatch_backend, e3_colors, jobs_from_args, n_from_args};

fn main() {
    let n = n_from_args(1 << 13);
    let jobs = jobs_from_args();
    dispatch_backend!(backend_from_args(), B => {
        println!("{}", e3_colors::<B>(n, jobs));
    });
}
