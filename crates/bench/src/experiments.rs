//! The experiment suite: one function per claim-derived table/figure
//! (E1–E6 of DESIGN.md §6). Each returns [`Table`]s so the binaries, the
//! integration tests, and EXPERIMENTS.md all consume the same code path.
//!
//! Every experiment takes a `jobs` knob (threaded from the binaries'
//! `--jobs` flag into [`Params::jobs`]): composed parallel instances — the
//! coreness guess ladder of E7, orientation edge parts in E1/E2 — then
//! execute host-parallel. Tables are bit-identical at any job count; only
//! wall-clock changes.

use crate::table::Table;
use dgo_core::{
    approximate_coreness_on, color_on, complete_layering_on, estimate_lambda, num_paths_in_staged,
    orient_on, Params, StageExecutor,
};
use dgo_graph::generators::Family;
use dgo_graph::{coreness, Coloring};
use dgo_local::{be08_peeling, direct_peeling_mpc_on, RoundModel};
use dgo_mpc::{ClusterConfig, ExecutionBackend};

/// Default instance sizes for size sweeps (kept laptop-friendly; binaries
/// accept `--big` for an extended sweep).
pub const DEFAULT_SIZES: [usize; 4] = [1 << 10, 1 << 12, 1 << 14, 1 << 16];

/// Extended sweep used with `--big`.
pub const BIG_SIZES: [usize; 6] = [1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 17, 1 << 18];

/// The default seed for all experiments.
pub const SEED: u64 = 0xE5EED;

/// E1 (Figure-1 analog): measured MPC rounds of this paper's orientation vs
/// the direct LOCAL→MPC simulation, with the three analytic model curves.
pub fn e1_rounds<B: ExecutionBackend + Send>(
    sizes: &[usize],
    family: Family,
    jobs: usize,
) -> Table {
    let mut table = Table::new(
        format!("E1: MPC rounds vs n ({family}) — ours vs direct simulation vs models"),
        &[
            "n",
            "ours(measured)",
            "direct(measured)",
            "model:ours",
            "model:glm19",
            "model:direct",
        ],
    );
    for &n in sizes {
        let g = family.generate(n, SEED);
        let params = Params::practical(n).with_jobs(jobs);
        let ours = orient_on::<B>(&g, &params).expect("orientation must succeed");
        let lambda = estimate_lambda(&g, &params);
        let cfg = ClusterConfig::for_graph(g.num_vertices(), g.num_edges(), params.delta);
        let direct =
            direct_peeling_mpc_on::<B>(&g, lambda, 0.5, cfg).expect("baseline must succeed");
        table.push_row(vec![
            n.to_string(),
            ours.metrics.rounds.to_string(),
            direct.metrics.rounds.to_string(),
            format!("{:.0}", RoundModel::predict_ours(n)),
            format!("{:.0}", RoundModel::predict_glm19(n)),
            format!("{:.0}", RoundModel::predict_direct(n)),
        ]);
    }
    table
}

/// E2 (Table-1 analog): max outdegree normalized by `λ̂` across families,
/// ours vs the BE08 `(2+ε)λ` baseline.
pub fn e2_outdegree<B: ExecutionBackend + Send>(n: usize, jobs: usize) -> Table {
    let mut table = Table::new(
        format!("E2: orientation quality at n = {n} — max outdegree vs λ̂"),
        &["family", "λ̂", "ours", "ours/λ̂", "be08", "be08/λ̂", "Δ"],
    );
    for family in Family::ALL {
        let g = family.generate(n, SEED);
        let params = Params::practical(n).with_jobs(jobs);
        let lambda = estimate_lambda(&g, &params).max(1);
        let ours = orient_on::<B>(&g, &params).expect("orientation must succeed");
        let be08 = be08_peeling(&g, lambda, 0.5, 0);
        let be08_deg = be08
            .orientation(&g)
            .map(|o| o.max_out_degree())
            .unwrap_or(0);
        let our_deg = ours.orientation.max_out_degree();
        table.push_row(vec![
            family.name().to_string(),
            lambda.to_string(),
            our_deg.to_string(),
            format!("{:.2}", our_deg as f64 / lambda as f64),
            be08_deg.to_string(),
            format!("{:.2}", be08_deg as f64 / lambda as f64),
            g.max_degree().to_string(),
        ]);
    }
    table
}

/// E3 (Table-2 analog): colors used by Theorem 1.2 vs the `Δ+1` reference
/// and the `λ log log n` budget.
pub fn e3_colors<B: ExecutionBackend + Send>(n: usize, jobs: usize) -> Table {
    let mut table = Table::new(
        format!("E3: coloring at n = {n} — palette vs Δ+1 vs λ·loglog budget"),
        &[
            "family",
            "λ̂",
            "Δ+1",
            "ours(colors)",
            "ours(palette)",
            "greedy-degeneracy",
        ],
    );
    let loglog = (n.max(4) as f64).log2().log2();
    for family in Family::ALL {
        let g = family.generate(n, SEED);
        let params = Params::practical(n).with_jobs(jobs);
        let lambda = estimate_lambda(&g, &params).max(1);
        let ours = color_on::<B>(&g, &params).expect("coloring must succeed");
        ours.coloring.validate(&g).expect("coloring must be proper");
        let deg = dgo_graph::degeneracy(&g);
        let mut rev = deg.order.clone();
        rev.reverse();
        let greedy = Coloring::greedy(&g, &rev);
        table.push_row(vec![
            family.name().to_string(),
            lambda.to_string(),
            (g.max_degree() + 1).to_string(),
            ours.coloring.num_colors().to_string(),
            ours.stats.palette.to_string(),
            greedy.num_colors().to_string(),
        ]);
    }
    let _ = loglog;
    table
}

/// E4 (Figure-2 analog): layer-tail decay `|{v : ℓ(v) ≥ j}| / n` against the
/// `0.5^{j-1}` bound of Lemma 3.15, plus the Lemma 2.4 path-count mass.
pub fn e4_decay<B: ExecutionBackend + Send>(n: usize, family: Family, jobs: usize) -> Table {
    let mut table = Table::new(
        format!("E4: layer-tail decay at n = {n} ({family}) — Lemma 3.15(2)"),
        &["j", "tail(j)", "tail(j)/n", "bound 0.5^(j-1)"],
    );
    let g = family.generate(n, SEED);
    let params = Params::practical(n).with_jobs(jobs);
    let out = complete_layering_on::<B>(&g, &params).expect("layering must succeed");
    let tails = out.layering.tail_sizes();
    let nv = g.num_vertices() as f64;
    for (idx, &tail) in tails.iter().enumerate().take(16) {
        let j = idx + 1;
        table.push_row(vec![
            j.to_string(),
            tail.to_string(),
            format!("{:.4}", tail as f64 / nv),
            format!("{:.4}", 0.5f64.powi(idx as i32)),
        ]);
    }
    // Path-count summary row (Lemma 2.4 context for the decay argument);
    // counted with the vertex-parallel stages on the same thread budget.
    let paths = num_paths_in_staged(&g, &out.layering, &StageExecutor::new(jobs));
    let max_paths = paths.iter().copied().max().unwrap_or(0);
    table.push_row(vec![
        "max NumPathsIn".to_string(),
        max_paths.to_string(),
        String::new(),
        String::new(),
    ]);
    table
}

/// E5 (Table-3 analog): memory compliance — peak per-machine words vs
/// `S = n^δ`, peak global words vs `Õ(m+n)`, across `δ`. Power-law completes
/// in the initial peeling (no view trees); the tree family forces the
/// exponentiation stages, so its rows show the resident tree-arena component
/// (`peak_tree_bytes`) and the bundle words (flat baseline vs what the
/// delta/varint codec actually charged — see [`e5_wire`] for the dedicated
/// compression sweep) alongside the certified words.
pub fn e5_memory<B: ExecutionBackend + Send>(sizes: &[usize], jobs: usize) -> Table {
    let mut table = Table::new(
        "E5: memory — peak machine words vs S = n^δ, global vs m+n, tree arenas".to_string(),
        &[
            "family",
            "n",
            "δ",
            "S",
            "peak-machine",
            "peak/S",
            "global-peak",
            "(m+n)",
            "tree-peak-bytes",
            "bundle-flat-w",
            "bundle-wire-w",
            "saving",
        ],
    );
    for family in [Family::PowerLaw, Family::Tree] {
        for &n in sizes {
            for &delta in &[0.3f64, 0.5, 0.7] {
                let g = family.generate(n, SEED);
                let mut params = Params::practical(n).with_jobs(jobs);
                params.delta = delta;
                let s = params.local_memory(g.num_vertices());
                let out = complete_layering_on::<B>(&g, &params).expect("layering must succeed");
                table.push_row(vec![
                    family.name().to_string(),
                    n.to_string(),
                    format!("{delta:.1}"),
                    s.to_string(),
                    out.metrics.peak_machine_memory.to_string(),
                    format!("{:.2}", out.metrics.peak_machine_memory as f64 / s as f64),
                    out.metrics.peak_global_memory.to_string(),
                    (g.num_edges() + g.num_vertices()).to_string(),
                    out.metrics.peak_tree_bytes.to_string(),
                    out.metrics.bundle_flat_words.to_string(),
                    out.metrics.bundle_wire_words.to_string(),
                    saving_percent(out.metrics.bundle_wire_words, out.metrics.bundle_flat_words),
                ]);
            }
        }
    }
    table
}

/// Bundle-words saving as a percentage string; "—" when nothing shipped.
fn saving_percent(wire: usize, flat: usize) -> String {
    if flat == 0 {
        "—".to_string()
    } else {
        format!("{:.1}%", 100.0 * (1.0 - wire as f64 / flat as f64))
    }
}

/// E5b: wire-codec compression on the Lemma 4.1 bundle traffic. Runs
/// Algorithm 2 directly (so *both* families actually ship bundles —
/// `complete_layering` finishes power-law instances in the initial peeling
/// and would report no traffic) and prints the certified words charged per
/// family and size: flat two-words-per-node baseline vs the delta/varint
/// encoded figure, and the resulting saving.
pub fn e5_wire<B: ExecutionBackend + Send>(sizes: &[usize], jobs: usize) -> Table {
    use dgo_core::exponentiate_and_prune_staged;
    const BUDGET: usize = 256;
    const K: usize = 3;
    const STEPS: u32 = 3;
    let mut table = Table::new(
        format!("E5b: bundle wire compression (Algorithm 2, B = {BUDGET}, k = {K}, s = {STEPS})"),
        &[
            "family",
            "n",
            "bundle-flat-w",
            "bundle-wire-w",
            "saving",
            "total-comm-w",
        ],
    );
    let stage = StageExecutor::new(jobs);
    for family in [Family::PowerLaw, Family::Tree] {
        for &n in sizes {
            let g = family.generate(n, SEED);
            let mut cluster = B::from_config(ClusterConfig::new((n * BUDGET / 64).max(8), 1 << 15));
            exponentiate_and_prune_staged(&g, BUDGET, K, STEPS, &mut cluster, &stage)
                .expect("exponentiation must fit");
            let m = cluster.metrics();
            table.push_row(vec![
                family.name().to_string(),
                n.to_string(),
                m.bundle_flat_words.to_string(),
                m.bundle_wire_words.to_string(),
                saving_percent(m.bundle_wire_words, m.bundle_flat_words),
                m.total_comm_words.to_string(),
            ]);
        }
    }
    table
}

/// E6 (Figure-3 analog, ablation): sweeps of the pruning factor `k_factor`,
/// budget `B`, and step count `s` on a fixed workload — rounds vs outdegree
/// trade-off.
pub fn e6_ablation<B: ExecutionBackend + Send>(n: usize, jobs: usize) -> Vec<Table> {
    let g = Family::PowerLaw.generate(n, SEED);
    let mut tables = Vec::new();

    let mut t = Table::new(
        format!("E6a: k_factor sweep at n = {n} (power-law)"),
        &["k_factor", "rounds", "outdegree", "layers", "fallbacks"],
    );
    for &kf in &[1.0f64, 2.0, 4.0, 8.0] {
        let mut params = Params::practical(n).with_jobs(jobs);
        params.k_factor = kf;
        let out = complete_layering_on::<B>(&g, &params).expect("layering must succeed");
        t.push_row(vec![
            format!("{kf:.0}"),
            out.metrics.rounds.to_string(),
            out.layering.out_degree_bound(&g).unwrap().to_string(),
            out.stats.layers.to_string(),
            out.stats.fallback_rounds.to_string(),
        ]);
    }
    tables.push(t);

    // Budget and step sweeps run on a tree: with k = 2 the O(log k) initial
    // peeling cannot finish, so the exponentiation stages do the work and
    // the parameters actually bite.
    let tree = Family::Tree.generate(n, SEED);
    let mut t = Table::new(
        format!("E6b: budget sweep at n = {n} (tree)"),
        &["budget", "rounds", "outdegree", "stages", "layers"],
    );
    for &b in &[32usize, 64, 128, 256] {
        let mut params = Params::practical(n).with_jobs(jobs);
        params.budget = b;
        let out = complete_layering_on::<B>(&tree, &params).expect("layering must succeed");
        t.push_row(vec![
            b.to_string(),
            out.metrics.rounds.to_string(),
            out.layering.out_degree_bound(&tree).unwrap().to_string(),
            out.stats.stages.to_string(),
            out.stats.layers.to_string(),
        ]);
    }
    tables.push(t);

    let mut t = Table::new(
        format!("E6c: exponentiation steps sweep at n = {n} (tree)"),
        &[
            "steps",
            "rounds",
            "outdegree",
            "stages",
            "out-degree cap (s+1)k",
        ],
    );
    for &s in &[1u32, 2, 3, 5] {
        let mut params = Params::practical(n).with_jobs(jobs);
        params.steps = s;
        let out = complete_layering_on::<B>(&tree, &params).expect("layering must succeed");
        let k = out.stats.k;
        t.push_row(vec![
            s.to_string(),
            out.metrics.rounds.to_string(),
            out.layering.out_degree_bound(&tree).unwrap().to_string(),
            out.stats.stages.to_string(),
            ((s as usize + 1) * k).to_string(),
        ]);
    }
    tables.push(t);
    tables
}

/// E7 (application): approximate coreness via the parallel guess ladder
/// (paper footnote 2 / GLM19) vs exact coreness — soundness and
/// approximation-factor distribution.
#[allow(clippy::needless_range_loop)]
pub fn e7_coreness<B: ExecutionBackend + Send>(n: usize, jobs: usize) -> Table {
    let mut table = Table::new(
        format!("E7: coreness estimates at n = {n} — guess ladder vs exact"),
        &[
            "family",
            "guesses",
            "rounds",
            "sound",
            "median ratio",
            "max ratio",
        ],
    );
    for family in [
        Family::SparseGnm,
        Family::PowerLaw,
        Family::PlantedDense,
        Family::Tree,
    ] {
        let g = family.generate(n, SEED);
        let params = Params::practical(n).with_jobs(jobs);
        let r = approximate_coreness_on::<B>(&g, 0.5, &params).expect("coreness must succeed");
        let exact = coreness(&g);
        let mut sound = true;
        let mut ratios: Vec<f64> = Vec::with_capacity(g.num_vertices());
        for v in 0..g.num_vertices() {
            if r.estimate[v] < exact[v] {
                sound = false;
            }
            ratios.push(r.estimate[v] as f64 / exact[v].max(1) as f64);
        }
        ratios.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        let median = ratios[ratios.len() / 2];
        let max = ratios.last().copied().unwrap_or(1.0);
        table.push_row(vec![
            family.name().to_string(),
            r.guesses.len().to_string(),
            r.metrics.rounds.to_string(),
            sound.to_string(),
            format!("{median:.2}"),
            format!("{max:.2}"),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgo_mpc::{ParallelBackend, SequentialBackend};

    #[test]
    fn e1_produces_rows() {
        let t = e1_rounds::<SequentialBackend>(&[256, 512], Family::Tree, 1);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn e1_backend_choice_does_not_change_measurements() {
        let seq = e1_rounds::<SequentialBackend>(&[256], Family::Tree, 1);
        let par = e1_rounds::<ParallelBackend>(&[256], Family::Tree, 1);
        assert_eq!(seq.rows, par.rows);
    }

    #[test]
    fn e2_covers_all_families() {
        let t = e2_outdegree::<SequentialBackend>(256, 1);
        assert_eq!(t.len(), Family::ALL.len());
    }

    #[test]
    fn e3_covers_all_families() {
        let t = e3_colors::<SequentialBackend>(256, 1);
        assert_eq!(t.len(), Family::ALL.len());
    }

    #[test]
    fn e4_reports_decay() {
        let t = e4_decay::<SequentialBackend>(512, Family::SparseGnm, 1);
        assert!(t.len() >= 2);
    }

    #[test]
    fn e5_all_deltas() {
        let t = e5_memory::<ParallelBackend>(&[256], 1);
        // Two families × three deltas.
        assert_eq!(t.len(), 6);
        // The tree-family rows exercise exponentiation, so the tree-arena
        // component must be visibly nonzero there.
        assert!(
            t.rows.iter().any(|row| row[0] == "tree" && row[8] != "0"),
            "tree rows must meter resident tree-arena bytes: {:?}",
            t.rows
        );
    }

    #[test]
    fn e5_wire_certifies_compression_on_both_families() {
        let t = e5_wire::<SequentialBackend>(&[256], 1);
        assert_eq!(t.len(), 2);
        for row in &t.rows {
            let flat: usize = row[2].parse().unwrap();
            let wire: usize = row[3].parse().unwrap();
            assert!(flat > 0, "family {} must ship bundles: {row:?}", row[0]);
            if dgo_mpc::tuning::wire_codec_enabled() {
                // The acceptance bar: ≥ 25% below the flat baseline on both
                // families (in practice the codec lands far below this).
                assert!(wire * 4 <= flat * 3, "expected ≥25% bundle saving: {row:?}");
            } else {
                assert_eq!(wire, flat, "codec off must charge the flat figure");
            }
        }
    }

    #[test]
    fn e5_wire_backend_choice_does_not_change_the_table() {
        let seq = e5_wire::<SequentialBackend>(&[256], 1);
        let par = e5_wire::<ParallelBackend>(&[256], 1);
        assert_eq!(seq.rows, par.rows);
    }

    #[test]
    fn e7_sound_everywhere() {
        let t = e7_coreness::<SequentialBackend>(256, 1);
        assert_eq!(t.len(), 4);
        for row in &t.rows {
            assert_eq!(row[3], "true", "{row:?}");
        }
    }

    #[test]
    fn e7_job_count_does_not_change_the_table() {
        // The concurrent guess ladder is bit-identical to the sequential
        // loop, so the printed experiment tables cannot depend on --jobs.
        let sequential = e7_coreness::<SequentialBackend>(256, 1);
        let concurrent = e7_coreness::<SequentialBackend>(256, 4);
        assert_eq!(sequential.rows, concurrent.rows);
    }

    #[test]
    fn e6_three_tables() {
        let ts = e6_ablation::<SequentialBackend>(256, 1);
        assert_eq!(ts.len(), 3);
        assert!(ts.iter().all(|t| !t.is_empty()));
    }
}
