//! Minimal aligned-table rendering for experiment output.

use std::fmt;

/// A printable experiment table (one per reproduced table/figure).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Table caption, e.g. `"E1: MPC rounds vs n (gnm-sparse)"`.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; pads or truncates to the header width.
    pub fn push_row(&mut self, cells: Vec<String>) {
        let mut cells = cells;
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        writeln!(f, "## {}", self.title)?;
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(c, cell)| format!("{:>width$}", cell, width = widths[c]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.headers))?;
        writeln!(
            f,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        )?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["n", "rounds"]);
        t.push_row(vec!["1024".into(), "12".into()]);
        t.push_row(vec!["2".into(), "345678".into()]);
        let s = t.to_string();
        assert!(s.contains("## demo"));
        assert!(s.contains("   n  rounds"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new("x", &["a", "b", "c"]);
        t.push_row(vec!["1".into()]);
        assert_eq!(t.rows[0].len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.len(), 1);
    }
}
