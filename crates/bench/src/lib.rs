//! # dgo-bench — the experiment harness
//!
//! Regenerates every claim-derived table and figure of the reproduction
//! (DESIGN.md §6): the binaries `exp_rounds`, `exp_outdegree`, `exp_colors`,
//! `exp_decay`, `exp_memory`, and `exp_ablation` each print one experiment;
//! `exp_all` runs the full suite (this is what EXPERIMENTS.md records).
//! Criterion microbenchmarks for the core kernels live under `benches/`.
//!
//! ```bash
//! cargo run -p dgo-bench --release --bin exp_all          # full suite
//! cargo run -p dgo-bench --release --bin exp_rounds -- --big
//! cargo run -p dgo-bench --release --bin exp_all -- --backend parallel
//! cargo run -p dgo-bench --release --bin exp_all -- --backend sharded:4
//! cargo bench -p dgo-bench                                 # kernels
//! ```
//!
//! Every experiment binary accepts `--backend
//! <sequential|parallel|sharded[:K]|process[:K]>` to pick the
//! [`ExecutionBackend`] the simulation runs on (default: sequential;
//! `sharded:K` / `process:K` fix the shard/worker count, the plain forms
//! pick it automatically; `process` runs each shard as a supervised
//! `dgo-worker` OS process with deterministic crash recovery) and
//! `--jobs <n>` to budget `n` host threads (`0` = all cores, default: 1) for
//! the two algorithmic parallelism tiers: composed parallel instances (the
//! coreness guess ladder, orientation edge parts, coloring vertex parts) and
//! the vertex-parallel stages inside every instance (`dgo_core::stage`).
//! Backends and job counts are observationally equivalent — identical
//! tables — so both flags only change host wall-clock; the `engine`,
//! `coreness`, and `stage` criterion benches measure the difference.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod report;
pub mod table;

pub use experiments::{
    e1_rounds, e2_outdegree, e3_colors, e4_decay, e5_memory, e5_wire, e6_ablation, e7_coreness,
    BIG_SIZES, DEFAULT_SIZES, SEED,
};
pub use table::Table;

// Re-exported so the experiment binaries can dispatch on a backend without a
// direct dgo-mpc dependency in their imports.
pub use dgo_mpc::{
    dispatch_backend, BackendKind, ExecutionBackend, ParallelBackend, ProcessBackend,
    SequentialBackend, ShardedBackend,
};

/// Parses the common `--big` flag shared by the experiment binaries and
/// returns the size sweep to use.
pub fn sizes_from_args() -> Vec<usize> {
    if std::env::args().any(|a| a == "--big") {
        BIG_SIZES.to_vec()
    } else {
        DEFAULT_SIZES.to_vec()
    }
}

/// Parses an optional `--n <value>` argument with a default.
pub fn n_from_args(default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--n")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parses the optional `--backend
/// <sequential|parallel|sharded[:K]|process[:K]>` flag shared by the
/// experiment binaries (default: sequential).
///
/// # Panics
///
/// Panics with the parse error message on an unknown backend name.
pub fn backend_from_args() -> BackendKind {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--backend") {
        None => BackendKind::default(),
        Some(i) => match args.get(i + 1) {
            None => panic!(
                "--backend requires a value (one of {})",
                BackendKind::name_list()
            ),
            Some(value) => value.parse().unwrap_or_else(|e| panic!("{e}")),
        },
    }
}

/// Parses the optional `--jobs <n>` flag shared by the experiment binaries:
/// the host-thread budget shared by composed parallel instances and the
/// vertex-parallel stages inside them (`0` = all available cores; default: 1,
/// the sequential host loops). Tables are identical at any value.
///
/// # Panics
///
/// Panics if the flag is present without a non-negative integer value.
pub fn jobs_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--jobs") {
        None => 1,
        Some(i) => match args.get(i + 1).and_then(|v| v.parse().ok()) {
            None => panic!("--jobs requires a non-negative integer (0 = all cores)"),
            Some(jobs) => jobs,
        },
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn default_sizes_ascend() {
        assert!(crate::DEFAULT_SIZES.windows(2).all(|w| w[0] < w[1]));
        assert!(crate::BIG_SIZES.windows(2).all(|w| w[0] < w[1]));
    }
}
