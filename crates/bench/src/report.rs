//! Machine-readable bench reports: `BENCH_<name>.json`.
//!
//! The criterion benches under `benches/` print human-readable timing lines;
//! this module persists the same measurements — plus the leg's configuration
//! (jobs, backend, shard count) and its model-side cost (communication
//! words, peak tree bytes from one metered run) — as a JSON file in the
//! working directory (the workspace root under `cargo bench`), so the
//! performance trajectory survives across commits instead of scrolling away
//! in CI logs. The JSON is hand-rolled: the workspace builds offline and the
//! report shape is flat enough that a serializer dependency isn't warranted.

use std::io::Write as _;
use std::path::PathBuf;

/// One benchmark leg: a timed workload at one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchLeg {
    /// The criterion label (`group/function/param`).
    pub name: String,
    /// Mean wall-clock seconds per iteration.
    pub wall_seconds: f64,
    /// Timed iterations averaged over.
    pub samples: u64,
    /// Host-thread budget the leg ran with (resolved; 1 = sequential host).
    pub jobs: usize,
    /// Execution backend (`sequential` / `parallel` / `sharded` / `stage`).
    pub backend: String,
    /// Shard count for sharded legs; `0` = not applicable.
    pub shards: usize,
    /// Total communication words one run of the workload charges.
    pub comm_words: usize,
    /// Peak view-tree arena bytes one run of the workload reaches.
    pub peak_tree_bytes: usize,
    /// Process-wide peak resident set (bytes) when the leg was recorded —
    /// [`peak_rss_bytes`] at record time. Monotonic over a run (the kernel
    /// high-water mark), so per-leg deltas need leg ordering; `0` where the
    /// platform offers no `/proc/self/status`.
    pub peak_rss_bytes: usize,
}

/// The run's peak resident set size in bytes: the process's own `VmHWM`
/// from `/proc/self/status` **plus** the aggregated peak RSS of any shard
/// worker processes the multi-process backend supervised
/// ([`dgo_mpc::worker_peak_rss_bytes`] — children are not part of the
/// parent's `VmHWM`, so `process` legs would otherwise under-report).
/// `0` on platforms without procfs. Monotonic: both terms are kernel/process
/// high-water marks, so this never decreases within a run.
pub fn peak_rss_bytes() -> usize {
    let workers = dgo_mpc::worker_peak_rss_bytes() as usize;
    #[cfg(target_os = "linux")]
    {
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix("VmHWM:") {
                    let kib: usize = rest
                        .trim()
                        .trim_end_matches("kB")
                        .trim()
                        .parse()
                        .unwrap_or(0);
                    return kib * 1024 + workers;
                }
            }
        }
        workers
    }
    #[cfg(not(target_os = "linux"))]
    {
        workers
    }
}

/// A full bench report: every leg of one bench binary's run.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Report name; the file is written as `BENCH_<name>.json`.
    pub name: String,
    /// Legs in execution order.
    pub legs: Vec<BenchLeg>,
}

impl BenchReport {
    /// An empty report named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        BenchReport {
            name: name.into(),
            legs: Vec::new(),
        }
    }

    /// Appends one leg.
    pub fn push(&mut self, leg: BenchLeg) {
        self.legs.push(leg);
    }

    /// The report as a JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"name\": {},\n", json_string(&self.name)));
        out.push_str("  \"legs\": [\n");
        for (i, leg) in self.legs.iter().enumerate() {
            out.push_str("    {");
            out.push_str(&format!("\"name\": {}, ", json_string(&leg.name)));
            out.push_str(&format!(
                "\"wall_seconds\": {}, ",
                json_f64(leg.wall_seconds)
            ));
            out.push_str(&format!("\"samples\": {}, ", leg.samples));
            out.push_str(&format!("\"jobs\": {}, ", leg.jobs));
            out.push_str(&format!("\"backend\": {}, ", json_string(&leg.backend)));
            out.push_str(&format!("\"shards\": {}, ", leg.shards));
            out.push_str(&format!("\"comm_words\": {}, ", leg.comm_words));
            out.push_str(&format!("\"peak_tree_bytes\": {}, ", leg.peak_tree_bytes));
            out.push_str(&format!("\"peak_rss_bytes\": {}", leg.peak_rss_bytes));
            out.push_str(if i + 1 == self.legs.len() {
                "}\n"
            } else {
                "},\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes `BENCH_<name>.json` into `dir` and returns its path.
    ///
    /// Bench binaries pass the workspace root (two levels above their
    /// `CARGO_MANIFEST_DIR`) — cargo runs them with the *package* directory
    /// as working directory, and the report belongs at the repo top level
    /// where successive commits can diff it.
    pub fn write_in(&self, dir: impl Into<PathBuf>) -> std::io::Result<PathBuf> {
        let path = dir.into().join(format!("BENCH_{}.json", self.name));
        let mut file = std::fs::File::create(&path)?;
        file.write_all(self.to_json().as_bytes())?;
        Ok(path)
    }

    /// [`write_in`](Self::write_in) targeting the current working directory.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        self.write_in(PathBuf::new())
    }
}

/// The *resolved* host-thread count a leg actually ran with: `0` (the "all
/// cores" knob) resolves to the machine's thread count, anything else passes
/// through. [`BenchLeg::jobs`] must record this figure, not the raw knob —
/// a `jobs-all` leg that stored `0` (or a hardcoded `1`) would be
/// indistinguishable from a sequential leg when reports from different
/// machines are compared.
pub fn resolved_jobs(jobs: usize) -> usize {
    dgo_mpc::resolve_jobs(jobs)
}

/// Whether `DGO_BENCH_QUICK=1` asked the criterion benches to shrink every
/// sweep to its smallest leg with few samples (the CI smoke configuration).
/// This is the bench crate's single sanctioned read of the knob (dgo-lint
/// R2); read once per process, like the knobs in `dgo_mpc::tuning`.
pub fn quick_mode() -> bool {
    static QUICK: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *QUICK.get_or_init(|| std::env::var("DGO_BENCH_QUICK").is_ok_and(|v| v == "1"))
}

/// Whether `DGO_SCALE_SMOKE=1` asked `exp_scale` for the ~10⁵-edge CI
/// configuration instead of the full scale ladder. Read once per process.
pub fn scale_smoke() -> bool {
    static SMOKE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *SMOKE.get_or_init(|| std::env::var("DGO_SCALE_SMOKE").is_ok_and(|v| v == "1"))
}

/// The ingestion thread budget `dgo_graph` resolves from `DGO_JOBS`
/// (`0`/unset = all cores), mirrored here so report legs can record the real
/// figure. Reads the knob through the cached [`dgo_mpc::tuning::env_jobs`].
pub fn env_ingest_jobs() -> usize {
    match dgo_mpc::tuning::env_jobs() {
        Some(0) | None => resolved_jobs(0),
        Some(jobs) => jobs,
    }
}

/// JSON string literal with the escapes the label alphabet can need.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A finite float as a JSON number (JSON has no NaN/inf; clamp to 0).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leg(name: &str) -> BenchLeg {
        BenchLeg {
            name: name.to_string(),
            wall_seconds: 0.25,
            samples: 10,
            jobs: 2,
            backend: "sharded".to_string(),
            shards: 4,
            comm_words: 1234,
            peak_tree_bytes: 5678,
            peak_rss_bytes: 9999,
        }
    }

    #[test]
    fn json_shape_is_stable() {
        let mut report = BenchReport::new("engine");
        report.push(leg("engine_orient/sequential/1024"));
        report.push(leg("engine_orient/sharded/1024"));
        let json = report.to_json();
        assert!(json.starts_with("{\n  \"name\": \"engine\""));
        assert!(json.contains("\"wall_seconds\": 0.25"));
        assert!(json.contains("\"comm_words\": 1234"));
        assert!(json.contains("\"peak_tree_bytes\": 5678"));
        assert!(json.contains("\"peak_rss_bytes\": 9999"));
        // Exactly one trailing comma structure: two legs, one separator.
        assert_eq!(json.matches("},\n").count(), 1);
        assert!(json.ends_with("  ]\n}\n"));
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("x\ny"), "\"x\\ny\"");
        assert_eq!(json_f64(f64::NAN), "0");
        assert_eq!(json_f64(1.5), "1.5");
    }

    #[test]
    fn empty_report_is_valid() {
        let json = BenchReport::new("empty").to_json();
        assert!(json.contains("\"legs\": [\n  ]"));
    }

    #[test]
    fn peak_rss_is_positive_where_procfs_exists() {
        if cfg!(target_os = "linux") {
            // A running test binary has resident pages; VmHWM can't be 0.
            assert!(peak_rss_bytes() > 0);
        } else {
            assert_eq!(peak_rss_bytes(), 0);
        }
    }

    #[test]
    fn resolved_jobs_resolves_the_all_cores_knob() {
        assert_eq!(resolved_jobs(1), 1);
        assert_eq!(resolved_jobs(3), 3);
        // 0 means "all cores": at least one, and what the executors resolve.
        assert!(resolved_jobs(0) >= 1);
        assert_eq!(resolved_jobs(0), dgo_mpc::resolve_jobs(0));
    }
}
