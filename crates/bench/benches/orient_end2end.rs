//! End-to-end benchmark: Theorem 1.1 orientation across instance sizes
//! (the wall-clock companion of experiment E1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dgo_core::{orient, Params};
use dgo_graph::generators::gnm;

fn bench_orient(c: &mut Criterion) {
    let mut group = c.benchmark_group("orient_theorem_1_1");
    group.sample_size(10);
    for &n in &[1024usize, 4096, 16384] {
        let g = gnm(n, 4 * n, 9);
        let params = Params::practical(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| orient(g, &params).expect("orientation succeeds"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_orient);
criterion_main!(benches);
