//! Macrobenchmark: the vertex-parallel stage engine (`dgo_core::stage`) on a
//! large `G(n, m)` instance — sequential (`jobs = 1`) vs vertex-parallel
//! (`jobs = 0`, all cores) execution of the Algorithm 2 kernel and the full
//! Algorithm 4 stage. Outputs and metrics are bit-identical at any job
//! count, so the deltas here are pure host wall-clock. Note `jobs = 0`
//! resolves to the available parallelism: on a single-core host the two
//! legs coincide (the engine runs inline at one thread — no spawn overhead),
//! and the `jobs-all` win scales with the core count.
//!
//! Every run also writes `BENCH_stage.json` (see `dgo_bench::report`) into
//! the working directory — wall-clock per leg plus jobs and model-side costs
//! — so the perf trajectory persists across commits. `DGO_BENCH_QUICK=1`
//! shrinks the instance (the CI smoke configuration).

use criterion::{BenchmarkId, Criterion};
use dgo_bench::report::{peak_rss_bytes, quick_mode, BenchLeg, BenchReport};
use dgo_core::stage::StageExecutor;
use dgo_core::{
    exponentiate_and_prune_staged, local_prune_batch, num_paths_in_staged,
    partial_layer_assignment_staged, partial_layer_assignment_trees, wire, ViewTree,
};
use dgo_graph::generators::gnm;
use dgo_mpc::{Cluster, ClusterConfig};

const BUDGET: usize = 256;
const K: usize = 4;
const STEPS: u32 = 3;
const LAYERS: u32 = 4;

/// `DGO_BENCH_QUICK=1` shrinks the instance and sample count — the CI smoke
/// mode (seconds, not minutes).
fn quick() -> bool {
    quick_mode()
}

fn cluster_for(n: usize) -> Cluster {
    Cluster::new(ClusterConfig::new((n * BUDGET / 64).max(8), 1 << 15))
}

/// Converts the record of the just-finished bench call plus one metered run
/// into a report leg. Must be called immediately after the bench call, while
/// its record is the newest.
fn record_leg(report: &mut BenchReport, stage: &StageExecutor, metrics: &dgo_mpc::Metrics) {
    record_kernel_leg(
        report,
        stage.threads(),
        metrics.total_comm_words,
        metrics.peak_tree_bytes,
    );
}

/// [`record_leg`] for communication-free kernel legs (explicit word charge —
/// zero for pure host kernels, the encoded total for the wire codec legs).
fn record_kernel_leg(
    report: &mut BenchReport,
    jobs: usize,
    comm_words: usize,
    peak_tree_bytes: usize,
) {
    let record = criterion::take_records()
        .pop()
        .expect("bench call leaves a record");
    report.push(BenchLeg {
        name: record.label,
        wall_seconds: record.mean_seconds,
        samples: record.samples,
        jobs,
        backend: "stage".to_string(),
        shards: 0,
        comm_words,
        peak_tree_bytes,
        peak_rss_bytes: peak_rss_bytes(),
    });
}

fn bench_stage(c: &mut Criterion, report: &mut BenchReport) {
    let n: usize = if quick() { 4_000 } else { 30_000 };
    let g = gnm(n, 5 * n, 17);
    let executors = [
        ("jobs1", StageExecutor::sequential()),
        ("jobs-all", StageExecutor::new(0)),
    ];

    let mut group = c.benchmark_group("stage");
    group.sample_size(if quick() { 2 } else { 5 });
    for (label, stage) in &executors {
        group.bench_with_input(
            BenchmarkId::new("exponentiate_and_prune", label),
            &g,
            |b, g| {
                b.iter(|| {
                    let mut cluster = cluster_for(n);
                    exponentiate_and_prune_staged(g, BUDGET, K, STEPS, &mut cluster, stage)
                        .expect("fits")
                })
            },
        );
        let metrics = {
            let mut cluster = cluster_for(n);
            exponentiate_and_prune_staged(&g, BUDGET, K, STEPS, &mut cluster, stage).expect("fits");
            cluster.into_metrics()
        };
        record_leg(report, stage, &metrics);
    }
    for (label, stage) in &executors {
        group.bench_with_input(
            BenchmarkId::new("partial_layer_assignment", label),
            &g,
            |b, g| {
                b.iter(|| {
                    let mut cluster = cluster_for(n);
                    partial_layer_assignment_staged(
                        g,
                        BUDGET,
                        K,
                        LAYERS,
                        STEPS,
                        &mut cluster,
                        stage,
                    )
                    .expect("fits")
                })
            },
        );
        let metrics = {
            let mut cluster = cluster_for(n);
            partial_layer_assignment_staged(&g, BUDGET, K, LAYERS, STEPS, &mut cluster, stage)
                .expect("fits");
            cluster.into_metrics()
        };
        record_leg(report, stage, &metrics);
    }
    group.finish();
}

/// The branch-light stage kernels in isolation — `LocalPrune` plan/project,
/// the Algorithm 3 peel, the per-layer path-count refill — plus the wire
/// codec itself (sizing, encode, decode), so codec overhead is metered as its
/// own leg instead of hiding inside the exponentiation step.
fn bench_kernels(c: &mut Criterion, report: &mut BenchReport) {
    let n: usize = if quick() { 2_000 } else { 12_000 };
    let g = gnm(n, 5 * n, 17);
    let trees = {
        let mut cluster = cluster_for(n);
        exponentiate_and_prune_staged(
            &g,
            BUDGET,
            K,
            STEPS,
            &mut cluster,
            &StageExecutor::sequential(),
        )
        .expect("fits")
        .trees
    };
    let peel = dgo_local::be08_peeling(&g, 8, 0.5, 0);
    let layering = peel.layering;
    let executors = [
        ("jobs1", StageExecutor::sequential()),
        ("jobs-all", StageExecutor::new(0)),
    ];

    let mut group = c.benchmark_group("kernel");
    group.sample_size(if quick() { 2 } else { 10 });
    for (label, stage) in &executors {
        group.bench_with_input(
            BenchmarkId::new("local_prune", label),
            &trees,
            |b, trees| b.iter(|| local_prune_batch(trees, K, stage)),
        );
        record_kernel_leg(report, stage.threads(), 0, 0);
        group.bench_with_input(BenchmarkId::new("peel", label), &trees, |b, trees| {
            b.iter(|| partial_layer_assignment_trees(&g, trees, 2 * K, LAYERS, stage))
        });
        record_kernel_leg(report, stage.threads(), 0, 0);
        group.bench_with_input(
            BenchmarkId::new("num_paths", label),
            &layering,
            |b, layering| b.iter(|| num_paths_in_staged(&g, layering, stage)),
        );
        record_kernel_leg(report, stage.threads(), 0, 0);
    }

    // Codec legs: single-threaded per-tree passes (the codec runs inside
    // per-vertex stages in production; here its raw cost stands alone).
    let wire_total: usize = trees.iter().map(wire::encoded_words).sum();
    group.bench_with_input(
        BenchmarkId::new("wire_words", "jobs1"),
        &trees,
        |b, trees| b.iter(|| -> usize { trees.iter().map(wire::encoded_words).sum() }),
    );
    record_kernel_leg(report, 1, wire_total, 0);
    group.bench_with_input(
        BenchmarkId::new("wire_encode", "jobs1"),
        &trees,
        |b, trees| b.iter(|| -> usize { trees.iter().map(|t| wire::encode(t).len()).sum() }),
    );
    record_kernel_leg(report, 1, wire_total, 0);
    let encoded: Vec<Vec<u64>> = trees.iter().map(wire::encode).collect();
    group.bench_with_input(
        BenchmarkId::new("wire_decode", "jobs1"),
        &encoded,
        |b, encoded| {
            b.iter(|| -> Vec<ViewTree> {
                encoded
                    .iter()
                    .map(|w| wire::decode(w).expect("canonical"))
                    .collect()
            })
        },
    );
    record_kernel_leg(report, 1, wire_total, 0);
    group.finish();

    // The decoded trees must be the encoded ones — guard the bench inputs.
    assert!(encoded
        .iter()
        .zip(&trees)
        .all(|(w, t)| wire::decode(w).as_ref() == Ok(t)));
}

fn main() {
    let mut criterion = Criterion::default();
    let mut report = BenchReport::new("stage");
    criterion::take_records(); // drop any stale records
    bench_stage(&mut criterion, &mut report);
    bench_kernels(&mut criterion, &mut report);
    // Workspace root: two levels above this package's manifest dir.
    match report.write_in(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write bench report: {e}"),
    }
}
