//! Macrobenchmark: the vertex-parallel stage engine (`dgo_core::stage`) on a
//! large `G(n, m)` instance — sequential (`jobs = 1`) vs vertex-parallel
//! (`jobs = 0`, all cores) execution of the Algorithm 2 kernel and the full
//! Algorithm 4 stage. Outputs and metrics are bit-identical at any job
//! count, so the deltas here are pure host wall-clock. Note `jobs = 0`
//! resolves to the available parallelism: on a single-core host the two
//! legs coincide (the engine runs inline at one thread — no spawn overhead),
//! and the `jobs-all` win scales with the core count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dgo_core::stage::StageExecutor;
use dgo_core::{exponentiate_and_prune_staged, partial_layer_assignment_staged};
use dgo_graph::generators::gnm;
use dgo_mpc::{Cluster, ClusterConfig};

const N: usize = 30_000;
const BUDGET: usize = 256;
const K: usize = 4;
const STEPS: u32 = 3;
const LAYERS: u32 = 4;

fn cluster_for(n: usize) -> Cluster {
    Cluster::new(ClusterConfig::new((n * BUDGET / 64).max(8), 1 << 15))
}

fn bench_stage(c: &mut Criterion) {
    let g = gnm(N, 5 * N, 17);
    let executors = [
        ("jobs1", StageExecutor::sequential()),
        ("jobs-all", StageExecutor::new(0)),
    ];

    let mut group = c.benchmark_group("stage");
    group.sample_size(5);
    for (label, stage) in &executors {
        group.bench_with_input(
            BenchmarkId::new("exponentiate_and_prune", label),
            &g,
            |b, g| {
                b.iter(|| {
                    let mut cluster = cluster_for(N);
                    exponentiate_and_prune_staged(g, BUDGET, K, STEPS, &mut cluster, stage)
                        .expect("fits")
                })
            },
        );
    }
    for (label, stage) in &executors {
        group.bench_with_input(
            BenchmarkId::new("partial_layer_assignment", label),
            &g,
            |b, g| {
                b.iter(|| {
                    let mut cluster = cluster_for(N);
                    partial_layer_assignment_staged(
                        g,
                        BUDGET,
                        K,
                        LAYERS,
                        STEPS,
                        &mut cluster,
                        stage,
                    )
                    .expect("fits")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_stage);
criterion_main!(benches);
