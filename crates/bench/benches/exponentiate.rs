//! Microbenchmark: `ExponentiateAndLocalPrune` (Algorithm 2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dgo_core::exponentiate_and_prune;
use dgo_graph::generators::gnm;
use dgo_mpc::{Cluster, ClusterConfig};

fn bench_exponentiate(c: &mut Criterion) {
    let mut group = c.benchmark_group("exponentiate_and_prune");
    group.sample_size(20);
    for &n in &[512usize, 2048] {
        let g = gnm(n, 3 * n, 5);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| {
                let mut cluster = Cluster::new(ClusterConfig::new(n * 4, 1 << 14));
                exponentiate_and_prune(g, 128, 4, 3, &mut cluster).expect("fits")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_exponentiate);
criterion_main!(benches);
