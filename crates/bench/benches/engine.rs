//! Engine benchmark: sequential vs parallel vs sharded vs multi-process
//! execution backend, end-to-end.
//!
//! The backends are observationally equivalent (identical results and MPC
//! metrics — see the `backend_equivalence` test suite), so this measures the
//! pure host-side cost difference — counting-sort routing into pre-counted
//! buffers plus pool-parallel metering (`parallel`), shard-partitioned
//! routing with a pipelined cross-shard handoff (`sharded`), supervised
//! worker OS processes exchanging framed batches over pipes (`process`) —
//! against the single-threaded reference, on the full Theorem 1.1/1.2
//! pipelines and on a raw exchange-heavy workload. The `process` legs price
//! the full fault-tolerance machinery: spawn, framing, checksums, and
//! supervision, with worker RSS folded into `peak_rss_bytes`.
//!
//! Besides the human-readable timing lines, every run writes
//! `BENCH_engine.json` (see `dgo_bench::report`) into the working directory:
//! wall-clock per leg plus the leg's configuration and model-side costs, so
//! the perf trajectory persists across commits. `DGO_BENCH_QUICK=1` shrinks
//! the sweep to one small size per group (the CI smoke configuration).

use criterion::{BenchmarkId, Criterion};
use dgo_bench::report::{peak_rss_bytes, quick_mode, resolved_jobs, BenchLeg, BenchReport};
use dgo_core::{color_on, orient_on, Params};
use dgo_graph::generators::{gnm, Family};
use dgo_mpc::{
    ClusterConfig, ExecutionBackend, Metrics, ParallelBackend, ProcessBackend, SequentialBackend,
    ShardedBackend,
};

/// `DGO_BENCH_QUICK=1` shrinks every sweep to its smallest leg with few
/// samples — the CI smoke mode (seconds, not minutes).
fn quick() -> bool {
    quick_mode()
}

/// Converts the record of the just-finished bench call plus one metered run
/// into a report leg. Must be called immediately after the bench call, while
/// its record is the newest.
fn record_leg(report: &mut BenchReport, backend: &str, shards: usize, metrics: &Metrics) {
    let record = criterion::take_records()
        .pop()
        .expect("bench call leaves a record");
    report.push(BenchLeg {
        name: record.label,
        wall_seconds: record.mean_seconds,
        samples: record.samples,
        jobs: resolved_jobs(Params::practical(0).jobs),
        backend: backend.to_string(),
        shards,
        comm_words: metrics.total_comm_words,
        peak_tree_bytes: metrics.peak_tree_bytes,
        peak_rss_bytes: peak_rss_bytes(),
    });
}

/// The shard count `sharded` legs resolve to when the algorithm constructs
/// its backend internally (auto unless `set_default_shards` was called).
fn auto_shards() -> usize {
    ShardedBackend::default_shards().unwrap_or_else(|| dgo_mpc::resolve_jobs(0))
}

fn bench_orient_backends(c: &mut Criterion, report: &mut BenchReport) {
    let mut group = c.benchmark_group("engine_orient");
    group.sample_size(if quick() { 3 } else { 10 });
    let sizes: &[usize] = if quick() {
        &[1024]
    } else {
        &[1024, 4096, 16384]
    };
    for &n in sizes {
        let g = gnm(n, 4 * n, 9);
        let params = Params::practical(n);
        group.bench_with_input(BenchmarkId::new("sequential", n), &g, |b, g| {
            b.iter(|| orient_on::<SequentialBackend>(g, &params).expect("orientation succeeds"))
        });
        let metrics = orient_on::<SequentialBackend>(&g, &params).unwrap().metrics;
        record_leg(report, "sequential", 0, &metrics);
        group.bench_with_input(BenchmarkId::new("parallel", n), &g, |b, g| {
            b.iter(|| orient_on::<ParallelBackend>(g, &params).expect("orientation succeeds"))
        });
        let metrics = orient_on::<ParallelBackend>(&g, &params).unwrap().metrics;
        record_leg(report, "parallel", 0, &metrics);
        group.bench_with_input(BenchmarkId::new("sharded", n), &g, |b, g| {
            b.iter(|| orient_on::<ShardedBackend>(g, &params).expect("orientation succeeds"))
        });
        let metrics = orient_on::<ShardedBackend>(&g, &params).unwrap().metrics;
        record_leg(report, "sharded", auto_shards(), &metrics);
        // The multi-process leg prices the whole fault-tolerance stack:
        // every iteration spawns fresh supervised workers and runs all
        // exchanges through framed pipes.
        ProcessBackend::set_default_workers(Some(4));
        group.bench_with_input(BenchmarkId::new("process", n), &g, |b, g| {
            b.iter(|| orient_on::<ProcessBackend>(g, &params).expect("orientation succeeds"))
        });
        let metrics = orient_on::<ProcessBackend>(&g, &params).unwrap().metrics;
        record_leg(report, "process", 4, &metrics);
        ProcessBackend::set_default_workers(None);
    }
    group.finish();
}

/// Orientation on the tree family: λ = 1 sends `complete_layering` through
/// the exponentiation path, so these legs carry real view-tree traffic —
/// nonzero `peak_tree_bytes` and wire-coded bundle words in the report,
/// where the `gnm` legs above finish in initial peeling and genuinely hold
/// no trees.
fn bench_orient_tree_family(c: &mut Criterion, report: &mut BenchReport) {
    let mut group = c.benchmark_group("engine_orient_tree");
    group.sample_size(if quick() { 3 } else { 10 });
    let sizes: &[usize] = if quick() { &[1024] } else { &[1024, 4096] };
    for &n in sizes {
        let g = Family::Tree.generate(n, 9);
        let params = Params::practical(n);
        group.bench_with_input(BenchmarkId::new("sequential", n), &g, |b, g| {
            b.iter(|| orient_on::<SequentialBackend>(g, &params).expect("orientation succeeds"))
        });
        let metrics = orient_on::<SequentialBackend>(&g, &params).unwrap().metrics;
        assert!(
            metrics.peak_tree_bytes > 0,
            "tree-family orientation must exercise the view-tree path"
        );
        record_leg(report, "sequential", 0, &metrics);
        group.bench_with_input(BenchmarkId::new("sharded", n), &g, |b, g| {
            b.iter(|| orient_on::<ShardedBackend>(g, &params).expect("orientation succeeds"))
        });
        let metrics = orient_on::<ShardedBackend>(&g, &params).unwrap().metrics;
        record_leg(report, "sharded", auto_shards(), &metrics);
    }
    group.finish();
}

fn bench_color_backends(c: &mut Criterion, report: &mut BenchReport) {
    let mut group = c.benchmark_group("engine_color");
    group.sample_size(if quick() { 3 } else { 10 });
    let sizes: &[usize] = if quick() { &[1024] } else { &[1024, 4096] };
    for &n in sizes {
        let g = gnm(n, 4 * n, 9);
        let params = Params::practical(n);
        group.bench_with_input(BenchmarkId::new("sequential", n), &g, |b, g| {
            b.iter(|| color_on::<SequentialBackend>(g, &params).expect("coloring succeeds"))
        });
        let metrics = color_on::<SequentialBackend>(&g, &params).unwrap().metrics;
        record_leg(report, "sequential", 0, &metrics);
        group.bench_with_input(BenchmarkId::new("parallel", n), &g, |b, g| {
            b.iter(|| color_on::<ParallelBackend>(g, &params).expect("coloring succeeds"))
        });
        let metrics = color_on::<ParallelBackend>(&g, &params).unwrap().metrics;
        record_leg(report, "parallel", 0, &metrics);
        group.bench_with_input(BenchmarkId::new("sharded", n), &g, |b, g| {
            b.iter(|| color_on::<ShardedBackend>(g, &params).expect("coloring succeeds"))
        });
        let metrics = color_on::<ShardedBackend>(&g, &params).unwrap().metrics;
        record_leg(report, "sharded", auto_shards(), &metrics);
    }
    group.finish();
}

/// All-to-all traffic isolating the exchange path itself: routing plus
/// per-message word metering, no algorithm work.
fn bench_raw_exchange(c: &mut Criterion, report: &mut BenchReport) {
    let mut group = c.benchmark_group("engine_exchange");
    group.sample_size(if quick() { 3 } else { 10 });
    let machine_counts: &[usize] = if quick() { &[64] } else { &[64, 256] };
    for &machines in machine_counts {
        let outbox: Vec<Vec<(usize, (u64, u64))>> = (0..machines)
            .map(|src| {
                (0..machines)
                    .map(|dst| (dst, ((src * machines + dst) as u64, dst as u64)))
                    .collect()
            })
            .collect();
        let config = ClusterConfig::new(machines, 1 << 20);
        group.bench_with_input(
            BenchmarkId::new("sequential", machines),
            &outbox,
            |b, outbox| {
                b.iter(|| {
                    let mut backend = SequentialBackend::new(config);
                    for _ in 0..8 {
                        backend.exchange(outbox.clone()).expect("fits");
                    }
                    backend.into_metrics()
                })
            },
        );
        let metrics = {
            let mut backend = SequentialBackend::new(config);
            for _ in 0..8 {
                backend.exchange(outbox.clone()).expect("fits");
            }
            backend.into_metrics()
        };
        record_leg(report, "sequential", 0, &metrics);
        group.bench_with_input(
            BenchmarkId::new("parallel", machines),
            &outbox,
            |b, outbox| {
                b.iter(|| {
                    let mut backend = ParallelBackend::new(config);
                    for _ in 0..8 {
                        backend.exchange(outbox.clone()).expect("fits");
                    }
                    backend.into_metrics()
                })
            },
        );
        let metrics = {
            let mut backend = ParallelBackend::new(config);
            for _ in 0..8 {
                backend.exchange(outbox.clone()).expect("fits");
            }
            backend.into_metrics()
        };
        record_leg(report, "parallel", 0, &metrics);
        // Shard counts bracketing the batching trade-off: a few big shards
        // (mostly cross-shard batches) vs many small ones.
        for shards in [4usize, 16] {
            group.bench_with_input(
                BenchmarkId::new(format!("sharded{shards}"), machines),
                &outbox,
                |b, outbox| {
                    b.iter(|| {
                        let mut backend = ShardedBackend::new(config).with_shards(shards);
                        for _ in 0..8 {
                            backend.exchange(outbox.clone()).expect("fits");
                        }
                        backend.into_metrics()
                    })
                },
            );
            let metrics = {
                let mut backend = ShardedBackend::new(config).with_shards(shards);
                for _ in 0..8 {
                    backend.exchange(outbox.clone()).expect("fits");
                }
                backend.into_metrics()
            };
            record_leg(report, "sharded", shards, &metrics);
        }
        // The process leg amortizes one spawn over the 8 exchanges — the
        // steady-state cost of pipes + framing + checksums per exchange.
        group.bench_with_input(
            BenchmarkId::new("process4", machines),
            &outbox,
            |b, outbox| {
                b.iter(|| {
                    let mut backend = ProcessBackend::new(config).with_workers(4);
                    for _ in 0..8 {
                        backend.exchange(outbox.clone()).expect("fits");
                    }
                    backend.into_metrics()
                })
            },
        );
        let metrics = {
            let mut backend = ProcessBackend::new(config).with_workers(4);
            for _ in 0..8 {
                backend.exchange(outbox.clone()).expect("fits");
            }
            backend.into_metrics()
        };
        record_leg(report, "process", 4, &metrics);
    }
    group.finish();
}

fn main() {
    let mut criterion = Criterion::default();
    let mut report = BenchReport::new("engine");
    criterion::take_records(); // drop any stale records
    bench_orient_backends(&mut criterion, &mut report);
    bench_orient_tree_family(&mut criterion, &mut report);
    bench_color_backends(&mut criterion, &mut report);
    bench_raw_exchange(&mut criterion, &mut report);
    // Workspace root: two levels above this package's manifest dir.
    match report.write_in(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write bench report: {e}"),
    }
}
