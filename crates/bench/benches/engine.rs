//! Engine benchmark: sequential vs parallel vs sharded execution backend,
//! end-to-end.
//!
//! The backends are observationally equivalent (identical results and MPC
//! metrics — see the `backend_equivalence` test suite), so this measures the
//! pure host-side cost difference — counting-sort routing into pre-counted
//! buffers plus rayon-parallel metering (`parallel`), shard-partitioned
//! routing with batched cross-shard handoff (`sharded`) — against the
//! single-threaded reference, on the full Theorem 1.1/1.2 pipelines and on
//! a raw exchange-heavy workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dgo_core::{color_on, orient_on, Params};
use dgo_graph::generators::gnm;
use dgo_mpc::{
    ClusterConfig, ExecutionBackend, ParallelBackend, SequentialBackend, ShardedBackend,
};

fn bench_orient_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_orient");
    group.sample_size(10);
    for &n in &[1024usize, 4096, 16384] {
        let g = gnm(n, 4 * n, 9);
        let params = Params::practical(n);
        group.bench_with_input(BenchmarkId::new("sequential", n), &g, |b, g| {
            b.iter(|| orient_on::<SequentialBackend>(g, &params).expect("orientation succeeds"))
        });
        group.bench_with_input(BenchmarkId::new("parallel", n), &g, |b, g| {
            b.iter(|| orient_on::<ParallelBackend>(g, &params).expect("orientation succeeds"))
        });
        group.bench_with_input(BenchmarkId::new("sharded", n), &g, |b, g| {
            b.iter(|| orient_on::<ShardedBackend>(g, &params).expect("orientation succeeds"))
        });
    }
    group.finish();
}

fn bench_color_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_color");
    group.sample_size(10);
    for &n in &[1024usize, 4096] {
        let g = gnm(n, 4 * n, 9);
        let params = Params::practical(n);
        group.bench_with_input(BenchmarkId::new("sequential", n), &g, |b, g| {
            b.iter(|| color_on::<SequentialBackend>(g, &params).expect("coloring succeeds"))
        });
        group.bench_with_input(BenchmarkId::new("parallel", n), &g, |b, g| {
            b.iter(|| color_on::<ParallelBackend>(g, &params).expect("coloring succeeds"))
        });
        group.bench_with_input(BenchmarkId::new("sharded", n), &g, |b, g| {
            b.iter(|| color_on::<ShardedBackend>(g, &params).expect("coloring succeeds"))
        });
    }
    group.finish();
}

/// All-to-all traffic isolating the exchange path itself: routing plus
/// per-message word metering, no algorithm work.
fn bench_raw_exchange(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_exchange");
    group.sample_size(10);
    for &machines in &[64usize, 256] {
        let outbox: Vec<Vec<(usize, (u64, u64))>> = (0..machines)
            .map(|src| {
                (0..machines)
                    .map(|dst| (dst, ((src * machines + dst) as u64, dst as u64)))
                    .collect()
            })
            .collect();
        let config = ClusterConfig::new(machines, 1 << 20);
        group.bench_with_input(
            BenchmarkId::new("sequential", machines),
            &outbox,
            |b, outbox| {
                b.iter(|| {
                    let mut backend = SequentialBackend::new(config);
                    for _ in 0..8 {
                        backend.exchange(outbox.clone()).expect("fits");
                    }
                    backend.into_metrics()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("parallel", machines),
            &outbox,
            |b, outbox| {
                b.iter(|| {
                    let mut backend = ParallelBackend::new(config);
                    for _ in 0..8 {
                        backend.exchange(outbox.clone()).expect("fits");
                    }
                    backend.into_metrics()
                })
            },
        );
        // Shard counts bracketing the batching trade-off: a few big shards
        // (mostly cross-shard batches) vs many small ones.
        for shards in [4usize, 16] {
            group.bench_with_input(
                BenchmarkId::new(format!("sharded{shards}"), machines),
                &outbox,
                |b, outbox| {
                    b.iter(|| {
                        let mut backend = ShardedBackend::new(config).with_shards(shards);
                        for _ in 0..8 {
                            backend.exchange(outbox.clone()).expect("fits");
                        }
                        backend.into_metrics()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_orient_backends,
    bench_color_backends,
    bench_raw_exchange
);
criterion_main!(benches);
