//! Microbenchmark: `LocalPrune` (Algorithm 1) on exponentiated view trees.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dgo_core::{local_prune, NodeId, ViewTree};
use dgo_graph::generators::gnm;
use dgo_graph::Graph;

fn build_depth2_tree(g: &Graph, v: usize) -> ViewTree {
    let mut t = ViewTree::star(v, g.neighbors(v));
    let leaves: Vec<NodeId> = t.leaves_at_depth(1).collect();
    let subs: Vec<ViewTree> = leaves
        .iter()
        .map(|&x| ViewTree::star(t.vertex(x), g.neighbors(t.vertex(x))))
        .collect();
    let reps: Vec<(NodeId, &ViewTree)> = leaves.iter().copied().zip(subs.iter()).collect();
    t.attach(&reps);
    t
}

fn bench_prune(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_prune");
    for &avg_degree in &[4usize, 16, 64] {
        let n = 2000;
        let g = gnm(n, avg_degree * n / 2, 7);
        let tree = build_depth2_tree(&g, 0);
        group.bench_with_input(
            BenchmarkId::new("depth2_tree", format!("deg{avg_degree}_size{}", tree.len())),
            &tree,
            |b, tree| b.iter(|| local_prune(std::hint::black_box(tree), 4)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_prune);
criterion_main!(benches);
