//! End-to-end benchmark: Theorem 1.2 coloring (the wall-clock companion of
//! experiment E3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dgo_core::{color, Params};
use dgo_graph::generators::{barabasi_albert, gnm, star};
use dgo_graph::Graph;

fn bench_color(c: &mut Criterion) {
    let mut group = c.benchmark_group("color_theorem_1_2");
    group.sample_size(10);
    let cases: Vec<(&str, Graph)> = vec![
        ("gnm4096", gnm(4096, 4 * 4096, 2)),
        ("ba4096", barabasi_albert(4096, 3, 2)),
        ("star4096", star(4096)),
    ];
    for (name, g) in &cases {
        let params = Params::practical(g.num_vertices());
        group.bench_with_input(BenchmarkId::from_parameter(name), g, |b, g| {
            b.iter(|| color(g, &params).expect("coloring succeeds"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_color);
criterion_main!(benches);
