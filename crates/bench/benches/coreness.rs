//! Coreness benchmark: sequential vs concurrent guess ladder, end-to-end.
//!
//! The approximate-coreness application (paper footnote 2) runs one bounded
//! layering per `(1+ε)^i` guess. The instances are independent, so
//! `Params::jobs > 1` fans them across host threads via
//! `dgo_mpc::InstanceGroup` — bit-identical estimates and metrics (see the
//! `instance_parallel` test suite), differing only in wall-clock. This bench
//! measures that difference on graphs whose ladders are long enough for the
//! fan-out to matter.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dgo_core::{approximate_coreness_on, Params};
use dgo_graph::generators::planted_dense;
use dgo_mpc::{resolve_jobs, SequentialBackend};

fn bench_coreness_ladder(c: &mut Criterion) {
    let all_cores = resolve_jobs(0);
    let mut group = c.benchmark_group("coreness_ladder");
    group.sample_size(10);
    for &n in &[4096usize, 16384] {
        // A planted dense core pushes the degeneracy up, lengthening the
        // guess ladder (~9 instances at these sizes).
        let g = planted_dense(n, 4 * n, 48, 9);
        let base = Params::practical(n);
        group.bench_with_input(BenchmarkId::new("jobs-1", n), &g, |b, g| {
            let params = base.clone().with_jobs(1);
            b.iter(|| {
                approximate_coreness_on::<SequentialBackend>(g, 0.5, &params)
                    .expect("coreness succeeds")
            })
        });
        group.bench_with_input(
            BenchmarkId::new(format!("jobs-auto-{all_cores}-cores"), n),
            &g,
            |b, g| {
                let params = base.clone().with_jobs(0);
                b.iter(|| {
                    approximate_coreness_on::<SequentialBackend>(g, 0.5, &params)
                        .expect("coreness succeeds")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_coreness_ladder);
criterion_main!(benches);
