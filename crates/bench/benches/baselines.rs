//! Benchmark: the comparison baselines — BE08 LOCAL peeling and the direct
//! LOCAL→MPC simulation — on the same workload as `orient_end2end`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dgo_graph::generators::gnm;
use dgo_local::{be08_peeling, direct_peeling_mpc};
use dgo_mpc::ClusterConfig;

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines");
    group.sample_size(10);
    for &n in &[1024usize, 4096, 16384] {
        let g = gnm(n, 4 * n, 9);
        group.bench_with_input(BenchmarkId::new("be08_local", n), &g, |b, g| {
            b.iter(|| be08_peeling(g, 8, 0.5, 0))
        });
        group.bench_with_input(BenchmarkId::new("direct_mpc", n), &g, |b, g| {
            b.iter(|| {
                let cfg = ClusterConfig::for_graph(g.num_vertices(), g.num_edges(), 0.5);
                direct_peeling_mpc(g, 8, 0.5, cfg).expect("baseline succeeds")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
