//! Microbenchmark: the flat-arena `ViewTree` hot loops — star construction,
//! the Algorithm 2 attachment splice, `LocalPrune` (Algorithm 1), and the
//! Algorithm 3 peel — on RingOfCliques (uniform dense blocks) and CoreOnion
//! (nested shells) inputs, `jobs = 1` vs `jobs = 0` (all cores). Outputs are
//! bit-identical at any job count, so the deltas are pure host wall-clock;
//! on a single-core container the two legs coincide.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dgo_core::{
    local_prune_batch, partial_layer_assignment_trees, NodeId, StageExecutor, ViewTree,
};
use dgo_graph::generators::Family;
use dgo_graph::Graph;

const N: usize = 8192;
const SEED: u64 = 17;
const K: usize = 3;
const A: usize = 12;
const LAYERS: u32 = 4;

const FAMILIES: [Family; 2] = [Family::RingOfCliques, Family::CoreOnion];

fn executors() -> [(&'static str, StageExecutor); 2] {
    [
        ("jobs1", StageExecutor::sequential()),
        ("jobs-all", StageExecutor::new(0)),
    ]
}

/// The initial views: one star per vertex, straight from adjacency slices.
fn stars(g: &Graph, stage: &StageExecutor) -> Vec<ViewTree> {
    stage.map_indices(g.num_vertices(), |v| ViewTree::star(v, g.neighbors(v)))
}

/// One Algorithm 2 attachment step over every vertex: splice each depth-1
/// leaf's provider star into an exactly-sized destination arena, providers
/// borrowed from the read-only snapshot.
fn attach_step(trees: &[ViewTree], stage: &StageExecutor) -> Vec<ViewTree> {
    stage.map(trees, |_, t| {
        let leaves: Vec<NodeId> = t.leaves_at_depth(1).collect();
        ViewTree::attached_with(t, &leaves, |leaf| &trees[t.vertex(leaf)])
    })
}

fn bench_vtree(c: &mut Criterion) {
    let mut group = c.benchmark_group("vtree");
    group.sample_size(10);
    for family in FAMILIES {
        let g = family.generate(N, SEED);
        let depth1 = stars(&g, &StageExecutor::sequential());
        let depth2 = attach_step(&depth1, &StageExecutor::sequential());
        for (label, stage) in executors() {
            group.bench_with_input(
                BenchmarkId::new(format!("star/{family}"), label),
                &g,
                |b, g| b.iter(|| stars(g, &stage)),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("attach/{family}"), label),
                &depth1,
                |b, trees| b.iter(|| attach_step(trees, &stage)),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("local_prune/{family}"), label),
                &depth2,
                |b, trees| b.iter(|| local_prune_batch(trees, K, &stage)),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("peel/{family}"), label),
                &depth2,
                |b, trees| b.iter(|| partial_layer_assignment_trees(&g, trees, A, LAYERS, &stage)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_vtree);
criterion_main!(benches);
