//! Microbenchmark: complete layering (Lemma 3.15 driver).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dgo_core::{complete_layering, Params};
use dgo_graph::generators::Family;

fn bench_layering(c: &mut Criterion) {
    let mut group = c.benchmark_group("complete_layering");
    group.sample_size(10);
    for family in [Family::SparseGnm, Family::Tree, Family::PowerLaw] {
        let n = 4096;
        let g = family.generate(n, 3);
        let params = Params::practical(n);
        group.bench_with_input(BenchmarkId::from_parameter(family.name()), &g, |b, g| {
            b.iter(|| complete_layering(g, &params).expect("layering succeeds"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_layering);
criterion_main!(benches);
