//! Vendored stand-in for `rand` (offline build).
//!
//! Implements the exact API subset the workspace uses — `rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`], [`Rng::random_range`] over integer
//! `Range`s, and [`Rng::random`] for scalars — on top of a SplitMix64 core.
//! All workspace randomness is seeded and only statistical properties matter
//! (no test pins exact streams), so swapping the real crates-io `rand` back
//! in is a manifest-only change.

use core::ops::Range;

/// Low-level uniform-`u64` source (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a `u64` seed (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator deterministically from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Scalars samplable uniformly from all bit patterns / the unit interval.
pub trait StandardSample: Sized {
    /// Draws one value from the standard distribution for the type.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integer types uniformly samplable from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[range.start, range.end)` without modulo bias
    /// (Lemire's widening-multiply rejection method).
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<$t>) -> $t {
                assert!(
                    range.start < range.end,
                    "cannot sample from empty range {}..{}",
                    range.start,
                    range.end
                );
                let span = (range.end - range.start) as u64;
                let mut x = rng.next_u64();
                let mut m = (x as u128) * (span as u128);
                let mut lo = m as u64;
                if lo < span {
                    let threshold = span.wrapping_neg() % span;
                    while lo < threshold {
                        x = rng.next_u64();
                        m = (x as u128) * (span as u128);
                        lo = m as u64;
                    }
                }
                range.start + ((m >> 64) as u64) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

/// High-level sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value from the type's standard distribution
    /// (all bit patterns for integers, `[0, 1)` for floats).
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from the half-open `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: SplitMix64.
    ///
    /// Statistically solid for simulation workloads (passes BigCrush apart
    /// from linearity tests), one `u64` of state, and trivially seedable —
    /// a faithful stand-in for `rand::rngs::StdRng` where only seeded
    /// determinism and uniformity matter.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Pre-scramble so adjacent seeds do not yield shifted streams.
            let mut rng = StdRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            };
            rng.next_u64();
            rng
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn range_stays_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = rng.random_range(0usize..10);
            seen[x] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all residues should appear: {seen:?}"
        );
        for _ in 0..1000 {
            let x = rng.random_range(5u32..7);
            assert!((5..7).contains(&x));
        }
    }

    #[test]
    fn unit_floats_in_range_and_spread() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..4096 {
            let x = rng.random::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 4096.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 0.5");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.random_range(5usize..5);
    }
}
