//! Vendored stand-in for `criterion` (offline build).
//!
//! Implements the API subset the workspace's benches use — benchmark groups,
//! [`BenchmarkId`], `bench_function` / `bench_with_input`, `Bencher::iter` —
//! with a simple mean-of-N timing loop instead of criterion's statistical
//! machinery. Output is one line per benchmark:
//!
//! ```text
//! group/id  time: 12.345 ms  (n = 10)
//! ```
//!
//! Swapping the real crates-io `criterion` back in is a manifest-only change.

use std::fmt;
use std::hint;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One completed benchmark measurement, as recorded by the driver.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// The full benchmark label (`group/id`).
    pub label: String,
    /// Mean wall-clock seconds per iteration over the timed pass.
    pub mean_seconds: f64,
    /// Number of timed iterations averaged over.
    pub samples: u64,
}

/// Measurements accumulated by every [`Criterion`] run in this process, in
/// completion order, until drained by [`take_records`]. Lets bench harnesses
/// persist machine-readable results next to the human-readable lines.
static RECORDS: Mutex<Vec<Record>> = Mutex::new(Vec::new());

/// Drains and returns all measurements recorded since the last call (or
/// process start), in completion order.
pub fn take_records() -> Vec<Record> {
    std::mem::take(&mut RECORDS.lock().expect("criterion records"))
}

/// Re-export of the standard black box used to defeat dead-code elimination.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter, rendered `name/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Per-iteration timing state handed to bench closures.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`, black-boxing each result.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named collection of related benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples (default 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u64).max(1);
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        self.criterion
            .run_one(&label, self.sample_size, &mut routine);
        self
    }

    /// Benchmarks `routine` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        self.criterion
            .run_one(&label, self.sample_size, &mut |b| routine(b, input));
        self
    }

    /// Ends the group (reporting already happened per benchmark).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = name.to_string();
        self.run_one(&label, 10, &mut routine);
        self
    }

    fn run_one(&mut self, label: &str, samples: u64, routine: &mut dyn FnMut(&mut Bencher)) {
        // One warm-up pass, then a single timed pass of `samples` iterations.
        let mut warmup = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        routine(&mut warmup);
        let mut bench = Bencher {
            iters: samples,
            elapsed: Duration::ZERO,
        };
        routine(&mut bench);
        let mean = bench.elapsed.as_secs_f64() / samples as f64;
        println!("{label}  time: {}  (n = {samples})", format_duration(mean));
        RECORDS.lock().expect("criterion records").push(Record {
            label: label.to_string(),
            mean_seconds: mean,
            samples,
        });
    }
}

fn format_duration(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Declares a group-runner function invoking each benchmark function in turn.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups (ignores harness CLI flags).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_counts_iterations() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(5);
            group.bench_function("count", |b| b.iter(|| calls += 1));
            group.finish();
        }
        // One warm-up iteration + five timed.
        assert_eq!(calls, 6);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let input = vec![1u64, 2, 3];
        let mut total = 0u64;
        c.benchmark_group("g")
            .bench_with_input(BenchmarkId::new("sum", 3), &input, |b, input| {
                b.iter(|| total += input.iter().sum::<u64>())
            });
        assert!(total >= 6);
    }

    #[test]
    fn records_are_captured() {
        let mut c = Criterion::default();
        c.bench_function("record-capture-probe", |b| b.iter(|| 1 + 1));
        // Other tests' records may be interleaved; find ours by label.
        let records = take_records();
        let probe = records
            .iter()
            .find(|r| r.label == "record-capture-probe")
            .expect("bench run must leave a record");
        assert_eq!(probe.samples, 10);
        assert!(probe.mean_seconds >= 0.0);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    #[test]
    fn durations_format_by_magnitude() {
        assert!(format_duration(2.5).ends_with(" s"));
        assert!(format_duration(2.5e-3).ends_with(" ms"));
        assert!(format_duration(2.5e-6).ends_with(" µs"));
        assert!(format_duration(2.5e-9).ends_with(" ns"));
    }
}
