//! Vendored stand-in for `rayon` (offline build).
//!
//! Provides the fork-join subset the workspace's parallel execution backend
//! uses — [`join`], [`scope`], [`current_num_threads`], and the slice helpers
//! [`chunk_map_reduce`] / [`chunk_map_collect`] — implemented over
//! `std::thread::scope` (real OS parallelism, no work stealing). The API
//! signatures mirror the real crate where they overlap, so swapping crates-io
//! `rayon` back in only requires replacing `chunk_map_reduce` call sites with
//! `par_chunks().map().reduce()` and `chunk_map_collect` call sites with
//! `par_iter().enumerate().map().collect()`.

use std::num::NonZeroUsize;
use std::thread;

/// Number of threads parallel operations fan out to (the machine's available
/// parallelism; rayon reports its pool size here).
pub fn current_num_threads() -> usize {
    thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs both closures, potentially in parallel, and returns both results.
///
/// Panics from either closure propagate to the caller, as in rayon.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    thread::scope(|s| {
        let handle_b = s.spawn(oper_b);
        let ra = oper_a();
        let rb = match handle_b.join() {
            Ok(rb) => rb,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        (ra, rb)
    })
}

/// A scope for spawning borrowing tasks; see [`scope`].
#[derive(Debug)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task that may borrow from outside the scope; joined (and its
    /// panic propagated) when the scope ends or via the returned handle.
    pub fn spawn<F, T>(&self, f: F) -> thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        self.inner.spawn(f)
    }
}

/// Creates a fork-join scope: tasks spawned on it may borrow local data and
/// all complete before `scope` returns.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R + Send,
    R: Send,
{
    thread::scope(|s| f(&Scope { inner: s }))
}

/// Maps `map` over near-equal contiguous chunks of `items` in parallel (one
/// task per thread) and folds the per-chunk results left-to-right with
/// `reduce`. Chunk boundaries are deterministic in `(items.len(), threads)`,
/// and the left-to-right fold keeps the result order-deterministic, so callers
/// get identical outputs for identical inputs regardless of scheduling.
///
/// Stand-in for `items.par_chunks(n).map(map).reduce(...)`; falls back to a
/// single inline call when `items` is small or one thread is available.
pub fn chunk_map_reduce<T, R, M, F>(items: &[T], threads: usize, map: M, reduce: F) -> Option<R>
where
    T: Sync,
    R: Send,
    M: Fn(usize, &[T]) -> R + Sync,
    F: Fn(R, R) -> R,
{
    if items.is_empty() {
        return None;
    }
    let threads = threads.max(1).min(items.len());
    if threads == 1 {
        return Some(map(0, items));
    }
    let chunk = items.len().div_ceil(threads);
    let results: Vec<R> = thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(i, slice)| {
                s.spawn({
                    let map = &map;
                    move || map(i * chunk, slice)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    results.into_iter().reduce(reduce)
}

/// Maps `map` over near-equal contiguous chunks of `items` in parallel (one
/// task per thread) and concatenates the per-chunk outputs in chunk order, so
/// `result[i]` is `map`'s output for `items[i]`. The chunk boundaries are the
/// same deterministic split as [`chunk_map_reduce`], and outputs are
/// collected by index, so the result is identical at any thread count.
///
/// Stand-in for `items.par_iter().enumerate().map(map).collect()`; falls back
/// to a single inline pass when one thread suffices.
///
/// The scratch-free special case of [`chunk_map_collect_with`] — one
/// implementation of the chunk split, so the "identical chunk boundaries"
/// determinism contract between the two can never diverge.
pub fn chunk_map_collect<T, R, M>(items: &[T], threads: usize, map: M) -> Vec<R>
where
    T: Sync,
    R: Send,
    M: Fn(usize, &T) -> R + Sync,
{
    chunk_map_collect_with(items, threads, || (), |(), i, item| map(i, item))
}

/// [`chunk_map_collect`] with per-chunk scratch: each chunk task calls
/// `init()` once and threads the scratch mutably through its items. The
/// chunk split and index-ordered collection are identical to
/// [`chunk_map_collect`], so results are the same at any thread count
/// provided `map` is pure given a fresh-or-reset scratch (the scratch is an
/// allocation-reuse optimization, never a communication channel). Stand-in
/// for `items.par_iter().enumerate().map_init(init, map).collect()`.
pub fn chunk_map_collect_with<T, S, R, I, M>(items: &[T], threads: usize, init: I, map: M) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    M: Fn(&mut S, usize, &T) -> R + Sync,
{
    let run_chunk = |offset: usize, slice: &[T]| -> Vec<R> {
        let mut scratch = init();
        slice
            .iter()
            .enumerate()
            .map(|(i, item)| map(&mut scratch, offset + i, item))
            .collect()
    };
    if items.is_empty() {
        return Vec::new();
    }
    let threads = threads.max(1).min(items.len());
    if threads == 1 {
        return run_chunk(0, items);
    }
    let chunk = items.len().div_ceil(threads);
    let per_chunk: Vec<Vec<R>> = thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(i, slice)| {
                s.spawn({
                    let run_chunk = &run_chunk;
                    move || run_chunk(i * chunk, slice)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    let mut out = Vec::with_capacity(items.len());
    for part in per_chunk {
        out.extend(part);
    }
    out
}

/// [`chunk_map_collect`] writing into a caller-provided buffer instead of
/// returning a fresh `Vec`: `out` is cleared, resized to `items.len()`, and
/// `out[i] = map(i, &items[i])` with the same deterministic chunk split —
/// parallel tasks write disjoint `chunks_mut` regions, so no intermediate
/// per-chunk vectors are allocated and the buffer's capacity is reused across
/// calls. Stand-in for collecting a `par_iter` into a recycled buffer.
pub fn chunk_map_fill<T, R, M>(items: &[T], threads: usize, out: &mut Vec<R>, map: M)
where
    T: Sync,
    R: Send + Default,
    M: Fn(usize, &T) -> R + Sync,
{
    out.clear();
    out.resize_with(items.len(), R::default);
    if items.is_empty() {
        return;
    }
    let threads = threads.max(1).min(items.len());
    if threads == 1 {
        for (i, (slot, item)) in out.iter_mut().zip(items).enumerate() {
            *slot = map(i, item);
        }
        return;
    }
    let chunk = items.len().div_ceil(threads);
    thread::scope(|s| {
        let handles: Vec<_> = out
            .chunks_mut(chunk)
            .zip(items.chunks(chunk))
            .enumerate()
            .map(|(i, (out_slice, in_slice))| {
                s.spawn({
                    let map = &map;
                    move || {
                        for (j, (slot, item)) in out_slice.iter_mut().zip(in_slice).enumerate() {
                            *slot = map(i * chunk + j, item);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
}

/// [`chunk_map_collect`] over the index range `0..n` instead of a slice:
/// `result[i] == map(i)`, with the same deterministic chunk split and
/// index-ordered collection, but no materialized input. Stand-in for
/// `(0..n).into_par_iter().map(map).collect()`.
pub fn chunk_map_collect_range<R, M>(n: usize, threads: usize, map: M) -> Vec<R>
where
    R: Send,
    M: Fn(usize) -> R + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(n);
    if threads == 1 {
        return (0..n).map(map).collect();
    }
    let chunk = n.div_ceil(threads);
    let per_chunk: Vec<Vec<R>> = thread::scope(|s| {
        let handles: Vec<_> = (0..n)
            .step_by(chunk)
            .map(|start| {
                s.spawn({
                    let map = &map;
                    move || (start..(start + chunk).min(n)).map(map).collect::<Vec<R>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    let mut out = Vec::with_capacity(n);
    for part in per_chunk {
        out.extend(part);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn scope_spawns_borrowing_tasks() {
        let data = [1u64, 2, 3, 4];
        let mut partial = (0u64, 0u64);
        scope(|s| {
            let (left, right) = data.split_at(2);
            let h = s.spawn(|| left.iter().sum::<u64>());
            let r: u64 = right.iter().sum();
            partial = (h.join().unwrap(), r);
        });
        assert_eq!(partial, (3, 7));
    }

    #[test]
    fn chunk_map_reduce_matches_sequential() {
        let items: Vec<u64> = (0..10_000).collect();
        for threads in [1, 2, 3, 8, 64] {
            let sum = chunk_map_reduce(
                &items,
                threads,
                |_, chunk| chunk.iter().sum::<u64>(),
                |a, b| a + b,
            );
            assert_eq!(sum, Some(items.iter().sum()));
        }
    }

    #[test]
    fn chunk_map_reduce_offsets_are_global() {
        let items: Vec<u64> = (0..1000).collect();
        // Each chunk checks its own global offset alignment.
        let ok = chunk_map_reduce(
            &items,
            7,
            |offset, chunk| {
                chunk
                    .iter()
                    .enumerate()
                    .all(|(i, &v)| v == (offset + i) as u64)
            },
            |a, b| a && b,
        );
        assert_eq!(ok, Some(true));
    }

    #[test]
    fn chunk_map_collect_is_index_ordered() {
        let items: Vec<u64> = (0..5_000).collect();
        let expected: Vec<u64> = items.iter().map(|&v| v * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = chunk_map_collect(&items, threads, |i, &v| {
                assert_eq!(i as u64, v, "global index must match item");
                v * 3 + 1
            });
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn chunk_map_collect_with_reuses_scratch_per_chunk() {
        let items: Vec<u64> = (0..5_000).collect();
        let expected: Vec<u64> = items.iter().map(|&v| v * 2).collect();
        for threads in [1, 2, 3, 8] {
            // The scratch is reset per item by the closure; outputs must be
            // independent of how chunks share it.
            let got = chunk_map_collect_with(&items, threads, Vec::<u64>::new, |scratch, i, &v| {
                scratch.clear();
                scratch.push(v);
                assert_eq!(i as u64, v);
                scratch[0] * 2
            });
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn chunk_map_fill_matches_collect_and_reuses_buffer() {
        let items: Vec<u64> = (0..3_000).collect();
        let expected: Vec<u64> = items.iter().map(|&v| v + 7).collect();
        let mut out: Vec<u64> = Vec::new();
        for threads in [1, 2, 5, 16] {
            chunk_map_fill(&items, threads, &mut out, |_, &v| v + 7);
            assert_eq!(out, expected, "threads = {threads}");
        }
        let capacity = out.capacity();
        chunk_map_fill(&items[..100], 4, &mut out, |_, &v| v);
        assert_eq!(out.len(), 100);
        assert_eq!(out.capacity(), capacity, "buffer must be reused");
        chunk_map_fill(&[] as &[u64], 4, &mut out, |_, &v| v);
        assert!(out.is_empty());
    }

    #[test]
    fn chunk_map_collect_empty_is_empty() {
        let out: Vec<u8> = chunk_map_collect(&[] as &[u8], 4, |_, &b| b);
        assert!(out.is_empty());
    }

    #[test]
    fn chunk_map_collect_range_matches_slice_form() {
        let items: Vec<usize> = (0..4_321).collect();
        for threads in [1, 2, 5, 16] {
            let via_slice = chunk_map_collect(&items, threads, |i, &v| i * 2 + v);
            let via_range = chunk_map_collect_range(items.len(), threads, |i| i * 3);
            assert_eq!(via_slice, via_range, "threads = {threads}");
        }
        assert!(chunk_map_collect_range(0, 4, |i| i).is_empty());
    }

    #[test]
    fn empty_input_is_none() {
        let none = chunk_map_reduce(&[] as &[u8], 4, |_, _| 0u32, |a, b| a + b);
        assert_eq!(none, None);
    }

    #[test]
    fn threads_reported_positive() {
        assert!(current_num_threads() >= 1);
    }
}
