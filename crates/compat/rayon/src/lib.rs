//! Vendored stand-in for `rayon` (offline build).
//!
//! Provides the fork-join subset the workspace's parallel execution backend
//! uses — [`join`], [`scope`], [`current_num_threads`], and the slice helper
//! [`chunk_map_reduce`] — implemented over `std::thread::scope` (real OS
//! parallelism, no work stealing). The API signatures mirror the real crate
//! where they overlap, so swapping crates-io `rayon` back in only requires
//! replacing `chunk_map_reduce` call sites with `par_chunks().map().reduce()`.

use std::num::NonZeroUsize;
use std::thread;

/// Number of threads parallel operations fan out to (the machine's available
/// parallelism; rayon reports its pool size here).
pub fn current_num_threads() -> usize {
    thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs both closures, potentially in parallel, and returns both results.
///
/// Panics from either closure propagate to the caller, as in rayon.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    thread::scope(|s| {
        let handle_b = s.spawn(oper_b);
        let ra = oper_a();
        let rb = match handle_b.join() {
            Ok(rb) => rb,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        (ra, rb)
    })
}

/// A scope for spawning borrowing tasks; see [`scope`].
#[derive(Debug)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task that may borrow from outside the scope; joined (and its
    /// panic propagated) when the scope ends or via the returned handle.
    pub fn spawn<F, T>(&self, f: F) -> thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        self.inner.spawn(f)
    }
}

/// Creates a fork-join scope: tasks spawned on it may borrow local data and
/// all complete before `scope` returns.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R + Send,
    R: Send,
{
    thread::scope(|s| f(&Scope { inner: s }))
}

/// Maps `map` over near-equal contiguous chunks of `items` in parallel (one
/// task per thread) and folds the per-chunk results left-to-right with
/// `reduce`. Chunk boundaries are deterministic in `(items.len(), threads)`,
/// and the left-to-right fold keeps the result order-deterministic, so callers
/// get identical outputs for identical inputs regardless of scheduling.
///
/// Stand-in for `items.par_chunks(n).map(map).reduce(...)`; falls back to a
/// single inline call when `items` is small or one thread is available.
pub fn chunk_map_reduce<T, R, M, F>(items: &[T], threads: usize, map: M, reduce: F) -> Option<R>
where
    T: Sync,
    R: Send,
    M: Fn(usize, &[T]) -> R + Sync,
    F: Fn(R, R) -> R,
{
    if items.is_empty() {
        return None;
    }
    let threads = threads.max(1).min(items.len());
    if threads == 1 {
        return Some(map(0, items));
    }
    let chunk = items.len().div_ceil(threads);
    let results: Vec<R> = thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(i, slice)| {
                s.spawn({
                    let map = &map;
                    move || map(i * chunk, slice)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    results.into_iter().reduce(reduce)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn scope_spawns_borrowing_tasks() {
        let data = [1u64, 2, 3, 4];
        let mut partial = (0u64, 0u64);
        scope(|s| {
            let (left, right) = data.split_at(2);
            let h = s.spawn(|| left.iter().sum::<u64>());
            let r: u64 = right.iter().sum();
            partial = (h.join().unwrap(), r);
        });
        assert_eq!(partial, (3, 7));
    }

    #[test]
    fn chunk_map_reduce_matches_sequential() {
        let items: Vec<u64> = (0..10_000).collect();
        for threads in [1, 2, 3, 8, 64] {
            let sum = chunk_map_reduce(
                &items,
                threads,
                |_, chunk| chunk.iter().sum::<u64>(),
                |a, b| a + b,
            );
            assert_eq!(sum, Some(items.iter().sum()));
        }
    }

    #[test]
    fn chunk_map_reduce_offsets_are_global() {
        let items: Vec<u64> = (0..1000).collect();
        // Each chunk checks its own global offset alignment.
        let ok = chunk_map_reduce(
            &items,
            7,
            |offset, chunk| {
                chunk
                    .iter()
                    .enumerate()
                    .all(|(i, &v)| v == (offset + i) as u64)
            },
            |a, b| a && b,
        );
        assert_eq!(ok, Some(true));
    }

    #[test]
    fn empty_input_is_none() {
        let none = chunk_map_reduce(&[] as &[u8], 4, |_, _| 0u32, |a, b| a + b);
        assert_eq!(none, None);
    }

    #[test]
    fn threads_reported_positive() {
        assert!(current_num_threads() >= 1);
    }
}
