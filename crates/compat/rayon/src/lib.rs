//! Vendored stand-in for `rayon` (offline build), backed by a **persistent
//! work-stealing thread pool**.
//!
//! Provides the fork-join subset the workspace's parallel execution substrate
//! uses — [`join`], [`scope`], [`current_num_threads`], and the slice helpers
//! [`chunk_map_reduce`] / [`chunk_map_collect`] / [`chunk_map_collect_with`] /
//! [`chunk_map_collect_range`] / [`chunk_map_fill`]. The API signatures mirror
//! the real crate where they overlap, so swapping crates-io `rayon` back in
//! only requires replacing `chunk_map_reduce` call sites with
//! `par_chunks().map().reduce(...)` and `chunk_map_collect` call sites with
//! `par_iter().enumerate().map().collect()`.
//!
//! # The pool
//!
//! Earlier revisions spawned fresh OS threads per call via
//! `std::thread::scope`; every stage map and instance fan-out paid
//! thread-spawn cost, and a slow chunk pinned its thread while siblings sat
//! idle. This revision keeps the public API but executes everything on one
//! lazily-initialized process-wide pool of long-lived workers:
//!
//! * **per-worker deques + an injector queue** — workers push spawned tasks
//!   onto their own deque (LIFO, cache-warm) and external threads submit
//!   through the shared injector; idle workers steal from the injector and
//!   from other workers' deques (FIFO), so uneven task costs rebalance;
//! * **scoped borrowing tasks** — [`scope`] tasks may borrow stack data; a
//!   per-scope latch guarantees every task finished before `scope` returns
//!   (also on the panic path), which is what makes the internal
//!   lifetime-erasure sound;
//! * **cooperative waiting** — a thread waiting on a latch (a scope end, a
//!   [`join`] arm, a spawned-task handle) executes queued tasks instead of
//!   blocking, so nested use — an instance fan-out whose instances run
//!   vertex-stage maps on the same pool — cannot deadlock, and the caller
//!   participates in its own fork-join instead of sleeping;
//! * **panic propagation** — a panicking task is caught where it ran and
//!   re-thrown in program order: [`ScopedTaskHandle::join`] surfaces it to
//!   the joining caller, unjoined panics resurface when the scope ends
//!   (earliest spawn first), mirroring `std::thread::scope`.
//!
//! **Determinism contract:** the pool changes *where* work runs, never what
//! it computes. Chunk boundaries of the `chunk_map_*` helpers depend only on
//! `(items.len(), threads)`, outputs are collected by index, and per-chunk
//! reductions fold left-to-right in chunk order — identical results at any
//! worker count, steal schedule, or pool state. Work stealing only moves a
//! chunk between workers; it never splits or reorders one.
//!
//! Steady-state parallel code spawns **zero** OS threads: the workers are
//! spawned once, on first parallel use, and [`pool_thread_spawn_count`]
//! exposes the lifetime spawn counter so tests can fence that claim.

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;
use std::time::Duration;

/// Number of threads parallel operations fan out to: the persistent pool's
/// worker count (the machine's available parallelism). Reading this does
/// *not* start the pool.
pub fn current_num_threads() -> usize {
    pool_size()
}

/// The pool's worker count without touching the pool itself.
fn pool_size() -> usize {
    static SIZE: OnceLock<usize> = OnceLock::new();
    *SIZE.get_or_init(|| {
        thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Total OS threads the pool has ever spawned. After the first parallel call
/// warms the pool this is exactly [`current_num_threads`] and never grows
/// again — the spawn-count fence for "steady-state stage loops create zero
/// new OS threads".
pub fn pool_thread_spawn_count() -> usize {
    POOL_SPAWNED.load(Ordering::Acquire)
}

static POOL_SPAWNED: AtomicUsize = AtomicUsize::new(0);

/// A queued, type-erased task. Lifetimes are erased at the [`scope`]
/// boundary; the scope latch guarantees the closure runs (and its borrows
/// end) before the scope returns.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// The process-wide worker pool.
struct Pool {
    /// `queues[0]` is the injector (submissions from non-pool threads);
    /// `queues[1 + w]` is worker `w`'s deque. Owners pop LIFO from the back,
    /// thieves steal FIFO from the front.
    queues: Vec<Mutex<VecDeque<Job>>>,
    /// Approximate count of queued jobs, maintained for the sleep protocol:
    /// incremented *before* a push, decremented after a successful pop, and
    /// checked under `idle` before parking, so a push can never slip past a
    /// parking thread unnoticed.
    queued: AtomicUsize,
    /// Parking lot for idle workers and cooperative waiters. Pushers and
    /// task completions acquire this mutex briefly before notifying, which
    /// closes the check-then-park race.
    idle: Mutex<()>,
    wake: Condvar,
}

impl Pool {
    /// The global pool, spawning its workers on first use.
    fn global() -> &'static Pool {
        static POOL: OnceLock<Pool> = OnceLock::new();
        POOL.get_or_init(|| {
            let workers = pool_size();
            let pool = Pool {
                queues: (0..=workers).map(|_| Mutex::new(VecDeque::new())).collect(),
                queued: AtomicUsize::new(0),
                idle: Mutex::new(()),
                wake: Condvar::new(),
            };
            for w in 0..workers {
                POOL_SPAWNED.fetch_add(1, Ordering::AcqRel);
                thread::Builder::new()
                    .name(format!("dgo-pool-{w}"))
                    .spawn(move || Pool::global().worker_loop(1 + w))
                    .expect("pool worker spawn");
            }
            pool
        })
    }

    /// Submits a job: onto the calling worker's own deque when called from
    /// the pool (LIFO keeps nested forks cache-warm and deadlock-free), onto
    /// the injector otherwise.
    fn push(&self, job: Job) {
        let slot = WORKER_SLOT.with(|s| s.get());
        self.queued.fetch_add(1, Ordering::AcqRel);
        self.queues[slot].lock().expect("pool queue").push_back(job);
        self.notify();
    }

    /// Wakes parked threads. Acquiring `idle` first serializes with the
    /// check-then-park sequence in [`Pool::wait_while`].
    fn notify(&self) {
        drop(self.idle.lock().expect("pool idle lock"));
        self.wake.notify_all();
    }

    /// Takes one job: own deque back first (when on a worker), then the
    /// injector front, then other workers' fronts — classic work stealing.
    fn find_job(&self) -> Option<Job> {
        let slot = WORKER_SLOT.with(|s| s.get());
        if slot != 0 {
            if let Some(job) = self.queues[slot].lock().expect("pool queue").pop_back() {
                self.queued.fetch_sub(1, Ordering::AcqRel);
                return Some(job);
            }
        }
        for offset in 0..self.queues.len() {
            let victim = (slot + offset) % self.queues.len();
            if let Some(job) = self.queues[victim].lock().expect("pool queue").pop_front() {
                self.queued.fetch_sub(1, Ordering::AcqRel);
                return Some(job);
            }
        }
        None
    }

    /// Runs queued tasks until `done()` holds — the cooperative wait used by
    /// scope latches, task-handle joins, and the workers' own idle loop.
    /// Never blocks while work is queued, so a waiting thread always helps
    /// drain the very tasks it is waiting on (deadlock freedom under
    /// arbitrary nesting).
    fn wait_while(&self, done: impl Fn() -> bool) {
        loop {
            if done() {
                return;
            }
            if let Some(job) = self.find_job() {
                job();
                continue;
            }
            let guard = self.idle.lock().expect("pool idle lock");
            if done() || self.queued.load(Ordering::Acquire) > 0 {
                continue;
            }
            // The timeout is belt-and-braces; the notify protocol above makes
            // lost wakeups impossible in the common paths.
            let _ = self
                .wake
                .wait_timeout(guard, Duration::from_millis(50))
                .expect("pool idle lock");
        }
    }

    /// A worker's main loop: run jobs forever, parking when idle. Workers
    /// are detached; they die with the process.
    fn worker_loop(&self, slot: usize) {
        WORKER_SLOT.with(|s| s.set(slot));
        self.wait_while(|| false);
    }
}

thread_local! {
    /// This thread's queue slot: `1 + worker_index` on pool workers, unset
    /// (treated as the injector, slot 0) on external threads.
    static WORKER_SLOT: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// A captured panic payload, shared between the task that recorded it, the
/// handle that may claim it, and the scope that re-throws unclaimed ones.
type PanicSlot = Arc<Mutex<Option<Box<dyn std::any::Any + Send>>>>;

/// Shared state of one [`scope`]: the completion latch plus the panic
/// registry (spawn-ordered, so re-throws are deterministic).
#[derive(Default)]
struct ScopeCore {
    /// Tasks spawned but not yet completed.
    pending: AtomicUsize,
    /// Spawn-order index generator.
    next_index: AtomicUsize,
    /// `(spawn index, payload slot)` of every panicked task. A handle join
    /// empties the slot, which un-registers the panic from the scope end.
    panics: Mutex<Vec<(usize, PanicSlot)>>,
}

impl ScopeCore {
    /// The first (by spawn order) panic payload not yet claimed by a
    /// [`ScopedTaskHandle::join`], removed from the registry.
    fn take_first_panic(&self) -> Option<Box<dyn std::any::Any + Send>> {
        let mut panics = self.panics.lock().expect("scope panic registry");
        panics.sort_by_key(|(index, _)| *index);
        for (_, slot) in panics.iter() {
            if let Some(payload) = slot.lock().expect("panic slot").take() {
                return Some(payload);
            }
        }
        None
    }
}

/// A scope for spawning borrowing tasks; see [`scope`].
pub struct Scope<'scope, 'env: 'scope> {
    core: &'scope Arc<ScopeCore>,
    scope: std::marker::PhantomData<&'scope mut &'scope ()>,
    env: std::marker::PhantomData<&'env mut &'env ()>,
}

impl std::fmt::Debug for Scope<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scope")
            .field("pending", &self.core.pending.load(Ordering::Relaxed))
            .finish()
    }
}

/// Completion state of one spawned task, shared with its handle.
struct TaskState<T> {
    done: AtomicBool,
    result: Mutex<Option<T>>,
}

/// Handle to a task spawned on a [`Scope`]; join it to collect the result
/// (and the panic, if the task panicked) before the scope ends. Mirrors
/// `std::thread::ScopedJoinHandle`.
pub struct ScopedTaskHandle<'scope, T> {
    state: Arc<TaskState<T>>,
    panic: PanicSlot,
    _scope: std::marker::PhantomData<&'scope ()>,
}

impl<T> std::fmt::Debug for ScopedTaskHandle<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScopedTaskHandle")
            .field("done", &self.state.done.load(Ordering::Relaxed))
            .finish()
    }
}

impl<T> ScopedTaskHandle<'_, T> {
    /// Waits for the task (running other queued tasks meanwhile) and returns
    /// its result, or `Err` with the panic payload if it panicked — in which
    /// case the panic is *claimed* and will not re-throw at scope end.
    pub fn join(self) -> thread::Result<T> {
        Pool::global().wait_while(|| self.state.done.load(Ordering::Acquire));
        match self.state.result.lock().expect("task result").take() {
            Some(value) => Ok(value),
            None => Err(self
                .panic
                .lock()
                .expect("panic slot")
                .take()
                .expect("panicked task records its payload")),
        }
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task that may borrow from outside the scope onto the pool;
    /// joined (and its panic propagated) when the scope ends or via the
    /// returned handle.
    pub fn spawn<F, T>(&self, f: F) -> ScopedTaskHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let state = Arc::new(TaskState {
            done: AtomicBool::new(false),
            result: Mutex::new(None),
        });
        let panic_slot: PanicSlot = Arc::new(Mutex::new(None));
        let core = Arc::clone(self.core);
        let index = core.next_index.fetch_add(1, Ordering::Relaxed);
        core.pending.fetch_add(1, Ordering::AcqRel);
        let task_state = Arc::clone(&state);
        let task_panic = Arc::clone(&panic_slot);
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            match panic::catch_unwind(AssertUnwindSafe(f)) {
                Ok(value) => {
                    *task_state.result.lock().expect("task result") = Some(value);
                }
                Err(payload) => {
                    *task_panic.lock().expect("panic slot") = Some(payload);
                    core.panics
                        .lock()
                        .expect("scope panic registry")
                        .push((index, Arc::clone(&task_panic)));
                }
            }
            task_state.done.store(true, Ordering::Release);
            core.pending.fetch_sub(1, Ordering::AcqRel);
            Pool::global().notify();
        });
        // SAFETY: the closure (and everything it borrows, bounded by 'scope)
        // outlives its execution because `scope` waits on the pending latch —
        // on both the normal and the panic path — before returning. Erasing
        // the lifetime only lets the job sit in the 'static queue meanwhile.
        let job: Job =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(job) };
        Pool::global().push(job);
        ScopedTaskHandle {
            state,
            panic: panic_slot,
            _scope: std::marker::PhantomData,
        }
    }
}

/// Creates a fork-join scope: tasks spawned on it may borrow local data and
/// all complete before `scope` returns. The calling thread cooperates in
/// executing the scope's (and other) queued tasks while it waits.
///
/// Panics from spawned tasks propagate when the scope ends (earliest spawn
/// first) unless claimed by [`ScopedTaskHandle::join`]; a panic from `f`
/// itself takes precedence. In every case all spawned tasks finish first.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R + Send,
    R: Send,
{
    let core = Arc::new(ScopeCore::default());
    let result = {
        let scope = Scope {
            core: &core,
            scope: std::marker::PhantomData,
            env: std::marker::PhantomData,
        };
        panic::catch_unwind(AssertUnwindSafe(|| f(&scope)))
    };
    // The latch: every spawned task must finish before borrows can end.
    Pool::global().wait_while(|| core.pending.load(Ordering::Acquire) == 0);
    match result {
        Err(payload) => panic::resume_unwind(payload),
        Ok(value) => {
            if let Some(payload) = core.take_first_panic() {
                panic::resume_unwind(payload);
            }
            value
        }
    }
}

/// Runs both closures, potentially in parallel, and returns both results.
///
/// `oper_b` is offered to the pool; the calling thread runs `oper_a` and then
/// helps execute queued tasks until `oper_b` finishes. Panics from either
/// closure propagate to the caller, as in rayon.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    scope(|s| {
        let handle_b = s.spawn(oper_b);
        let ra = oper_a();
        let rb = match handle_b.join() {
            Ok(rb) => rb,
            Err(payload) => panic::resume_unwind(payload),
        };
        (ra, rb)
    })
}

/// The deterministic chunk split shared by every `chunk_map_*` helper:
/// `threads` is clamped to `[1, len]` and chunks are `⌈len/threads⌉`-sized,
/// so boundaries depend only on `(len, threads)` — never on the pool.
fn chunk_len(len: usize, threads: usize) -> usize {
    len.div_ceil(threads.max(1).min(len))
}

/// Runs `task(t)` for every `t in 0..tasks` on the pool (caller included)
/// and propagates the first panic by task index. The chunk-level fan-out
/// under all `chunk_map_*` helpers: one task per chunk, work stealing moves
/// whole chunks between workers.
fn run_chunk_tasks<F>(tasks: usize, task: F)
where
    F: Fn(usize) + Sync,
{
    debug_assert!(tasks > 1, "single-chunk calls run inline");
    scope(|s| {
        let task = &task;
        for t in 0..tasks {
            s.spawn(move || task(t));
        }
    });
}

/// Maps `map` over near-equal contiguous chunks of `items` in parallel (one
/// pool task per chunk) and folds the per-chunk results left-to-right with
/// `reduce`. Chunk boundaries are deterministic in `(items.len(), threads)`,
/// and the left-to-right fold keeps the result order-deterministic, so
/// callers get identical outputs for identical inputs regardless of
/// scheduling or stealing.
///
/// Stand-in for `items.par_chunks(n).map(map).reduce(...)`; falls back to a
/// single inline call when `items` is small or one thread is requested.
pub fn chunk_map_reduce<T, R, M, F>(items: &[T], threads: usize, map: M, reduce: F) -> Option<R>
where
    T: Sync,
    R: Send,
    M: Fn(usize, &[T]) -> R + Sync,
    F: Fn(R, R) -> R,
{
    if items.is_empty() {
        return None;
    }
    let chunk = chunk_len(items.len(), threads);
    if chunk == items.len() {
        return Some(map(0, items));
    }
    let tasks = items.len().div_ceil(chunk);
    let slots: Vec<Mutex<Option<R>>> = (0..tasks).map(|_| Mutex::new(None)).collect();
    run_chunk_tasks(tasks, |t| {
        let start = t * chunk;
        let end = (start + chunk).min(items.len());
        let out = map(start, &items[start..end]);
        *slots[t].lock().expect("chunk slot") = Some(out);
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("chunk slot")
                .expect("every chunk task completed")
        })
        .reduce(reduce)
}

/// Maps `map` over near-equal contiguous chunks of `items` in parallel (one
/// pool task per chunk) and concatenates the per-chunk outputs in chunk
/// order, so `result[i]` is `map`'s output for `items[i]`. The chunk
/// boundaries are the same deterministic split as [`chunk_map_reduce`], and
/// outputs are collected by index, so the result is identical at any thread
/// count — stealing only moves where a chunk runs.
///
/// Stand-in for `items.par_iter().enumerate().map(map).collect()`; falls back
/// to a single inline pass when one thread suffices.
///
/// The scratch-free special case of [`chunk_map_collect_with`] — one
/// implementation of the chunk split, so the "identical chunk boundaries"
/// determinism contract between the two can never diverge.
pub fn chunk_map_collect<T, R, M>(items: &[T], threads: usize, map: M) -> Vec<R>
where
    T: Sync,
    R: Send,
    M: Fn(usize, &T) -> R + Sync,
{
    chunk_map_collect_with(items, threads, || (), |(), i, item| map(i, item))
}

/// [`chunk_map_collect`] with per-chunk scratch: each chunk task calls
/// `init()` once and threads the scratch mutably through its items. The
/// chunk split and index-ordered collection are identical to
/// [`chunk_map_collect`], so results are the same at any thread count
/// provided `map` is pure given a fresh-or-reset scratch (the scratch is an
/// allocation-reuse optimization, never a communication channel). Stand-in
/// for `items.par_iter().enumerate().map_init(init, map).collect()`.
pub fn chunk_map_collect_with<T, S, R, I, M>(items: &[T], threads: usize, init: I, map: M) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    M: Fn(&mut S, usize, &T) -> R + Sync,
{
    let run_chunk = |offset: usize, slice: &[T]| -> Vec<R> {
        let mut scratch = init();
        slice
            .iter()
            .enumerate()
            .map(|(i, item)| map(&mut scratch, offset + i, item))
            .collect()
    };
    if items.is_empty() {
        return Vec::new();
    }
    let chunk = chunk_len(items.len(), threads);
    if chunk == items.len() {
        return run_chunk(0, items);
    }
    let tasks = items.len().div_ceil(chunk);
    let slots: Vec<Mutex<Option<Vec<R>>>> = (0..tasks).map(|_| Mutex::new(None)).collect();
    run_chunk_tasks(tasks, |t| {
        let start = t * chunk;
        let end = (start + chunk).min(items.len());
        let part = run_chunk(start, &items[start..end]);
        *slots[t].lock().expect("chunk slot") = Some(part);
    });
    let mut out = Vec::with_capacity(items.len());
    for slot in slots {
        out.extend(
            slot.into_inner()
                .expect("chunk slot")
                .expect("every chunk task completed"),
        );
    }
    out
}

/// Shared-pointer wrapper for the disjoint-range writes of
/// [`chunk_map_fill`]: chunk tasks write non-overlapping index ranges of one
/// buffer.
struct SendPtr<T>(*mut T);
// SAFETY: the wrapper is only handed to chunk tasks that write disjoint
// index ranges of a buffer the spawning call keeps alive until every task
// has finished, so moving the pointer across threads cannot race.
unsafe impl<T: Send> Send for SendPtr<T> {}
// SAFETY: shared references only copy the pointer; all writes through it go
// to per-task disjoint ranges (see `chunk_map_fill`), never to shared cells.
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// [`chunk_map_collect`] writing into a caller-provided buffer instead of
/// returning a fresh `Vec`: `out` is cleared, resized to `items.len()`, and
/// `out[i] = map(i, &items[i])` with the same deterministic chunk split —
/// chunk tasks write disjoint regions of the buffer, so no intermediate
/// per-chunk vectors are allocated and the buffer's capacity is reused across
/// calls. Stand-in for collecting a `par_iter` into a recycled buffer.
pub fn chunk_map_fill<T, R, M>(items: &[T], threads: usize, out: &mut Vec<R>, map: M)
where
    T: Sync,
    R: Send + Default,
    M: Fn(usize, &T) -> R + Sync,
{
    out.clear();
    out.resize_with(items.len(), R::default);
    if items.is_empty() {
        return;
    }
    let chunk = chunk_len(items.len(), threads);
    if chunk == items.len() {
        for (i, (slot, item)) in out.iter_mut().zip(items).enumerate() {
            *slot = map(i, item);
        }
        return;
    }
    let tasks = items.len().div_ceil(chunk);
    let base = SendPtr(out.as_mut_ptr());
    run_chunk_tasks(tasks, |t| {
        let start = t * chunk;
        let end = (start + chunk).min(items.len());
        let base = &base;
        for (i, item) in items[start..end].iter().enumerate() {
            // SAFETY: every element is initialized by the resize above,
            // tasks write disjoint `[start, end)` ranges of a buffer that
            // outlives the fork-join (run_chunk_tasks returns only after all
            // tasks finish), and `&base` only captures the Send+Sync wrapper.
            unsafe { *base.0.add(start + i) = map(start + i, item) };
        }
    });
}

/// [`chunk_map_collect`] over the index range `0..n` instead of a slice:
/// `result[i] == map(i)`, with the same deterministic chunk split and
/// index-ordered collection, but no materialized input. Stand-in for
/// `(0..n).into_par_iter().map(map).collect()`.
pub fn chunk_map_collect_range<R, M>(n: usize, threads: usize, map: M) -> Vec<R>
where
    R: Send,
    M: Fn(usize) -> R + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let chunk = chunk_len(n, threads);
    if chunk == n {
        return (0..n).map(map).collect();
    }
    let tasks = n.div_ceil(chunk);
    let slots: Vec<Mutex<Option<Vec<R>>>> = (0..tasks).map(|_| Mutex::new(None)).collect();
    run_chunk_tasks(tasks, |t| {
        let start = t * chunk;
        let end = (start + chunk).min(n);
        let part: Vec<R> = (start..end).map(&map).collect();
        *slots[t].lock().expect("chunk slot") = Some(part);
    });
    let mut out = Vec::with_capacity(n);
    for slot in slots {
        out.extend(
            slot.into_inner()
                .expect("chunk slot")
                .expect("every chunk task completed"),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn scope_spawns_borrowing_tasks() {
        let data = [1u64, 2, 3, 4];
        let mut partial = (0u64, 0u64);
        scope(|s| {
            let (left, right) = data.split_at(2);
            let h = s.spawn(|| left.iter().sum::<u64>());
            let r: u64 = right.iter().sum();
            partial = (h.join().unwrap(), r);
        });
        assert_eq!(partial, (3, 7));
    }

    #[test]
    fn chunk_map_reduce_matches_sequential() {
        let items: Vec<u64> = (0..10_000).collect();
        for threads in [1, 2, 3, 8, 64] {
            let sum = chunk_map_reduce(
                &items,
                threads,
                |_, chunk| chunk.iter().sum::<u64>(),
                |a, b| a + b,
            );
            assert_eq!(sum, Some(items.iter().sum()));
        }
    }

    #[test]
    fn chunk_map_reduce_offsets_are_global() {
        let items: Vec<u64> = (0..1000).collect();
        // Each chunk checks its own global offset alignment.
        let ok = chunk_map_reduce(
            &items,
            7,
            |offset, chunk| {
                chunk
                    .iter()
                    .enumerate()
                    .all(|(i, &v)| v == (offset + i) as u64)
            },
            |a, b| a && b,
        );
        assert_eq!(ok, Some(true));
    }

    #[test]
    fn chunk_map_collect_is_index_ordered() {
        let items: Vec<u64> = (0..5_000).collect();
        let expected: Vec<u64> = items.iter().map(|&v| v * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = chunk_map_collect(&items, threads, |i, &v| {
                assert_eq!(i as u64, v, "global index must match item");
                v * 3 + 1
            });
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn chunk_map_collect_with_reuses_scratch_per_chunk() {
        let items: Vec<u64> = (0..5_000).collect();
        let expected: Vec<u64> = items.iter().map(|&v| v * 2).collect();
        for threads in [1, 2, 3, 8] {
            // The scratch is reset per item by the closure; outputs must be
            // independent of how chunks share it.
            let got = chunk_map_collect_with(&items, threads, Vec::<u64>::new, |scratch, i, &v| {
                scratch.clear();
                scratch.push(v);
                assert_eq!(i as u64, v);
                scratch[0] * 2
            });
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn chunk_map_fill_matches_collect_and_reuses_buffer() {
        let items: Vec<u64> = (0..3_000).collect();
        let expected: Vec<u64> = items.iter().map(|&v| v + 7).collect();
        let mut out: Vec<u64> = Vec::new();
        for threads in [1, 2, 5, 16] {
            chunk_map_fill(&items, threads, &mut out, |_, &v| v + 7);
            assert_eq!(out, expected, "threads = {threads}");
        }
        let capacity = out.capacity();
        chunk_map_fill(&items[..100], 4, &mut out, |_, &v| v);
        assert_eq!(out.len(), 100);
        assert_eq!(out.capacity(), capacity, "buffer must be reused");
        chunk_map_fill(&[] as &[u64], 4, &mut out, |_, &v| v);
        assert!(out.is_empty());
    }

    #[test]
    fn chunk_map_collect_empty_is_empty() {
        let out: Vec<u8> = chunk_map_collect(&[] as &[u8], 4, |_, &b| b);
        assert!(out.is_empty());
    }

    #[test]
    fn chunk_map_collect_range_matches_slice_form() {
        let items: Vec<usize> = (0..4_321).collect();
        for threads in [1, 2, 5, 16] {
            let via_slice = chunk_map_collect(&items, threads, |i, &v| i * 2 + v);
            let via_range = chunk_map_collect_range(items.len(), threads, |i| i * 3);
            assert_eq!(via_slice, via_range, "threads = {threads}");
        }
        assert!(chunk_map_collect_range(0, 4, |i| i).is_empty());
    }

    #[test]
    fn empty_input_is_none() {
        let none = chunk_map_reduce(&[] as &[u8], 4, |_, _| 0u32, |a, b| a + b);
        assert_eq!(none, None);
    }

    #[test]
    fn threads_reported_positive() {
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn pool_spawns_workers_once() {
        // Warm the pool, snapshot the lifetime spawn counter, then hammer
        // every chunk_map_* entry point: steady state must not spawn.
        let items: Vec<u64> = (0..4_000).collect();
        let _ = chunk_map_collect(&items, 8, |_, &v| v);
        let spawned = pool_thread_spawn_count();
        assert!(spawned >= 1 && spawned <= current_num_threads());
        let mut buf = Vec::new();
        for _ in 0..25 {
            let _ = chunk_map_collect(&items, 4, |_, &v| v + 1);
            let _ = chunk_map_collect_range(items.len(), 3, |i| i);
            let _ = chunk_map_reduce(&items, 5, |_, c| c.len(), |a, b| a + b);
            chunk_map_fill(&items, 6, &mut buf, |_, &v| v);
            let _ = join(|| 1, || 2);
        }
        assert_eq!(
            pool_thread_spawn_count(),
            spawned,
            "steady-state parallel calls must not spawn OS threads"
        );
    }

    #[test]
    fn panic_in_chunk_task_propagates() {
        let items: Vec<u64> = (0..2_000).collect();
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            chunk_map_collect(&items, 8, |i, &v| {
                if i == 1_234 {
                    panic!("chunk task panic at {i}");
                }
                v
            })
        }));
        let payload = caught.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("chunk task panic"), "got: {msg}");
    }

    #[test]
    fn earliest_spawned_panic_wins_at_scope_end() {
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            scope(|s| {
                // Spawn in reverse severity: the *first spawned* panic must
                // be the one re-thrown, regardless of completion order.
                s.spawn(|| panic!("first"));
                s.spawn(|| panic!("second"));
            })
        }));
        let payload = caught.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "first");
    }

    #[test]
    fn joined_panic_is_claimed_not_rethrown() {
        // Claiming a panic through the handle must not re-panic the scope.
        let outcome = scope(|s| {
            let h = s.spawn(|| -> u32 { panic!("claimed") });
            h.join().is_err()
        });
        assert!(outcome, "join must surface the panic payload");
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        // Every task forks again on the same pool — cooperative waiting must
        // drain the nested tasks even when all workers are busy waiting.
        let totals: Vec<u64> = chunk_map_collect_range(16, 8, |i| {
            let inner: Vec<u64> = (0..512).collect();
            chunk_map_reduce(&inner, 4, |_, c| c.iter().sum::<u64>(), |a, b| a + b).unwrap_or(0)
                + i as u64
        });
        let inner_sum: u64 = (0..512).sum();
        let expected: Vec<u64> = (0..16).map(|i| inner_sum + i).collect();
        assert_eq!(totals, expected);
    }
}
