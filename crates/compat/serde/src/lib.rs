//! Vendored stand-in for `serde` (offline build).
//!
//! Only the derive-macro entry points are needed by this workspace: data
//! types declare `#[derive(Serialize, Deserialize)]` but nothing serializes
//! at runtime (no `serde_json` in the tree). The derives expand to nothing;
//! swapping in the real crates-io `serde` is a manifest-only change.

pub use serde_derive::{Deserialize, Serialize};
