//! Vendored stand-in for `serde_derive` (offline build).
//!
//! The workspace derives `Serialize`/`Deserialize` on its public data types so
//! downstream users with the real `serde` can persist metrics and configs.
//! This container has no registry access, so the derives expand to nothing:
//! the attribute positions stay valid and the real crate can be swapped back
//! in by deleting `crates/compat` and the `[patch]`-free path deps.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
