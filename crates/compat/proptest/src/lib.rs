//! Vendored stand-in for `proptest` (offline build).
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(..)]` and `pat in strategy`
//! arguments), [`Strategy`] for integer ranges / [`any`] / tuples /
//! `prop_map`, and the `prop_assert*` family. Cases are generated from a
//! deterministic per-test seed (derived from the test name and case index),
//! so failures reproduce exactly; there is no shrinking — the failing case's
//! index and seed are reported instead.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub use rand::{Rng, RngCore};

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Why a test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// An assertion failed; carries the rendered message.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection (assumption not met).
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Runner configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Drives the cases of one property test. Used by [`proptest!`]-generated
/// code; not part of the real proptest API surface.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    name_hash: u64,
    rejected: u32,
}

impl TestRunner {
    /// Creates a runner for the named test.
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        // FNV-1a over the test name: stable per-test seed base.
        let mut hash = 0xCBF2_9CE4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner {
            config,
            name_hash: hash,
            rejected: 0,
        }
    }

    /// Number of cases to attempt.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// The deterministic RNG for one case.
    pub fn rng_for(&self, case: u32) -> TestRng {
        StdRng::seed_from_u64(self.name_hash ^ (u64::from(case) << 32))
    }

    /// Records a case outcome, panicking on failure with reproduction info.
    pub fn handle(&mut self, case: u32, result: Result<(), TestCaseError>) {
        match result {
            Ok(()) => {}
            Err(TestCaseError::Reject(_)) => {
                self.rejected += 1;
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "property failed at case {case} (seed {:#x}): {msg}",
                    self.name_hash ^ (u64::from(case) << 32)
                );
            }
        }
    }
}

/// A generator of random values for one test argument.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter created by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

/// Strategy for "any value of `T`" ([`any`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

/// Returns the strategy generating arbitrary values of `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any {
        _marker: core::marker::PhantomData,
    }
}

macro_rules! impl_any_strategy {
    ($($t:ty => $gen:expr),* $(,)?) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let f: fn(&mut TestRng) -> $t = $gen;
                f(rng)
            }
        }
    )*};
}

impl_any_strategy!(
    u64 => |rng| rng.random::<u64>(),
    u32 => |rng| rng.random::<u32>(),
    usize => |rng| rng.random::<usize>(),
    bool => |rng| rng.random::<bool>(),
    f64 => |rng| rng.random::<f64>(),
);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),* $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
);

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Any, ProptestConfig, Strategy,
        TestCaseError, TestRunner,
    };
}

/// Asserts a condition inside a property, failing the case (not panicking
/// directly) so the runner can attach reproduction info.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Skips the case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ..)` runs
/// `cases` times with seeded random arguments.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $( $(#[$attr:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let mut runner = $crate::TestRunner::new($cfg, stringify!($name));
                for case in 0..runner.cases() {
                    let mut rng = runner.rng_for(case);
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut rng); )*
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    })();
                    runner.handle(case, outcome);
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let runner = TestRunner::new(ProptestConfig::with_cases(16), "bounds");
        let strat = 3usize..9;
        for case in 0..16 {
            let mut rng = runner.rng_for(case);
            let v = strat.generate(&mut rng);
            assert!((3..9).contains(&v));
        }
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let runner = TestRunner::new(ProptestConfig::default(), "compose");
        let strat = (1usize..4, any::<u64>()).prop_map(|(a, b)| a as u64 + (b % 10));
        let mut rng = runner.rng_for(0);
        let v = strat.generate(&mut rng);
        assert!(v < 13);
    }

    #[test]
    fn cases_are_deterministic() {
        let runner = TestRunner::new(ProptestConfig::default(), "determinism");
        let a = any::<u64>().generate(&mut runner.rng_for(5));
        let b = any::<u64>().generate(&mut runner.rng_for(5));
        assert_eq!(a, b);
        let c = any::<u64>().generate(&mut runner.rng_for(6));
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_generates_and_asserts(x in 0u32..100, y in any::<bool>()) {
            prop_assert!(x < 100);
            prop_assert_eq!(u32::from(y) * 2, if y { 2 } else { 0 });
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "property failed at case")]
    fn failures_report_case() {
        let mut runner = TestRunner::new(ProptestConfig::default(), "fails");
        runner.handle(3, Err(TestCaseError::fail("boom")));
    }
}
