//! Algorithm parameters.
//!
//! The paper's proofs pick constants for analytical convenience
//! (`k ≥ 100·λ`, `B = k^100`, `s = ⌈10 log log n⌉`, ...) that are unusable at
//! laptop scale: `k^100` overflows any machine. The implementation keeps the
//! *forms* of all parameters and exposes two presets:
//!
//! * [`Params::paper`] — the paper's forms with constants scaled down only as
//!   far as machine arithmetic requires (budgets clamp at `n^δ`);
//! * [`Params::practical`] — small constants tuned so the algorithms make
//!   progress on graphs with `n` in the thousands-to-millions range.
//!
//! Crucially, *correctness never depends on the constants*: the out-degree
//! bound of any produced layering holds structurally (Lemma 3.10 /
//! Claim 3.12), and the drivers guarantee termination via the peeling
//! fallback of Lemma 3.15 Stage 1. Constants only trade rounds against the
//! `O(λ log log n)` out-degree factor — experiment E6 sweeps them.

use crate::error::{CoreError, Result};

/// Tunable parameters for the orientation and coloring pipelines.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Memory exponent `δ ∈ (0, 1)`: machines get `S = n^δ` words.
    pub delta: f64,
    /// Pruning parameter factor: `k = max(2, ⌈k_factor · λ̂⌉)` (paper: 100).
    pub k_factor: f64,
    /// Exponentiation step count `s`; `0` selects `⌈log₂ L⌉ + 1`
    /// (paper: `⌈10 log log n⌉`).
    pub steps: u32,
    /// View-tree budget `B`; `0` selects `min(n^δ, budget_cap)`.
    pub budget: usize,
    /// Hard cap on `B` regardless of `n^δ` (keeps simulation memory sane).
    pub budget_cap: usize,
    /// Layers per partial stage `L`; `0` selects `max(2, ⌈0.1·log_k B⌉)`.
    pub layers_per_stage: u32,
    /// Maximum boosted stages before the drivers declare failure.
    pub max_stages: u32,
    /// Number of top-down layer batches in the coloring; `0` selects
    /// `⌈(log₂ log₂ n)²⌉` clamped to the layer count (paper:
    /// `O(log^{3.67} log n)` repetitions).
    pub color_batches: u32,
    /// Palette multiplier: the coloring uses `palette_factor · d` colors where
    /// `d` is the layering out-degree (paper's proof uses `3d`).
    pub palette_factor: usize,
    /// Threshold (in vertices) under which arboricity is computed exactly via
    /// flows; above it the degeneracy estimate is used.
    pub exact_arboricity_threshold: usize,
    /// Arboricity estimate override; `0` means estimate from the graph.
    pub lambda_hint: usize,
    /// Seed for all randomized subroutines.
    pub seed: u64,
    /// Host threads for the two algorithmic parallelism tiers: composed
    /// parallel *instances* (the coreness guess ladder, Theorem 1.1's
    /// per-part layerings, Lemma 2.2's per-part colorings) and the
    /// vertex-parallel *stages* inside every instance (the Algorithm 1–4
    /// per-vertex maps, via [`dgo_core::stage`](crate::stage)). The tiers
    /// share this one budget — instance fan-outs subdivide it with
    /// `dgo_mpc::split_jobs` instead of multiplying. `1` runs everything in
    /// sequential host loops, `0` uses every available core. Results and
    /// metrics are bit-identical at any value — this knob only trades host
    /// wall-clock, like the backend choice.
    ///
    /// Presets default this to the `DGO_JOBS` environment variable when set
    /// (CI runs the test suite under both `DGO_JOBS=1` and `DGO_JOBS=0`),
    /// and `1` otherwise.
    pub jobs: usize,
}

/// The preset default for [`Params::jobs`]: `DGO_JOBS` when set to a valid
/// count, else 1. Callers wanting an explicit value use
/// [`Params::with_jobs`].
fn default_jobs() -> usize {
    dgo_mpc::tuning::env_jobs().unwrap_or(1)
}

impl Params {
    /// Practical preset: small constants, suitable for `n` up to millions.
    ///
    /// # Examples
    ///
    /// ```
    /// use dgo_core::Params;
    /// let p = Params::practical(10_000);
    /// assert!(p.delta > 0.0 && p.delta < 1.0);
    /// p.validate().unwrap();
    /// ```
    pub fn practical(_n: usize) -> Self {
        Params {
            delta: 0.5,
            k_factor: 2.0,
            steps: 0,
            budget: 0,
            budget_cap: 4096,
            layers_per_stage: 0,
            max_stages: 64,
            color_batches: 0,
            palette_factor: 3,
            exact_arboricity_threshold: 600,
            lambda_hint: 0,
            seed: 0xD60_C0DE,
            jobs: default_jobs(),
        }
    }

    /// Paper preset: the proofs' parameter forms, clamped only where machine
    /// arithmetic forces it (`B = k^100` clamps to `n^δ`).
    pub fn paper(n: usize) -> Self {
        let loglog = (n.max(4) as f64).log2().log2().ceil().max(1.0) as u32;
        Params {
            delta: 0.5,
            k_factor: 100.0,
            steps: 10 * loglog,
            budget: 0, // k^100 always clamps to n^δ at feasible n
            budget_cap: usize::MAX,
            layers_per_stage: 0,
            max_stages: 64,
            color_batches: 0,
            palette_factor: 3,
            exact_arboricity_threshold: 600,
            lambda_hint: 0,
            seed: 0xD60_C0DE,
            jobs: default_jobs(),
        }
    }

    /// Returns a copy running composed parallel instances and the
    /// vertex-parallel stages inside them on `jobs` host threads (`0` = all
    /// available cores). Purely a wall-clock knob; see [`Params::jobs`].
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Checks parameter sanity.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParams`] describing the first violated requirement.
    pub fn validate(&self) -> Result<()> {
        if !(self.delta > 0.0 && self.delta < 1.0) {
            return Err(CoreError::InvalidParams {
                reason: format!("delta must be in (0,1), got {}", self.delta),
            });
        }
        if self.k_factor < 1.0 {
            return Err(CoreError::InvalidParams {
                reason: format!("k_factor must be >= 1, got {}", self.k_factor),
            });
        }
        if self.palette_factor < 3 {
            return Err(CoreError::InvalidParams {
                reason: format!(
                    "palette_factor must be >= 3 for list-coloring feasibility, got {}",
                    self.palette_factor
                ),
            });
        }
        if self.max_stages == 0 {
            return Err(CoreError::InvalidParams {
                reason: "max_stages must be positive".to_string(),
            });
        }
        Ok(())
    }

    /// The per-machine memory `S = max(64, ⌈n^δ⌉)` for instance size `n`.
    pub fn local_memory(&self, n: usize) -> usize {
        ((n.max(2) as f64).powf(self.delta).ceil() as usize).max(64)
    }

    /// The pruning parameter `k` for arboricity estimate `lambda_hat`.
    pub fn k(&self, lambda_hat: usize) -> usize {
        ((self.k_factor * lambda_hat.max(1) as f64).ceil() as usize).max(2)
    }

    /// The view-tree budget `B` for instance size `n`: explicit `budget` if
    /// set, else `min(S, budget_cap)`, but never below `k²` so at least one
    /// expansion survives pruning, and never below 16.
    pub fn effective_budget(&self, n: usize, k: usize) -> usize {
        let base = if self.budget > 0 {
            self.budget
        } else {
            self.local_memory(n).min(self.budget_cap)
        };
        base.max(k * k).max(16)
    }

    /// Layers per partial stage: explicit if set, else `max(2, ⌈0.1·log_k B⌉)`
    /// (Lemma 3.13's `⌈0.1 log_k(B)⌉`, floored at 2 for practicality).
    pub fn stage_layers(&self, budget: usize, k: usize) -> u32 {
        if self.layers_per_stage > 0 {
            return self.layers_per_stage;
        }
        let lk = (budget.max(2) as f64).ln() / (k.max(2) as f64).ln();
        ((0.1 * lk).ceil() as u32).max(2)
    }

    /// Exponentiation steps: explicit if set, else `⌈log₂ L⌉ + 1` (the
    /// `s > log₂ L` requirement of Lemma 3.7).
    pub fn effective_steps(&self, stage_layers: u32) -> u32 {
        if self.steps > 0 {
            return self.steps;
        }
        (32 - u32::leading_zeros(stage_layers.max(2) - 1)) + 1
    }

    /// Coloring batch count: explicit if set, else `⌈(log₂ log₂ n)²⌉`,
    /// at least 1.
    pub fn effective_color_batches(&self, n: usize) -> u32 {
        if self.color_batches > 0 {
            return self.color_batches;
        }
        let ll = (n.max(4) as f64).log2().log2().max(1.0);
        (ll * ll).ceil() as u32
    }
}

impl Default for Params {
    fn default() -> Self {
        Params::practical(1 << 16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn practical_validates() {
        Params::practical(1000).validate().unwrap();
        Params::paper(1000).validate().unwrap();
        Params::default().validate().unwrap();
    }

    #[test]
    fn invalid_delta_rejected() {
        let mut p = Params::practical(100);
        p.delta = 1.5;
        assert!(p.validate().is_err());
        p.delta = 0.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn invalid_palette_rejected() {
        let mut p = Params::practical(100);
        p.palette_factor = 2;
        assert!(p.validate().is_err());
    }

    #[test]
    fn local_memory_scales() {
        let p = Params::practical(0);
        assert_eq!(p.local_memory(1_000_000), 1000);
        assert_eq!(p.local_memory(4), 64); // floor
    }

    #[test]
    fn k_respects_factor_and_floor() {
        let p = Params::practical(100);
        assert_eq!(p.k(5), 10);
        assert_eq!(p.k(0), 2); // lambda floored at 1, k floored at 2
    }

    #[test]
    fn budget_floors_at_k_squared() {
        let p = Params::practical(100);
        let k = 50;
        assert!(p.effective_budget(100, k) >= k * k);
    }

    #[test]
    fn budget_cap_applies() {
        let mut p = Params::practical(1 << 20);
        p.budget_cap = 100;
        assert_eq!(p.effective_budget(1 << 20, 2), 100);
    }

    #[test]
    fn stage_layers_from_lemma_3_13() {
        let p = Params::practical(100);
        // 0.1 * log_2(1024) = 1.0 -> ceil 1 -> floored to 2.
        assert_eq!(p.stage_layers(1024, 2), 2);
        // 0.1 * log_2(2^40) = 4.
        assert_eq!(p.stage_layers(1 << 40, 2), 4);
    }

    #[test]
    fn steps_exceed_log_layers() {
        let p = Params::practical(100);
        for layers in [2u32, 3, 4, 7, 8, 9, 100] {
            let s = p.effective_steps(layers);
            assert!(
                (1u64 << s) > u64::from(layers),
                "2^{s} must exceed L={layers}"
            );
        }
    }

    #[test]
    fn explicit_overrides_win() {
        let mut p = Params::practical(100);
        p.steps = 7;
        p.layers_per_stage = 9;
        p.color_batches = 3;
        p.budget = 333;
        assert_eq!(p.effective_steps(100), 7);
        assert_eq!(p.stage_layers(1 << 40, 2), 9);
        assert_eq!(p.effective_color_batches(1 << 30), 3);
        assert_eq!(p.effective_budget(1 << 30, 2), 333);
    }

    #[test]
    fn with_jobs_only_touches_jobs() {
        let base = Params::practical(100);
        let tuned = base.clone().with_jobs(8);
        assert_eq!(tuned.jobs, 8);
        // The preset default tracks DGO_JOBS (the CI matrix knob), so compare
        // against whatever this run's default resolved to.
        assert_eq!(
            Params {
                jobs: base.jobs,
                ..tuned
            },
            base
        );
    }

    #[test]
    fn color_batches_grow_slowly() {
        let p = Params::practical(100);
        let small = p.effective_color_batches(1 << 10);
        let large = p.effective_color_batches(1 << 30);
        assert!(large >= small);
        assert!(large <= 30);
    }
}
