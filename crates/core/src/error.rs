//! Error type for the core algorithms.

use std::error::Error as StdError;
use std::fmt;

/// Errors from the orientation/coloring pipelines.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// A graph-side validation failed (propagated from `dgo-graph`).
    Graph(dgo_graph::GraphError),
    /// An MPC model constraint was violated (propagated from `dgo-mpc`).
    Mpc(dgo_mpc::MpcError),
    /// The layering drivers exhausted their stage budget with vertices still
    /// unassigned — parameters too aggressive for the instance.
    StageBudgetExhausted {
        /// Vertices still unassigned.
        unassigned: usize,
        /// Stages executed.
        stages: u32,
    },
    /// Invalid algorithm parameters.
    InvalidParams {
        /// Human-readable description of the violated requirement.
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Graph(e) => write!(f, "graph error: {e}"),
            CoreError::Mpc(e) => write!(f, "mpc model error: {e}"),
            CoreError::StageBudgetExhausted { unassigned, stages } => write!(
                f,
                "layering left {unassigned} vertices unassigned after {stages} stages"
            ),
            CoreError::InvalidParams { reason } => write!(f, "invalid parameters: {reason}"),
        }
    }
}

impl StdError for CoreError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            CoreError::Graph(e) => Some(e),
            CoreError::Mpc(e) => Some(e),
            _ => None,
        }
    }
}

impl From<dgo_graph::GraphError> for CoreError {
    fn from(e: dgo_graph::GraphError) -> Self {
        CoreError::Graph(e)
    }
}

impl From<dgo_mpc::MpcError> for CoreError {
    fn from(e: dgo_mpc::MpcError) -> Self {
        CoreError::Mpc(e)
    }
}

/// Convenience result alias for the core algorithms.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = CoreError::from(dgo_graph::GraphError::SelfLoop { vertex: 1 });
        assert!(e.to_string().contains("graph error"));
        assert!(StdError::source(&e).is_some());

        let e = CoreError::StageBudgetExhausted {
            unassigned: 5,
            stages: 3,
        };
        assert!(e.to_string().contains("5 vertices"));
        assert!(StdError::source(&e).is_none());
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<CoreError>();
    }
}
