//! `PartialLayerAssignmentTree` — Algorithm 3 of the paper.
//!
//! A single-machine peeling on one view tree: in round `j`, every surviving
//! tree node `x` whose surviving-children count plus missing-neighbor count
//! is at most `a` receives layer `j`. Lemma 3.8 shows that nodes which are
//! *strictly monotonically reachable* (Definition 2.7) receive a layer no
//! larger than their image's true layer; Lemma 3.10 shows that min-combining
//! the per-tree results yields a partial assignment with out-degree `≤ a`.
//!
//! The peel runs entirely in [`PeelScratch`] buffers over the flat tree
//! arena: the per-round "selected" set is never collected (round `j` marks
//! into the output, then compacts the survivor list in place), so peeling a
//! tree allocates nothing beyond its output. Batch stages hand one scratch
//! to each worker via [`StageExecutor::map_with`].

use crate::stage::StageExecutor;
use crate::vtree::ViewTree;
use dgo_graph::{Graph, UNASSIGNED};

/// Reusable scratch for Algorithm 3: the live degree counters and the
/// survivor worklist. One scratch serves any number of peels; workers of a
/// batch stage each own one.
#[derive(Debug, Default)]
pub struct PeelScratch {
    /// `count[x]` = surviving children of `x` + missing neighbors of `x`
    /// (the two always sum to `deg(map(x))` minus selected children), plus
    /// one sentinel slot at index `len` absorbing the root's decrements.
    count: Vec<u32>,
    /// Ids not yet assigned a layer, in ascending order.
    remaining: Vec<u32>,
    /// Per-node parent index with the root redirected to the sentinel slot,
    /// so the round loop decrements unconditionally — no root branch.
    pidx: Vec<u32>,
}

impl PeelScratch {
    /// A fresh scratch (buffers grow to the largest tree peeled through them
    /// and are then reused).
    pub fn new() -> Self {
        PeelScratch::default()
    }

    /// Runs the peel, writing each node's layer (`1..=layers`, or
    /// [`UNASSIGNED`] for the paper's `∞`) into `layer`, which is cleared and
    /// refilled.
    fn peel_into(
        &mut self,
        graph: &Graph,
        tree: &ViewTree,
        a: usize,
        layers: u32,
        layer: &mut Vec<u32>,
    ) {
        let t = tree.len();
        layer.clear();
        layer.resize(t, UNASSIGNED);
        // Surviving-children + missing counts; the sum starts at the image's
        // graph degree (children map to distinct neighbors, Def 2.3) and only
        // drops as children get selected.
        let vertex = tree.vertex_col();
        self.count.clear();
        self.count
            .extend(vertex.iter().map(|&v| graph.degree(v as usize) as u32));
        // Sentinel slot: decrements through `pidx` never branch on the root.
        // Never read for selection (worklists only hold real ids), so it just
        // needs headroom for its at-most-one decrement per node.
        self.count.push(u32::MAX);
        // Parent values are always < t except the root's NO_PARENT
        // (u32::MAX), so `min` redirects exactly the root to the sentinel.
        self.pidx.clear();
        self.pidx
            .extend(tree.parent_col().iter().map(|&p| p.min(t as u32)));
        self.remaining.clear();
        self.remaining.extend(tree.node_ids());
        let a = a.min(u32::MAX as usize) as u32;
        for j in 1..=layers {
            // Select against the round-start counts: marking first, then
            // decrementing, keeps same-round selections independent. The mark
            // pass is a predicated scan — every survivor stores a layer
            // (selected → j, else the UNASSIGNED it already has), so there is
            // no branch for the selection itself.
            let mut selected = 0usize;
            for &x in &self.remaining {
                let sel = self.count[x as usize] <= a;
                layer[x as usize] = if sel { j } else { UNASSIGNED };
                selected += sel as usize;
            }
            if selected == 0 {
                // Counts can only drop when nodes are selected; no progress
                // now means no progress ever.
                break;
            }
            // Fused decrement + compaction: the selection is latched in
            // `layer`, so one pass both scatters the parent decrements
            // (unconditionally, via the sentinel) and compacts the survivor
            // list with a predicated write index.
            let count = &mut self.count;
            let pidx = &self.pidx;
            let mut w = 0usize;
            for i in 0..self.remaining.len() {
                let x = self.remaining[i] as usize;
                let sel = layer[x] == j;
                count[pidx[x] as usize] -= sel as u32;
                self.remaining[w] = x as u32;
                w += (!sel) as usize;
            }
            self.remaining.truncate(w);
            if self.remaining.is_empty() {
                break;
            }
        }
    }
}

/// Runs Algorithm 3: returns the layer of every tree node (`1..=layers`, or
/// [`UNASSIGNED`] for the paper's `∞`).
///
/// Entirely local — executed per tree on the machine holding it; the MPC
/// driver combines results with [`crate::combine_tree_layers`].
///
/// # Examples
///
/// ```
/// use dgo_core::{partial_layer_assignment_tree, ViewTree};
/// use dgo_graph::Graph;
///
/// // A star center with all 3 neighbors present: Missing = 0, children = 3.
/// let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)])?;
/// let t = ViewTree::star(0, &[1, 2, 3]);
/// let layers = partial_layer_assignment_tree(&g, &t, 3, 4);
/// // Leaves have 0 children and deg-1... leaf "1" maps to vertex 1 whose
/// // degree is 1 and which has 0 children in the tree: missing = 1 <= 3,
/// // so every node lands in layer 1.
/// assert!(layers.iter().all(|&l| l == 1));
/// # Ok::<(), dgo_graph::GraphError>(())
/// ```
pub fn partial_layer_assignment_tree(
    graph: &Graph,
    tree: &ViewTree,
    a: usize,
    layers: u32,
) -> Vec<u32> {
    partial_layer_assignment_tree_with(graph, tree, a, layers, &mut PeelScratch::new())
}

/// [`partial_layer_assignment_tree`] through a caller-owned [`PeelScratch`]:
/// repeated calls allocate nothing beyond each returned layer vector. This is
/// the form the batch stages use with one scratch per worker.
pub fn partial_layer_assignment_tree_with(
    graph: &Graph,
    tree: &ViewTree,
    a: usize,
    layers: u32,
    scratch: &mut PeelScratch,
) -> Vec<u32> {
    let mut out = Vec::new();
    scratch.peel_into(graph, tree, a, layers, &mut out);
    out
}

/// Runs Algorithm 3 over a whole batch of trees as one vertex-parallel
/// stage: `result[v]` is the per-node layer vector of `trees[v]`.
///
/// Each tree peels independently on the machine holding it (the driver's
/// per-vertex map), reading only the shared graph, so the stage is
/// bit-identical to the sequential per-tree loop at any thread count; each
/// worker reuses one [`PeelScratch`].
pub fn partial_layer_assignment_trees(
    graph: &Graph,
    trees: &[ViewTree],
    a: usize,
    layers: u32,
    stage: &StageExecutor,
) -> Vec<Vec<u32>> {
    stage.map_with(trees, PeelScratch::new, |scratch, _, tree| {
        partial_layer_assignment_tree_with(graph, tree, a, layers, scratch)
    })
}

/// Peels every tree and returns, per tree, the Algorithm 4 layer proposals
/// `(image vertex, layer)` for its finite-layer nodes in node order —
/// exactly the records the min-combine aggregates, without materializing the
/// per-node layer vectors. The per-node layers live only in each worker's
/// scratch.
pub(crate) fn tree_layer_proposals(
    graph: &Graph,
    trees: &[ViewTree],
    a: usize,
    layers: u32,
    stage: &StageExecutor,
) -> Vec<Vec<(u64, u32)>> {
    stage.map_with(
        trees,
        || (PeelScratch::new(), Vec::new()),
        |(scratch, layer), _, tree| {
            scratch.peel_into(graph, tree, a, layers, layer);
            // Compact the finite-layer records with a predicated write index:
            // every node stores a candidate record, only assigned ones
            // advance the cursor (and survive the truncate) — same node
            // order, no per-node push branch.
            let vertex = tree.vertex_col();
            let mut proposals = vec![(0u64, 0u32); tree.len()];
            let mut w = 0usize;
            for (&img, &l) in vertex.iter().zip(layer.iter()) {
                proposals[w] = (img as u64, l);
                w += (l != UNASSIGNED) as usize;
            }
            proposals.truncate(w);
            proposals
        },
    )
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use crate::exponentiate::exponentiate_and_prune;
    use dgo_graph::generators::gnm;
    use dgo_mpc::{Cluster, ClusterConfig};

    #[test]
    fn singleton_with_small_degree_gets_layer_one() {
        let g = Graph::from_edges(3, &[(0, 1), (0, 2)]).unwrap();
        let t = ViewTree::singleton(0); // missing = deg(0) = 2
        assert_eq!(partial_layer_assignment_tree(&g, &t, 2, 3), vec![1]);
        // With a = 1 the root can never be selected.
        assert_eq!(
            partial_layer_assignment_tree(&g, &t, 1, 3),
            vec![UNASSIGNED]
        );
    }

    #[test]
    fn peeling_proceeds_leaves_inward() {
        // Path 0-1-2 viewed from 1 with both children present.
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let t = ViewTree::star(1, &[0, 2]);
        // a = 1: leaves (missing 0... leaf "0" maps to vertex 0 with degree
        // 1 and no children: missing = 1 <= 1 -> layer 1. Root has 2
        // children initially (> a counting missing 0), layer 2 after leaves
        // drop out.
        let layers = partial_layer_assignment_tree(&g, &t, 1, 5);
        assert_eq!(layers[0], 2);
        assert_eq!(layers[1], 1);
        assert_eq!(layers[2], 1);
    }

    #[test]
    fn layer_cap_respected() {
        // Long path tree needs many rounds; cap at 2 layers.
        let n = 8;
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let g = Graph::from_edges(n, &edges).unwrap();
        // Build the path as a degenerate tree 0 -> 1 -> ... -> 7 by chained
        // attachments.
        let mut t = ViewTree::star(0, &[1]);
        for v in 1..n - 1 {
            let leaf = t
                .leaves_at_depth(v as u32)
                .find(|&x| t.vertex(x) == v)
                .unwrap();
            t.attach(&[(leaf, &ViewTree::star(v, &[v as u32 - 1, v as u32 + 1]))]);
        }
        t.assert_valid(&g);
        // With a = 1... each internal tree node has 1-2 children. Use a = 1
        // and 2 layers: deepest nodes get 1, then their parents 2, rest inf.
        let layers = partial_layer_assignment_tree(&g, &t, 1, 2);
        assert!(layers.contains(&UNASSIGNED));
        assert!(layers.contains(&1));
    }

    #[test]
    fn lemma_3_9_root_layer_bounded_by_true_layer() {
        // For vertices satisfying Lemma 3.9's hypotheses (k >= d,
        // s > log2(L), NumPathsIn(v) <= sqrt(B)), the root of the
        // exponentiated tree receives a layer no larger than the vertex's
        // layer in the reference assignment.
        let g = gnm(60, 180, 4);
        let peel = dgo_local::be08_peeling(&g, 3, 0.5, 0);
        let ref_layering = peel.layering;
        assert!(ref_layering.is_complete());
        let d = ref_layering.out_degree_bound(&g).unwrap();
        let k = d.max(1);
        let layers_l = ref_layering.max_layer().unwrap();
        let steps = 32 - u32::leading_zeros(layers_l.max(1)) + 1; // s > log2 L
        let budget = 1024usize;
        let sqrt_b = (budget as f64).sqrt() as u64;
        let paths_in = crate::paths::num_paths_in(&g, &ref_layering);
        let mut cluster = Cluster::new(ClusterConfig::new(2048, 8192));
        let r = exponentiate_and_prune(&g, budget, k, steps, &mut cluster).unwrap();
        let a = (steps as usize + 1) * k;
        let mut checked = 0;
        for v in 0..g.num_vertices() {
            if paths_in[v] > sqrt_b {
                continue;
            }
            checked += 1;
            let layers = partial_layer_assignment_tree(&g, &r.trees[v], a, layers_l);
            let root_layer = layers[ViewTree::ROOT as usize];
            assert_ne!(root_layer, UNASSIGNED, "v={v} must be assigned (Lemma 3.9)");
            assert!(
                root_layer <= ref_layering.layer(v),
                "v={v}: tree layer {root_layer} > true layer {}",
                ref_layering.layer(v)
            );
        }
        assert!(checked > 0, "test vacuous: no vertex met the hypotheses");
    }

    #[test]
    fn generous_a_assigns_everything_layer_one() {
        let g = gnm(30, 90, 2);
        let t = ViewTree::star(5, g.neighbors(5));
        let a = g.max_degree() + 1;
        let layers = partial_layer_assignment_tree(&g, &t, a, 1);
        assert!(layers.iter().all(|&l| l == 1));
    }

    #[test]
    fn batch_matches_per_tree_loop_at_any_thread_count() {
        use crate::stage::StageExecutor;
        let g = gnm(100, 400, 2);
        let mut cluster = Cluster::new(ClusterConfig::new(2048, 8192));
        let r = exponentiate_and_prune(&g, 144, 3, 3, &mut cluster).unwrap();
        let reference: Vec<Vec<u32>> = r
            .trees
            .iter()
            .map(|t| partial_layer_assignment_tree(&g, t, 12, 4))
            .collect();
        for jobs in [1usize, 2, 8, 0] {
            let batch =
                partial_layer_assignment_trees(&g, &r.trees, 12, 4, &StageExecutor::new(jobs));
            assert_eq!(batch, reference, "jobs = {jobs}");
        }
    }

    #[test]
    fn proposals_match_per_node_layers() {
        let g = gnm(90, 360, 8);
        let mut cluster = Cluster::new(ClusterConfig::new(2048, 8192));
        let r = exponentiate_and_prune(&g, 144, 2, 3, &mut cluster).unwrap();
        let (a, layers) = (8usize, 4u32);
        let stage = StageExecutor::sequential();
        let per_node = partial_layer_assignment_trees(&g, &r.trees, a, layers, &stage);
        let mut expected: Vec<Vec<(u64, u32)>> = Vec::new();
        for (tree, node_layers) in r.trees.iter().zip(&per_node) {
            expected.push(
                tree.node_ids()
                    .filter(|&x| node_layers[x as usize] != UNASSIGNED)
                    .map(|x| (tree.vertex(x) as u64, node_layers[x as usize]))
                    .collect(),
            );
        }
        for jobs in [1usize, 2, 8, 0] {
            let got = tree_layer_proposals(&g, &r.trees, a, layers, &StageExecutor::new(jobs));
            assert_eq!(got, expected, "jobs = {jobs}");
        }
    }

    #[test]
    fn zero_a_assigns_nothing_on_connected_graph() {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let t = ViewTree::star(0, &[1]);
        let layers = partial_layer_assignment_tree(&g, &t, 0, 5);
        assert!(layers.iter().all(|&l| l == UNASSIGNED));
    }
}
