//! Rooted view trees with valid mappings (paper Definitions 2.3–2.7).
//!
//! During graph exponentiation each vertex `v` maintains a rooted tree `T_v`
//! whose nodes map to graph vertices (possibly with repeats along different
//! branches — one tree node per distinct path). A mapping is *valid*
//! (Def 2.3) when every tree edge maps to a graph edge and the children of
//! any node map to pairwise distinct vertices. The tree-attachment operation
//! (Def 2.5) splices a neighbor's pruned tree onto a leaf; *missing
//! neighbors* (Def 2.6) of a tree node are the graph neighbors of its image
//! not represented among its children.

use dgo_graph::Graph;

/// Index of a node within a [`ViewTree`] arena.
pub type NodeId = u32;

/// Sentinel parent for the root.
const NO_PARENT: u32 = u32::MAX;

#[derive(Debug, Clone, PartialEq, Eq)]
struct VNode {
    /// Image of this node under the valid mapping (a graph vertex).
    vertex: u32,
    parent: u32,
    children: Vec<u32>,
    depth: u32,
}

/// A rooted tree with a valid mapping into a graph (Definition 2.3).
///
/// Node 0 is always the root. The structure maintains the valid-mapping
/// invariants in debug builds; [`ViewTree::assert_valid`] checks them
/// explicitly against a graph.
///
/// # Examples
///
/// ```
/// use dgo_core::ViewTree;
/// use dgo_graph::Graph;
///
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2)])?;
/// // The initial view of vertex 1: a star over its neighborhood.
/// let t = ViewTree::star(1, &[0, 2]);
/// assert_eq!(t.len(), 3);
/// assert_eq!(t.root_vertex(), 1);
/// assert_eq!(t.missing_count(ViewTree::ROOT, &g), 0);
/// t.assert_valid(&g);
/// # Ok::<(), dgo_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewTree {
    nodes: Vec<VNode>,
}

impl ViewTree {
    /// The root's node id.
    pub const ROOT: NodeId = 0;

    /// Single-node tree mapping the root to `vertex`.
    pub fn singleton(vertex: usize) -> Self {
        ViewTree {
            nodes: vec![VNode {
                vertex: vertex as u32,
                parent: NO_PARENT,
                children: Vec::new(),
                depth: 0,
            }],
        }
    }

    /// Initial exponentiation view: the root maps to `vertex`, with one child
    /// per (distinct) neighbor.
    pub fn star(vertex: usize, neighbors: &[u32]) -> Self {
        let mut nodes = Vec::with_capacity(neighbors.len() + 1);
        nodes.push(VNode {
            vertex: vertex as u32,
            parent: NO_PARENT,
            children: (1..=neighbors.len() as u32).collect(),
            depth: 0,
        });
        for &w in neighbors {
            nodes.push(VNode {
                vertex: w,
                parent: 0,
                children: Vec::new(),
                depth: 1,
            });
        }
        ViewTree { nodes }
    }

    /// Number of tree nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree is empty (never true: a tree always has its root).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Graph vertex the root maps to.
    pub fn root_vertex(&self) -> usize {
        self.nodes[0].vertex as usize
    }

    /// Graph vertex that node `x` maps to (the valid mapping).
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn vertex(&self, x: NodeId) -> usize {
        self.nodes[x as usize].vertex as usize
    }

    /// Children of node `x`.
    pub fn children(&self, x: NodeId) -> &[u32] {
        &self.nodes[x as usize].children
    }

    /// Parent of node `x`, or `None` for the root.
    pub fn parent(&self, x: NodeId) -> Option<NodeId> {
        let p = self.nodes[x as usize].parent;
        (p != NO_PARENT).then_some(p)
    }

    /// Depth of node `x` (root has depth 0).
    pub fn depth(&self, x: NodeId) -> u32 {
        self.nodes[x as usize].depth
    }

    /// Ids of all nodes, root first, in BFS order by construction of the
    /// mutating operations (not guaranteed — use [`ViewTree::depth`] when
    /// order matters).
    pub fn node_ids(&self) -> std::ops::Range<NodeId> {
        0..self.nodes.len() as u32
    }

    /// Leaves (childless nodes) whose depth is exactly `d`.
    pub fn leaves_at_depth(&self, d: u32) -> Vec<NodeId> {
        (0..self.nodes.len() as u32)
            .filter(|&x| {
                let node = &self.nodes[x as usize];
                node.depth == d && node.children.is_empty()
            })
            .collect()
    }

    /// Number of *missing neighbors* of node `x` (Definition 2.6):
    /// `|N(map(x))| - |children(x)|`. Valid mappings make children map to
    /// distinct neighbors, so the count is pure arithmetic.
    ///
    /// # Panics
    ///
    /// Panics if `x` or its image is out of range for `graph`.
    pub fn missing_count(&self, x: NodeId, graph: &Graph) -> usize {
        let node = &self.nodes[x as usize];
        graph.degree(node.vertex as usize) - node.children.len()
    }

    /// Sizes of all subtrees: `sizes[x]` = number of nodes in the subtree
    /// rooted at `x`. Computed iteratively in reverse topological order.
    pub fn subtree_sizes(&self) -> Vec<u32> {
        let n = self.nodes.len();
        let mut sizes = vec![1u32; n];
        // Children always have larger arena indices than their parent: the
        // constructors and `attach` only append. Hence a reverse index scan
        // is a valid bottom-up order.
        for x in (0..n).rev() {
            for &c in &self.nodes[x].children {
                sizes[x] += sizes[c as usize];
            }
        }
        sizes
    }

    /// Attaches pruned subtrees at the given leaves (Definition 2.5): each
    /// `leaf` is *replaced* by a fresh copy of the corresponding tree, whose
    /// root must map to the same graph vertex as the leaf did.
    ///
    /// # Panics
    ///
    /// Panics (debug) if a designated node is not a leaf or maps to a
    /// different vertex than the replacement's root.
    pub fn attach(&mut self, replacements: &[(NodeId, &ViewTree)]) {
        for &(leaf, subtree) in replacements {
            debug_assert!(
                self.nodes[leaf as usize].children.is_empty(),
                "attachment target {leaf} is not a leaf"
            );
            debug_assert_eq!(
                self.nodes[leaf as usize].vertex, subtree.nodes[0].vertex,
                "replacement root must map to the leaf's vertex (Def 2.5)"
            );
            // Graft children of the subtree root under the existing leaf node
            // (the leaf *is* the copy of the subtree root: same image, same
            // parent edge), then copy descendants.
            let base_depth = self.nodes[leaf as usize].depth;
            // Map from subtree node id -> arena id in self.
            let mut remap = vec![NO_PARENT; subtree.nodes.len()];
            remap[0] = leaf;
            // Subtree indices are topologically ordered (parents first).
            for (i, node) in subtree.nodes.iter().enumerate().skip(1) {
                let new_id = self.nodes.len() as u32;
                remap[i] = new_id;
                let parent = remap[node.parent as usize];
                debug_assert_ne!(parent, NO_PARENT, "parent must precede child");
                self.nodes.push(VNode {
                    vertex: node.vertex,
                    parent,
                    children: Vec::with_capacity(node.children.len()),
                    depth: base_depth + node.depth,
                });
                self.nodes[parent as usize].children.push(new_id);
            }
        }
    }

    /// Builds the subtree rooted at `keep_root`, retaining only the child
    /// edges listed in `kept_children[x]` for every node `x`. Used by the
    /// pruning algorithm to materialize its result in one pass.
    pub(crate) fn project(&self, keep_root: NodeId, kept_children: &[Vec<u32>]) -> ViewTree {
        let mut out = ViewTree::singleton(self.vertex(keep_root));
        let mut stack: Vec<(NodeId, u32)> = vec![(keep_root, 0)]; // (old id, new id)
        while let Some((old, new)) = stack.pop() {
            for &c in &kept_children[old as usize] {
                let new_child = out.nodes.len() as u32;
                let depth = out.nodes[new as usize].depth + 1;
                out.nodes.push(VNode {
                    vertex: self.nodes[c as usize].vertex,
                    parent: new,
                    children: Vec::new(),
                    depth,
                });
                out.nodes[new as usize].children.push(new_child);
                stack.push((c, new_child));
            }
        }
        out
    }

    /// Verifies the valid-mapping invariants (Definition 2.3) plus structural
    /// sanity (parent/child symmetry, depths). Intended for tests.
    ///
    /// # Panics
    ///
    /// Panics with a description of the first violated invariant.
    pub fn assert_valid(&self, graph: &Graph) {
        assert!(!self.nodes.is_empty(), "tree must have a root");
        assert_eq!(self.nodes[0].parent, NO_PARENT, "root has no parent");
        assert_eq!(self.nodes[0].depth, 0, "root depth is 0");
        for (x, node) in self.nodes.iter().enumerate() {
            // Children: distinct images, adjacency in the graph.
            let mut images: Vec<u32> = Vec::with_capacity(node.children.len());
            for &c in &node.children {
                let child = &self.nodes[c as usize];
                assert_eq!(child.parent, x as u32, "parent/child symmetry at {c}");
                assert_eq!(child.depth, node.depth + 1, "depth bookkeeping at {c}");
                assert!(
                    graph.has_edge(node.vertex as usize, child.vertex as usize),
                    "tree edge ({}, {}) maps to a non-edge ({}, {})",
                    x,
                    c,
                    node.vertex,
                    child.vertex
                );
                images.push(child.vertex);
            }
            images.sort_unstable();
            let len_before = images.len();
            images.dedup();
            assert_eq!(
                images.len(),
                len_before,
                "children of {x} map to duplicate vertices"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Graph {
        Graph::from_edges(n, &(0..n - 1).map(|i| (i, i + 1)).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn singleton_shape() {
        let t = ViewTree::singleton(4);
        assert_eq!(t.len(), 1);
        assert_eq!(t.root_vertex(), 4);
        assert_eq!(t.depth(ViewTree::ROOT), 0);
        assert!(t.parent(ViewTree::ROOT).is_none());
        assert!(!t.is_empty());
    }

    #[test]
    fn star_shape_and_validity() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let t = ViewTree::star(0, &[1, 2, 3]);
        assert_eq!(t.len(), 4);
        assert_eq!(t.children(ViewTree::ROOT).len(), 3);
        assert_eq!(t.leaves_at_depth(1).len(), 3);
        assert_eq!(t.missing_count(ViewTree::ROOT, &g), 0);
        t.assert_valid(&g);
    }

    #[test]
    fn missing_count_arithmetic() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let t = ViewTree::star(0, &[1]); // only one of three neighbors present
        assert_eq!(t.missing_count(ViewTree::ROOT, &g), 2);
    }

    #[test]
    fn attach_replaces_leaf() {
        let g = path_graph(4); // 0-1-2-3
        let mut t = ViewTree::star(1, &[0, 2]);
        let leaf_for_2 = t
            .leaves_at_depth(1)
            .into_iter()
            .find(|&x| t.vertex(x) == 2)
            .unwrap();
        let sub = ViewTree::star(2, &[1, 3]);
        t.attach(&[(leaf_for_2, &sub)]);
        t.assert_valid(&g);
        assert_eq!(t.len(), 5); // root(1), 0, 2, then 2's children {1, 3}
                                // Depths: the spliced children sit at depth 2.
        assert_eq!(t.leaves_at_depth(2).len(), 2);
        // Vertex 1 appears twice (root and as grandchild) — allowed by
        // Def 2.3: repeats happen across branches, one per distinct path.
        let images: Vec<usize> = t.node_ids().map(|x| t.vertex(x)).collect();
        assert_eq!(images.iter().filter(|&&v| v == 1).count(), 2);
    }

    #[test]
    #[cfg(debug_assertions)] // attach() guards Def 2.5 with debug_assert
    #[should_panic(expected = "Def 2.5")]
    fn attach_wrong_vertex_panics() {
        let mut t = ViewTree::star(1, &[0, 2]);
        let leaf = t.leaves_at_depth(1)[0];
        let wrong = ViewTree::singleton(99);
        t.attach(&[(leaf, &wrong)]);
    }

    #[test]
    fn subtree_sizes_bottom_up() {
        let g = path_graph(4);
        let mut t = ViewTree::star(1, &[0, 2]);
        let leaf_for_2 = t
            .leaves_at_depth(1)
            .into_iter()
            .find(|&x| t.vertex(x) == 2)
            .unwrap();
        t.attach(&[(leaf_for_2, &ViewTree::star(2, &[1, 3]))]);
        let sizes = t.subtree_sizes();
        assert_eq!(sizes[ViewTree::ROOT as usize], 5);
        assert_eq!(sizes[leaf_for_2 as usize], 3);
        let _ = g;
    }

    #[test]
    fn multiple_attachments_in_one_call() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (1, 3), (2, 4)]).unwrap();
        let mut t = ViewTree::star(0, &[1, 2]);
        let leaves = t.leaves_at_depth(1);
        let sub1 = ViewTree::star(1, &[0, 3]);
        let sub2 = ViewTree::star(2, &[0, 4]);
        let reps: Vec<(NodeId, &ViewTree)> = leaves
            .iter()
            .map(|&x| (x, if t.vertex(x) == 1 { &sub1 } else { &sub2 }))
            .collect();
        t.attach(&reps);
        t.assert_valid(&g);
        assert_eq!(t.len(), 7);
        assert_eq!(t.leaves_at_depth(2).len(), 4);
    }

    #[test]
    fn project_retains_selected_edges() {
        let t = ViewTree::star(0, &[1, 2, 3]);
        // Keep only the child mapping to 2.
        let kept: Vec<Vec<u32>> = (0..t.len())
            .map(|x| {
                if x == 0 {
                    t.children(0)
                        .iter()
                        .copied()
                        .filter(|&c| t.vertex(c) == 2)
                        .collect()
                } else {
                    Vec::new()
                }
            })
            .collect();
        let p = t.project(ViewTree::ROOT, &kept);
        assert_eq!(p.len(), 2);
        assert_eq!(p.vertex(1), 2);
        assert_eq!(p.depth(1), 1);
    }

    #[test]
    fn attach_onto_attached_depths() {
        // Chain two attachments: depths must accumulate.
        let g = path_graph(5);
        let mut t = ViewTree::star(0, &[1]);
        let l1 = t.leaves_at_depth(1)[0];
        t.attach(&[(l1, &ViewTree::star(1, &[0, 2]))]);
        let l2 = t
            .leaves_at_depth(2)
            .into_iter()
            .find(|&x| t.vertex(x) == 2)
            .unwrap();
        t.attach(&[(l2, &ViewTree::star(2, &[1, 3]))]);
        t.assert_valid(&g);
        assert_eq!(t.leaves_at_depth(3).len(), 2);
    }
}
