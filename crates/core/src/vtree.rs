//! Rooted view trees with valid mappings (paper Definitions 2.3–2.7).
//!
//! During graph exponentiation each vertex `v` maintains a rooted tree `T_v`
//! whose nodes map to graph vertices (possibly with repeats along different
//! branches — one tree node per distinct path). A mapping is *valid*
//! (Def 2.3) when every tree edge maps to a graph edge and the children of
//! any node map to pairwise distinct vertices. The tree-attachment operation
//! (Def 2.5) splices a neighbor's pruned tree onto a leaf; *missing
//! neighbors* (Def 2.6) of a tree node are the graph neighbors of its image
//! not represented among its children.
//!
//! # Arena layout
//!
//! The tree is a flat struct-of-arrays arena: `vertex`, `parent`, and `depth`
//! are parallel `u32` columns indexed by [`NodeId`], and the children of every
//! node are one contiguous run in a shared `pool`, addressed CSR-style by
//! `(child_start, child_len)`. There is no per-node heap allocation — a tree
//! is exactly six `Vec`s, so cloning is six `memcpy`s and the wire content
//! is just the `vertex` and `parent` columns (depths and children runs are
//! reconstructible from parents in arena order). On the wire those two
//! columns ship delta/varint-compressed by [`crate::wire`] — the topological
//! order makes `parent` near-sorted, so the encoded stream is far smaller
//! than the flat two words per node.
//!
//! Invariants maintained by every constructor ([`ViewTree::star`],
//! [`ViewTree::attach`], and the pruning projection):
//!
//! * **Topological node order**: a parent's id is smaller than all of its
//!   children's ids, so reverse index scans are bottom-up traversals
//!   ([`ViewTree::subtree_sizes`]) and forward scans are top-down.
//! * **Contiguous sibling blocks**: the children of a node occupy one
//!   contiguous id range *and* one contiguous pool run, appended in
//!   construction order. Linear scans over the arena therefore visit whole
//!   sibling groups in cache order — no pointer chasing.
//! * **Live pool**: pool runs are written once per node and never shrunk in
//!   place; `pool.len()` equals the total child count (`len() - 1` plus
//!   nothing, since every non-root node is exactly one parent's child).
//!
//! Mutating operations only ever append (splicing replaces a leaf's *empty*
//! run with a fresh run at the pool tail), which is what keeps the hot
//! attach/prune/peel loops allocation-free apart from O(1) buffer growth.

use dgo_graph::Graph;

/// Index of a node within a [`ViewTree`] arena.
pub type NodeId = u32;

/// Sentinel parent for the root.
const NO_PARENT: u32 = u32::MAX;

/// A rooted tree with a valid mapping into a graph (Definition 2.3).
///
/// Node 0 is always the root. The structure maintains the valid-mapping
/// invariants in debug builds; [`ViewTree::assert_valid`] checks them
/// explicitly against a graph.
///
/// # Examples
///
/// ```
/// use dgo_core::ViewTree;
/// use dgo_graph::Graph;
///
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2)])?;
/// // The initial view of vertex 1: a star over its neighborhood.
/// let t = ViewTree::star(1, &[0, 2]);
/// assert_eq!(t.len(), 3);
/// assert_eq!(t.root_vertex(), 1);
/// assert_eq!(t.missing_count(ViewTree::ROOT, &g), 0);
/// t.assert_valid(&g);
/// # Ok::<(), dgo_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, Eq)]
pub struct ViewTree {
    /// Image of each node under the valid mapping (a graph vertex).
    vertex: Vec<u32>,
    /// Parent node id (`NO_PARENT` for the root).
    parent: Vec<u32>,
    /// Depth of each node (root is 0).
    depth: Vec<u32>,
    /// First pool index of each node's children run.
    child_start: Vec<u32>,
    /// Length of each node's children run.
    child_len: Vec<u32>,
    /// Concatenated children runs (node ids).
    pool: Vec<u32>,
}

/// Trees compare by logical structure — per-node images, parents, depths, and
/// children runs — independent of where runs happen to sit in the pool, so
/// equal trees built through different operation sequences compare equal.
impl PartialEq for ViewTree {
    fn eq(&self, other: &Self) -> bool {
        self.vertex == other.vertex
            && self.parent == other.parent
            && self.depth == other.depth
            && self.child_len == other.child_len
            && self
                .node_ids()
                .all(|x| self.children(x) == other.children(x))
    }
}

impl ViewTree {
    /// The root's node id.
    pub const ROOT: NodeId = 0;

    /// An empty arena with capacity for `nodes` nodes and `pool` child slots:
    /// exactly six heap allocations, regardless of the tree size.
    pub(crate) fn with_capacity(nodes: usize, pool: usize) -> Self {
        ViewTree {
            vertex: Vec::with_capacity(nodes),
            parent: Vec::with_capacity(nodes),
            depth: Vec::with_capacity(nodes),
            child_start: Vec::with_capacity(nodes),
            child_len: Vec::with_capacity(nodes),
            pool: Vec::with_capacity(pool),
        }
    }

    /// Appends a childless node, returning its id. The children run can be
    /// claimed later with [`ViewTree::set_run`]; until then the node is a
    /// leaf with an empty run at the current pool tail.
    fn push_node(&mut self, vertex: u32, parent: u32, depth: u32) -> NodeId {
        let id = self.vertex.len() as u32;
        self.vertex.push(vertex);
        self.parent.push(parent);
        self.depth.push(depth);
        self.child_start.push(self.pool.len() as u32);
        self.child_len.push(0);
        id
    }

    /// Points node `x`'s children run at the pool tail, ready for `len`
    /// subsequent `pool` pushes. Only valid while `x`'s run is empty (leaves
    /// never shrink, so no pool slot ever goes dead).
    fn set_run(&mut self, x: NodeId, len: u32) {
        debug_assert_eq!(self.child_len[x as usize], 0, "run of {x} already set");
        self.child_start[x as usize] = self.pool.len() as u32;
        self.child_len[x as usize] = len;
    }

    /// Single-node tree mapping the root to `vertex`.
    pub fn singleton(vertex: usize) -> Self {
        let mut t = ViewTree::with_capacity(1, 0);
        t.push_node(vertex as u32, NO_PARENT, 0);
        t
    }

    /// Initial exponentiation view: the root maps to `vertex`, with one child
    /// per (distinct) neighbor. The leaf images are copied straight from the
    /// caller's adjacency slice — no intermediate buffers.
    pub fn star(vertex: usize, neighbors: &[u32]) -> Self {
        let deg = neighbors.len();
        let mut t = ViewTree::with_capacity(deg + 1, deg);
        t.vertex.push(vertex as u32);
        t.vertex.extend_from_slice(neighbors);
        t.parent.push(NO_PARENT);
        t.parent.resize(deg + 1, 0);
        t.depth.push(0);
        t.depth.resize(deg + 1, 1);
        t.pool.extend(1..=deg as u32);
        t.child_start.push(0);
        t.child_len.push(deg as u32);
        // Leaves: empty runs at the pool tail.
        t.child_start.resize(deg + 1, deg as u32);
        t.child_len.resize(deg + 1, 0);
        t
    }

    /// Number of tree nodes.
    pub fn len(&self) -> usize {
        self.vertex.len()
    }

    /// Whether the tree is empty (never true: a tree always has its root).
    pub fn is_empty(&self) -> bool {
        self.vertex.is_empty()
    }

    /// Graph vertex the root maps to.
    pub fn root_vertex(&self) -> usize {
        self.vertex[0] as usize
    }

    /// Graph vertex that node `x` maps to (the valid mapping).
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn vertex(&self, x: NodeId) -> usize {
        self.vertex[x as usize] as usize
    }

    /// Children of node `x`: one contiguous run of the shared pool.
    pub fn children(&self, x: NodeId) -> &[u32] {
        let start = self.child_start[x as usize] as usize;
        &self.pool[start..start + self.child_len[x as usize] as usize]
    }

    /// Number of children of node `x`, without touching the pool.
    pub fn num_children(&self, x: NodeId) -> usize {
        self.child_len[x as usize] as usize
    }

    /// Parent of node `x`, or `None` for the root.
    pub fn parent(&self, x: NodeId) -> Option<NodeId> {
        let p = self.parent[x as usize];
        (p != NO_PARENT).then_some(p)
    }

    /// Depth of node `x` (root has depth 0).
    pub fn depth(&self, x: NodeId) -> u32 {
        self.depth[x as usize]
    }

    /// Ids of all nodes, root first, in topological (parents-first) order —
    /// the arena order all constructors maintain.
    pub fn node_ids(&self) -> std::ops::Range<NodeId> {
        0..self.vertex.len() as u32
    }

    /// Leaves (childless nodes) whose depth is exactly `d`, in id order, as a
    /// borrowing iterator — one linear scan over two arena columns, no
    /// allocation. Collect into a reusable buffer when a materialized list is
    /// needed.
    pub fn leaves_at_depth(&self, d: u32) -> impl Iterator<Item = NodeId> + '_ {
        self.depth
            .iter()
            .zip(&self.child_len)
            .enumerate()
            .filter(move |&(_, (&depth, &nc))| depth == d && nc == 0)
            .map(|(x, _)| x as u32)
    }

    /// Number of *missing neighbors* of node `x` (Definition 2.6):
    /// `|N(map(x))| - |children(x)|`. Valid mappings make children map to
    /// distinct neighbors, so the count is pure arithmetic.
    ///
    /// # Panics
    ///
    /// Panics if `x` or its image is out of range for `graph`.
    pub fn missing_count(&self, x: NodeId, graph: &Graph) -> usize {
        graph.degree(self.vertex[x as usize] as usize) - self.num_children(x)
    }

    /// Sizes of all subtrees: `sizes[x]` = number of nodes in the subtree
    /// rooted at `x`. Computed as one reverse linear scan — children always
    /// have larger arena indices than their parent, so a reverse index scan
    /// is a valid bottom-up order.
    pub fn subtree_sizes(&self) -> Vec<u32> {
        let n = self.len();
        let mut sizes = vec![1u32; n];
        for x in (0..n).rev() {
            for &c in self.children(x as u32) {
                sizes[x] += sizes[c as usize];
            }
        }
        sizes
    }

    /// The `vertex` column: image of each node under the valid mapping, in
    /// arena (topological) order. Crate-internal raw view for the wire codec
    /// and the branch-light stage kernels.
    pub(crate) fn vertex_col(&self) -> &[u32] {
        &self.vertex
    }

    /// The `parent` column in arena order (`NO_PARENT` at index 0).
    /// Topological order makes every entry past the root smaller than its
    /// index — the near-sorted shape the delta codec exploits.
    pub(crate) fn parent_col(&self) -> &[u32] {
        &self.parent
    }

    /// The CSR children structure `(child_start, child_len, pool)` as raw
    /// columns, for kernels that scan whole sibling groups without the
    /// per-node [`ViewTree::children`] slice construction.
    pub(crate) fn child_cols(&self) -> (&[u32], &[u32], &[u32]) {
        (&self.child_start, &self.child_len, &self.pool)
    }

    /// Rebuilds a full arena from the two wire columns. `parent[0]` must be
    /// `NO_PARENT` and every later entry must point at a smaller index (the
    /// topological invariant — the decoder validates before calling). Depths
    /// come from one forward pass; the children CSR from a count/prefix-sum/
    /// fill sequence that lays sibling runs in ascending id order, which is
    /// exactly the run content every constructor produces (sibling blocks are
    /// contiguous ascending id ranges), so the result compares equal to the
    /// originally encoded tree.
    pub(crate) fn from_wire_columns(vertex: Vec<u32>, parent: Vec<u32>) -> ViewTree {
        let n = vertex.len();
        debug_assert!(n >= 1, "a tree always has its root");
        debug_assert_eq!(parent.len(), n);
        debug_assert_eq!(parent[0], NO_PARENT);
        let mut depth = vec![0u32; n];
        let mut child_len = vec![0u32; n];
        for i in 1..n {
            let p = parent[i] as usize;
            debug_assert!(p < i, "topological order violated at node {i}");
            depth[i] = depth[p] + 1;
            child_len[p] += 1;
        }
        let mut child_start = vec![0u32; n];
        let mut acc = 0u32;
        for x in 0..n {
            child_start[x] = acc;
            acc += child_len[x];
        }
        let mut pool = vec![0u32; n - 1];
        let mut cursor = child_start.clone();
        for (i, &p) in parent.iter().enumerate().skip(1) {
            let p = p as usize;
            pool[cursor[p] as usize] = i as u32;
            cursor[p] += 1;
        }
        ViewTree {
            vertex,
            parent,
            depth,
            child_start,
            child_len,
            pool,
        }
    }

    /// Words this tree costs on the wire under the *flat* model: two per node
    /// (vertex image + parent pointer — the `vertex` and `parent` columns
    /// verbatim; depths and children runs are reconstructible from parents in
    /// arena order). The baseline [`ViewTree::wire_words`] is compared
    /// against.
    pub fn flat_wire_words(&self) -> usize {
        2 * self.len()
    }

    /// Words this tree actually costs on the wire. With the delta/varint
    /// codec enabled (`DGO_WIRE_CODEC`, the default) this is the exact
    /// encoded length of [`crate::wire::encode`]; with the codec off it is
    /// the flat two-words-per-node figure. Everything that meters tree
    /// shipment (bundle payload charging, capacity checks) goes through this
    /// single dispatch point, so the certified communication reflects what
    /// the chosen representation would really move.
    pub fn wire_words(&self) -> usize {
        if dgo_mpc::tuning::wire_codec_enabled() {
            crate::wire::encoded_words(self)
        } else {
            self.flat_wire_words()
        }
    }

    /// Resident heap bytes of the arena (by length, not capacity, so the
    /// figure is deterministic across allocator behavior): five `u32` columns
    /// per node plus one `u32` pool slot per child.
    pub fn arena_bytes(&self) -> usize {
        5 * std::mem::size_of::<u32>() * self.len() + std::mem::size_of::<u32>() * self.pool.len()
    }

    /// Attaches pruned subtrees at the given leaves (Definition 2.5): each
    /// `leaf` is *replaced* by a fresh copy of the corresponding tree, whose
    /// root must map to the same graph vertex as the leaf did.
    ///
    /// The arena grows by exactly the spliced node and child counts in one
    /// reservation — O(1) heap allocations per call, never per node.
    ///
    /// # Panics
    ///
    /// Panics (debug) if a designated node is not a leaf or maps to a
    /// different vertex than the replacement's root.
    pub fn attach(&mut self, replacements: &[(NodeId, &ViewTree)]) {
        let mut extra_nodes = 0usize;
        let mut extra_pool = 0usize;
        for &(_, subtree) in replacements {
            extra_nodes += subtree.len() - 1;
            extra_pool += subtree.pool.len();
        }
        self.vertex.reserve(extra_nodes);
        self.parent.reserve(extra_nodes);
        self.depth.reserve(extra_nodes);
        self.child_start.reserve(extra_nodes);
        self.child_len.reserve(extra_nodes);
        self.pool.reserve(extra_pool);
        for &(leaf, subtree) in replacements {
            self.splice(leaf, subtree);
        }
    }

    /// Builds `source` with `provider(leaf)`'s tree attached at every node in
    /// `leaves`, into a single exactly-sized fresh arena: the six columns are
    /// allocated once, `source` is block-copied, and the providers splice in
    /// borrowed — the O(1)-allocations form of `clone` + [`ViewTree::attach`]
    /// the exponentiation hot loop uses (providers live in the read-only
    /// current buffer of the double-buffered step, so they are never cloned).
    ///
    /// Equivalent to `source.clone()` followed by
    /// `attach(&[(leaf, provider(leaf)), ...])`, including the Def 2.5 debug
    /// guards.
    ///
    /// `provider` is called twice per leaf — once by the sizing pass, once by
    /// the splice pass — so it must be cheap and return the same tree both
    /// times (in the hot loop it is a slice index into the read-only current
    /// buffer).
    pub fn attached_with<'t, F>(source: &ViewTree, leaves: &[NodeId], provider: F) -> Self
    where
        F: Fn(NodeId) -> &'t ViewTree,
    {
        let mut nodes = source.len();
        let mut pool = source.pool.len();
        for &leaf in leaves {
            let subtree = provider(leaf);
            nodes += subtree.len() - 1;
            pool += subtree.pool.len();
        }
        let mut out = ViewTree::with_capacity(nodes, pool);
        out.vertex.extend_from_slice(&source.vertex);
        out.parent.extend_from_slice(&source.parent);
        out.depth.extend_from_slice(&source.depth);
        out.child_start.extend_from_slice(&source.child_start);
        out.child_len.extend_from_slice(&source.child_len);
        out.pool.extend_from_slice(&source.pool);
        for &leaf in leaves {
            out.splice(leaf, provider(leaf));
        }
        out
    }

    /// Splices `subtree` onto `leaf` (which is the copy of the subtree's
    /// root: same image, same parent edge): appends the subtree's nodes in
    /// arena order with ids remapped by a fixed offset, then points the leaf
    /// at the remapped run of the subtree root. Append-only — no per-node
    /// allocation, no pool slot goes dead (the leaf's run was empty).
    fn splice(&mut self, leaf: NodeId, subtree: &ViewTree) {
        debug_assert_eq!(
            self.child_len[leaf as usize], 0,
            "attachment target {leaf} is not a leaf"
        );
        debug_assert_eq!(
            self.vertex[leaf as usize], subtree.vertex[0],
            "replacement root must map to the leaf's vertex (Def 2.5)"
        );
        let base = self.vertex.len() as u32;
        let base_depth = self.depth[leaf as usize];
        // Subtree ids are topological (parents first) and remap affinely:
        // subtree node i (i >= 1) becomes arena node `base + i - 1`; the
        // subtree root is the leaf itself.
        let remap = |x: u32| if x == 0 { leaf } else { base + x - 1 };
        self.vertex.extend_from_slice(&subtree.vertex[1..]);
        for i in 1..subtree.len() {
            self.parent.push(remap(subtree.parent[i]));
            self.depth.push(base_depth + subtree.depth[i]);
        }
        // Run columns for the new nodes; every entry is assigned below.
        let grown = self.vertex.len();
        self.child_start.resize(grown, 0);
        self.child_len.resize(grown, 0);
        // Children runs, in subtree node order: the root's run lands on the
        // leaf, every other node gets a fresh run at the pool tail.
        self.set_run(leaf, subtree.child_len[0]);
        for &c in subtree.children(0) {
            self.pool.push(remap(c));
        }
        for i in 1..subtree.len() as u32 {
            let id = remap(i);
            self.child_start[id as usize] = self.pool.len() as u32;
            self.child_len[id as usize] = subtree.child_len[i as usize];
            for &c in subtree.children(i) {
                self.pool.push(remap(c));
            }
        }
    }

    /// Builds the subtree rooted at `keep_root`, retaining only the child
    /// edges in `kept`'s run for every node. Used by the pruning algorithm to
    /// materialize its result in one pass into an exactly-sized arena
    /// (`total` nodes — the pruned size the caller already computed);
    /// `stack` is caller-provided scratch, cleared here.
    pub(crate) fn project_csr(
        &self,
        keep_root: NodeId,
        kept: &CsrRuns,
        total: usize,
        stack: &mut Vec<(NodeId, NodeId)>,
    ) -> ViewTree {
        let mut out = ViewTree::with_capacity(total, total.saturating_sub(1));
        out.push_node(self.vertex[keep_root as usize], NO_PARENT, 0);
        stack.clear();
        stack.push((keep_root, 0)); // (old id, new id)
        while let Some((old, new)) = stack.pop() {
            let run = kept.run(old);
            if run.is_empty() {
                continue;
            }
            let depth = out.depth[new as usize] + 1;
            let first = out.len() as u32;
            out.set_run(new, run.len() as u32);
            for (offset, &c) in run.iter().enumerate() {
                let new_child = first + offset as u32;
                out.pool.push(new_child);
                stack.push((c, new_child));
            }
            for &c in run {
                out.push_node(self.vertex[c as usize], new, depth);
            }
        }
        out
    }

    /// Verifies the valid-mapping invariants (Definition 2.3) plus the arena
    /// invariants (parent/child symmetry, depths, topological order, live
    /// pool). Intended for tests.
    ///
    /// # Panics
    ///
    /// Panics with a description of the first violated invariant.
    pub fn assert_valid(&self, graph: &Graph) {
        assert!(!self.is_empty(), "tree must have a root");
        assert_eq!(self.parent[0], NO_PARENT, "root has no parent");
        assert_eq!(self.depth[0], 0, "root depth is 0");
        let total_children: usize = self.child_len.iter().map(|&c| c as usize).sum();
        assert_eq!(
            total_children,
            self.len() - 1,
            "every non-root node is exactly one parent's child"
        );
        assert_eq!(
            self.pool.len(),
            total_children,
            "pool must hold exactly the live children runs"
        );
        let mut images: Vec<u32> = Vec::new();
        for x in self.node_ids() {
            // Children: larger ids (topological order), distinct images,
            // adjacency in the graph.
            images.clear();
            for &c in self.children(x) {
                assert!(c > x, "child {c} must follow its parent {x}");
                assert_eq!(self.parent[c as usize], x, "parent/child symmetry at {c}");
                assert_eq!(
                    self.depth[c as usize],
                    self.depth[x as usize] + 1,
                    "depth bookkeeping at {c}"
                );
                assert!(
                    graph.has_edge(
                        self.vertex[x as usize] as usize,
                        self.vertex[c as usize] as usize
                    ),
                    "tree edge ({}, {}) maps to a non-edge ({}, {})",
                    x,
                    c,
                    self.vertex[x as usize],
                    self.vertex[c as usize]
                );
                images.push(self.vertex[c as usize]);
            }
            images.sort_unstable();
            let len_before = images.len();
            images.dedup();
            assert_eq!(
                images.len(),
                len_before,
                "children of {x} map to duplicate vertices"
            );
        }
    }
}

/// Borrowed CSR view of per-node id runs (`run(x)` = the ids kept for node
/// `x`), used to hand the pruning algorithm's reusable kept-children scratch
/// to [`ViewTree::project_csr`] without materializing `Vec<Vec<u32>>`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CsrRuns<'a> {
    pub start: &'a [u32],
    pub len: &'a [u32],
    pub pool: &'a [u32],
}

impl CsrRuns<'_> {
    fn run(&self, x: NodeId) -> &[u32] {
        let start = self.start[x as usize] as usize;
        &self.pool[start..start + self.len[x as usize] as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Graph {
        Graph::from_edges(n, &(0..n - 1).map(|i| (i, i + 1)).collect::<Vec<_>>()).unwrap()
    }

    fn leaves(t: &ViewTree, d: u32) -> Vec<NodeId> {
        t.leaves_at_depth(d).collect()
    }

    #[test]
    fn singleton_shape() {
        let t = ViewTree::singleton(4);
        assert_eq!(t.len(), 1);
        assert_eq!(t.root_vertex(), 4);
        assert_eq!(t.depth(ViewTree::ROOT), 0);
        assert!(t.parent(ViewTree::ROOT).is_none());
        assert!(!t.is_empty());
    }

    #[test]
    fn star_shape_and_validity() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let t = ViewTree::star(0, &[1, 2, 3]);
        assert_eq!(t.len(), 4);
        assert_eq!(t.children(ViewTree::ROOT).len(), 3);
        assert_eq!(leaves(&t, 1).len(), 3);
        assert_eq!(t.missing_count(ViewTree::ROOT, &g), 0);
        t.assert_valid(&g);
    }

    #[test]
    fn missing_count_arithmetic() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let t = ViewTree::star(0, &[1]); // only one of three neighbors present
        assert_eq!(t.missing_count(ViewTree::ROOT, &g), 2);
    }

    #[test]
    fn attach_replaces_leaf() {
        let g = path_graph(4); // 0-1-2-3
        let mut t = ViewTree::star(1, &[0, 2]);
        let leaf_for_2 = t.leaves_at_depth(1).find(|&x| t.vertex(x) == 2).unwrap();
        let sub = ViewTree::star(2, &[1, 3]);
        t.attach(&[(leaf_for_2, &sub)]);
        t.assert_valid(&g);
        assert_eq!(t.len(), 5); // root(1), 0, 2, then 2's children {1, 3}
                                // Depths: the spliced children sit at depth 2.
        assert_eq!(leaves(&t, 2).len(), 2);
        // Vertex 1 appears twice (root and as grandchild) — allowed by
        // Def 2.3: repeats happen across branches, one per distinct path.
        let images: Vec<usize> = t.node_ids().map(|x| t.vertex(x)).collect();
        assert_eq!(images.iter().filter(|&&v| v == 1).count(), 2);
    }

    #[test]
    #[cfg(debug_assertions)] // attach() guards Def 2.5 with debug_assert
    #[should_panic(expected = "Def 2.5")]
    fn attach_wrong_vertex_panics() {
        let mut t = ViewTree::star(1, &[0, 2]);
        let leaf = leaves(&t, 1)[0];
        let wrong = ViewTree::singleton(99);
        t.attach(&[(leaf, &wrong)]);
    }

    #[test]
    fn subtree_sizes_bottom_up() {
        let g = path_graph(4);
        let mut t = ViewTree::star(1, &[0, 2]);
        let leaf_for_2 = t.leaves_at_depth(1).find(|&x| t.vertex(x) == 2).unwrap();
        t.attach(&[(leaf_for_2, &ViewTree::star(2, &[1, 3]))]);
        let sizes = t.subtree_sizes();
        assert_eq!(sizes[ViewTree::ROOT as usize], 5);
        assert_eq!(sizes[leaf_for_2 as usize], 3);
        let _ = g;
    }

    #[test]
    fn multiple_attachments_in_one_call() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (1, 3), (2, 4)]).unwrap();
        let mut t = ViewTree::star(0, &[1, 2]);
        let sub1 = ViewTree::star(1, &[0, 3]);
        let sub2 = ViewTree::star(2, &[0, 4]);
        let reps: Vec<(NodeId, &ViewTree)> = leaves(&t, 1)
            .iter()
            .map(|&x| (x, if t.vertex(x) == 1 { &sub1 } else { &sub2 }))
            .collect();
        t.attach(&reps);
        t.assert_valid(&g);
        assert_eq!(t.len(), 7);
        assert_eq!(leaves(&t, 2).len(), 4);
    }

    #[test]
    fn attached_with_matches_clone_plus_attach() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (1, 3), (2, 4)]).unwrap();
        let source = ViewTree::star(0, &[1, 2]);
        let providers = [
            ViewTree::singleton(0),
            ViewTree::star(1, &[0, 3]),
            ViewTree::star(2, &[0, 4]),
        ];
        let targets = leaves(&source, 1);
        let reps: Vec<(NodeId, &ViewTree)> = targets
            .iter()
            .map(|&x| (x, &providers[source.vertex(x)]))
            .collect();
        let mut reference = source.clone();
        reference.attach(&reps);
        let built =
            ViewTree::attached_with(&source, &targets, |leaf| &providers[source.vertex(leaf)]);
        assert_eq!(built, reference);
        built.assert_valid(&g);
    }

    #[test]
    fn attach_onto_attached_depths() {
        // Chain two attachments: depths must accumulate.
        let g = path_graph(5);
        let mut t = ViewTree::star(0, &[1]);
        let l1 = leaves(&t, 1)[0];
        t.attach(&[(l1, &ViewTree::star(1, &[0, 2]))]);
        let l2 = t.leaves_at_depth(2).find(|&x| t.vertex(x) == 2).unwrap();
        t.attach(&[(l2, &ViewTree::star(2, &[1, 3]))]);
        t.assert_valid(&g);
        assert_eq!(leaves(&t, 3).len(), 2);
    }

    #[test]
    fn equality_across_construction_paths() {
        // The same logical tree built via clone-free splicing
        // (`attached_with`) and via in-place `attach` must compare equal —
        // equality is the logical per-node structure, per the documented
        // `PartialEq` contract (pool offsets are excluded from the
        // comparison; current constructors happen to place runs identically
        // for identical splice sequences, so the exclusion is
        // future-proofing) — and unequal trees must not.
        let g = path_graph(3);
        let sub = ViewTree::star(1, &[0, 2]);
        let mut a = ViewTree::star(0, &[1]);
        let l = leaves(&a, 1)[0];
        a.attach(&[(l, &sub)]);
        let source = ViewTree::star(0, &[1]);
        let b = ViewTree::attached_with(&source, &[l], |_| &sub);
        assert_eq!(a, b);
        assert_ne!(a, ViewTree::star(0, &[1]));
        assert_ne!(a, ViewTree::star(2, &[1]));
        a.assert_valid(&g);
    }

    #[test]
    fn arena_accounting() {
        let t = ViewTree::star(3, &[0, 1, 2]);
        assert_eq!(t.flat_wire_words(), 8);
        // Encoded: count(1B) + 4 vertex varints + 3 parent deltas = 8 bytes
        // = 1 word. wire_words() dispatches to the codec by default, and can
        // never exceed the flat figure.
        assert_eq!(crate::wire::encoded_words(&t), 1);
        assert!(t.wire_words() <= t.flat_wire_words());
        // 4 nodes × 5 columns × 4 bytes + 3 pool slots × 4 bytes.
        assert_eq!(t.arena_bytes(), 4 * 5 * 4 + 3 * 4);
        assert_eq!(t.num_children(ViewTree::ROOT), 3);
        assert_eq!(t.num_children(1), 0);
    }

    #[test]
    fn from_wire_columns_reconstructs() {
        let g = path_graph(4);
        let mut t = ViewTree::star(1, &[0, 2]);
        let leaf_for_2 = t.leaves_at_depth(1).find(|&x| t.vertex(x) == 2).unwrap();
        t.attach(&[(leaf_for_2, &ViewTree::star(2, &[1, 3]))]);
        let rebuilt = ViewTree::from_wire_columns(t.vertex_col().to_vec(), t.parent_col().to_vec());
        assert_eq!(rebuilt, t);
        rebuilt.assert_valid(&g);
    }
}
