//! `PartialLayerAssignment` — Algorithm 4 of the paper.
//!
//! Pipeline: run `ExponentiateAndLocalPrune` (Algorithm 2), peel every view
//! tree locally with `a = (s+1)·k` (Algorithm 3), then assign each graph
//! vertex the *minimum* layer any tree node mapping to it received. The
//! min-combination is a constant-round MPC aggregation; Claim 3.12 guarantees
//! the result is a partial layer assignment with out-degree `≤ (s+1)·k`, and
//! Lemma 3.13 shows the layer tails decay geometrically.

use crate::assign_tree::tree_layer_proposals;
use crate::error::Result;
use crate::exponentiate::{exponentiate_and_prune_staged, ExponentiationResult};
use crate::stage::StageExecutor;
use dgo_graph::{Graph, LayerAssignment};
use dgo_mpc::primitives::aggregate_by_key;
use dgo_mpc::ExecutionBackend;

/// Min-combines per-tree layer assignments into a graph-wide partial layer
/// assignment (the final step of Algorithm 4), metered as one MPC
/// aggregation round.
///
/// `proposals` holds `(vertex, layer)` pairs with finite layers only.
///
/// # Errors
///
/// Propagates MPC capacity violations.
pub fn combine_tree_layers<B: ExecutionBackend>(
    n: usize,
    proposals: Vec<(u64, u32)>,
    cluster: &mut B,
) -> Result<LayerAssignment> {
    let machines = cluster.num_machines();
    // Proposals originate wherever the owning tree lives; spread them.
    let mut per_machine: Vec<Vec<(u64, u64)>> = vec![Vec::new(); machines];
    for (i, (v, layer)) in proposals.into_iter().enumerate() {
        per_machine[i % machines].push((v, u64::from(layer)));
    }
    let combined = aggregate_by_key(cluster, per_machine, u64::min)?;
    let mut layering = LayerAssignment::unassigned(n);
    for records in combined {
        for (v, layer) in records {
            layering.set_layer(v as usize, layer as u32);
        }
    }
    Ok(layering)
}

/// Output of Algorithm 4.
#[derive(Debug, Clone)]
pub struct PartialAssignmentResult {
    /// The partial layer assignment (out-degree `≤ (s+1)·k` by Claim 3.12).
    pub layering: LayerAssignment,
    /// The out-degree bound `a = (s+1)·k` that Claim 3.12 certifies.
    pub out_degree_cap: usize,
    /// The exponentiation artifacts (exposed for analysis/experiments).
    pub exponentiation: ExponentiationResult,
}

/// Runs Algorithm 4 (`PartialLayerAssignment(G, B, k, L, s)`) under the
/// metering of any [`ExecutionBackend`].
///
/// # Errors
///
/// Propagates MPC capacity violations.
///
/// # Examples
///
/// ```
/// use dgo_core::partial_layer_assignment;
/// use dgo_graph::generators::random_tree;
/// use dgo_mpc::{Cluster, ClusterConfig};
///
/// let g = random_tree(128, 3);
/// let mut cluster = Cluster::new(ClusterConfig::new(512, 4096));
/// let r = partial_layer_assignment(&g, 256, 2, 4, 3, &mut cluster)?;
/// // Claim 3.12: out-degree at most (s+1)*k = 8.
/// assert!(r.layering.out_degree_bound(&g)? <= 8);
/// assert!(r.layering.num_assigned() > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn partial_layer_assignment<B: ExecutionBackend>(
    graph: &Graph,
    budget: usize,
    k: usize,
    layers: u32,
    steps: u32,
    cluster: &mut B,
) -> Result<PartialAssignmentResult> {
    partial_layer_assignment_staged(
        graph,
        budget,
        k,
        layers,
        steps,
        cluster,
        &StageExecutor::sequential(),
    )
}

/// [`partial_layer_assignment`] with the per-vertex passes — Algorithm 2's
/// steps, Algorithm 3's per-tree peeling, and the proposal collection —
/// running as data-parallel [`StageExecutor`] stages. The per-tree proposals
/// are computed in parallel over the exponentiated trees and flattened in
/// vertex order before the min-combine charges the backend, so layerings and
/// metrics are bit-identical at any thread count.
///
/// # Errors
///
/// Propagates MPC capacity violations.
pub fn partial_layer_assignment_staged<B: ExecutionBackend>(
    graph: &Graph,
    budget: usize,
    k: usize,
    layers: u32,
    steps: u32,
    cluster: &mut B,
    stage: &StageExecutor,
) -> Result<PartialAssignmentResult> {
    let n = graph.num_vertices();
    let exponentiation = exponentiate_and_prune_staged(graph, budget, k, steps, cluster, stage)?;
    let a = (steps as usize + 1) * k;
    // Algorithm 3 peel over all trees (one stage) yielding each tree's
    // finite-layer proposals directly, then flatten in vertex order into one
    // exactly-sized buffer — the per-node layer vectors are never
    // materialized outside the workers' scratch.
    let per_tree = tree_layer_proposals(graph, &exponentiation.trees, a, layers, stage);
    let mut proposals: Vec<(u64, u32)> = Vec::with_capacity(per_tree.iter().map(Vec::len).sum());
    for tree_proposals in per_tree {
        proposals.extend(tree_proposals);
    }
    let layering = combine_tree_layers(n, proposals, cluster)?;
    Ok(PartialAssignmentResult {
        layering,
        out_degree_cap: a,
        exponentiation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgo_graph::generators::{gnm, grid_2d, random_tree, star};
    use dgo_mpc::{Cluster, ClusterConfig};

    fn cluster_for(n: usize) -> Cluster {
        Cluster::new(ClusterConfig::new((n * 8).max(64), 8192))
    }

    #[test]
    fn claim_3_12_out_degree_bound() {
        for seed in 0..3 {
            let g = gnm(150, 450, seed);
            let mut cluster = cluster_for(150);
            let (k, layers, steps) = (4usize, 4u32, 3u32);
            let r = partial_layer_assignment(&g, 256, k, layers, steps, &mut cluster).unwrap();
            let cap = (steps as usize + 1) * k;
            assert_eq!(r.out_degree_cap, cap);
            assert!(
                r.layering.out_degree_bound(&g).unwrap() <= cap,
                "seed {seed}: Claim 3.12 violated"
            );
        }
    }

    #[test]
    fn trees_get_fully_assigned() {
        let g = random_tree(300, 5);
        let mut cluster = cluster_for(300);
        let r = partial_layer_assignment(&g, 256, 2, 6, 4, &mut cluster).unwrap();
        // Forests are so sparse that nearly everything lands in early layers;
        // at minimum, a large fraction must be assigned.
        assert!(
            r.layering.num_assigned() * 2 >= g.num_vertices(),
            "only {}/{} assigned",
            r.layering.num_assigned(),
            g.num_vertices()
        );
    }

    #[test]
    fn layer_tails_decay_lemma_3_13() {
        let g = gnm(400, 800, 6);
        let mut cluster = cluster_for(400);
        let r = partial_layer_assignment(&g, 400, 4, 4, 3, &mut cluster).unwrap();
        let tails = r.layering.tail_sizes();
        if tails.len() >= 3 {
            // Later tails must be (weakly) under half the earlier tails,
            // with slack for the small-n regime: Lemma 3.13 promises
            // 0.5^{j-1} * n; we check 0.75 decay to absorb constants.
            assert!(
                (tails[2] as f64) <= 0.75 * tails[0] as f64 + 1.0,
                "tails do not decay: {tails:?}"
            );
        }
    }

    #[test]
    fn star_center_unassigned_with_tight_budget() {
        // The center starts inactive (degree >= B) and its singleton tree
        // has missing = n-1 > a, so only leaves get layers.
        let g = star(200);
        let mut cluster = cluster_for(200);
        let r = partial_layer_assignment(&g, 64, 2, 3, 2, &mut cluster).unwrap();
        assert!(!r.layering.is_assigned(0));
        assert!(r.layering.is_assigned(1));
        assert!(r.layering.validate(&g, r.out_degree_cap).is_ok());
    }

    #[test]
    fn grid_assigns_everything() {
        let g = grid_2d(15, 15);
        let mut cluster = cluster_for(225);
        let r = partial_layer_assignment(&g, 256, 4, 4, 3, &mut cluster).unwrap();
        // Grids have degeneracy 2 << a: one stage should cover everything.
        assert!(r.layering.is_complete(), "grid should assign all vertices");
    }

    #[test]
    fn combine_min_takes_minimum() {
        let mut cluster = cluster_for(4);
        let proposals = vec![(0u64, 3u32), (0, 1), (2, 2), (0, 2)];
        let la = combine_tree_layers(4, proposals, &mut cluster).unwrap();
        assert_eq!(la.layer(0), 1);
        assert_eq!(la.layer(2), 2);
        assert!(!la.is_assigned(1));
        assert!(!la.is_assigned(3));
    }

    #[test]
    fn deterministic() {
        let g = gnm(100, 250, 9);
        let mut a = cluster_for(100);
        let mut b = cluster_for(100);
        let ra = partial_layer_assignment(&g, 128, 3, 3, 2, &mut a).unwrap();
        let rb = partial_layer_assignment(&g, 128, 3, 3, 2, &mut b).unwrap();
        assert_eq!(ra.layering, rb.layering);
    }

    #[test]
    fn staged_matches_sequential_bit_for_bit() {
        use crate::stage::StageExecutor;
        let g = gnm(200, 700, 12);
        let mut reference_cluster = cluster_for(200);
        let reference = partial_layer_assignment(&g, 256, 3, 4, 3, &mut reference_cluster).unwrap();
        for jobs in [2usize, 8, 0] {
            let mut cluster = cluster_for(200);
            let r = partial_layer_assignment_staged(
                &g,
                256,
                3,
                4,
                3,
                &mut cluster,
                &StageExecutor::new(jobs),
            )
            .unwrap();
            assert_eq!(r.layering, reference.layering, "jobs = {jobs}");
            assert_eq!(
                r.exponentiation.trees, reference.exponentiation.trees,
                "jobs = {jobs}"
            );
            assert_eq!(
                cluster.metrics(),
                reference_cluster.metrics(),
                "jobs = {jobs}"
            );
        }
    }
}
