//! `LocalPrune` — Algorithm 1 of the paper.
//!
//! Recursively (here: iteratively, bottom-up) prunes a view tree: a node with
//! at most `k` children collapses to a leaf; otherwise its children's
//! subtrees are pruned first and the `k` *largest* pruned subtrees are
//! removed. Two facts drive the paper's analysis and are property-tested
//! here:
//!
//! * **Claim 3.1**: pruning increases any surviving node's missing-neighbor
//!   count by at most `k`.
//! * **Lemma 3.2**: if the root's image has a finite layer under a partial
//!   layer assignment with out-degree `d ≤ k`, the pruned tree has at most
//!   `NumPathsIn(map(root))` nodes — the size-control that lets
//!   exponentiation fit in `n^δ` memory.
//!
//! The whole pass runs in [`PruneScratch`] — bottom-up sizes, the kept-child
//! selection (a CSR of per-node kept runs, not a `Vec<Vec<u32>>`), the sort
//! buffer, and the projection stack are all reusable buffers, so pruning a
//! tree allocates nothing beyond the returned tree's own arena. Batch stages
//! hand one scratch to each worker via [`StageExecutor::map_with`].

use crate::stage::StageExecutor;
use crate::vtree::{CsrRuns, NodeId, ViewTree};

/// Reusable scratch for Algorithm 1: sizing, kept-children selection, and
/// projection buffers. One scratch serves any number of [`local_prune_with`]
/// calls; workers of a batch stage each own one.
#[derive(Debug, Default)]
pub struct PruneScratch {
    /// Bottom-up pruned-subtree sizes.
    size: Vec<u64>,
    /// CSR runs over `kept_pool`: the children each node keeps.
    kept_start: Vec<u32>,
    kept_len: Vec<u32>,
    kept_pool: Vec<u32>,
    /// Child-ordering buffer for the size sort.
    order: Vec<u32>,
    /// Projection traversal stack.
    stack: Vec<(NodeId, NodeId)>,
}

impl PruneScratch {
    /// A fresh scratch (all buffers empty; they grow to the largest tree
    /// pruned through them and are then reused).
    pub fn new() -> Self {
        PruneScratch::default()
    }

    /// The sizing + selection pass: fills the kept-children CSR and returns
    /// the pruned size of the whole tree, without materializing anything.
    /// Ties among equal-size subtrees break by arena id (the algorithm
    /// permits arbitrary tie-breaking).
    fn plan(&mut self, tree: &ViewTree, k: usize) -> u64 {
        let n = tree.len();
        let (child_start, child_len, pool) = tree.child_cols();
        // Bulk-initialize every column to the collapse outcome (size 1, empty
        // kept run) with straight fills the compiler vectorizes; the scan
        // below only revisits the > k nodes. In a pruned-to-fixpoint batch
        // the collapsing majority is then pure column traffic — no per-node
        // branchy writes.
        self.size.clear();
        self.size.resize(n, 1);
        self.kept_start.clear();
        self.kept_start.resize(n, 0);
        self.kept_len.clear();
        self.kept_len.resize(n, 0);
        self.kept_pool.clear();
        // Arena ids are topologically ordered (parents precede children), so
        // a reverse scan is bottom-up.
        for x in (0..n).rev() {
            let nc = child_len[x] as usize;
            if nc <= k {
                // Collapses to a single node — already the pre-filled state.
                continue;
            }
            // Remove the k largest pruned child subtrees (ties by id).
            let start = child_start[x] as usize;
            self.order.clear();
            self.order.extend_from_slice(&pool[start..start + nc]);
            let size = &self.size;
            self.order
                .sort_unstable_by(|&a, &b| size[b as usize].cmp(&size[a as usize]).then(a.cmp(&b)));
            let kept = &self.order[k..];
            let mut total = 1u64;
            for &c in kept {
                total += self.size[c as usize];
            }
            self.size[x] = total;
            self.kept_start[x] = self.kept_pool.len() as u32;
            self.kept_len[x] = kept.len() as u32;
            self.kept_pool.extend_from_slice(kept);
        }
        self.size[ViewTree::ROOT as usize]
    }

    /// Materializes the planned pruned tree into a fresh exactly-sized arena.
    fn materialize(&mut self, tree: &ViewTree, total: u64) -> ViewTree {
        let kept = CsrRuns {
            start: &self.kept_start,
            len: &self.kept_len,
            pool: &self.kept_pool,
        };
        tree.project_csr(ViewTree::ROOT, &kept, total as usize, &mut self.stack)
    }
}

/// Runs `LocalPrune(tree, k)` (Algorithm 1) and returns the pruned tree.
///
/// Entirely local — no communication; the MPC driver calls this on every
/// machine between exponentiation rounds.
///
/// Ties among equal-size subtrees are broken deterministically by arena id
/// (the algorithm permits arbitrary tie-breaking).
///
/// # Panics
///
/// Panics if `k == 0` (the paper requires `k ≥ 1`).
///
/// # Examples
///
/// ```
/// use dgo_core::{local_prune, ViewTree};
///
/// // A root with 3 children, k = 2: the root keeps ≤ k children? No —
/// // Algorithm 1 collapses a node with ≤ k children to a leaf, and a node
/// // with more than k children loses exactly the k largest subtrees.
/// let t = ViewTree::star(0, &[1, 2, 3]);
/// let pruned = local_prune(&t, 2);
/// // Children had subtree size 1 each; the 2 largest are removed, 1 kept.
/// assert_eq!(pruned.len(), 2);
/// ```
pub fn local_prune(tree: &ViewTree, k: usize) -> ViewTree {
    local_prune_with(tree, k, &mut PruneScratch::new())
}

/// [`local_prune`] through a caller-owned [`PruneScratch`]: repeated calls
/// allocate nothing beyond each returned tree's own arena. This is the form
/// the per-step stages use with one scratch per worker.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn local_prune_with(tree: &ViewTree, k: usize, scratch: &mut PruneScratch) -> ViewTree {
    assert!(k >= 1, "pruning parameter k must be at least 1");
    let total = scratch.plan(tree, k);
    scratch.materialize(tree, total)
}

/// Runs `LocalPrune` over a whole batch of trees as one vertex-parallel
/// stage: `result[v]` is `Some(local_prune(&trees[v], k))` when pruning
/// actually removes nodes, `None` when `trees[v]` is already a fixed point
/// (the sizing pass of the shared plan decides, so unchanged trees are never
/// materialized — and the plan is computed once, not once for sizing and
/// again for materialization).
///
/// Each tree's pruning is an independent pure computation over the read-only
/// batch, so the stage is bit-identical to the sequential per-vertex loop at
/// any thread count; each worker reuses one [`PruneScratch`].
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn local_prune_batch(
    trees: &[ViewTree],
    k: usize,
    stage: &StageExecutor,
) -> Vec<Option<ViewTree>> {
    assert!(k >= 1, "pruning parameter k must be at least 1");
    stage.map_with(trees, PruneScratch::new, |scratch, _, tree| {
        let total = scratch.plan(tree, k);
        (total != tree.len() as u64).then(|| scratch.materialize(tree, total))
    })
}

/// Size the pruned tree would have, without materializing it. Used by the
/// exponentiation driver's budget check.
pub fn pruned_size(tree: &ViewTree, k: usize) -> u64 {
    assert!(k >= 1, "pruning parameter k must be at least 1");
    PruneScratch::new().plan(tree, k)
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use dgo_graph::generators::{clique, gnm};
    use dgo_graph::Graph;

    /// Builds the full (unpruned) exponentiation-style tree of radius 1
    /// around each vertex and checks prune invariants on random graphs.
    fn star_of(g: &Graph, v: usize) -> ViewTree {
        ViewTree::star(v, g.neighbors(v))
    }

    #[test]
    fn few_children_collapse_to_leaf() {
        let t = ViewTree::star(0, &[1, 2]);
        let p = local_prune(&t, 2);
        assert_eq!(p.len(), 1);
        assert_eq!(p.root_vertex(), 0);
    }

    #[test]
    fn many_children_lose_exactly_k() {
        let t = ViewTree::star(0, &[1, 2, 3, 4, 5]);
        let p = local_prune(&t, 2);
        // 5 children of size 1 each; 2 removed, 3 kept.
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn removes_largest_subtrees() {
        // Root with 3 children; one child has a big subtree under it.
        let g = Graph::from_edges(6, &[(0, 1), (0, 2), (0, 3), (3, 4), (3, 5)]).unwrap();
        let mut t = ViewTree::star(0, &[1, 2, 3]);
        let leaf3 = t.leaves_at_depth(1).find(|&x| t.vertex(x) == 3).unwrap();
        t.attach(&[(leaf3, &ViewTree::star(3, &[0, 4, 5]))]);
        t.assert_valid(&g);
        // k = 1: child 3's subtree first prunes internally. Node 3 has 3
        // children (0,4,5) > k=1, so it drops the largest (all size 1 → tie
        // by id drops one) keeping 2 → size 3. Children 1, 2 stay size 1.
        // Root drops the largest = the subtree at 3.
        let p = local_prune(&t, 1);
        let images: Vec<usize> = p.node_ids().map(|x| p.vertex(x)).collect();
        assert!(
            !images.contains(&3),
            "largest subtree must be pruned: {images:?}"
        );
        assert_eq!(p.len(), 3); // root + children 1 and 2
    }

    #[test]
    fn pruned_size_matches_materialized() {
        let g = gnm(60, 200, 3);
        for v in 0..10 {
            let mut t = star_of(&g, v);
            // One round of attachments to get depth-2 trees.
            let leaves: Vec<NodeId> = t.leaves_at_depth(1).collect();
            let subs: Vec<ViewTree> = leaves.iter().map(|&x| star_of(&g, t.vertex(x))).collect();
            let reps: Vec<(NodeId, &ViewTree)> = leaves.iter().copied().zip(subs.iter()).collect();
            t.attach(&reps);
            for k in [1usize, 2, 3, 5] {
                assert_eq!(
                    pruned_size(&t, k),
                    local_prune(&t, k).len() as u64,
                    "v={v} k={k}"
                );
            }
        }
    }

    #[test]
    fn scratch_reuse_matches_fresh_scratch() {
        // One scratch across many trees and k values must match per-call
        // fresh scratches bit for bit — the per-worker reuse contract.
        let g = gnm(80, 320, 5);
        let mut scratch = PruneScratch::new();
        for v in 0..g.num_vertices() {
            let mut t = star_of(&g, v);
            let leaves: Vec<NodeId> = t.leaves_at_depth(1).collect();
            let subs: Vec<ViewTree> = leaves.iter().map(|&x| star_of(&g, t.vertex(x))).collect();
            let reps: Vec<(NodeId, &ViewTree)> = leaves.iter().copied().zip(subs.iter()).collect();
            t.attach(&reps);
            for k in [1usize, 3, 6] {
                assert_eq!(
                    local_prune_with(&t, k, &mut scratch),
                    local_prune(&t, k),
                    "v={v} k={k}"
                );
            }
        }
    }

    #[test]
    fn claim_3_1_missing_increase_bounded_by_k() {
        // After pruning, every surviving node's missing count exceeds its
        // original by at most k. Surviving nodes are matched by their path
        // from the root (unique images per sibling set make this well
        // defined).
        let g = gnm(40, 140, 9);
        for v in 0..8 {
            let mut t = star_of(&g, v);
            let leaves: Vec<NodeId> = t.leaves_at_depth(1).collect();
            let subs: Vec<ViewTree> = leaves.iter().map(|&x| star_of(&g, t.vertex(x))).collect();
            let reps: Vec<(NodeId, &ViewTree)> = leaves.iter().copied().zip(subs.iter()).collect();
            t.attach(&reps);
            for k in [2usize, 4] {
                let p = local_prune(&t, k);
                // Walk both trees in parallel from the root.
                let mut stack = vec![(ViewTree::ROOT, ViewTree::ROOT)];
                while let Some((orig, pruned)) = stack.pop() {
                    let before = t.missing_count(orig, &g);
                    let after = p.missing_count(pruned, &g);
                    assert!(
                        after <= before + k,
                        "missing grew {before} -> {after} with k={k}"
                    );
                    // Match children by image.
                    for &pc in p.children(pruned) {
                        let image = p.vertex(pc);
                        let oc = t
                            .children(orig)
                            .iter()
                            .copied()
                            .find(|&c| t.vertex(c) == image)
                            .expect("pruned child must exist in original");
                        stack.push((oc, pc));
                    }
                }
            }
        }
    }

    #[test]
    fn lemma_3_2_size_bounded_by_numpaths() {
        // Build a layered graph, a valid partial layer assignment with
        // out-degree d, and check |pruned| <= NumPathsIn(map(root)).
        use crate::paths::num_paths_in;
        use dgo_graph::LayerAssignment;

        let g = gnm(50, 150, 5);
        // Layering by BE08-style peeling with threshold 6.
        let peel = dgo_local::be08_peeling(&g, 3, 0.0, 0);
        let layering: &LayerAssignment = &peel.layering;
        if !layering.is_complete() {
            return; // threshold too low for this seed; nothing to test
        }
        let d = layering.out_degree_bound(&g).unwrap();
        let k = d.max(1);
        let paths_in = num_paths_in(&g, layering);
        for v in 0..g.num_vertices().min(12) {
            let mut t = star_of(&g, v);
            for _ in 0..2 {
                let max_depth = (0..t.len() as u32).map(|x| t.depth(x)).max().unwrap_or(0);
                let leaves: Vec<NodeId> = t.leaves_at_depth(max_depth).collect();
                let subs: Vec<ViewTree> =
                    leaves.iter().map(|&x| star_of(&g, t.vertex(x))).collect();
                let reps: Vec<(NodeId, &ViewTree)> =
                    leaves.iter().copied().zip(subs.iter()).collect();
                t.attach(&reps);
            }
            let p = local_prune(&t, k);
            assert!(
                (p.len() as u64) <= paths_in[v].max(1),
                "v={v}: pruned size {} > NumPathsIn {}",
                p.len(),
                paths_in[v]
            );
        }
    }

    #[test]
    fn prune_preserves_validity() {
        let g = clique(8);
        let mut t = star_of(&g, 0);
        let leaves: Vec<NodeId> = t.leaves_at_depth(1).collect();
        let subs: Vec<ViewTree> = leaves.iter().map(|&x| star_of(&g, t.vertex(x))).collect();
        let reps: Vec<(NodeId, &ViewTree)> = leaves.iter().copied().zip(subs.iter()).collect();
        t.attach(&reps);
        for k in 1..6 {
            let p = local_prune(&t, k);
            p.assert_valid(&g);
            assert_eq!(p.root_vertex(), 0);
        }
    }

    #[test]
    fn deterministic() {
        let g = gnm(30, 90, 1);
        let t = star_of(&g, 0);
        assert_eq!(local_prune(&t, 2), local_prune(&t, 2));
    }

    #[test]
    fn batch_matches_per_tree_loop_at_any_thread_count() {
        use crate::stage::StageExecutor;
        let g = gnm(120, 480, 4);
        let trees: Vec<ViewTree> = (0..g.num_vertices()).map(|v| star_of(&g, v)).collect();
        for k in [1usize, 3, 7] {
            let reference: Vec<Option<ViewTree>> = trees
                .iter()
                .map(|t| (pruned_size(t, k) != t.len() as u64).then(|| local_prune(t, k)))
                .collect();
            for jobs in [1usize, 2, 8, 0] {
                let batch = local_prune_batch(&trees, k, &StageExecutor::new(jobs));
                assert_eq!(batch, reference, "k={k} jobs={jobs}");
            }
        }
    }

    #[test]
    fn batch_skips_fixed_points() {
        use crate::stage::StageExecutor;
        // Singletons are prune fixed points: the batch must not materialize
        // them.
        let trees = vec![ViewTree::singleton(0), ViewTree::star(1, &[0, 2, 3, 4])];
        let batch = local_prune_batch(&trees, 2, &StageExecutor::sequential());
        assert_eq!(batch[0], None);
        assert!(batch[1].is_some());
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_k_panics() {
        local_prune(&ViewTree::singleton(0), 0);
    }

    #[test]
    fn singleton_is_fixed_point() {
        let t = ViewTree::singleton(3);
        let p = local_prune(&t, 1);
        assert_eq!(p.len(), 1);
        assert_eq!(p.root_vertex(), 3);
    }
}
