//! Approximate coreness decomposition in MPC — the \[GLM19\] application.
//!
//! Footnote 2 of the paper notes that \[GLM19\] state their result for
//! *coreness decomposition*, obtained "by simply running the algorithm for
//! every `k = (1+ε)^i` coreness/arboricity estimate in parallel". This module
//! reproduces that application on top of the paper's machinery:
//!
//! For each guess `g_i = ⌈(1+ε)^i⌉` up to the degeneracy, a layering run with
//! `λ-hint = g_i` executes on its own section of the cluster — and, since the
//! instances are independent, *actually in parallel on the host* via
//! [`dgo_mpc::InstanceGroup`] (metrics merge with max-rounds semantics;
//! [`Params::jobs`] picks the host thread budget). If vertex `v`
//! receives a layer in run `i`, the partial layer assignment is a *witness*
//! that `v` can be eliminated with at most `a_i = O(g_i log log n)`
//! same-or-higher neighbors, i.e. `coreness(v) ≤ a_i` (a valid partial layer
//! assignment restricted to its assigned vertices is an elimination order).
//! The estimate of `v` is the smallest such witness value, giving a sound
//! upper bound within an `O((1+ε) · log log n)` factor of the truth.

use crate::error::{CoreError, Result};
use crate::orient::{layering_config, partial_layering_bounded_in, LayeringStats};
use crate::params::Params;
use dgo_graph::{degeneracy, Graph};
use dgo_mpc::{split_jobs, ExecutionBackend, InstanceGroup, Metrics, SequentialBackend};
use std::sync::Mutex;

/// Result of [`approximate_coreness`].
#[derive(Debug, Clone)]
pub struct CorenessResult {
    /// Per-vertex upper-bound estimate of the coreness
    /// (`estimate[v] ≥ coreness(v)`, within `O((1+ε)·log log n)`).
    pub estimate: Vec<u32>,
    /// The guess ladder `g_0 < g_1 < …` that was run.
    pub guesses: Vec<usize>,
    /// Merged metering: guesses run in parallel (max rounds, summed volume).
    pub metrics: Metrics,
    /// Layering statistics per guess.
    pub stats: Vec<LayeringStats>,
}

/// Computes a per-vertex coreness estimate by running the Theorem 1.1
/// layering for every `(1+eps)^i` guess in parallel (the \[GLM19\]
/// application, paper footnote 2).
///
/// The estimate is a certified upper bound: `estimate[v] ≥ coreness(v)` for
/// every vertex. Estimates start at the degeneracy (itself a sound global
/// bound) and are refined downward by every guess's certificate, landing at
/// `O(coreness(v) · (1+eps) · log log n)` for the vertices each guess's
/// geometric layer decay reaches.
///
/// # Errors
///
/// Propagates layering errors.
///
/// # Panics
///
/// Panics if `eps <= 0`.
///
/// # Examples
///
/// ```
/// use dgo_core::{approximate_coreness, Params};
/// use dgo_graph::{coreness, generators::gnm};
///
/// let g = gnm(400, 1200, 3);
/// let r = approximate_coreness(&g, 0.5, &Params::practical(400))?;
/// let exact = coreness(&g);
/// for v in 0..g.num_vertices() {
///     assert!(r.estimate[v] >= exact[v], "estimates are upper bounds");
/// }
/// # Ok::<(), dgo_core::CoreError>(())
/// ```
pub fn approximate_coreness(graph: &Graph, eps: f64, params: &Params) -> Result<CorenessResult> {
    approximate_coreness_on::<SequentialBackend>(graph, eps, params)
}

/// [`approximate_coreness`] on a caller-chosen [`ExecutionBackend`].
///
/// The guess ladder executes as a host-parallel [`InstanceGroup`] across
/// [`Params::jobs`] threads: one backend per guess, each guess's layering
/// *and* its witness (measured out-degree bound) computed inside the
/// instance, metrics composed with the paper's parallel semantics. Outputs
/// are bit-identical to the sequential host loop at any job count.
///
/// # Errors
///
/// See [`approximate_coreness`].
///
/// # Panics
///
/// Panics if `eps <= 0`.
pub fn approximate_coreness_on<B: ExecutionBackend + Send>(
    graph: &Graph,
    eps: f64,
    params: &Params,
) -> Result<CorenessResult> {
    assert!(eps > 0.0, "eps must be positive, got {eps}");
    params.validate()?;
    let n = graph.num_vertices();
    let max_core = degeneracy(graph).value.max(1);

    // The guess ladder: 1, ⌈(1+ε)⌉, ⌈(1+ε)²⌉, …, first value ≥ degeneracy.
    let mut guesses: Vec<usize> = Vec::new();
    let mut g = 1.0f64;
    loop {
        let guess = g.ceil() as usize;
        if guesses.last() != Some(&guess) {
            guesses.push(guess);
        }
        if guess >= max_core {
            break;
        }
        g *= 1.0 + eps;
    }

    // Deterministic per-instance parameter derivation: guess i runs with its
    // ladder value as the λ-hint. The thread budget splits between the
    // ladder fan-out and each guess's vertex stages (the instances and the
    // stages share one pool instead of multiplying).
    let split = split_jobs(params.jobs, guesses.len());
    let instance_params: Vec<Params> = guesses
        .iter()
        .enumerate()
        .map(|(i, &guess)| {
            let mut run_params = params.clone();
            run_params.lambda_hint = guess;
            run_params.jobs = split.inner(i);
            run_params
        })
        .collect();
    let mut group = InstanceGroup::<B>::new(
        instance_params
            .iter()
            .map(|run_params| layering_config(graph, run_params)),
        split.outer(),
    );
    // Estimate-combine: every guess's certificate folds into the per-vertex
    // minimum, starting from the sound degeneracy bound (coreness never
    // exceeds the degeneracy). The min-fold is commutative, so folding as
    // instances complete (under a lock, inside each instance) matches the
    // sequential loop exactly while holding at most `jobs` layerings live
    // instead of one per guess.
    let estimate = Mutex::new(vec![max_core as u32; n]);
    let stats = group.run_all(|i, backend| {
        // Bounded (no-fallback) runs: assignment is then a genuine
        // elimination certificate at this guess's out-degree bound.
        let (layering, stats) =
            partial_layering_bounded_in(graph, &instance_params[i], 8, backend)?;
        if layering.num_assigned() == 0 {
            return Ok::<_, CoreError>(stats);
        }
        // Witness value of this run: the layering's *measured* out-degree
        // bound certifies coreness ≤ that bound for every assigned vertex
        // (eliminate assigned vertices in (layer, id) order; the first
        // vertex of any k-core eliminated still has all its core neighbors
        // counted in its same-or-higher degree).
        let witness = layering.out_degree_bound(graph)?.max(1) as u32;
        let mut estimate = estimate.lock().expect("no panic holds the fold lock");
        for (v, e) in estimate.iter_mut().enumerate() {
            if layering.is_assigned(v) {
                *e = (*e).min(witness);
            }
        }
        Ok(stats)
    })?;
    let metrics = group.into_metrics()?;
    let estimate = estimate.into_inner().expect("no panic holds the fold lock");
    Ok(CorenessResult {
        estimate,
        guesses,
        metrics,
        stats,
    })
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use dgo_graph::coreness;
    use dgo_graph::generators::{clique, gnm, planted_dense, random_tree, star};

    fn check_upper_bound(graph: &Graph, eps: f64) -> CorenessResult {
        let params = Params::practical(graph.num_vertices());
        let r = approximate_coreness(graph, eps, &params).unwrap();
        let exact = coreness(graph);
        for v in 0..graph.num_vertices() {
            assert!(
                r.estimate[v] >= exact[v],
                "v={v}: estimate {} < exact coreness {}",
                r.estimate[v],
                exact[v]
            );
        }
        r
    }

    #[test]
    fn sound_on_random_graphs() {
        for seed in 0..3 {
            let g = gnm(300, 900, seed);
            check_upper_bound(&g, 0.5);
        }
    }

    #[test]
    fn approximation_factor_bounded() {
        let n = 2000;
        let g = planted_dense(n, 2 * n, 40, 7);
        let r = check_upper_bound(&g, 0.5);
        let exact = coreness(&g);
        let loglog = (n as f64).log2().log2();
        for v in 0..n {
            let truth = exact[v].max(1) as f64;
            assert!(
                (r.estimate[v] as f64) <= 24.0 * (1.5) * truth * loglog,
                "v={v}: estimate {} vs exact {truth}",
                r.estimate[v]
            );
        }
    }

    #[test]
    fn separates_core_from_periphery() {
        // Planted dense core: core vertices must get estimates well above
        // the tree-like background.
        let g = planted_dense(1000, 1000, 30, 3);
        let r = check_upper_bound(&g, 0.5);
        let core_min = (0..30).map(|v| r.estimate[v]).min().unwrap();
        let bg_median = {
            let mut bg: Vec<u32> = (30..1000).map(|v| r.estimate[v]).collect();
            bg.sort_unstable();
            bg[bg.len() / 2]
        };
        assert!(
            core_min > bg_median,
            "core min {core_min} should exceed background median {bg_median}"
        );
    }

    #[test]
    fn guess_ladder_is_geometric_and_covers() {
        let g = clique(40); // degeneracy 39
        let params = Params::practical(40);
        let r = approximate_coreness(&g, 1.0, &params).unwrap();
        assert!(r.guesses.windows(2).all(|w| w[0] < w[1]));
        assert!(*r.guesses.last().unwrap() >= 39);
        // Doubling ladder: at most log2(39) + 2 guesses.
        assert!(r.guesses.len() <= 8);
    }

    #[test]
    fn forest_estimates_small() {
        let g = random_tree(800, 5);
        let r = check_upper_bound(&g, 0.5);
        // Coreness of a tree is 1 everywhere; estimate stays O(log log n).
        assert!(
            r.estimate.iter().all(|&e| e <= 16),
            "max = {:?}",
            r.estimate.iter().max()
        );
    }

    #[test]
    fn star_estimates_tiny() {
        let g = star(500);
        let r = check_upper_bound(&g, 0.5);
        assert!(r.estimate.iter().all(|&e| e <= 4));
    }

    #[test]
    fn parallel_metrics_do_not_scale_with_ladder_length() {
        // Guesses run in parallel: a 3x finer ladder must not cost 3x the
        // rounds (max-merge semantics).
        let g = gnm(400, 1600, 2);
        let params = Params::practical(400);
        let coarse = approximate_coreness(&g, 1.0, &params).unwrap();
        let fine = approximate_coreness(&g, 0.25, &params).unwrap();
        assert!(fine.guesses.len() > coarse.guesses.len());
        assert!(
            fine.metrics.rounds <= 2 * coarse.metrics.rounds + 16,
            "fine {} vs coarse {}",
            fine.metrics.rounds,
            coarse.metrics.rounds
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_eps_panics() {
        let g = Graph::empty(2);
        let _ = approximate_coreness(&g, 0.0, &Params::practical(2));
    }

    use dgo_graph::Graph;
}
