//! `ExponentiateAndLocalPrune` — Algorithm 2 of the paper.
//!
//! Every vertex `v` maintains a rooted view tree `T_v` with a valid mapping
//! (root ↦ `v`) within a node budget `B`. Each of the `s` steps:
//!
//! 1. **Local prune** (no communication): `T_v ← LocalPrune(T_v, k)`;
//!    vertices whose pruned tree still exceeds `√B` nodes go *inactive*.
//! 2. **Exponentiation / attachment**: each active `v` takes the leaves at
//!    distance exactly `2^{i-1}` that map to active vertices `u`, fetches
//!    `T_u` (pruned), and splices copies onto those leaves (Definition 2.5).
//!
//! Claim 3.4 keeps every tree within `B` nodes (`√B` self × `√B` attached);
//! Claim 3.5 implements the step in `O(1)` MPC rounds with `O(n^δ + B)`
//! local and `O(nB + m)` global memory — which is exactly how the cluster
//! meters it here (tree fetches via the Lemma 4.1 gather, per-step residency
//! checkpoints).
//!
//! Both per-step passes are *per-vertex maps over a read-only snapshot* — the
//! paper's vertices act independently between synchronization barriers — so
//! they execute as [`StageExecutor`] stages: the prune pass via
//! [`local_prune_batch`], and the attachment pass double-buffered (each
//! attaching vertex builds its next tree from its own pruned tree plus
//! *borrowed* provider trees in the current buffer, then the new trees swap
//! in by index). The double buffer is also what makes providers borrowable at
//! all: consumers never mutate the snapshot, so no provider tree is ever
//! cloned — each consumer splices the borrowed providers into one
//! exactly-sized destination arena ([`ViewTree::attached_with`]): six column
//! allocations per consumer, zero per spliced node.

use crate::error::Result;
use crate::prune::local_prune_batch;
use crate::stage::StageExecutor;
use crate::vtree::{NodeId, ViewTree};
use dgo_graph::Graph;
use dgo_mpc::primitives::gather_bundles;
use dgo_mpc::{ExecutionBackend, WordSized};
use std::collections::BTreeMap;

/// Wire representation of a view tree for communication metering:
/// [`ViewTree::wire_words`] — the actual encoded length of the
/// `dgo_core::wire` delta/varint stream when the codec is on (the default),
/// or the flat two-words-per-node block copy when `DGO_WIRE_CODEC=0`.
#[derive(Debug, Clone, Copy)]
struct TreeWire {
    words: usize,
}

impl WordSized for TreeWire {
    fn words(&self) -> usize {
        self.words
    }
}

/// Output of [`exponentiate_and_prune`]: the per-vertex view trees after `s`
/// steps, with their final activity flags.
#[derive(Debug, Clone)]
pub struct ExponentiationResult {
    /// `trees[v]` is `T_v^{(s)}` with its valid mapping.
    pub trees: Vec<ViewTree>,
    /// Whether `v` was still active at the end (inactive vertices carry the
    /// pruned tree they had when deactivated).
    pub active: Vec<bool>,
    /// Exponentiation steps actually executed.
    pub steps: u32,
}

/// Runs Algorithm 2 on `graph` under the metering of any
/// [`ExecutionBackend`], executing the per-vertex stages inline (the
/// [`StageExecutor::sequential`] form of [`exponentiate_and_prune_staged`]).
///
/// # Errors
///
/// Propagates MPC capacity violations (the strict cluster rejects steps whose
/// communication or residency exceeds `S`).
///
/// # Panics
///
/// Panics if `k == 0` or `budget < 4`.
///
/// # Examples
///
/// ```
/// use dgo_core::exponentiate_and_prune;
/// use dgo_graph::generators::random_tree;
/// use dgo_mpc::{Cluster, ClusterConfig};
///
/// let g = random_tree(64, 1);
/// let mut cluster = Cluster::new(ClusterConfig::new(64, 4096));
/// let r = exponentiate_and_prune(&g, 256, 2, 3, &mut cluster)?;
/// assert_eq!(r.trees.len(), 64);
/// for (v, t) in r.trees.iter().enumerate() {
///     assert_eq!(t.root_vertex(), v);
///     assert!(t.len() <= 256); // Claim 3.4
/// }
/// # Ok::<(), dgo_core::CoreError>(())
/// ```
pub fn exponentiate_and_prune<B: ExecutionBackend>(
    graph: &Graph,
    budget: usize,
    k: usize,
    steps: u32,
    cluster: &mut B,
) -> Result<ExponentiationResult> {
    exponentiate_and_prune_staged(
        graph,
        budget,
        k,
        steps,
        cluster,
        &StageExecutor::sequential(),
    )
}

/// [`exponentiate_and_prune`] with the per-vertex passes (prune, request
/// collection, attachment, residency sizing) running as data-parallel
/// [`StageExecutor`] stages. Trees, activity flags, and metrics are
/// bit-identical at any thread count.
///
/// # Errors
///
/// See [`exponentiate_and_prune`].
///
/// # Panics
///
/// Panics if `k == 0` or `budget < 4`.
pub fn exponentiate_and_prune_staged<B: ExecutionBackend>(
    graph: &Graph,
    budget: usize,
    k: usize,
    steps: u32,
    cluster: &mut B,
    stage: &StageExecutor,
) -> Result<ExponentiationResult> {
    assert!(k >= 1, "k must be at least 1");
    assert!(budget >= 4, "budget must be at least 4");
    let n = graph.num_vertices();
    let sqrt_budget = (budget as f64).sqrt().floor() as u64;

    // Initialization (Algorithm 2 preamble): a pure per-vertex map.
    let init: Vec<(ViewTree, bool)> = stage.map_indices(n, |v| {
        if graph.degree(v) < budget {
            (ViewTree::star(v, graph.neighbors(v)), true)
        } else {
            (ViewTree::singleton(v), false)
        }
    });
    let mut trees: Vec<ViewTree> = Vec::with_capacity(n);
    let mut active: Vec<bool> = Vec::with_capacity(n);
    for (tree, is_active) in init {
        trees.push(tree);
        active.push(is_active);
    }
    checkpoint(graph, cluster, &trees, stage)?;

    for i in 1..=steps {
        // ---- Local prune step (free: no communication). ----
        // One Algorithm 1 stage over all trees; fixed points stay in place.
        let pruned = local_prune_batch(&trees, k, stage);
        for (v, replacement) in pruned.into_iter().enumerate() {
            if let Some(tree) = replacement {
                trees[v] = tree;
            }
            if trees[v].len() as u64 > sqrt_budget {
                active[v] = false;
            }
        }

        // ---- Exponentiation / attachment step. ----
        let frontier_depth = 1u32 << (i - 1);
        // Collect requests per vertex — (consumer v, provider u) for every
        // qualifying leaf — as a stage over the pruned snapshot, then flatten
        // in vertex order (the exact order the sequential loop produced).
        type VertexPlan = (Vec<(u64, u64)>, Vec<NodeId>);
        let plans: Vec<VertexPlan> = stage.map(&trees, |v, tree| {
            let mut requests = Vec::new();
            let mut leaves = Vec::new();
            if active[v] {
                for leaf in tree.leaves_at_depth(frontier_depth) {
                    let u = tree.vertex(leaf);
                    if active[u] {
                        requests.push((v as u64, u as u64));
                        leaves.push(leaf);
                    }
                }
            }
            (requests, leaves)
        });
        let mut requests: Vec<(u64, u64)> = Vec::new();
        let mut leaf_plan: Vec<Vec<NodeId>> = Vec::with_capacity(n);
        for (vertex_requests, leaves) in plans {
            requests.extend(vertex_requests);
            leaf_plan.push(leaves);
        }
        // Meter the tree transfer as a Lemma 4.1 gather: provider wire sizes
        // are a stage over the deduplicated provider ids.
        let provider_ids: Vec<usize> = {
            let mut ids: Vec<usize> = requests.iter().map(|&(_, u)| u as usize).collect();
            ids.sort_unstable();
            ids.dedup();
            ids
        };
        let bundles: BTreeMap<u64, TreeWire> = stage
            .map(&provider_ids, |_, &u| {
                (
                    u as u64,
                    TreeWire {
                        words: trees[u].wire_words(),
                    },
                )
            })
            .into_iter()
            .collect();
        // Book the bundle payloads (post-codec vs the flat baseline) once per
        // delivered copy. Recorded here in the algorithm layer — the encoding
        // is the algorithm's choice, so the totals are backend-independent by
        // construction.
        let (bundle_wire, bundle_flat) =
            requests.iter().fold((0usize, 0usize), |(w, f), &(_, u)| {
                (
                    w + bundles[&u].words,
                    f + trees[u as usize].flat_wire_words(),
                )
            });
        if !requests.is_empty() {
            cluster
                .metrics_mut()
                .record_bundle_words(bundle_wire, bundle_flat);
        }
        gather_bundles(cluster, &bundles, &requests)?;

        // Materialize the attachments (inactive vertices keep pruned trees)
        // as a double-buffered stage: every attaching vertex splices its own
        // pruned tree and the *borrowed* provider trees in the read-only
        // current buffer into one exactly-sized fresh arena — attachment must
        // use this step's pruned versions even when provider == consumer, and
        // the snapshot is exactly that.
        let attached: Vec<Option<ViewTree>> = stage.map(&trees, |v, source| {
            if leaf_plan[v].is_empty() {
                return None;
            }
            let tree =
                ViewTree::attached_with(source, &leaf_plan[v], |leaf| &trees[source.vertex(leaf)]);
            debug_assert!(
                tree.len() <= budget,
                "Claim 3.4 violated: tree of {v} has {} nodes > B = {budget}",
                tree.len()
            );
            Some(tree)
        });
        for (v, replacement) in attached.into_iter().enumerate() {
            if let Some(tree) = replacement {
                trees[v] = tree;
            }
        }
        checkpoint(graph, cluster, &trees, stage)?;
    }
    Ok(ExponentiationResult {
        trees,
        active,
        steps,
    })
}

/// Residency checkpoint: trees are balanced over machines (one tree is never
/// split — Claim 3.5's `O(n^δ + B)` local memory), the graph's edge share is
/// uniform. Tree sizes are collected as a stage; the balancing itself is a
/// cheap host-side sort. Alongside the word-accounting the checkpoint also
/// meters the *host* footprint of the tree arenas
/// ([`ViewTree::arena_bytes`]) per machine — the `peak_tree_bytes` component
/// the experiment tables report next to the certified words.
fn checkpoint<B: ExecutionBackend>(
    graph: &Graph,
    cluster: &mut B,
    trees: &[ViewTree],
    stage: &StageExecutor,
) -> Result<()> {
    let machines = cluster.num_machines();
    let graph_share = (2 * graph.num_edges() + graph.num_vertices()).div_ceil(machines);
    let mut load = vec![graph_share; machines];
    let mut tree_bytes = vec![0usize; machines];
    let sizes: Vec<(usize, usize)> = stage.map(trees, |_, tree| (tree.len(), tree.arena_bytes()));
    // Greedy balance: largest trees first onto the lightest machine would be
    // O(n log n); round-robin over a size-sorted order is within 2x of
    // optimal and cheaper.
    let mut order: Vec<usize> = (0..trees.len()).collect();
    order.sort_unstable_by_key(|&v| std::cmp::Reverse(sizes[v].0));
    for (slot, &v) in order.iter().enumerate() {
        load[slot % machines] += 2 * sizes[v].0;
        tree_bytes[slot % machines] += sizes[v].1;
    }
    cluster.checkpoint_residency(&load)?;
    cluster.metrics_mut().record_tree_bytes(&tree_bytes);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgo_graph::generators::{clique, gnm, random_tree, star};
    use dgo_mpc::{Cluster, ClusterConfig};

    fn big_cluster(n: usize, budget: usize) -> Cluster {
        // Generous machine count so residency is never the binding constraint
        // in unit tests (driver-level tests exercise tight clusters).
        Cluster::new(ClusterConfig::new((n * budget / 64).max(8), 4096))
    }

    #[test]
    fn claim_3_4_budget_respected() {
        let g = gnm(200, 800, 3);
        let budget = 144;
        let mut cluster = big_cluster(200, budget);
        let r = exponentiate_and_prune(&g, budget, 3, 3, &mut cluster).unwrap();
        for t in &r.trees {
            assert!(t.len() <= budget);
        }
    }

    #[test]
    fn claim_3_3_valid_mappings_preserved() {
        let g = gnm(80, 240, 5);
        let mut cluster = big_cluster(80, 100);
        let r = exponentiate_and_prune(&g, 100, 2, 3, &mut cluster).unwrap();
        for (v, t) in r.trees.iter().enumerate() {
            t.assert_valid(&g);
            assert_eq!(t.root_vertex(), v);
        }
    }

    #[test]
    fn high_degree_vertices_start_inactive() {
        let g = star(100); // center has degree 99
        let mut cluster = big_cluster(100, 50);
        let r = exponentiate_and_prune(&g, 50, 2, 2, &mut cluster).unwrap();
        assert!(!r.active[0]);
        assert_eq!(r.trees[0].len(), 1); // singleton, pruned each step
    }

    #[test]
    fn tree_graph_views_grow_along_paths() {
        // On a path graph with k >= 2 nothing is ever pruned away
        // structurally... except Algorithm 1 collapses nodes with <= k
        // children. With k = 1, internal path nodes keep 1 child... they
        // have <= 1 child in the view tree, so they collapse. Use k = 1 and
        // verify trees stay small instead.
        let g = random_tree(64, 9);
        let mut cluster = big_cluster(64, 256);
        let r = exponentiate_and_prune(&g, 256, 1, 3, &mut cluster).unwrap();
        for t in &r.trees {
            assert!(t.len() <= 256);
        }
    }

    #[test]
    fn rounds_charged_per_step() {
        let g = gnm(50, 150, 7);
        let mut a = big_cluster(50, 64);
        let mut b = big_cluster(50, 64);
        exponentiate_and_prune(&g, 64, 2, 1, &mut a).unwrap();
        exponentiate_and_prune(&g, 64, 2, 4, &mut b).unwrap();
        assert!(b.metrics().rounds > a.metrics().rounds);
        // O(s) scaling: 4 steps cost at most ~6x one step (constant-round
        // primitives per step, plus tree-depth-dependent gathers).
        assert!(b.metrics().rounds <= 6 * a.metrics().rounds.max(4));
    }

    #[test]
    fn zero_steps_returns_initial_views() {
        let g = gnm(30, 60, 1);
        let mut cluster = big_cluster(30, 64);
        let r = exponentiate_and_prune(&g, 64, 2, 0, &mut cluster).unwrap();
        for (v, t) in r.trees.iter().enumerate() {
            assert_eq!(t.len(), 1 + g.degree(v));
        }
    }

    #[test]
    fn clique_deactivates_under_small_budget() {
        // K12: every view explodes; with B = 16 (sqrt = 4) everything with
        // degree 11 < 16 starts active but goes inactive after pruning can't
        // keep trees under 4 nodes... unless k >= 11 collapses to singleton.
        let g = clique(12);
        let mut cluster = big_cluster(12, 16);
        let r = exponentiate_and_prune(&g, 16, 2, 2, &mut cluster).unwrap();
        for t in &r.trees {
            assert!(t.len() <= 16);
        }
        // With k = 2, pruning keeps 11 - 2 = 9 children > sqrt(16) = 4:
        // everyone deactivates at step 1.
        assert!(r.active.iter().all(|&a| !a));
    }

    #[test]
    fn deterministic() {
        let g = gnm(40, 120, 2);
        let mut a = big_cluster(40, 64);
        let mut b = big_cluster(40, 64);
        let ra = exponentiate_and_prune(&g, 64, 2, 3, &mut a).unwrap();
        let rb = exponentiate_and_prune(&g, 64, 2, 3, &mut b).unwrap();
        assert_eq!(ra.trees, rb.trees);
        assert_eq!(ra.active, rb.active);
    }

    #[test]
    fn staged_matches_sequential_bit_for_bit() {
        let g = gnm(150, 600, 6);
        let mut reference_cluster = big_cluster(150, 100);
        let reference = exponentiate_and_prune(&g, 100, 2, 3, &mut reference_cluster).unwrap();
        for jobs in [2usize, 8, 0] {
            let mut cluster = big_cluster(150, 100);
            let r = exponentiate_and_prune_staged(
                &g,
                100,
                2,
                3,
                &mut cluster,
                &StageExecutor::new(jobs),
            )
            .unwrap();
            assert_eq!(r.trees, reference.trees, "jobs = {jobs}");
            assert_eq!(r.active, reference.active, "jobs = {jobs}");
            assert_eq!(
                cluster.metrics(),
                reference_cluster.metrics(),
                "jobs = {jobs}"
            );
        }
    }

    #[test]
    fn bundle_words_metered_against_flat_baseline() {
        let g = gnm(150, 600, 6);
        let mut cluster = big_cluster(150, 100);
        exponentiate_and_prune(&g, 100, 2, 3, &mut cluster).unwrap();
        let m = cluster.metrics();
        assert!(m.bundle_flat_words > 0, "expected shipped bundles");
        assert!(m.bundle_wire_words > 0);
        if dgo_mpc::tuning::wire_codec_enabled() {
            // Every u32 varint is at most 5 bytes, so the encoded stream is
            // strictly below 2 words/node for every tree.
            assert!(m.bundle_wire_words < m.bundle_flat_words);
        } else {
            assert_eq!(m.bundle_wire_words, m.bundle_flat_words);
        }
        // The charged gather traffic includes every bundle payload.
        assert!(m.bundle_wire_words <= m.total_comm_words);
    }

    #[test]
    #[should_panic(expected = "budget")]
    fn tiny_budget_panics() {
        let g = Graph::empty(1);
        let mut cluster = big_cluster(1, 4);
        let _ = exponentiate_and_prune(&g, 2, 1, 1, &mut cluster);
    }

    use dgo_graph::Graph;
}
