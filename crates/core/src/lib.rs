//! # dgo-core — the Ghaffari–Grunau algorithms
//!
//! Implementation of *"Density-Dependent Graph Orientation and Coloring in
//! Scalable MPC"* (PODC 2025): `poly(log log n)`-round scalable MPC
//! algorithms for low-outdegree orientation ([`orient`], Theorem 1.1) and
//! vertex coloring ([`color`], Theorem 1.2), both parameterized by the
//! arboricity `λ`.
//!
//! ## Paper-to-module map
//!
//! | Paper item | API |
//! |---|---|
//! | Defs 2.3–2.7 (valid mappings, attachment, missing neighbors) | [`ViewTree`] |
//! | Algorithm 1 `LocalPrune` | [`local_prune`] |
//! | Algorithm 2 `ExponentiateAndLocalPrune` | [`exponentiate_and_prune`] |
//! | Algorithm 3 `PartialLayerAssignmentTree` | [`partial_layer_assignment_tree`] |
//! | Algorithm 4 `PartialLayerAssignment` | [`partial_layer_assignment`] |
//! | Lemmas 2.1 / 2.2 (random partitioning) | [`partition_edges`] / [`partition_vertices`] |
//! | Definition 2.2 / Lemma 2.4 (path counts) | [`num_paths_in`] / [`num_paths_out`] |
//! | Lemmas 3.14–3.15 (iterated + boosted layering) | [`complete_layering`] |
//! | Theorem 1.1 | [`orient`] |
//! | Theorem 1.2 (+ Lemma 4.1) | [`color`] |
//! | Lemma 4.1 bundle wire format (delta/varint codec) | [`wire`] |
//! | Footnote 2: coreness decomposition via parallel guesses (\[GLM19\]) | [`approximate_coreness`] |
//!
//! ## Quickstart
//!
//! ```
//! use dgo_core::{color, orient, Params};
//! use dgo_graph::generators::gnm;
//!
//! let g = gnm(2_000, 8_000, 42);
//! let params = Params::practical(g.num_vertices());
//!
//! let oriented = orient(&g, &params)?;
//! oriented.orientation.validate(&g)?;
//!
//! let colored = color(&g, &params)?;
//! colored.coloring.validate(&g)?;
//! println!(
//!     "outdegree {} / colors {} in {} + {} MPC rounds",
//!     oriented.orientation.max_out_degree(),
//!     colored.coloring.num_colors(),
//!     oriented.metrics.rounds,
//!     colored.metrics.rounds,
//! );
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod assign;
mod assign_tree;
mod color;
mod coreness;
mod error;
mod exponentiate;
mod orient;
mod params;
mod paths;
mod prune;
mod reduce;
pub mod stage;
mod vtree;
pub mod wire;

pub use assign::{
    combine_tree_layers, partial_layer_assignment, partial_layer_assignment_staged,
    PartialAssignmentResult,
};
pub use assign_tree::{
    partial_layer_assignment_tree, partial_layer_assignment_tree_with,
    partial_layer_assignment_trees, PeelScratch,
};
pub use color::{color, color_on, ColorResult, ColorStats};
pub use coreness::{approximate_coreness, approximate_coreness_on, CorenessResult};
pub use error::{CoreError, Result};
pub use exponentiate::{
    exponentiate_and_prune, exponentiate_and_prune_staged, ExponentiationResult,
};
pub use orient::{
    complete_layering, complete_layering_in, complete_layering_on, estimate_lambda,
    layering_config, orient, orient_on, partial_layering_bounded, partial_layering_bounded_in,
    partial_layering_bounded_on, LayeringOutcome, LayeringStats, OrientResult,
};
pub use params::Params;
pub use paths::{
    lemma_2_4_bound, num_paths_in, num_paths_in_staged, num_paths_out, num_paths_out_staged,
};
pub use prune::{local_prune, local_prune_batch, local_prune_with, pruned_size, PruneScratch};
pub use reduce::{partition_edges, partition_vertices, VertexPart};
pub use stage::StageExecutor;
pub use vtree::{NodeId, ViewTree};
