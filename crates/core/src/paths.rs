//! Strictly increasing path counts (Definition 2.2 and Lemma 2.4).
//!
//! For a partial layer assignment `ℓ`, a path `v₁, …, v_k` is *strictly
//! increasing* if `ℓ(v₁) < ℓ(v₂) < … < ℓ(v_k) < ∞`. `NumPathsIn(v)` counts
//! the strictly increasing paths ending at `v`; `NumPathsOut(v)` those
//! starting at `v`. Lemma 2.4 bounds `Σ_v NumPathsIn(v) = Σ_v NumPathsOut(v)
//! ≤ n·d^L` for a complete layering with out-degree `d` — the quantity that
//! controls which vertices survive exponentiation with in-budget view trees
//! (Lemma 3.7), and therefore the layer-tail decay of Lemma 3.13.
//!
//! Counts saturate at `u64::MAX` (the analysis only ever compares them
//! against budgets far below that).

use crate::stage::StageExecutor;
use dgo_graph::{Graph, LayerAssignment, UNASSIGNED};

/// `NumPathsIn(v)` for every vertex: strictly increasing paths *ending* at
/// `v`. Unassigned vertices (`ℓ = ∞`) have count 0 by Definition 2.2 (the
/// final vertex must have a finite layer).
///
/// # Panics
///
/// Panics if the assignment does not cover `graph`'s vertex set.
///
/// # Examples
///
/// ```
/// use dgo_core::num_paths_in;
/// use dgo_graph::{Graph, LayerAssignment};
///
/// // Path 0-1-2 with layers 1 < 2 < 3: vertex 2 collects paths
/// // (2), (1,2), (0,1,2).
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2)])?;
/// let la = LayerAssignment::new(vec![1, 2, 3])?;
/// assert_eq!(num_paths_in(&g, &la), vec![1, 2, 3]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn num_paths_in(graph: &Graph, layering: &LayerAssignment) -> Vec<u64> {
    counts(graph, layering, Direction::In, &StageExecutor::sequential())
}

/// `NumPathsOut(v)` for every vertex: strictly increasing paths *starting*
/// at `v` (0 for unassigned vertices).
pub fn num_paths_out(graph: &Graph, layering: &LayerAssignment) -> Vec<u64> {
    counts(
        graph,
        layering,
        Direction::Out,
        &StageExecutor::sequential(),
    )
}

/// [`num_paths_in`] with each layer's vertices counted as one data-parallel
/// [`StageExecutor`] stage. Strict monotonicity means same-layer vertices
/// never read each other's counts — a layer is a pure per-vertex map over
/// the counts of strictly lower layers — so results are bit-identical to the
/// sequential scan at any thread count.
///
/// # Panics
///
/// Panics if the assignment does not cover `graph`'s vertex set.
pub fn num_paths_in_staged(
    graph: &Graph,
    layering: &LayerAssignment,
    stage: &StageExecutor,
) -> Vec<u64> {
    counts(graph, layering, Direction::In, stage)
}

/// [`num_paths_out`] with per-layer vertex-parallel stages; see
/// [`num_paths_in_staged`].
///
/// # Panics
///
/// Panics if the assignment does not cover `graph`'s vertex set.
pub fn num_paths_out_staged(
    graph: &Graph,
    layering: &LayerAssignment,
    stage: &StageExecutor,
) -> Vec<u64> {
    counts(graph, layering, Direction::Out, stage)
}

#[derive(Clone, Copy, PartialEq)]
enum Direction {
    In,
    Out,
}

fn counts(
    graph: &Graph,
    layering: &LayerAssignment,
    dir: Direction,
    stage: &StageExecutor,
) -> Vec<u64> {
    let n = graph.num_vertices();
    assert_eq!(layering.len(), n, "layering must cover the graph");
    // Order vertices by layer: In-counts propagate upward (process ascending
    // layers), Out-counts downward (process descending layers).
    let mut order: Vec<usize> = (0..n).filter(|&v| layering.is_assigned(v)).collect();
    order.sort_unstable_by_key(|&v| layering.layer(v));
    if dir == Direction::Out {
        order.reverse();
    }
    let mut count = vec![0u64; n];
    // Process one layer at a time: within a layer, every count depends only
    // on strictly lower (In) / higher (Out) layers — already final in
    // `count` — so the layer is a pure per-vertex map over a read-only
    // snapshot, and the batched writes land in index-ordered slots. The
    // totals buffer is reused across layers (one allocation per call, not
    // one per layer).
    let mut totals: Vec<u64> = Vec::new();
    let mut start = 0usize;
    while start < order.len() {
        let layer = layering.layer(order[start]);
        debug_assert_ne!(layer, UNASSIGNED);
        let mut end = start + 1;
        while end < order.len() && layering.layer(order[end]) == layer {
            end += 1;
        }
        let batch = &order[start..end];
        // The neighbor refill runs branch-free: unassigned neighbors always
        // carry count 0 (they are never processed), so multiplying each
        // neighbor's count by the layer predicate both masks them out and
        // drops the explicit UNASSIGNED test — for In because ∞ (`u32::MAX`)
        // never sits strictly below a finite `lv`, for Out because adding the
        // zero count is a no-op. Direction is hoisted out of the scan.
        match dir {
            Direction::In => stage.map_into(batch, &mut totals, |_, &v| {
                let lv = layering.layer(v);
                let mut total = 1u64; // the single-vertex path
                for &w in graph.neighbors(v) {
                    let lw = layering.layer(w as usize);
                    // Paths arrive from strictly lower layers.
                    total = total.saturating_add(count[w as usize] * (lw < lv) as u64);
                }
                total
            }),
            Direction::Out => stage.map_into(batch, &mut totals, |_, &v| {
                let lv = layering.layer(v);
                let mut total = 1u64;
                for &w in graph.neighbors(v) {
                    let lw = layering.layer(w as usize);
                    // Paths leave toward strictly higher layers.
                    total = total.saturating_add(count[w as usize] * (lw > lv) as u64);
                }
                total
            }),
        }
        for (&v, &total) in batch.iter().zip(&totals) {
            count[v] = total;
        }
        start = end;
    }
    count
}

/// The upper bound of Lemma 2.4: `n · Σ_{j=0}^{L-1} d^j` (saturating).
pub fn lemma_2_4_bound(n: usize, d: usize, layers: u32) -> u64 {
    let mut sum = 0u64;
    let mut term = 1u64;
    for _ in 0..layers {
        sum = sum.saturating_add(term);
        term = term.saturating_mul(d.max(1) as u64);
    }
    (n as u64).saturating_mul(sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgo_graph::generators::gnm;

    #[test]
    fn single_vertex_paths() {
        let g = Graph::empty(3);
        let la = LayerAssignment::new(vec![1, 2, 3]).unwrap();
        assert_eq!(num_paths_in(&g, &la), vec![1, 1, 1]);
        assert_eq!(num_paths_out(&g, &la), vec![1, 1, 1]);
    }

    #[test]
    fn unassigned_vertices_count_zero() {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let la = LayerAssignment::new(vec![1, UNASSIGNED]).unwrap();
        assert_eq!(num_paths_in(&g, &la), vec![1, 0]);
        assert_eq!(num_paths_out(&g, &la), vec![1, 0]);
    }

    #[test]
    fn same_layer_edges_do_not_extend_paths() {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let la = LayerAssignment::new(vec![4, 4]).unwrap();
        assert_eq!(num_paths_in(&g, &la), vec![1, 1]);
    }

    #[test]
    fn double_counting_identity_lemma_2_4() {
        // Sum of In equals sum of Out (Lemma 2.4's first equality).
        let g = gnm(200, 600, 11);
        let peel = dgo_local::be08_peeling(&g, 3, 0.5, 0);
        let la = peel.layering;
        assert!(la.is_complete());
        let sum_in: u64 = num_paths_in(&g, &la).iter().sum();
        let sum_out: u64 = num_paths_out(&g, &la).iter().sum();
        assert_eq!(sum_in, sum_out);
    }

    #[test]
    fn lemma_2_4_upper_bound_holds() {
        let g = gnm(150, 450, 2);
        let peel = dgo_local::be08_peeling(&g, 3, 0.5, 0);
        let la = peel.layering;
        assert!(la.is_complete());
        let d = la.out_degree_bound(&g).unwrap();
        let layers = la.max_layer().unwrap();
        let bound = lemma_2_4_bound(g.num_vertices(), d, layers);
        let sum_out: u64 = num_paths_out(&g, &la).iter().sum();
        assert!(sum_out <= bound, "{sum_out} > {bound}");
    }

    #[test]
    fn diamond_counts() {
        //   0 (layer 1)
        //  / \
        // 1   2 (layer 2)
        //  \ /
        //   3 (layer 3)
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let la = LayerAssignment::new(vec![1, 2, 2, 3]).unwrap();
        let inn = num_paths_in(&g, &la);
        // v3: (3), (1,3), (2,3), (0,1,3), (0,2,3) = 5.
        assert_eq!(inn, vec![1, 2, 2, 5]);
        let out = num_paths_out(&g, &la);
        // v0: (0), (0,1), (0,2), (0,1,3), (0,2,3) = 5.
        assert_eq!(out, vec![5, 2, 2, 1]);
    }

    #[test]
    fn staged_counts_match_sequential_at_any_thread_count() {
        let g = gnm(300, 1200, 13);
        let peel = dgo_local::be08_peeling(&g, 4, 0.5, 0);
        let la = peel.layering;
        let reference_in = num_paths_in(&g, &la);
        let reference_out = num_paths_out(&g, &la);
        for jobs in [1usize, 2, 8, 0] {
            let stage = StageExecutor::new(jobs);
            assert_eq!(num_paths_in_staged(&g, &la, &stage), reference_in);
            assert_eq!(num_paths_out_staged(&g, &la, &stage), reference_out);
        }
    }

    #[test]
    fn saturation_does_not_panic() {
        assert_eq!(lemma_2_4_bound(usize::MAX, usize::MAX, 64), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "cover")]
    fn length_mismatch_panics() {
        let g = Graph::empty(3);
        let la = LayerAssignment::new(vec![1]).unwrap();
        num_paths_in(&g, &la);
    }
}
