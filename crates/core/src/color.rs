//! Coloring with `O(λ log log n)` colors — Theorem 1.2.
//!
//! Pipeline (§4 of the paper):
//!
//! 1. **Vertex partition** (Lemma 2.2) when `λ ≫ log n`: split vertices into
//!    `⌈k / log n⌉` parts of arboricity `O(log n)` each, color the parts with
//!    *disjoint palettes* (so dropped cross-part edges can never clash), in
//!    parallel.
//! 2. **Layering**: compute the `Θ(log n)`-layer H-partition with out-degree
//!    `d = O(λ log log n)` (Lemma 3.15 / [`crate::complete_layering`]).
//! 3. **Top-down batched coloring**: process layers from highest to lowest
//!    in `poly(log log n)` batches. Within a batch, every vertex learns the
//!    colors along its outgoing (toward-higher-layer) edges via *directed
//!    graph exponentiation* (Lemma 4.1 — metered by the
//!    [`dgo_mpc::primitives::gather_bundles`] cost model plus the
//!    exponentiation tree depth), after which each machine simulates the
//!    LOCAL degree+1 list coloring of its batch locally. Each layer is a
//!    degree+1 list-coloring instance with palette `3d`: at most `d`
//!    strictly-higher neighbors are already colored and the within-layer
//!    degree is at most `d`, leaving `≥ 2d ≥ d+1` free colors — the paper's
//!    "at least 2d available colors".
//!
//! The within-layer subroutine is the randomized trial coloring of
//! [`dgo_local::randomized_list_coloring`], substituting for [HKNT22] (see
//! DESIGN.md §5); its simulated LOCAL rounds are reported separately in
//! [`ColorStats::simulated_local_rounds`].

use crate::error::Result;
use crate::orient::{complete_layering_on, estimate_lambda, layering_config, LayeringStats};
use crate::params::Params;
use crate::reduce::partition_vertices;
use dgo_graph::{Coloring, Graph};
use dgo_local::randomized_list_coloring;
use dgo_mpc::instance::{check_group_capacity, run_indexed, split_jobs};
use dgo_mpc::primitives::gather_bundles;
use dgo_mpc::{ClusterConfig, ExecutionBackend, Metrics, SequentialBackend};
use std::collections::BTreeMap;

/// Execution statistics of the coloring pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColorStats {
    /// Palette size used (per part): `palette_factor · d`.
    pub palette: usize,
    /// Layering out-degree `d` the palette is based on.
    pub layering_out_degree: usize,
    /// Top-down layer batches executed.
    pub batches: u32,
    /// Total LOCAL rounds simulated inside gathered neighborhoods (these are
    /// *not* MPC rounds — they run on local data after the gathers).
    pub simulated_local_rounds: u64,
    /// Statistics of the underlying layering(s).
    pub layering_stats: Vec<LayeringStats>,
    /// Vertex parts (1 = no Lemma 2.2 split).
    pub parts: usize,
}

/// Result of Theorem 1.2's coloring pipeline.
#[derive(Debug, Clone)]
pub struct ColorResult {
    /// A proper coloring with `O(λ log log n)` colors.
    pub coloring: Coloring,
    /// Merged MPC metering.
    pub metrics: Metrics,
    /// Execution statistics.
    pub stats: ColorStats,
}

/// Theorem 1.2: colors `graph` with `O(λ log log n)` colors in
/// `poly(log log n)` metered MPC rounds.
///
/// # Errors
///
/// Propagates layering errors and MPC capacity violations.
///
/// # Examples
///
/// ```
/// use dgo_core::{color, Params};
/// use dgo_graph::generators::star;
///
/// // Star: Δ = n-1 but λ = 1 — density-dependent coloring shines.
/// let g = star(1000);
/// let r = color(&g, &Params::practical(1000))?;
/// r.coloring.validate(&g)?;
/// assert!(r.coloring.num_colors() <= 8); // O(λ log log n), λ = 1
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn color(graph: &Graph, params: &Params) -> Result<ColorResult> {
    color_on::<SequentialBackend>(graph, params)
}

/// [`color`] on a caller-chosen [`ExecutionBackend`] — e.g.
/// `color_on::<dgo_mpc::ParallelBackend>(&g, &params)` for the rayon
/// backend. Results and metrics are backend-independent. On the Lemma 2.2
/// vertex-partition path, the independent per-part pipelines execute
/// host-parallel across [`Params::jobs`] threads; the disjoint-palette
/// combine folds in part order, so outputs are bit-identical to the
/// sequential loop at any job count.
///
/// # Errors
///
/// See [`color`].
pub fn color_on<B: ExecutionBackend>(graph: &Graph, params: &Params) -> Result<ColorResult> {
    params.validate()?;
    let n = graph.num_vertices();
    let lambda_hat = estimate_lambda(graph, params);
    let k = params.k(lambda_hat);
    let log_n = (n.max(2) as f64).log2();
    let parts_needed = (k as f64 / log_n).ceil() as usize;

    if parts_needed <= 1 {
        return color_single::<B>(graph, params);
    }

    // Lemma 2.2 path: vertex partition, disjoint palettes, parallel parts.
    // Each part's pipeline is self-contained (own scratch clusters, λ
    // re-estimated on the sparser part), so parts fan across host threads;
    // only the palette-offset fold below is order-sensitive and runs on the
    // host in part order. The thread budget splits between the part fan-out
    // and each part's vertex stages so the tiers share one pool.
    let parts = partition_vertices(graph, parts_needed, params.seed);
    // Budget over the parts that actually run: an empty part is a no-op and
    // must not consume one of the remainder-boosted inner budgets. Each
    // non-empty part picks its budget by active rank (its index among the
    // non-empty parts), so the boosted budgets land on real work.
    let mut active_parts_count = 0usize;
    let active_rank: Vec<usize> = parts
        .iter()
        .map(|part| {
            let current = active_parts_count;
            active_parts_count += usize::from(part.graph.num_vertices() > 0);
            current
        })
        .collect();
    let split = split_jobs(params.jobs, active_parts_count);
    let part_results: Vec<Option<ColorResult>> = run_indexed(
        parts.len(),
        split.outer(),
        |i| -> Result<Option<ColorResult>> {
            let part = &parts[i];
            if part.graph.num_vertices() == 0 {
                return Ok(None);
            }
            let mut part_params = params.clone();
            part_params.jobs = split.inner(active_rank[i]);
            part_params.lambda_hint = 0; // re-estimate on the sparser part
            color_single::<B>(&part.graph, &part_params).map(Some)
        },
    )?;

    let mut colors = vec![0u32; n];
    let mut metrics = Metrics::new();
    let mut palette_offset = 0u32;
    let mut stats = ColorStats {
        palette: 0,
        layering_out_degree: 0,
        batches: 0,
        simulated_local_rounds: 0,
        layering_stats: Vec::new(),
        parts: parts_needed,
    };
    let mut active_parts = 0usize;
    let mut capacity = 0usize;
    for (part, sub) in parts.iter().zip(part_results) {
        let Some(sub) = sub else {
            continue;
        };
        active_parts += 1;
        capacity = capacity
            .saturating_add(layering_config(&part.graph, params).global_memory())
            .saturating_add(coloring_config(&part.graph, params).global_memory());
        for (v_new, &v_old) in part.mapping.iter().enumerate() {
            colors[v_old] = palette_offset + sub.coloring.color(v_new);
        }
        palette_offset += sub.coloring.palette_bound() as u32;
        metrics.merge_parallel(&sub.metrics);
        stats.palette += sub.stats.palette;
        stats.layering_out_degree = stats.layering_out_degree.max(sub.stats.layering_out_degree);
        stats.batches = stats.batches.max(sub.stats.batches);
        stats.simulated_local_rounds += sub.stats.simulated_local_rounds;
        stats.layering_stats.extend(sub.stats.layering_stats);
    }
    // The disjoint-section composition must fit the union cluster hosting
    // every part's sections — the same aggregate check InstanceGroup
    // enforces for the layering compositions (each part runs two strict
    // clusters, so the group semantics are strict).
    check_group_capacity(&mut metrics, active_parts, capacity, true)?;
    Ok(ColorResult {
        coloring: Coloring::new(colors)?,
        metrics,
        stats,
    })
}

/// Cluster configuration for the coloring phase (sized like the layering
/// cluster minus the view-tree headroom). Shared by [`color_single`] and the
/// aggregate-capacity accounting in [`color_on`] so they cannot drift.
fn coloring_config(graph: &Graph, params: &Params) -> ClusterConfig {
    let n = graph.num_vertices();
    let m = graph.num_edges();
    let s = params.local_memory(n);
    let global = 4 * (2 * m + n) + s;
    ClusterConfig::new(global.div_ceil(s).max(1), s)
}

/// The single-part pipeline: layering + batched top-down list coloring.
fn color_single<B: ExecutionBackend>(graph: &Graph, params: &Params) -> Result<ColorResult> {
    let n = graph.num_vertices();
    let outcome = complete_layering_on::<B>(graph, params)?;
    let layering = &outcome.layering;
    let d = layering.out_degree_bound(graph)?.max(1);
    let palette = params.palette_factor * d;
    let total_layers = layering.max_layer().unwrap_or(0);

    // Batching: split 1..=L into `batches` contiguous ranges, processed from
    // the top (highest layers first).
    let batches = params
        .effective_color_batches(n)
        .clamp(1, total_layers.max(1));

    // A dedicated cluster for the coloring phase (the layering metered its
    // own); sized like the layering cluster.
    let mut cluster = B::from_config(coloring_config(graph, params));

    let mut colors: Vec<u32> = vec![u32::MAX; n];
    let mut simulated_local_rounds = 0u64;
    let mut seed = params.seed;

    // Precompute the members of each layer.
    let mut layer_members: Vec<Vec<usize>> = vec![Vec::new(); total_layers as usize + 1];
    for v in 0..n {
        layer_members[layering.layer(v) as usize].push(v);
    }

    let mut hi = total_layers;
    for b in 0..batches {
        // Batch covers layers (lo..=hi], sized to spread evenly.
        let remaining_batches = batches - b;
        let lo = hi - hi.div_ceil(remaining_batches).min(hi);
        // --- Lemma 4.1 gather: batch vertices learn the colors of their
        // strictly-higher (already colored) neighbors. ---
        let mut requests: Vec<(u64, u64)> = Vec::new();
        let mut bundles: BTreeMap<u64, u32> = BTreeMap::new();
        for layer in (lo + 1)..=hi {
            for &v in &layer_members[layer as usize] {
                for &w in graph.neighbors(v) {
                    let w = w as usize;
                    if layering.layer(w) > hi {
                        requests.push((v as u64, w as u64));
                        bundles.insert(w as u64, colors[w]);
                    }
                }
            }
        }
        gather_bundles(&mut cluster, &bundles, &requests)?;
        // --- Directed exponentiation cost: learning the within-batch
        // reachable sets costs O(log(batch depth)) additional rounds. ---
        let batch_depth = (hi - lo) as usize;
        let expo_rounds = (usize::BITS - batch_depth.max(1).leading_zeros()) as u64;
        let expo_volume = requests.len().max(1);
        cluster.charge_rounds(
            expo_rounds,
            expo_volume,
            expo_volume.div_ceil(cluster.num_machines()).max(1),
        )?;

        // --- Local simulation of the per-layer list coloring (top-down
        // within the batch; no further MPC rounds). ---
        for layer in ((lo + 1)..=hi).rev() {
            let members = &layer_members[layer as usize];
            if members.is_empty() {
                continue;
            }
            let mut active = vec![false; n];
            let mut lists: Vec<Vec<u32>> = vec![Vec::new(); n];
            for &v in members {
                active[v] = true;
                let forbidden: Vec<u32> = graph
                    .neighbors(v)
                    .iter()
                    .filter_map(|&w| {
                        let c = colors[w as usize];
                        (c != u32::MAX).then_some(c)
                    })
                    .collect();
                lists[v] = (0..palette as u32)
                    .filter(|c| !forbidden.contains(c))
                    .collect();
                debug_assert!(
                    !lists[v].is_empty(),
                    "palette 3d must leave free colors (vertex {v})"
                );
            }
            seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let run = randomized_list_coloring(graph, &lists, &active, seed, 0);
            simulated_local_rounds += run.local_rounds;
            for &v in members {
                debug_assert_ne!(run.colors[v], u32::MAX, "list coloring must complete");
                colors[v] = run.colors[v];
            }
        }
        hi = lo;
        if hi == 0 {
            break;
        }
    }
    debug_assert_eq!(hi, 0, "all layers must be processed");

    // Isolated/empty corner: vertices of an edgeless graph may have layer
    // assignments but no colors if total_layers == 0 paths; give color 0.
    for c in colors.iter_mut() {
        if *c == u32::MAX {
            *c = 0;
        }
    }

    let mut metrics = outcome.metrics;
    metrics.merge_sequential(cluster.metrics());
    Ok(ColorResult {
        coloring: Coloring::new(colors)?,
        metrics,
        stats: ColorStats {
            palette,
            layering_out_degree: d,
            batches,
            simulated_local_rounds,
            layering_stats: vec![outcome.stats],
            parts: 1,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgo_graph::generators::{
        barabasi_albert, clique, gnm, grid_2d, random_forest, random_tree, star,
    };

    fn check(graph: &Graph, params: &Params) -> ColorResult {
        let r = color(graph, params).unwrap();
        r.coloring.validate(graph).unwrap();
        r
    }

    #[test]
    fn colors_random_graphs_properly() {
        for seed in 0..3 {
            let g = gnm(500, 1500, seed);
            let r = check(&g, &Params::practical(500));
            assert!(r.coloring.num_colors() <= r.stats.palette);
        }
    }

    #[test]
    fn star_needs_few_colors_despite_huge_delta() {
        let g = star(2000);
        let r = check(&g, &Params::practical(2000));
        assert!(g.max_degree() >= 1999);
        assert!(
            r.coloring.num_colors() <= 8,
            "star took {} colors",
            r.coloring.num_colors()
        );
    }

    #[test]
    fn forest_coloring_near_constant() {
        let g = random_forest(1500, 10, 3);
        let r = check(&g, &Params::practical(1500));
        assert!(
            r.coloring.num_colors() <= 16,
            "forest took {} colors",
            r.coloring.num_colors()
        );
    }

    #[test]
    fn power_law_beats_delta_plus_one() {
        let g = barabasi_albert(2000, 3, 5);
        let r = check(&g, &Params::practical(2000));
        assert!(
            r.coloring.num_colors() < g.max_degree() / 2,
            "{} colors vs Δ+1 = {}",
            r.coloring.num_colors(),
            g.max_degree() + 1
        );
    }

    #[test]
    fn palette_scales_with_lambda_loglog() {
        let g = gnm(1000, 8000, 2); // density 8
        let params = Params::practical(1000);
        let r = check(&g, &params);
        let lambda = estimate_lambda(&g, &params);
        let loglog = (1000f64).log2().log2();
        assert!(
            (r.stats.palette as f64) <= 24.0 * lambda as f64 * loglog,
            "palette {} too large for λ̂ {lambda}",
            r.stats.palette
        );
    }

    #[test]
    fn clique_uses_vertex_partition_path() {
        let g = clique(80); // λ = 40 > log2(80)
        let mut params = Params::practical(80);
        params.exact_arboricity_threshold = 100;
        let r = check(&g, &params);
        assert!(r.stats.parts > 1, "expected Lemma 2.2 split");
        // A clique needs >= 80 colors no matter what.
        assert!(r.coloring.num_colors() >= 80);
    }

    #[test]
    fn grid_coloring_constant_palette() {
        let g = grid_2d(25, 25);
        let r = check(&g, &Params::practical(625));
        assert!(r.coloring.num_colors() <= 20);
    }

    #[test]
    fn batches_bound_respected() {
        let g = random_tree(800, 1);
        let mut params = Params::practical(800);
        params.color_batches = 2;
        let r = check(&g, &params);
        assert!(r.stats.batches <= 2);
    }

    #[test]
    fn empty_and_edgeless() {
        // Isolated vertices draw random colors from the minimal palette.
        let r = check(&Graph::empty(10), &Params::practical(10));
        assert!(r.coloring.num_colors() <= r.stats.palette);
        let r = color(&Graph::empty(0), &Params::practical(0)).unwrap();
        assert!(r.coloring.is_empty());
    }

    #[test]
    fn deterministic() {
        let g = gnm(300, 900, 4);
        let p = Params::practical(300);
        let a = color(&g, &p).unwrap();
        let b = color(&g, &p).unwrap();
        assert_eq!(a.coloring, b.coloring);
    }

    #[test]
    fn simulated_local_rounds_reported() {
        let g = gnm(400, 1200, 6);
        let r = check(&g, &Params::practical(400));
        assert!(r.stats.simulated_local_rounds > 0);
    }

    use dgo_graph::Graph;
}
