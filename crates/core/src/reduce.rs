//! Arboricity-reduction by random partitioning (Lemmas 2.1 and 2.2).
//!
//! When `λ(G) ≫ log n`, both theorems first split the instance so each part
//! has arboricity `O(log n)`: Theorem 1.1 partitions the *edges* uniformly at
//! random into `⌈k/log n⌉` parts (Lemma 2.1), Theorem 1.2 partitions the
//! *vertices* (Lemma 2.2). The parts are processed in parallel on disjoint
//! sections of the cluster and their outputs combine trivially (orientations
//! union; colorings take disjoint palettes).

use dgo_graph::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random edge partitioning (Lemma 2.1): splits the edges of `graph`
/// uniformly into `parts` graphs over the same vertex set. With
/// `parts = ⌈k/log n⌉` and `k ≥ λ(G)`, each part has arboricity `O(log n)`
/// with high probability.
///
/// Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `parts == 0`.
///
/// # Examples
///
/// ```
/// use dgo_core::partition_edges;
/// use dgo_graph::generators::clique;
///
/// let g = clique(20);
/// let parts = partition_edges(&g, 4, 7);
/// assert_eq!(parts.len(), 4);
/// let total: usize = parts.iter().map(|p| p.num_edges()).sum();
/// assert_eq!(total, g.num_edges());
/// ```
pub fn partition_edges(graph: &Graph, parts: usize, seed: u64) -> Vec<Graph> {
    assert!(parts > 0, "parts must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut buckets: Vec<Vec<(u32, u32)>> = vec![Vec::new(); parts];
    for (u, v) in graph.edges() {
        let p = rng.random_range(0..parts);
        buckets[p].push((u as u32, v as u32));
    }
    buckets
        .into_iter()
        .map(|edges| {
            let mut edges = edges;
            edges.sort_unstable();
            Graph::from_edges(
                graph.num_vertices(),
                &edges
                    .iter()
                    .map(|&(u, v)| (u as usize, v as usize))
                    .collect::<Vec<_>>(),
            )
            .expect("edges come from a valid graph")
        })
        .collect()
}

/// A vertex-partition part: the induced subgraph and its `new -> old` vertex
/// mapping.
#[derive(Debug, Clone)]
pub struct VertexPart {
    /// The induced subgraph (vertices relabeled `0..part_size`).
    pub graph: Graph,
    /// `mapping[new_id] = old_id` back into the original graph.
    pub mapping: Vec<usize>,
}

/// Random vertex partitioning (Lemma 2.2): splits the vertices uniformly
/// into `parts` induced subgraphs. With `parts = ⌈k/log n⌉` and `k ≥ λ(G)`,
/// each part has arboricity `O(log n)` with high probability. Cross-part
/// edges are dropped from the parts; they are handled by coloring the parts
/// with *disjoint palettes* (as Theorem 1.2 does — [`crate::color`] enforces
/// this), which makes cross-part monochromatic edges impossible.
/// Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `parts == 0`.
pub fn partition_vertices(graph: &Graph, parts: usize, seed: u64) -> Vec<VertexPart> {
    assert!(parts > 0, "parts must be positive");
    let n = graph.num_vertices();
    let mut rng = StdRng::seed_from_u64(seed);
    let assignment: Vec<usize> = (0..n).map(|_| rng.random_range(0..parts)).collect();
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); parts];
    for v in 0..n {
        groups[assignment[v]].push(v);
    }
    groups
        .into_iter()
        .map(|keep| {
            let (graph, mapping) = graph.induced_subgraph(&keep);
            VertexPart { graph, mapping }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgo_graph::generators::{clique, gnm};
    use dgo_graph::{arboricity_bounds, degeneracy};

    #[test]
    fn edge_partition_preserves_edges() {
        let g = gnm(100, 400, 3);
        let parts = partition_edges(&g, 5, 9);
        let total: usize = parts.iter().map(|p| p.num_edges()).sum();
        assert_eq!(total, 400);
        for p in &parts {
            assert_eq!(p.num_vertices(), 100);
        }
    }

    #[test]
    fn edge_partition_reduces_arboricity() {
        // K40 has arboricity 20; 4 parts should each be far sparser.
        let g = clique(40);
        let before = arboricity_bounds(&g, 100).lower;
        let parts = partition_edges(&g, 4, 5);
        for p in &parts {
            let after = arboricity_bounds(p, 100).upper;
            assert!(
                after < before,
                "part arboricity {after} not below original {before}"
            );
        }
    }

    #[test]
    fn edge_partition_deterministic() {
        let g = gnm(50, 200, 1);
        let a = partition_edges(&g, 3, 42);
        let b = partition_edges(&g, 3, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn edge_partition_single_part_is_identity() {
        let g = gnm(30, 60, 2);
        let parts = partition_edges(&g, 1, 0);
        assert_eq!(parts[0], g);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_parts_panics() {
        partition_edges(&Graph::empty(2), 0, 0);
    }

    #[test]
    fn vertex_partition_covers_all_vertices() {
        let g = gnm(120, 300, 8);
        let parts = partition_vertices(&g, 4, 11);
        let mut seen = [false; 120];
        for part in &parts {
            for &old in &part.mapping {
                assert!(!seen[old], "vertex {old} in two parts");
                seen[old] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn vertex_partition_keeps_only_internal_edges() {
        let g = clique(12);
        let parts = partition_vertices(&g, 3, 2);
        for part in &parts {
            let k = part.graph.num_vertices();
            assert_eq!(part.graph.num_edges(), k * k.saturating_sub(1) / 2);
        }
    }

    #[test]
    fn vertex_partition_reduces_degeneracy() {
        let g = clique(36);
        let before = degeneracy(&g).value;
        let parts = partition_vertices(&g, 6, 3);
        for part in &parts {
            assert!(degeneracy(&part.graph).value < before);
        }
    }
}
