//! Vertex-parallel stage engine: data-parallel per-vertex map stages inside
//! one MPC instance.
//!
//! Every per-vertex loop of Algorithms 1–4 — `LocalPrune` over all trees, the
//! exponentiation attachment step, the per-tree peeling of Algorithm 3,
//! Algorithm 4's proposal collection, the per-layer path counts — applies an
//! *independent* local computation to each vertex and then combines results
//! synchronously. The simulator meters those steps as constant-round MPC
//! primitives, but until this module existed it *executed* them as
//! host-sequential `for v in 0..n` loops.
//!
//! [`StageExecutor`] turns each such loop into a data-parallel stage over the
//! host threads budgeted by [`Params::jobs`](crate::Params::jobs):
//!
//! * the per-vertex closure is **pure over a read-only snapshot** (typically
//!   `&[ViewTree]` and `&Graph`) — it never mutates shared state;
//! * outputs land in **index-ordered per-vertex slots**
//!   ([`StageExecutor::map`]), so the collected result is the exact vector
//!   the sequential loop would have produced;
//! * metering totals (communication words, loads) are computed as a
//!   **deterministic parallel reduction** ([`StageExecutor::sum_by`]) and
//!   charged once on the backend by the caller.
//!
//! Chunk boundaries depend only on `(len, threads)` and per-chunk results are
//! combined in index order, so stage outputs — and therefore trees, layers,
//! colors, and metrics — are **bit-identical at any thread count**. The
//! `tests/stage_parallel.rs` suite is the conformance bar, mirroring
//! `tests/instance_parallel.rs` for the instance tier.
//!
//! This is the third parallelism tier of the workspace: backend routing
//! (`dgo_mpc::ParallelBackend`), instance fan-out (`dgo_mpc::InstanceGroup`),
//! and now vertex stages inside each instance. The tiers share one thread
//! pool: outer instance fan-outs subdivide their budget via
//! [`dgo_mpc::split_jobs`] instead of oversubscribing the host.
//!
//! ```
//! use dgo_core::stage::StageExecutor;
//!
//! let stage = StageExecutor::new(4);
//! let squares = stage.map_indices(8, |v| (v * v) as u64);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! assert_eq!(stage.sum_by(&squares, |_, &s| s as usize), 140);
//! ```

use dgo_mpc::resolve_jobs;
use dgo_mpc::tuning::stage_inline_threshold;

/// Executes index-ordered data-parallel map stages over a fixed host-thread
/// budget.
///
/// Cheap to construct (one resolved integer) and freely shareable by
/// reference; a budget of `1` runs every stage inline, which is exactly the
/// sequential loop the engine replaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageExecutor {
    threads: usize,
}

impl StageExecutor {
    /// Creates an executor running stages on up to `jobs` host threads
    /// (`0` = all available cores, as for [`Params::jobs`](crate::Params::jobs)).
    pub fn new(jobs: usize) -> Self {
        StageExecutor {
            threads: resolve_jobs(jobs).max(1),
        }
    }

    /// The inline executor: every stage runs on the calling thread. This is
    /// the reference behavior all thread counts must reproduce bit-exactly.
    pub fn sequential() -> Self {
        StageExecutor { threads: 1 }
    }

    /// The resolved host-thread budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The thread count a stage over `len` items actually fans to: the full
    /// budget, or 1 below the inline floor
    /// ([`dgo_mpc::tuning::stage_inline_threshold`] — trivially small stages,
    /// a residency sizing pass, a near-empty peel layer, cost more to
    /// schedule than to run). The floor depends only on the item count, so
    /// outputs stay bit-identical (inline == one chunk).
    fn threads_for(&self, len: usize) -> usize {
        if len < stage_inline_threshold() {
            1
        } else {
            self.threads
        }
    }

    /// Maps `f(index, &item)` over `items` in parallel, collecting outputs in
    /// index order: `result[i] == f(i, &items[i])`. `f` must be pure over its
    /// inputs — the engine guarantees nothing about execution order across
    /// indices, only about output placement.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        rayon::chunk_map_collect(items, self.threads_for(items.len()), f)
    }

    /// [`StageExecutor::map`] with per-worker scratch: each parallel chunk
    /// calls `init()` once and passes the scratch mutably to every `f` call
    /// in that chunk. This is the tier-3 scratch-reuse contract of the
    /// Algorithm 1/3 hot loops: `f` must fully (re)initialize whatever
    /// scratch state it reads, so outputs are independent of how chunks
    /// share a scratch — the scratch only recycles allocations, and results
    /// stay bit-identical at any thread count.
    pub fn map_with<T, S, R, I, F>(&self, items: &[T], init: I, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize, &T) -> R + Sync,
    {
        rayon::chunk_map_collect_with(items, self.threads_for(items.len()), init, f)
    }

    /// [`StageExecutor::map`] into a caller-provided buffer: `out` is cleared
    /// and refilled with `out[i] = f(i, &items[i])`, reusing its capacity —
    /// for per-round stages (e.g. the per-layer path counts) that would
    /// otherwise allocate a fresh result vector every round.
    pub fn map_into<T, R, F>(&self, items: &[T], out: &mut Vec<R>, f: F)
    where
        T: Sync,
        R: Send + Default,
        F: Fn(usize, &T) -> R + Sync,
    {
        rayon::chunk_map_fill(items, self.threads_for(items.len()), out, f);
    }

    /// Maps `f(v)` over `0..n` (the vertex-id form of [`StageExecutor::map`]),
    /// collecting outputs in vertex order.
    pub fn map_indices<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        rayon::chunk_map_collect_range(n, self.threads_for(n), f)
    }

    /// Sums `f(index, &item)` over `items` as a parallel reduction. Integer
    /// addition is associative, and chunks fold left-to-right, so the total
    /// is exact (not merely approximately equal) at any thread count — which
    /// is what lets callers charge precomputed metering words once on the
    /// backend.
    pub fn sum_by<T, F>(&self, items: &[T], f: F) -> usize
    where
        T: Sync,
        F: Fn(usize, &T) -> usize + Sync,
    {
        rayon::chunk_map_reduce(
            items,
            self.threads_for(items.len()),
            |offset, chunk| {
                chunk
                    .iter()
                    .enumerate()
                    .map(|(i, item)| f(offset + i, item))
                    .sum::<usize>()
            },
            |a, b| a + b,
        )
        .unwrap_or(0)
    }
}

impl Default for StageExecutor {
    /// The sequential executor — stages are opt-in parallel.
    fn default() -> Self {
        StageExecutor::sequential()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_is_index_ordered_at_any_thread_count() {
        // Above the inline floor so jobs > 1 genuinely fans out.
        let items: Vec<u32> = (0..5_000).rev().collect();
        let reference = StageExecutor::sequential().map(&items, |i, &v| (i as u32, v * 2));
        for jobs in [2usize, 3, 8, 0] {
            let stage = StageExecutor::new(jobs);
            assert_eq!(
                stage.map(&items, |i, &v| (i as u32, v * 2)),
                reference,
                "jobs = {jobs}"
            );
        }
    }

    #[test]
    fn map_indices_matches_map_over_ids() {
        let stage = StageExecutor::new(3);
        assert_eq!(stage.map_indices(5, |v| v * 10), vec![0, 10, 20, 30, 40]);
        assert!(stage.map_indices(0, |v| v).is_empty());
        // Parallel path (above the floor) matches the inline reference.
        let n = 6_000;
        let reference = StageExecutor::sequential().map_indices(n, |v| v * 7);
        assert_eq!(stage.map_indices(n, |v| v * 7), reference);
    }

    #[test]
    fn map_with_matches_map_at_any_thread_count() {
        let items: Vec<u32> = (0..5_000).collect();
        let reference = StageExecutor::sequential().map(&items, |i, &v| v as u64 * i as u64);
        for jobs in [1usize, 2, 8, 0] {
            let stage = StageExecutor::new(jobs);
            let got = stage.map_with(&items, Vec::<u64>::new, |scratch, i, &v| {
                scratch.clear(); // scratch must be re-initialized per item
                scratch.push(v as u64 * i as u64);
                scratch[0]
            });
            assert_eq!(got, reference, "jobs = {jobs}");
        }
    }

    #[test]
    fn map_into_reuses_buffer_and_matches_map() {
        let items: Vec<u32> = (0..4_000).collect();
        let reference = StageExecutor::sequential().map(&items, |_, &v| v as u64 + 3);
        let mut out: Vec<u64> = Vec::new();
        for jobs in [1usize, 2, 8, 0] {
            let stage = StageExecutor::new(jobs);
            stage.map_into(&items, &mut out, |_, &v| v as u64 + 3);
            assert_eq!(out, reference, "jobs = {jobs}");
        }
        let capacity = out.capacity();
        StageExecutor::sequential().map_into(&items[..10], &mut out, |_, &v| v as u64);
        assert_eq!(out.len(), 10);
        assert_eq!(out.capacity(), capacity);
    }

    #[test]
    fn sum_by_is_exact_reduction() {
        let items: Vec<usize> = (0..10_000).collect();
        let expected: usize = items.iter().map(|&v| 2 * v + 1).sum();
        for jobs in [1usize, 2, 7, 0] {
            let stage = StageExecutor::new(jobs);
            assert_eq!(stage.sum_by(&items, |_, &v| 2 * v + 1), expected);
        }
        assert_eq!(StageExecutor::new(4).sum_by(&[] as &[usize], |_, &v| v), 0);
    }

    #[test]
    fn small_stages_run_inline() {
        // Below the floor the executor must not spawn (observable only as
        // identical output here; the floor itself is the contract).
        let items: Vec<usize> = (0..10).collect();
        let stage = StageExecutor::new(8);
        assert_eq!(stage.threads_for(items.len()), 1);
        assert_eq!(
            stage.map(&items, |_, &v| v + 1),
            (1..=10).collect::<Vec<_>>()
        );
        assert_eq!(
            stage.threads_for(dgo_mpc::tuning::stage_inline_threshold()),
            8
        );
    }

    #[test]
    fn outputs_identical_across_inline_cutoff() {
        // One item on either side of the inline floor: the inline and
        // fanned-out paths must produce identical outputs.
        let floor = dgo_mpc::tuning::stage_inline_threshold();
        let stage = StageExecutor::new(4);
        for len in [floor - 1, floor, floor + 1] {
            let items: Vec<u64> = (0..len as u64).rev().collect();
            let reference = StageExecutor::sequential().map(&items, |i, &v| v * 5 + i as u64);
            assert_eq!(
                stage.map(&items, |i, &v| v * 5 + i as u64),
                reference,
                "len = {len}"
            );
            assert_eq!(
                stage.sum_by(&items, |i, &v| (v as usize) ^ i),
                StageExecutor::sequential().sum_by(&items, |i, &v| (v as usize) ^ i),
                "len = {len}"
            );
        }
    }

    #[test]
    fn zero_resolves_to_all_cores() {
        assert!(StageExecutor::new(0).threads() >= 1);
        assert_eq!(StageExecutor::new(5).threads(), 5);
        assert_eq!(StageExecutor::sequential().threads(), 1);
        assert_eq!(StageExecutor::default(), StageExecutor::sequential());
    }
}
