//! Complete layering and orientation — Lemmas 3.14–3.15 and Theorem 1.1.
//!
//! The drivers assemble the partial-assignment stage (Algorithm 4 /
//! Lemma 3.13) into a complete layering:
//!
//! * **Stage 1 (peeling)**: `O(log k)` rounds of degree-`≤ k` peeling shrink
//!   the vertex set so later stages afford a large per-vertex budget
//!   (Lemma 3.15 Stage 1).
//! * **Stage 2 (boosted partial assignments)**: repeatedly run Algorithm 4 on
//!   the still-unassigned vertices, appending each stage's layers after the
//!   previous ones and *boosting* the budget `B ← min(B², n^δ)` between
//!   stages (Lemma 3.15 Stage 2; the paper boosts `B^100`, which clamps to
//!   the same `n^δ` ceiling immediately).
//! * **Fallback**: a stage that assigns nothing triggers one peeling round
//!   with an escalating threshold — the same guaranteed-progress mechanism
//!   as Stage 1, keeping termination parameter-independent. Every fallback
//!   round is metered and reported.
//!
//! Theorem 1.1 wraps the layering: when `k = Θ(λ) ≫ log n`, the edge set is
//! first split by Lemma 2.1 so each part has arboricity `O(log n)`; parts
//! run (conceptually in parallel) and their orientations union.

use crate::assign::partial_layer_assignment_staged;
use crate::error::{CoreError, Result};
use crate::params::Params;
use crate::reduce::partition_edges;
use crate::stage::StageExecutor;
use dgo_graph::{arboricity_bounds, degeneracy, Graph, LayerAssignment, Orientation};
use dgo_mpc::{
    split_jobs, ClusterConfig, ExecutionBackend, InstanceGroup, Metrics, SequentialBackend,
};
use std::collections::HashMap; // dgo-lint: allow(R4) — lookup-only use below, never iterated

/// Per-layering execution statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayeringStats {
    /// Arboricity estimate used.
    pub lambda_hat: usize,
    /// Pruning parameter `k`.
    pub k: usize,
    /// Initial peeling rounds (Lemma 3.15 Stage 1).
    pub initial_peel_rounds: u32,
    /// Partial-assignment stages executed (Lemma 3.15 Stage 2).
    pub stages: u32,
    /// Guaranteed-progress fallback peeling rounds taken.
    pub fallback_rounds: u32,
    /// Total layers in the final assignment.
    pub layers: u32,
    /// Final (largest) view-tree budget used.
    pub final_budget: usize,
}

/// A complete layering with its metering and statistics.
#[derive(Debug, Clone)]
pub struct LayeringOutcome {
    /// The complete layer assignment.
    pub layering: LayerAssignment,
    /// MPC metering for the whole computation.
    pub metrics: Metrics,
    /// Execution statistics.
    pub stats: LayeringStats,
}

/// Result of Theorem 1.1's orientation pipeline.
#[derive(Debug, Clone)]
pub struct OrientResult {
    /// The orientation with max outdegree `O(λ log log n)`.
    pub orientation: Orientation,
    /// The underlying layering (`None` when the large-`λ` edge-partition path
    /// ran — parts have separate layerings that do not merge).
    pub layering: Option<LayerAssignment>,
    /// Merged MPC metering (parts merge in parallel).
    pub metrics: Metrics,
    /// Statistics of every layering executed (one per edge part).
    pub stats: Vec<LayeringStats>,
    /// Number of edge parts (1 = single-graph path).
    pub parts: usize,
}

/// Estimates the arboricity for parameterization: explicit hint, exact flow
/// machinery on small graphs, degeneracy on large ones.
pub fn estimate_lambda(graph: &Graph, params: &Params) -> usize {
    if params.lambda_hint > 0 {
        return params.lambda_hint;
    }
    arboricity_bounds(graph, params.exact_arboricity_threshold)
        .lower
        .max(1)
}

/// Builds the cluster configuration for a layering run on an `n`-vertex,
/// `m`-edge instance: `S = n^δ` local words, global memory `Θ(n·B + m)`
/// (Lemma 3.13's requirement), with constant slack.
fn layering_cluster(n: usize, m: usize, s: usize, budget_cap: usize) -> ClusterConfig {
    // 6·n·B tree headroom keeps the balanced per-machine residency below
    // S/3 average + S/2 max-tree < S even in the worst tree distribution.
    let global = 4 * (2 * m + n) + 6 * n * budget_cap + s;
    ClusterConfig::new(global.div_ceil(s).max(1), s)
}

/// Hard cap on the view-tree budget at local memory `s`: trees cost 2 words
/// per node, so capping `B` at `S/4` keeps any single tree at `S/2` words and
/// one tree plus its machine's base share fits in `S`. Shared by the cluster
/// sizing and the layering drivers so they cannot drift apart.
fn budget_cap(s: usize) -> usize {
    (s / 4).max(16)
}

/// The cluster configuration [`complete_layering_in`] /
/// [`partial_layering_bounded_in`] expect their backend to be sized for.
/// Callers composing several layering instances (e.g. via
/// [`InstanceGroup`]) build one backend per instance from this.
pub fn layering_config(graph: &Graph, params: &Params) -> ClusterConfig {
    let n = graph.num_vertices();
    let s = params.local_memory(n);
    layering_cluster(n, graph.num_edges(), s, budget_cap(s))
}

/// Computes a complete layer assignment with out-degree `O(k log log n)`
/// (Lemma 3.15).
///
/// # Errors
///
/// * [`CoreError::InvalidParams`] for bad parameters.
/// * [`CoreError::Mpc`] if metering rejects a phase in strict mode.
/// * [`CoreError::StageBudgetExhausted`] if `max_stages` elapse with
///   vertices unassigned (practically unreachable thanks to the fallback).
///
/// # Examples
///
/// ```
/// use dgo_core::{complete_layering, Params};
/// use dgo_graph::generators::gnm;
///
/// let g = gnm(500, 1500, 3);
/// let out = complete_layering(&g, &Params::practical(500))?;
/// assert!(out.layering.is_complete());
/// let d = out.layering.out_degree_bound(&g)?;
/// assert!(d >= 3); // can't beat density
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn complete_layering(graph: &Graph, params: &Params) -> Result<LayeringOutcome> {
    complete_layering_on::<SequentialBackend>(graph, params)
}

/// [`complete_layering`] on a caller-chosen [`ExecutionBackend`].
///
/// # Errors
///
/// See [`complete_layering`].
pub fn complete_layering_on<B: ExecutionBackend>(
    graph: &Graph,
    params: &Params,
) -> Result<LayeringOutcome> {
    let mut cluster = B::from_config(layering_config(graph, params));
    let (layering, stats) = complete_layering_in(graph, params, &mut cluster)?;
    Ok(LayeringOutcome {
        layering,
        metrics: cluster.into_metrics(),
        stats,
    })
}

/// [`complete_layering`] on a caller-*managed* backend, sized via
/// [`layering_config`]: the metering accumulates in `cluster`, so several
/// layering instances can run on backends owned by one [`InstanceGroup`] and
/// compose their metrics with the parallel semantics.
///
/// The Algorithm 1–4 per-vertex passes inside each stage execute as
/// vertex-parallel [`StageExecutor`] stages over [`Params::jobs`] host
/// threads; callers fanning several layering instances subdivide the budget
/// (via [`split_jobs`]) before cloning it into the per-instance params.
///
/// # Errors
///
/// See [`complete_layering`].
pub fn complete_layering_in<B: ExecutionBackend>(
    graph: &Graph,
    params: &Params,
    cluster: &mut B,
) -> Result<(LayerAssignment, LayeringStats)> {
    params.validate()?;
    let stage = StageExecutor::new(params.jobs);
    let n = graph.num_vertices();
    let m = graph.num_edges();
    let lambda_hat = estimate_lambda(graph, params);
    let k = params.k(lambda_hat);
    let s = params.local_memory(n);
    let budget_cap = budget_cap(s);
    let mut budget = params.effective_budget(n, k).min(budget_cap);

    // Input residency: the graph (2m edge-endpoint words + n vertex records)
    // spread evenly, as §1.1 allows arbitrary initial distribution.
    let machines = cluster.num_machines();
    let input_share = (2 * m + n).div_ceil(machines);
    cluster.checkpoint_residency(&vec![input_share; machines])?;

    let mut layering = LayerAssignment::unassigned(n);
    let mut offset = 0u32;
    let mut stats = LayeringStats {
        lambda_hat,
        k,
        initial_peel_rounds: 0,
        stages: 0,
        fallback_rounds: 0,
        layers: 0,
        final_budget: budget,
    };

    // Residual degrees for the peeling phases.
    let mut degree: Vec<usize> = (0..n).map(|v| graph.degree(v)).collect();
    let mut alive: Vec<bool> = vec![true; n];

    // ---- Stage 1: initial peeling, O(log k) rounds (Lemma 3.15). ----
    let peel_target = 2 * (32 - u32::leading_zeros(k.max(2) as u32 - 1)).max(1);
    for _ in 0..peel_target {
        if !peel_round(
            graph,
            &mut degree,
            &mut alive,
            k,
            &mut layering,
            &mut offset,
            cluster,
            &stage,
        )? {
            break;
        }
        stats.initial_peel_rounds += 1;
    }

    // ---- Stage 2: boosted partial assignments (Lemma 3.15). ----
    let mut stall_threshold = k;
    loop {
        let unassigned: Vec<usize> = (0..n).filter(|&v| alive[v]).collect();
        if unassigned.is_empty() {
            break;
        }
        if stats.stages >= params.max_stages {
            return Err(CoreError::StageBudgetExhausted {
                unassigned: unassigned.len(),
                stages: stats.stages,
            });
        }
        stats.stages += 1;
        let (sub, mapping) = graph.induced_subgraph(&unassigned);
        let layers_i = params.stage_layers(budget, k);
        let steps_i = params.effective_steps(layers_i);
        let partial =
            partial_layer_assignment_staged(&sub, budget, k, layers_i, steps_i, cluster, &stage)?;
        let newly = partial.layering.num_assigned();
        if newly > 0 {
            for (v_new, &v_old) in mapping.iter().enumerate() {
                if partial.layering.is_assigned(v_new) {
                    let layer = offset + partial.layering.layer(v_new);
                    layering.set_layer(v_old, layer);
                    alive[v_old] = false;
                }
            }
            // Keep residual degrees consistent for any later fallback.
            for (v_new, &v_old) in mapping.iter().enumerate() {
                if partial.layering.is_assigned(v_new) {
                    for &w in graph.neighbors(v_old) {
                        let w = w as usize;
                        if alive[w] {
                            degree[w] -= 1;
                        }
                    }
                }
            }
            offset += layers_i;
            stall_threshold = k;
        } else {
            // Guaranteed-progress fallback: escalate the peel threshold until
            // something comes off (doubling reaches the max degree quickly).
            stall_threshold = stall_threshold.saturating_mul(2);
            let progressed = peel_round(
                graph,
                &mut degree,
                &mut alive,
                stall_threshold,
                &mut layering,
                &mut offset,
                cluster,
                &stage,
            )?;
            stats.fallback_rounds += 1;
            if !progressed {
                continue; // threshold keeps doubling next iteration
            }
        }
        budget = budget.saturating_mul(budget).min(budget_cap);
        stats.final_budget = stats.final_budget.max(budget);
    }

    stats.layers = layering.max_layer().unwrap_or(0);
    Ok((layering, stats))
}

/// One metered peeling round: assigns every alive vertex with residual degree
/// `≤ threshold` to a fresh layer. Returns whether anything was peeled.
/// The communication volume is a [`StageExecutor::sum_by`] reduction over the
/// peeled set, charged once on the backend.
#[allow(clippy::too_many_arguments)]
fn peel_round<B: ExecutionBackend>(
    graph: &Graph,
    degree: &mut [usize],
    alive: &mut [bool],
    threshold: usize,
    layering: &mut LayerAssignment,
    offset: &mut u32,
    cluster: &mut B,
    stage: &StageExecutor,
) -> Result<bool> {
    let n = graph.num_vertices();
    let peel: Vec<usize> = (0..n)
        .filter(|&v| alive[v] && degree[v] <= threshold)
        .collect();
    if peel.is_empty() {
        return Ok(false);
    }
    // Announcement + aggregated decrements, as in the direct baseline.
    let volume: usize = peel.len() + stage.sum_by(&peel, |_, &v| degree[v]);
    let machines = cluster.num_machines();
    let load = volume.div_ceil(machines).max(1);
    cluster.charge_rounds(2, volume, load)?;
    *offset += 1;
    for &v in &peel {
        layering.set_layer(v, *offset);
        alive[v] = false;
    }
    for &v in &peel {
        for &w in graph.neighbors(v) {
            let w = w as usize;
            if alive[w] {
                degree[w] -= 1;
            }
        }
    }
    Ok(true)
}

/// Bounded layering variant used for *certificate generation* (the coreness
/// application): identical to [`complete_layering`] but without the
/// guaranteed-progress fallback — the stage loop simply stops when a stage
/// makes no progress or `stages_cap` is reached, returning a (possibly
/// partial) layering whose measured out-degree bound certifies
/// `coreness(v) ≤ bound` for every *assigned* vertex.
///
/// # Errors
///
/// Same as [`complete_layering`] (except stage exhaustion, which is the
/// expected stopping mode here and returns the partial result).
pub fn partial_layering_bounded(
    graph: &Graph,
    params: &Params,
    stages_cap: u32,
) -> Result<LayeringOutcome> {
    partial_layering_bounded_on::<SequentialBackend>(graph, params, stages_cap)
}

/// [`partial_layering_bounded`] on a caller-chosen [`ExecutionBackend`].
///
/// # Errors
///
/// Same as [`partial_layering_bounded`].
pub fn partial_layering_bounded_on<B: ExecutionBackend>(
    graph: &Graph,
    params: &Params,
    stages_cap: u32,
) -> Result<LayeringOutcome> {
    let mut cluster = B::from_config(layering_config(graph, params));
    let (layering, stats) = partial_layering_bounded_in(graph, params, stages_cap, &mut cluster)?;
    Ok(LayeringOutcome {
        layering,
        metrics: cluster.into_metrics(),
        stats,
    })
}

/// [`partial_layering_bounded`] on a caller-*managed* backend (sized via
/// [`layering_config`]), for composing certificate runs in an
/// [`InstanceGroup`] — the coreness guess ladder runs one of these per guess.
///
/// # Errors
///
/// Same as [`partial_layering_bounded`].
pub fn partial_layering_bounded_in<B: ExecutionBackend>(
    graph: &Graph,
    params: &Params,
    stages_cap: u32,
    cluster: &mut B,
) -> Result<(LayerAssignment, LayeringStats)> {
    params.validate()?;
    let stage = StageExecutor::new(params.jobs);
    let n = graph.num_vertices();
    let m = graph.num_edges();
    let lambda_hat = estimate_lambda(graph, params);
    let k = params.k(lambda_hat);
    let s = params.local_memory(n);
    let budget_cap = budget_cap(s);
    let mut budget = params.effective_budget(n, k).min(budget_cap);
    let machines = cluster.num_machines();
    cluster.checkpoint_residency(&vec![(2 * m + n).div_ceil(machines); machines])?;

    let mut layering = LayerAssignment::unassigned(n);
    let mut offset = 0u32;
    let mut stats = LayeringStats {
        lambda_hat,
        k,
        initial_peel_rounds: 0,
        stages: 0,
        fallback_rounds: 0,
        layers: 0,
        final_budget: budget,
    };
    let mut degree: Vec<usize> = (0..n).map(|v| graph.degree(v)).collect();
    let mut alive: Vec<bool> = vec![true; n];

    let peel_target = 2 * (32 - u32::leading_zeros(k.max(2) as u32 - 1)).max(1);
    for _ in 0..peel_target {
        if !peel_round(
            graph,
            &mut degree,
            &mut alive,
            k,
            &mut layering,
            &mut offset,
            cluster,
            &stage,
        )? {
            break;
        }
        stats.initial_peel_rounds += 1;
    }

    while stats.stages < stages_cap {
        let unassigned: Vec<usize> = (0..n).filter(|&v| alive[v]).collect();
        if unassigned.is_empty() {
            break;
        }
        stats.stages += 1;
        let (sub, mapping) = graph.induced_subgraph(&unassigned);
        let layers_i = params.stage_layers(budget, k);
        let steps_i = params.effective_steps(layers_i);
        let partial =
            partial_layer_assignment_staged(&sub, budget, k, layers_i, steps_i, cluster, &stage)?;
        if partial.layering.num_assigned() == 0 {
            break; // no fallback in bounded mode
        }
        for (v_new, &v_old) in mapping.iter().enumerate() {
            if partial.layering.is_assigned(v_new) {
                layering.set_layer(v_old, offset + partial.layering.layer(v_new));
                alive[v_old] = false;
            }
        }
        for (v_new, &v_old) in mapping.iter().enumerate() {
            if partial.layering.is_assigned(v_new) {
                for &w in graph.neighbors(v_old) {
                    let w = w as usize;
                    if alive[w] {
                        degree[w] -= 1;
                    }
                }
            }
        }
        offset += layers_i;
        budget = budget.saturating_mul(budget).min(budget_cap);
        stats.final_budget = stats.final_budget.max(budget);
    }
    stats.layers = layering.max_layer().unwrap_or(0);
    Ok((layering, stats))
}

/// Theorem 1.1: computes an orientation with max outdegree `O(λ log log n)`
/// in `poly(log log n)` metered MPC rounds.
///
/// # Errors
///
/// See [`complete_layering`].
///
/// # Examples
///
/// ```
/// use dgo_core::{orient, Params};
/// use dgo_graph::generators::barabasi_albert;
///
/// let g = barabasi_albert(800, 3, 11);
/// let r = orient(&g, &Params::practical(800))?;
/// r.orientation.validate(&g)?;
/// assert!(r.orientation.max_out_degree() < g.max_degree());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn orient(graph: &Graph, params: &Params) -> Result<OrientResult> {
    orient_on::<SequentialBackend>(graph, params)
}

/// [`orient`] on a caller-chosen [`ExecutionBackend`] — e.g.
/// `orient_on::<dgo_mpc::ParallelBackend>(&g, &params)` for the rayon
/// backend. Results and metrics are backend-independent, and on the
/// large-`λ` edge-partition path the per-part layerings execute as a
/// host-parallel [`InstanceGroup`] across [`Params::jobs`] threads.
///
/// # Errors
///
/// See [`orient`].
pub fn orient_on<B: ExecutionBackend + Send>(
    graph: &Graph,
    params: &Params,
) -> Result<OrientResult> {
    params.validate()?;
    let n = graph.num_vertices();
    let lambda_hat = estimate_lambda(graph, params);
    let k = params.k(lambda_hat);
    let log_n = (n.max(2) as f64).log2();
    let parts_needed = (k as f64 / log_n).ceil() as usize;

    if parts_needed <= 1 {
        let outcome = complete_layering_on::<B>(graph, params)?;
        let orientation = outcome.layering.to_orientation(graph)?;
        return Ok(OrientResult {
            orientation,
            layering: Some(outcome.layering),
            metrics: outcome.metrics,
            stats: vec![outcome.stats],
            parts: 1,
        });
    }

    // Large-λ path (Theorem 1.1's proof): random edge partition, per-part
    // layering, union of orientations. Parts execute on disjoint cluster
    // sections — host-parallel as an instance group, metrics merge in
    // parallel. The thread budget splits between the two tiers: `outer`
    // threads fan the instances, each instance's vertex stages get the
    // remaining `inner` factor, so the tiers never oversubscribe the pool.
    let parts = partition_edges(graph, parts_needed, params.seed);
    let instances: Vec<&Graph> = parts.iter().filter(|part| part.num_edges() > 0).collect();
    let split = split_jobs(params.jobs, instances.len());
    // The cluster shape is λ-independent, so the per-part degeneracy (the
    // λ-hint) is computed inside each instance, host-parallel with the rest.
    let mut group = InstanceGroup::<B>::new(
        instances.iter().map(|part| layering_config(part, params)),
        split.outer(),
    );
    let outcomes = group.run_all(|i, backend| {
        let part = instances[i];
        let mut part_params = params.clone();
        part_params.jobs = split.inner(i);
        part_params.lambda_hint = degeneracy(part).value.max(1);
        let (layering, stats) = complete_layering_in(part, &part_params, backend)?;
        let orientation = layering.to_orientation(part)?;
        let directions: Vec<((u32, u32), bool)> = part
            .edges()
            .map(|(u, v)| {
                let toward_v = orientation.direction(u, v) == Some(true);
                ((u as u32, v as u32), toward_v)
            })
            .collect();
        Ok::<_, CoreError>((directions, stats))
    })?;
    let metrics = group.into_metrics()?;
    // A hash map is safe here because it is only ever probed by `get` in
    // `Orientation::from_fn` — its iteration order is never observed — and
    // at 10⁷-edge scale an ordered map would tax the hot merge path.
    // dgo-lint: allow(R4)
    let mut directions: HashMap<(u32, u32), bool> = HashMap::with_capacity(graph.num_edges());
    let mut stats = Vec::with_capacity(outcomes.len());
    for (part_directions, part_stats) in outcomes {
        directions.extend(part_directions);
        stats.push(part_stats);
    }
    let orientation = Orientation::from_fn(graph, |u, v| {
        *directions
            .get(&(u as u32, v as u32))
            .expect("every edge was assigned to exactly one part")
    });
    Ok(OrientResult {
        orientation,
        layering: None,
        metrics,
        stats,
        parts: parts_needed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgo_graph::generators::{barabasi_albert, clique, gnm, grid_2d, random_tree, star};

    #[test]
    fn complete_layering_on_random_graph() {
        let g = gnm(600, 1800, 1);
        let out = complete_layering(&g, &Params::practical(600)).unwrap();
        assert!(out.layering.is_complete());
        assert!(out.metrics.rounds > 0);
        assert!(out.stats.layers > 0);
    }

    #[test]
    fn out_degree_stays_near_k_log_log() {
        let g = gnm(1000, 4000, 2); // density 4
        let params = Params::practical(1000);
        let out = complete_layering(&g, &params).unwrap();
        let d = out.layering.out_degree_bound(&g).unwrap();
        let lambda = estimate_lambda(&g, &params);
        let loglog = (1000f64).log2().log2();
        // O(λ log log n) with a generous constant: the paper's bound modulo
        // implementation constants.
        assert!(
            (d as f64) <= 8.0 * lambda as f64 * loglog,
            "outdegree {d} too far above λ̂={lambda} · loglog n={loglog:.1}"
        );
    }

    #[test]
    fn forest_layering_low_outdegree() {
        let g = random_tree(2000, 4);
        let out = complete_layering(&g, &Params::practical(2000)).unwrap();
        assert!(out.layering.is_complete());
        let d = out.layering.out_degree_bound(&g).unwrap();
        assert!(d <= 12, "forest outdegree {d} too large");
    }

    #[test]
    fn star_layering() {
        let g = star(3000);
        let out = complete_layering(&g, &Params::practical(3000)).unwrap();
        assert!(out.layering.is_complete());
        // Star: leaves peel first, the center after; outdegree stays tiny.
        let d = out.layering.out_degree_bound(&g).unwrap();
        assert!(d <= 2, "star outdegree {d}");
    }

    #[test]
    fn tail_decay_property() {
        let g = gnm(2000, 6000, 7);
        let out = complete_layering(&g, &Params::practical(2000)).unwrap();
        let tails = out.layering.tail_sizes();
        // Geometric-ish decay overall: the tail at 2j is well below the tail
        // at j for the early layers (Lemma 3.15 property 2 up to constants).
        if tails.len() >= 8 {
            assert!(tails[7] * 2 < tails[0], "no decay: {tails:?}");
        }
    }

    #[test]
    fn orientation_path_small_lambda() {
        let g = grid_2d(30, 30);
        let r = orient(&g, &Params::practical(900)).unwrap();
        assert_eq!(r.parts, 1);
        r.orientation.validate(&g).unwrap();
        assert!(r.layering.is_some());
        assert!(r.orientation.max_out_degree() <= 16);
    }

    #[test]
    fn orientation_path_large_lambda_partitions() {
        // K64 on 64 vertices: λ = 32 > log2(64) = 6 → multiple parts.
        let g = clique(64);
        let mut params = Params::practical(64);
        params.exact_arboricity_threshold = 100;
        let r = orient(&g, &params).unwrap();
        assert!(r.parts > 1, "expected edge-partition path");
        r.orientation.validate(&g).unwrap();
        assert!(r.layering.is_none());
        // Outdegree must be sublinear in n: well below the trivial 63.
        assert!(r.orientation.max_out_degree() < 60);
    }

    #[test]
    fn power_law_orientation_beats_max_degree() {
        let g = barabasi_albert(1500, 3, 9);
        let r = orient(&g, &Params::practical(1500)).unwrap();
        r.orientation.validate(&g).unwrap();
        assert!(
            r.orientation.max_out_degree() * 2 < g.max_degree(),
            "outdegree {} vs Δ {}",
            r.orientation.max_out_degree(),
            g.max_degree()
        );
    }

    #[test]
    fn rounds_grow_slowly_with_n() {
        let params = Params::practical(0);
        let small = complete_layering(&gnm(500, 1500, 3), &params).unwrap();
        let large = complete_layering(&gnm(8000, 24000, 3), &params).unwrap();
        // 16x the instance must cost far less than 16x the rounds
        // (poly(log log n) scaling; allow 4x for constant noise).
        assert!(
            large.metrics.rounds < 4 * small.metrics.rounds.max(8),
            "rounds grew too fast: {} -> {}",
            small.metrics.rounds,
            large.metrics.rounds
        );
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let out = complete_layering(&Graph::empty(5), &Params::practical(5)).unwrap();
        assert!(out.layering.is_complete());
        let r = orient(&Graph::empty(0), &Params::practical(0)).unwrap();
        assert_eq!(r.orientation.num_edges(), 0);
    }

    #[test]
    fn lambda_hint_respected() {
        let g = gnm(300, 900, 5);
        let mut params = Params::practical(300);
        params.lambda_hint = 7;
        let out = complete_layering(&g, &params).unwrap();
        assert_eq!(out.stats.lambda_hat, 7);
        assert_eq!(out.stats.k, 14);
    }

    #[test]
    fn deterministic_end_to_end() {
        let g = gnm(400, 1200, 8);
        let p = Params::practical(400);
        let a = complete_layering(&g, &p).unwrap();
        let b = complete_layering(&g, &p).unwrap();
        assert_eq!(a.layering, b.layering);
        assert_eq!(a.metrics.rounds, b.metrics.rounds);
    }

    use dgo_graph::Graph;
}
