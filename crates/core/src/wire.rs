//! Delta/varint wire codec for [`ViewTree`] bundles.
//!
//! The Lemma 4.1 bundle exchange ships whole view trees between machines, and
//! the flat representation — two `u64` words per node (vertex image + parent
//! pointer) — wastes most of each word: images are small vertex ids and the
//! `parent` column is *near-sorted* (arena order is topological, and sibling
//! blocks are contiguous, so consecutive parents differ by small steps, often
//! zero). This module encodes the two wire columns into a compact byte
//! stream, packed eight bytes per MPC word
//! ([`dgo_mpc::packed_words`]):
//!
//! ```text
//! varint(n) · varint(vertex[0..n]) · zigzag-varint(Δ parent[1..n])
//! ```
//!
//! * **varint** — LEB128: seven payload bits per byte, high bit marks
//!   continuation; small values take one byte.
//! * **delta + zigzag** — parents are sent as differences from the previous
//!   parent (starting from 0), sign-folded so small negative steps stay
//!   small: `zigzag(d) = (d << 1) ^ (d >> 63)`.
//!
//! Depths and the children CSR never ship: [`decode`] rebuilds them from the
//! parent column in one forward pass each ([`ViewTree`]'s sibling runs are
//! ascending contiguous id ranges, so id-ordered reconstruction reproduces
//! the original structure exactly — the round trip is lossless).
//!
//! [`encoded_words`] computes the exact encoded length without materializing
//! the stream; it is what [`ViewTree::wire_words`] charges when the codec is
//! on (`DGO_WIRE_CODEC`, see [`dgo_mpc::tuning`]).
//!
//! When a bundle leaves the process — checkpoints on disk, the multi-process
//! backend's pipes — [`encode_framed`] / [`decode_framed`] wrap the word
//! stream in the hardened IPC frame of [`dgo_mpc::frame`]: a
//! magic/version/length/checksum header in front of the payload, so
//! truncation, corruption, version skew, and trailing garbage are rejected
//! *before* the codec ever parses a byte.

use crate::ViewTree;
use dgo_mpc::frame::{self, FrameError};
use dgo_mpc::{packed_words, BYTES_PER_WORD};

/// Sentinel parent of the root inside the arena (not transmitted).
const NO_PARENT: u32 = u32::MAX;

/// Longest legal varint for a `u64`: ⌈64 / 7⌉ bytes.
const MAX_VARINT_BYTES: usize = 10;

/// Decoding failure: the word stream is not a canonical [`encode`] output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The stream ended inside a varint or before the declared node count
    /// was satisfied.
    Truncated,
    /// The stream violates a structural rule (reason attached): zero node
    /// count, a parent pointing at itself or forward, varint overflow, or
    /// trailing garbage past the payload.
    Malformed(&'static str),
    /// The outer IPC frame was rejected ([`decode_framed`]): bad magic,
    /// version skew, checksum mismatch, truncation, oversized length, or
    /// trailing bytes.
    Frame(FrameError),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "wire stream truncated"),
            WireError::Malformed(reason) => write!(f, "malformed wire stream: {reason}"),
            WireError::Frame(e) => write!(f, "bundle frame rejected: {e}"),
        }
    }
}

impl From<FrameError> for WireError {
    fn from(e: FrameError) -> Self {
        WireError::Frame(e)
    }
}

impl std::error::Error for WireError {}

/// Bytes the LEB128 varint of `x` occupies: one per started 7-bit group.
/// `x | 1` makes zero cost one byte without a branch.
#[inline]
fn varint_len(x: u64) -> usize {
    let bits = 64 - (x | 1).leading_zeros() as usize;
    bits.div_ceil(7)
}

#[inline]
fn push_varint(bytes: &mut Vec<u8>, mut x: u64) {
    loop {
        let b = (x & 0x7f) as u8;
        x >>= 7;
        if x == 0 {
            bytes.push(b);
            return;
        }
        bytes.push(b | 0x80);
    }
}

/// Sign-folds a delta so small magnitudes of either sign stay small.
#[inline]
fn zigzag(d: i64) -> u64 {
    ((d << 1) ^ (d >> 63)) as u64
}

#[inline]
fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

/// Exact encoded length of `tree` in MPC words — the figure
/// [`ViewTree::wire_words`] charges — computed by summing varint lengths
/// without building the stream.
pub fn encoded_words(tree: &ViewTree) -> usize {
    packed_words(encoded_bytes(tree))
}

fn encoded_bytes(tree: &ViewTree) -> usize {
    let mut bytes = varint_len(tree.len() as u64);
    for &v in tree.vertex_col() {
        bytes += varint_len(v as u64);
    }
    let mut prev = 0i64;
    for &p in &tree.parent_col()[1..] {
        bytes += varint_len(zigzag(p as i64 - prev));
        prev = p as i64;
    }
    bytes
}

/// Encodes `tree` into its compact word stream. The returned length is
/// always [`encoded_words`]`(tree)`; the final word is zero-padded.
pub fn encode(tree: &ViewTree) -> Vec<u64> {
    let mut bytes = Vec::with_capacity(encoded_bytes(tree));
    push_varint(&mut bytes, tree.len() as u64);
    for &v in tree.vertex_col() {
        push_varint(&mut bytes, v as u64);
    }
    let mut prev = 0i64;
    for &p in &tree.parent_col()[1..] {
        push_varint(&mut bytes, zigzag(p as i64 - prev));
        prev = p as i64;
    }
    let mut words = vec![0u64; packed_words(bytes.len())];
    for (i, &b) in bytes.iter().enumerate() {
        words[i / BYTES_PER_WORD] |= (b as u64) << ((i % BYTES_PER_WORD) * 8);
    }
    words
}

/// Encodes `tree` as one self-delimiting [`frame::kind::BUNDLE`] IPC frame:
/// header (magic, version, payload length, FNV-1a checksum) followed by the
/// compact word stream of [`encode`]. This is the byte form a bundle takes
/// whenever it leaves the process.
pub fn encode_framed(tree: &ViewTree) -> Vec<u8> {
    frame::encode_frame(frame::kind::BUNDLE, &encode(tree))
}

/// Decodes one framed bundle produced by [`encode_framed`], verifying the
/// frame envelope (magic, version, length bound, checksum, no trailing
/// bytes) before handing the payload to the strict codec [`decode`].
pub fn decode_framed(bytes: &[u8]) -> Result<ViewTree, WireError> {
    let (kind, payload) = frame::decode_frame(bytes, frame::DEFAULT_MAX_PAYLOAD_WORDS)?;
    if kind != frame::kind::BUNDLE {
        return Err(WireError::Malformed("frame is not a bundle"));
    }
    decode(&payload)
}

/// Byte-granular reader over a packed word stream.
struct ByteReader<'a> {
    words: &'a [u64],
    pos: usize,
}

impl ByteReader<'_> {
    fn next_byte(&mut self) -> Result<u8, WireError> {
        let w = self.pos / BYTES_PER_WORD;
        if w >= self.words.len() {
            return Err(WireError::Truncated);
        }
        let b = (self.words[w] >> ((self.pos % BYTES_PER_WORD) * 8)) as u8;
        self.pos += 1;
        Ok(b)
    }

    fn read_varint(&mut self) -> Result<u64, WireError> {
        let mut x = 0u64;
        for i in 0..MAX_VARINT_BYTES {
            let b = self.next_byte()?;
            x |= ((b & 0x7f) as u64) << (7 * i);
            if b & 0x80 == 0 {
                return Ok(x);
            }
        }
        Err(WireError::Malformed("varint longer than 10 bytes"))
    }

    /// Remaining payload bytes assuming the stream is exactly `self.words`.
    fn bytes_left(&self) -> usize {
        self.words.len() * BYTES_PER_WORD - self.pos
    }
}

/// Decodes a word stream produced by [`encode`] back into the original tree.
///
/// Strict: the stream must be canonical — correct node count, parents in
/// topological order (every parent precedes its child), and nothing but zero
/// padding after the payload — so any corruption surfaces as a
/// [`WireError`] instead of a silently different tree.
pub fn decode(words: &[u64]) -> Result<ViewTree, WireError> {
    let mut r = ByteReader { words, pos: 0 };
    let n = r.read_varint()?;
    if n == 0 {
        return Err(WireError::Malformed("zero node count"));
    }
    if n > u32::MAX as u64 || (n as usize).saturating_sub(1) > r.bytes_left() {
        // Each node past the count costs at least one vertex byte, so a count
        // exceeding the remaining bytes can never be satisfied — reject it
        // before sizing any allocation off attacker-controlled input.
        return Err(WireError::Truncated);
    }
    let n = n as usize;
    let mut vertex = Vec::with_capacity(n);
    for _ in 0..n {
        let v = r.read_varint()?;
        if v > u32::MAX as u64 {
            return Err(WireError::Malformed("vertex image exceeds u32"));
        }
        vertex.push(v as u32);
    }
    let mut parent = Vec::with_capacity(n);
    parent.push(NO_PARENT);
    let mut prev = 0i64;
    for i in 1..n {
        let p = prev + unzigzag(r.read_varint()?);
        if p < 0 || p >= i as i64 {
            return Err(WireError::Malformed("parent out of topological order"));
        }
        prev = p;
        parent.push(p as u32);
    }
    // Only zero padding inside the final word may remain.
    if r.bytes_left() >= BYTES_PER_WORD {
        return Err(WireError::Malformed("trailing words past the payload"));
    }
    while r.bytes_left() > 0 {
        if r.next_byte()? != 0 {
            return Err(WireError::Malformed("nonzero padding past the payload"));
        }
    }
    Ok(ViewTree::from_wire_columns(vertex, parent))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(t: &ViewTree) {
        let words = encode(t);
        assert_eq!(words.len(), encoded_words(t), "sizing must match encode");
        let back = decode(&words).expect("canonical stream decodes");
        assert_eq!(&back, t, "round trip must be lossless");
    }

    #[test]
    fn varint_lengths() {
        assert_eq!(varint_len(0), 1);
        assert_eq!(varint_len(127), 1);
        assert_eq!(varint_len(128), 2);
        assert_eq!(varint_len(u64::MAX), 10);
    }

    #[test]
    fn zigzag_round_trips() {
        for d in [
            0i64,
            1,
            -1,
            63,
            -64,
            1 << 40,
            -(1 << 40),
            i64::MAX,
            i64::MIN,
        ] {
            assert_eq!(unzigzag(zigzag(d)), d);
        }
        // Small magnitudes stay small after folding.
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn singleton_and_star_round_trip() {
        round_trip(&ViewTree::singleton(0));
        round_trip(&ViewTree::singleton(1_000_000));
        round_trip(&ViewTree::star(3, &[0, 1, 2]));
        let wide: Vec<u32> = (0..500).collect();
        round_trip(&ViewTree::star(777, &wide));
    }

    #[test]
    fn deep_chain_round_trips() {
        // A path tree: attach stars end to end so depths accumulate.
        let mut t = ViewTree::star(0, &[1]);
        for v in 1..40u32 {
            let leaf = t
                .leaves_at_depth(v)
                .find(|&x| t.vertex(x) == v as usize)
                .unwrap();
            t.attach(&[(leaf, &ViewTree::star(v as usize, &[v - 1, v + 1]))]);
        }
        round_trip(&t);
    }

    #[test]
    fn star_compresses_well_below_flat() {
        let neighbors: Vec<u32> = (0..128).collect();
        let t = ViewTree::star(5, &neighbors);
        // Flat: 2 × 129 = 258 words. Encoded: every vertex id and every
        // parent delta is one byte, so ~131 bytes ≈ 17 words.
        assert!(encoded_words(&t) * 4 < t.flat_wire_words());
    }

    #[test]
    fn truncated_and_malformed_streams_rejected() {
        let t = ViewTree::star(2, &[0, 1, 3, 4]);
        let words = encode(&t);
        assert_eq!(decode(&words[..words.len() - 1]), Err(WireError::Truncated));
        assert_eq!(decode(&[]), Err(WireError::Truncated));
        // Node count 0.
        assert_eq!(
            decode(&[0u64]),
            Err(WireError::Malformed("zero node count"))
        );
        // Claimed count far beyond the stream.
        assert_eq!(decode(&[0xffu64]), Err(WireError::Truncated));
        // Nonzero padding after the payload.
        let mut dirty = encode(&ViewTree::singleton(1));
        *dirty.last_mut().unwrap() |= 0xff00_0000_0000_0000;
        assert!(matches!(decode(&dirty), Err(WireError::Malformed(_))));
        // Extra all-zero word past the payload.
        let mut long = encode(&ViewTree::singleton(1));
        long.push(0);
        assert!(matches!(decode(&long), Err(WireError::Malformed(_))));
    }

    #[test]
    fn framed_round_trip_is_lossless() {
        for t in [
            ViewTree::singleton(9),
            ViewTree::star(3, &[0, 1, 2, 7]),
            ViewTree::star(777, &(0..300).collect::<Vec<u32>>()),
        ] {
            let bytes = encode_framed(&t);
            assert_eq!(decode_framed(&bytes).expect("framed round trip"), t);
        }
    }

    #[test]
    fn framed_rejects_truncation_corruption_and_skew() {
        let bytes = encode_framed(&ViewTree::star(2, &[0, 1, 3]));

        // Truncated anywhere — inside the header or inside the payload.
        for cut in [0, 3, frame::HEADER_BYTES - 1, bytes.len() - 1] {
            assert!(
                matches!(decode_framed(&bytes[..cut]), Err(WireError::Frame(_))),
                "cut at {cut} must be rejected"
            );
        }

        // Single-bit corruption in the payload fails the checksum.
        let mut corrupt = bytes.clone();
        *corrupt.last_mut().unwrap() ^= 0x01;
        assert_eq!(
            decode_framed(&corrupt),
            Err(WireError::Frame(FrameError::BadChecksum))
        );

        // Bad magic.
        let mut magic = bytes.clone();
        magic[0] = b'X';
        assert!(matches!(
            decode_framed(&magic),
            Err(WireError::Frame(FrameError::BadMagic(_)))
        ));

        // Version skew.
        let mut skew = bytes.clone();
        skew[4] = frame::VERSION as u8 + 1;
        assert!(matches!(
            decode_framed(&skew),
            Err(WireError::Frame(FrameError::BadVersion(_)))
        ));

        // Trailing bytes past the frame.
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(
            decode_framed(&trailing),
            Err(WireError::Frame(FrameError::TrailingBytes(1)))
        );

        // A forged oversized length never drives an allocation.
        let mut huge = bytes;
        huge[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_framed(&huge),
            Err(WireError::Frame(FrameError::Oversized { .. }))
        ));
    }

    #[test]
    fn framed_rejects_wrong_frame_kind() {
        let words = encode(&ViewTree::singleton(4));
        let hello = frame::encode_frame(frame::kind::HELLO, &words);
        assert_eq!(
            decode_framed(&hello),
            Err(WireError::Malformed("frame is not a bundle"))
        );
    }

    #[test]
    fn forward_parent_rejected() {
        // Hand-build: n=2, vertices [0, 1], parent delta zigzag(1)=2 → parent
        // of node 1 would be 1 (itself): out of topological order.
        let bytes = [2u8, 0, 1, 2];
        let mut word = 0u64;
        for (i, &b) in bytes.iter().enumerate() {
            word |= (b as u64) << (i * 8);
        }
        assert_eq!(
            decode(&[word]),
            Err(WireError::Malformed("parent out of topological order"))
        );
    }
}
