//! Error types for the graph substrate.

use std::error::Error as StdError;
use std::fmt;

/// Errors produced while constructing or validating graphs and graph
/// annotations (orientations, colorings, layer assignments).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// An edge endpoint referred to a vertex id `>= n`.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: usize,
        /// Number of vertices in the graph.
        n: usize,
    },
    /// A self-loop `(v, v)` was supplied; the substrate models simple graphs.
    SelfLoop {
        /// The vertex with the loop.
        vertex: usize,
    },
    /// An annotation (orientation, coloring, layering) has the wrong length.
    LengthMismatch {
        /// Expected number of entries.
        expected: usize,
        /// Number of entries supplied.
        found: usize,
    },
    /// A generator was asked for an impossible configuration.
    InvalidParameter {
        /// Human-readable description of the violated requirement.
        reason: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(
                    f,
                    "vertex {vertex} out of range for graph with {n} vertices"
                )
            }
            GraphError::SelfLoop { vertex } => {
                write!(
                    f,
                    "self-loop at vertex {vertex} not allowed in a simple graph"
                )
            }
            GraphError::LengthMismatch { expected, found } => {
                write!(
                    f,
                    "annotation length {found} does not match expected {expected}"
                )
            }
            GraphError::InvalidParameter { reason } => {
                write!(f, "invalid parameter: {reason}")
            }
        }
    }
}

impl StdError for GraphError {}

/// Convenience result alias for fallible graph operations.
pub type Result<T> = std::result::Result<T, GraphError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = GraphError::SelfLoop { vertex: 3 };
        let s = e.to_string();
        assert!(s.starts_with("self-loop"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }

    #[test]
    fn display_vertex_out_of_range() {
        let e = GraphError::VertexOutOfRange { vertex: 9, n: 5 };
        assert_eq!(
            e.to_string(),
            "vertex 9 out of range for graph with 5 vertices"
        );
    }

    #[test]
    fn display_length_mismatch() {
        let e = GraphError::LengthMismatch {
            expected: 4,
            found: 2,
        };
        assert!(e.to_string().contains("length 2"));
        assert!(e.to_string().contains("expected 4"));
    }
}
