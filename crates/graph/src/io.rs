//! Plain-text edge-list I/O.
//!
//! The format is the de-facto standard of SNAP-style graph datasets: one
//! `u v` pair per line, `#`-prefixed comment lines ignored, whitespace
//! separated. Vertex ids are dense `0..n`; `n` is taken as one past the
//! largest id unless a nodes header is present. The header is matched
//! case-insensitively and tolerates trailing fields on the same comment
//! line, so the real SNAP form `# Nodes: 1005 Edges: 25571` fixes the
//! vertex count (and keeps trailing isolated vertices) just like the
//! lowercase `# nodes: <n>`.

use crate::error::{GraphError, Result};
use crate::graph::{ingest_jobs, Graph};
use std::io::{Read, Write};

const NODES_TAG: &str = "nodes:";

/// Below this buffer size the parser always runs as one inline chunk —
/// splitting a few kilobytes across pool tasks costs more than parsing them.
const MIN_CHUNK_BYTES: usize = 1 << 16;

/// Reads a graph from an edge-list text stream.
///
/// Accepts `#` comments; a nodes header fixes the vertex count (otherwise
/// it is inferred as `max id + 1`). The header is matched
/// case-insensitively and anything after the count on the same line is
/// ignored, so both `# nodes: 4` and SNAP's `# Nodes: 1005 Edges: 25571`
/// work — without the latter, the count would be silently inferred and
/// trailing isolated vertices dropped. Duplicate edges collapse;
/// self-loops are rejected like everywhere else in the crate.
///
/// The stream is slurped once, then parsed chunk-parallel on the pool
/// (`DGO_JOBS` thread budget, default all cores) directly into normalized
/// `(u32, u32)` pairs — see [`parse_edge_list`] — and built with the
/// counting-sort CSR path ([`Graph::from_normalized_unsorted`]). Errors,
/// messages, and line numbers are identical to a sequential line-by-line
/// scan at any thread count; vertex ids are limited to `u32` (ids beyond
/// `u32::MAX` are rejected as bad vertex ids instead of silently
/// truncating, as real SNAP ids always fit).
///
/// The reader is taken by value; pass `&mut reader` to keep ownership
/// (blanket `Read for &mut R`).
///
/// # Errors
///
/// [`GraphError::InvalidParameter`] on malformed lines and on edges whose
/// endpoints exceed a declared nodes header (reported with the offending
/// line number), plus the usual construction errors.
///
/// # Examples
///
/// ```
/// use dgo_graph::io::read_edge_list;
///
/// let text = "# Nodes: 4 Edges: 3\n0 1\n1 2\n# a comment\n2 3\n";
/// let g = read_edge_list(text.as_bytes())?;
/// assert_eq!(g.num_vertices(), 4);
/// assert_eq!(g.num_edges(), 3);
/// # Ok::<(), dgo_graph::GraphError>(())
/// ```
pub fn read_edge_list<R: Read>(mut reader: R) -> Result<Graph> {
    let mut buf = Vec::new();
    if let Err(e) = reader.read_to_end(&mut buf) {
        // Attribute the failure to the line being read when it struck: the
        // bytes read so far end inside that line.
        let line = buf.iter().filter(|&&b| b == b'\n').count() + 1;
        return Err(GraphError::InvalidParameter {
            reason: format!("i/o error on line {line}: {e}"),
        });
    }
    let (n, edges) = parse_edge_list(&buf)?;
    Ok(Graph::from_normalized_unsorted(n, &edges, ingest_jobs()))
}

/// Classification of one chunk of the byte buffer, produced by one pool task.
struct ChunkParse {
    /// Normalized `(min, max)` pairs of the chunk's well-formed edges, in
    /// file order. Self-loops are tracked separately, not stored.
    edges: Vec<(u32, u32)>,
    /// Total lines in the chunk (for global line numbering).
    lines: usize,
    /// Largest endpoint id seen (0 when no edge).
    max_id: u32,
    saw_edge: bool,
    /// Value of the last `nodes:` header in the chunk.
    declared: Option<usize>,
    /// First malformed line: `(0-based local line, what)`. Parsing stops at
    /// it, exactly like the sequential scan aborts there.
    fatal: Option<(usize, LineIssue)>,
    /// First self-loop: `(0-based local line, vertex)`. Not fatal during the
    /// scan — the sequential path also finishes scanning before rejecting.
    self_loop: Option<(usize, u32)>,
}

/// The malformed-line cases, recorded with enough context to format the
/// sequential scan's exact message once the global line number is known.
enum LineIssue {
    InvalidUtf8,
    BadHeader,
    NotAnEdge(String),
    BadVertexId(String),
}

impl LineIssue {
    /// The error the sequential line-by-line scan would have produced.
    fn into_error(self, line: usize) -> GraphError {
        let reason = match self {
            // BufRead::lines' wording for invalid UTF-8, kept verbatim.
            LineIssue::InvalidUtf8 => {
                format!("i/o error on line {line}: stream did not contain valid UTF-8")
            }
            LineIssue::BadHeader => format!("bad nodes header on line {line}"),
            LineIssue::NotAnEdge(text) => format!("line {line} is not an edge: {text:?}"),
            LineIssue::BadVertexId(token) => format!("bad vertex id {token:?} on line {line}"),
        };
        GraphError::InvalidParameter { reason }
    }
}

/// Parses an edge-list byte buffer into `(n, normalized edges)`: pairs are
/// `(min, max)` as `u32` in file order, duplicates preserved (the CSR build
/// collapses them), `n` from the last nodes header or `max id + 1`.
///
/// This is [`read_edge_list`] minus the slurp and the CSR build — exposed so
/// the scale harness can time the parse and build phases separately. The
/// buffer is split on line boundaries into per-thread chunks, each parsed
/// independently (with per-chunk max-id, header, and error tracking), and
/// the per-chunk edge vectors are concatenated in chunk order, so the result
/// and every error are identical to a sequential scan.
///
/// # Errors
///
/// Exactly [`read_edge_list`]'s malformed-line, bad-header, declared-range,
/// and self-loop errors.
pub fn parse_edge_list(buf: &[u8]) -> Result<(usize, Vec<(u32, u32)>)> {
    let threads = ingest_jobs();
    let ranges = chunk_ranges(buf, threads);
    let mut parses: Vec<ChunkParse> =
        rayon::chunk_map_collect(&ranges, threads, |_, &(start, end)| {
            parse_chunk(&buf[start..end])
        });

    // Merge in chunk order. Malformed lines win (the sequential scan aborts
    // at the first one, before any post-scan check); then the declared-range
    // check over the whole file; then the first self-loop.
    let mut line_base = 0usize;
    let mut fatal: Option<(usize, LineIssue)> = None;
    let mut self_loop: Option<u32> = None;
    let mut declared: Option<usize> = None;
    let mut max_id = 0u32;
    let mut saw_edge = false;
    for parse in &mut parses {
        if fatal.is_none() {
            if let Some((local, issue)) = parse.fatal.take() {
                fatal = Some((line_base + local + 1, issue));
            } else {
                // Chunks after a fatal line were never reached by the
                // sequential scan; their headers and self-loops don't exist.
                if let Some(n) = parse.declared {
                    declared = Some(n);
                }
                if self_loop.is_none() {
                    if let Some((_, v)) = parse.self_loop {
                        self_loop = Some(v);
                    }
                }
                max_id = max_id.max(parse.max_id);
                saw_edge |= parse.saw_edge;
            }
        }
        line_base += parse.lines;
    }
    if let Some((line, issue)) = fatal {
        return Err(issue.into_error(line));
    }
    if let Some(n) = declared {
        if saw_edge && max_id as usize >= n {
            return Err(first_out_of_range(buf, n));
        }
    }
    if let Some(vertex) = self_loop {
        return Err(GraphError::SelfLoop {
            vertex: vertex as usize,
        });
    }
    let n = declared.unwrap_or(if saw_edge { max_id as usize + 1 } else { 0 });
    let total: usize = parses.iter().map(|p| p.edges.len()).sum();
    let mut edges = Vec::new();
    for parse in parses {
        if edges.is_empty() && parse.edges.len() == total {
            edges = parse.edges; // single-chunk fast path: no copy
        } else {
            edges.reserve_exact(total - edges.len());
            edges.extend_from_slice(&parse.edges);
        }
    }
    Ok((n, edges))
}

/// Splits `buf` into up to `threads` non-empty ranges, each ending just
/// after a `'\n'` (except possibly the last), so every line lives in exactly
/// one chunk. Deterministic in `(buf.len(), threads)`.
fn chunk_ranges(buf: &[u8], threads: usize) -> Vec<(usize, usize)> {
    let want = threads.min(buf.len() / MIN_CHUNK_BYTES).max(1);
    let mut bounds = vec![0usize];
    for i in 1..want {
        let target = buf.len() * i / want;
        let last = *bounds.last().expect("nonempty");
        if target < last {
            continue;
        }
        if let Some(offset) = buf[target..].iter().position(|&b| b == b'\n') {
            let cut = target + offset + 1;
            if cut > last && cut < buf.len() {
                bounds.push(cut);
            }
        }
    }
    bounds.push(buf.len());
    bounds.windows(2).map(|w| (w[0], w[1])).collect()
}

/// Iterates the lines of a chunk with `BufRead::lines` semantics: `'\n'`
/// terminates a line (a trailing `'\r'` is handled later by `trim`), and a
/// final newline does not open an empty last line.
fn chunk_lines(chunk: &[u8]) -> impl Iterator<Item = &[u8]> {
    let body = match chunk.last() {
        Some(b'\n') => &chunk[..chunk.len() - 1],
        _ => chunk,
    };
    // `[].split` yields one empty piece even for an empty body; skip it so an
    // all-newline chunk counts the right number of lines.
    let skip_all = chunk.is_empty();
    body.split(|&b| b == b'\n')
        .take(if skip_all { 0 } else { usize::MAX })
}

/// Sequential scan of one chunk; see [`ChunkParse`] for what it records.
fn parse_chunk(chunk: &[u8]) -> ChunkParse {
    let mut out = ChunkParse {
        // ~12 bytes/edge line is typical of SNAP dumps; over-guessing a
        // little beats a reallocation of a multi-megabyte vector.
        edges: Vec::with_capacity(chunk.len() / 10 + 4),
        lines: 0,
        max_id: 0,
        saw_edge: false,
        declared: None,
        fatal: None,
        self_loop: None,
    };
    for line in chunk_lines(chunk) {
        let local = out.lines;
        out.lines += 1;
        let Ok(text) = std::str::from_utf8(line) else {
            out.fatal = Some((local, LineIssue::InvalidUtf8));
            break;
        };
        let trimmed = text.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(comment) = trimmed.strip_prefix('#') {
            let comment = comment.trim();
            // Case-insensitive `nodes:` header; SNAP puts `Edges: <m>` (or
            // other fields) after the count on the same line, so only the
            // first token after the tag is the count. `get` keeps free-form
            // non-ASCII comments safe: a multi-byte character straddling the
            // tag length just means this is not a header.
            if comment
                .get(..NODES_TAG.len())
                .is_some_and(|tag| tag.eq_ignore_ascii_case(NODES_TAG))
            {
                let count = comment[NODES_TAG.len()..]
                    .split_whitespace()
                    .next()
                    .unwrap_or("");
                match count.parse::<usize>() {
                    Ok(n) => out.declared = Some(n),
                    Err(_) => {
                        out.fatal = Some((local, LineIssue::BadHeader));
                        break;
                    }
                }
            }
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let (u, v) = match (parts.next(), parts.next()) {
            (Some(u), Some(v)) => (u, v),
            _ => {
                out.fatal = Some((local, LineIssue::NotAnEdge(trimmed.to_string())));
                break;
            }
        };
        let (u, v) = match (u.parse::<u32>(), v.parse::<u32>()) {
            (Ok(u), Ok(v)) => (u, v),
            (Err(_), _) => {
                out.fatal = Some((local, LineIssue::BadVertexId(u.to_string())));
                break;
            }
            (_, Err(_)) => {
                out.fatal = Some((local, LineIssue::BadVertexId(v.to_string())));
                break;
            }
        };
        out.max_id = out.max_id.max(u).max(v);
        out.saw_edge = true;
        if u == v {
            if out.self_loop.is_none() {
                out.self_loop = Some((local, u));
            }
        } else {
            out.edges.push(if u < v { (u, v) } else { (v, u) });
        }
    }
    out
}

/// Error path of the declared-range check: rescans the buffer sequentially
/// for the first edge with an endpoint `>= n`, reporting the offending
/// endpoint (first coordinate checked first, in file order) and its line —
/// a declared count smaller than an id used to surface as a bare
/// `VertexOutOfRange` with no position.
fn first_out_of_range(buf: &[u8], n: usize) -> GraphError {
    for (line_no, line) in chunk_lines(buf).enumerate() {
        let Ok(text) = std::str::from_utf8(line) else {
            break;
        };
        let trimmed = text.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let (Some(u), Some(v)) = (parts.next(), parts.next()) else {
            break;
        };
        let (Ok(u), Ok(v)) = (u.parse::<usize>(), v.parse::<usize>()) else {
            break;
        };
        if u >= n || v >= n {
            return GraphError::InvalidParameter {
                reason: format!(
                    "vertex {} on line {} is out of range for the declared nodes count {n}",
                    if u >= n { u } else { v },
                    line_no + 1
                ),
            };
        }
    }
    // The caller only rescans when max_id >= n, so an edge must be found;
    // keep a sane fallback rather than panicking on an impossible state.
    GraphError::VertexOutOfRange { vertex: n, n }
}

/// Writes a graph as an edge list with a SNAP-style `# Nodes: <n> Edges: <m>`
/// header (round-trips through [`read_edge_list`], including isolated
/// trailing vertices).
///
/// The writer is taken by value; pass `&mut writer` to keep ownership.
///
/// # Errors
///
/// [`GraphError::InvalidParameter`] wrapping any I/O failure.
pub fn write_edge_list<W: Write>(graph: &Graph, writer: W) -> Result<()> {
    let mut w = std::io::BufWriter::new(writer);
    let emit = |e: std::io::Error| GraphError::InvalidParameter {
        reason: format!("i/o error while writing: {e}"),
    };
    writeln!(
        w,
        "# Nodes: {} Edges: {}",
        graph.num_vertices(),
        graph.num_edges()
    )
    .map_err(emit)?;
    for (u, v) in graph.edges() {
        writeln!(w, "{u} {v}").map_err(emit)?;
    }
    w.flush().map_err(emit)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::gnm;

    #[test]
    fn reads_basic_list() {
        let g = read_edge_list("0 1\n1 2\n".as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn header_fixes_vertex_count() {
        let g = read_edge_list("# nodes: 10\n0 1\n".as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 10);
    }

    #[test]
    fn snap_header_is_case_insensitive_with_trailing_edges_field() {
        // The real SNAP header form: capitalized, edge count on the same
        // line. This used to fall through to max_id+1 inference, silently
        // dropping the trailing isolated vertices.
        let g = read_edge_list("# Nodes: 1005 Edges: 2\n0 1\n1 2\n".as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 1005);
        assert_eq!(g.num_edges(), 2);
        let g = read_edge_list("# NODES: 7\n0 1\n".as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 7);
    }

    #[test]
    fn non_ascii_comments_are_skipped_not_panicked() {
        // A multi-byte character straddling the header-tag length must not
        // make the byte-wise tag comparison panic; free-form comments (SNAP
        // dumps carry titles and URLs) are simply ignored.
        // "abcdeé": byte 6 falls inside the two-byte 'é'.
        let g = read_edge_list("# abcdeé\n# Gráfo überall\n0 1\n".as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 2);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn undershooting_header_reports_offending_line() {
        // Declared count below the largest id: the error must carry the
        // line of the first offending edge, not a bare VertexOutOfRange.
        let err = read_edge_list("# Nodes: 3 Edges: 3\n0 1\n1 2\n2 5\n".as_bytes()).unwrap_err();
        let message = err.to_string();
        assert!(message.contains("vertex 5"), "got: {message}");
        assert!(message.contains("line 4"), "got: {message}");
        assert!(message.contains("declared nodes count 3"), "got: {message}");
        // A header placed after the edges is still enforced with the line.
        let err = read_edge_list("0 9\n# nodes: 4\n".as_bytes()).unwrap_err();
        let message = err.to_string();
        assert!(message.contains("vertex 9"), "got: {message}");
        assert!(message.contains("line 1"), "got: {message}");
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let g = read_edge_list("# hi\n\n0 2\n#more\n1 2\n".as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn tabs_and_extra_tokens_tolerated() {
        // Weighted formats carry a third column; we ignore it.
        let g = read_edge_list("0\t1\t5.0\n1\t2\t3.0\n".as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn malformed_line_rejected() {
        let err = read_edge_list("0\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("not an edge"));
        let err = read_edge_list("a b\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("bad vertex id"));
    }

    #[test]
    fn bad_header_rejected() {
        assert!(read_edge_list("# nodes: many\n".as_bytes()).is_err());
    }

    #[test]
    fn self_loop_rejected() {
        assert!(read_edge_list("3 3\n".as_bytes()).is_err());
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let g = read_edge_list("".as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 0);
    }

    #[test]
    fn parse_edge_list_exposes_normalized_pairs() {
        let (n, edges) = parse_edge_list(b"# nodes: 5\n3 1\n0 2\n3 1\n").unwrap();
        assert_eq!(n, 5);
        // File order, normalized (min, max), duplicates preserved.
        assert_eq!(edges, vec![(1, 3), (0, 2), (1, 3)]);
    }

    #[test]
    fn malformed_line_wins_over_earlier_self_loop() {
        // The scan aborts at the first malformed line; the self-loop it
        // already passed is never reported (it would only surface from the
        // post-scan construction).
        let err = read_edge_list("1 1\nnot-an-edge\n".as_bytes()).unwrap_err();
        let message = err.to_string();
        assert!(message.contains("line 2 is not an edge"), "got: {message}");
    }

    #[test]
    fn declared_range_wins_over_earlier_self_loop() {
        // The declared-nodes range check runs over the whole scan before
        // self-loops are rejected; the offending endpoint and line win.
        let err = read_edge_list("# nodes: 3\n1 1\n5 6\n".as_bytes()).unwrap_err();
        let message = err.to_string();
        assert!(message.contains("vertex 5"), "got: {message}");
        assert!(message.contains("line 3"), "got: {message}");
    }

    #[test]
    fn ids_beyond_u32_are_bad_vertex_ids() {
        // Ids are parsed as u32 (SNAP ids always fit); an oversized id is a
        // parse error instead of the silent truncation it used to be.
        let err = read_edge_list("0 4294967296\n".as_bytes()).unwrap_err();
        let message = err.to_string();
        assert!(message.contains("bad vertex id"), "got: {message}");
        assert!(message.contains("4294967296"), "got: {message}");
    }

    /// A buffer big enough to split into multiple parse chunks under a
    /// multi-thread `DGO_JOBS` (each chunk must exceed 64 KiB), padded with
    /// comment lines so the edge structure stays tiny.
    fn multi_chunk_text(edges: &str) -> String {
        let mut text = String::with_capacity(300 << 10);
        for i in 0..6000 {
            text.push_str(&format!("# padding comment line number {i} {i} {i}\n"));
        }
        text.push_str(edges);
        text
    }

    #[test]
    fn multi_chunk_error_keeps_global_line_number() {
        // 6000 comment lines then a malformed line: the reported line number
        // must be global no matter how many chunks the buffer split into.
        let err = read_edge_list(multi_chunk_text("0 1\nbogus\n").as_bytes()).unwrap_err();
        let message = err.to_string();
        assert!(
            message.contains("line 6002 is not an edge"),
            "got: {message}"
        );
    }

    #[test]
    fn multi_chunk_header_after_edges_still_applies() {
        let text = multi_chunk_text("0 1\n1 2\n# nodes: 9\n");
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 9);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn roundtrip_preserves_graph() {
        let g = gnm(60, 150, 9);
        let mut buffer = Vec::new();
        write_edge_list(&g, &mut buffer).unwrap();
        let back = read_edge_list(buffer.as_slice()).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn roundtrip_keeps_isolated_vertices() {
        let g = Graph::from_edges(5, &[(0, 1)]).unwrap(); // 2,3,4 isolated
        let mut buffer = Vec::new();
        write_edge_list(&g, &mut buffer).unwrap();
        let text = String::from_utf8(buffer.clone()).unwrap();
        assert!(
            text.starts_with("# Nodes: 5 Edges: 1\n"),
            "writer emits the SNAP header form, got: {text:?}"
        );
        let back = read_edge_list(buffer.as_slice()).unwrap();
        assert_eq!(back.num_vertices(), 5);
    }
}
