//! Plain-text edge-list I/O.
//!
//! The format is the de-facto standard of SNAP-style graph datasets: one
//! `u v` pair per line, `#`-prefixed comment lines ignored, whitespace
//! separated. Vertex ids are dense `0..n`; `n` is taken as one past the
//! largest id unless a nodes header is present. The header is matched
//! case-insensitively and tolerates trailing fields on the same comment
//! line, so the real SNAP form `# Nodes: 1005 Edges: 25571` fixes the
//! vertex count (and keeps trailing isolated vertices) just like the
//! lowercase `# nodes: <n>`.

use crate::error::{GraphError, Result};
use crate::graph::Graph;
use std::io::{BufRead, BufReader, Read, Write};

/// Reads a graph from an edge-list text stream.
///
/// Accepts `#` comments; a nodes header fixes the vertex count (otherwise
/// it is inferred as `max id + 1`). The header is matched
/// case-insensitively and anything after the count on the same line is
/// ignored, so both `# nodes: 4` and SNAP's `# Nodes: 1005 Edges: 25571`
/// work — without the latter, the count would be silently inferred and
/// trailing isolated vertices dropped. Duplicate edges collapse;
/// self-loops are rejected like everywhere else in the crate.
///
/// The reader is taken by value; pass `&mut reader` to keep ownership
/// (blanket `Read for &mut R`).
///
/// # Errors
///
/// [`GraphError::InvalidParameter`] on malformed lines and on edges whose
/// endpoints exceed a declared nodes header (reported with the offending
/// line number), plus the usual construction errors.
///
/// # Examples
///
/// ```
/// use dgo_graph::io::read_edge_list;
///
/// let text = "# Nodes: 4 Edges: 3\n0 1\n1 2\n# a comment\n2 3\n";
/// let g = read_edge_list(text.as_bytes())?;
/// assert_eq!(g.num_vertices(), 4);
/// assert_eq!(g.num_edges(), 3);
/// # Ok::<(), dgo_graph::GraphError>(())
/// ```
pub fn read_edge_list<R: Read>(reader: R) -> Result<Graph> {
    const NODES_TAG: &str = "nodes:";
    let buffered = BufReader::new(reader);
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut edge_lines: Vec<usize> = Vec::new();
    let mut declared_nodes: Option<usize> = None;
    let mut max_id = 0usize;
    let mut saw_vertex = false;
    for (line_no, line) in buffered.lines().enumerate() {
        let line = line.map_err(|e| GraphError::InvalidParameter {
            reason: format!("i/o error on line {}: {e}", line_no + 1),
        })?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(comment) = trimmed.strip_prefix('#') {
            let comment = comment.trim();
            // Case-insensitive `nodes:` header; SNAP puts `Edges: <m>` (or
            // other fields) after the count on the same line, so only the
            // first token after the tag is the count. `get` keeps free-form
            // non-ASCII comments safe: a multi-byte character straddling the
            // tag length just means this is not a header.
            if comment
                .get(..NODES_TAG.len())
                .is_some_and(|tag| tag.eq_ignore_ascii_case(NODES_TAG))
            {
                let count = comment[NODES_TAG.len()..]
                    .split_whitespace()
                    .next()
                    .unwrap_or("");
                declared_nodes = Some(count.parse().map_err(|_| GraphError::InvalidParameter {
                    reason: format!("bad nodes header on line {}", line_no + 1),
                })?);
            }
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let (u, v) = match (parts.next(), parts.next()) {
            (Some(u), Some(v)) => (u, v),
            _ => {
                return Err(GraphError::InvalidParameter {
                    reason: format!("line {} is not an edge: {trimmed:?}", line_no + 1),
                })
            }
        };
        let parse = |s: &str| -> Result<usize> {
            s.parse().map_err(|_| GraphError::InvalidParameter {
                reason: format!("bad vertex id {s:?} on line {}", line_no + 1),
            })
        };
        let (u, v) = (parse(u)?, parse(v)?);
        max_id = max_id.max(u).max(v);
        saw_vertex = true;
        edges.push((u, v));
        edge_lines.push(line_no + 1);
    }
    // A declared count smaller than an id in the file used to surface as a
    // bare VertexOutOfRange from Graph::from_edges with no position; report
    // the first offending line instead (the header may follow the edges, so
    // this is checked after the scan).
    if let Some(n) = declared_nodes {
        if let Some(idx) = edges.iter().position(|&(u, v)| u >= n || v >= n) {
            let (u, v) = edges[idx];
            return Err(GraphError::InvalidParameter {
                reason: format!(
                    "vertex {} on line {} is out of range for the declared nodes count {n}",
                    if u >= n { u } else { v },
                    edge_lines[idx]
                ),
            });
        }
    }
    let n = declared_nodes.unwrap_or(if saw_vertex { max_id + 1 } else { 0 });
    Graph::from_edges(n, &edges)
}

/// Writes a graph as an edge list with a SNAP-style `# Nodes: <n> Edges: <m>`
/// header (round-trips through [`read_edge_list`], including isolated
/// trailing vertices).
///
/// The writer is taken by value; pass `&mut writer` to keep ownership.
///
/// # Errors
///
/// [`GraphError::InvalidParameter`] wrapping any I/O failure.
pub fn write_edge_list<W: Write>(graph: &Graph, writer: W) -> Result<()> {
    let mut w = std::io::BufWriter::new(writer);
    let emit = |e: std::io::Error| GraphError::InvalidParameter {
        reason: format!("i/o error while writing: {e}"),
    };
    writeln!(
        w,
        "# Nodes: {} Edges: {}",
        graph.num_vertices(),
        graph.num_edges()
    )
    .map_err(emit)?;
    for (u, v) in graph.edges() {
        writeln!(w, "{u} {v}").map_err(emit)?;
    }
    w.flush().map_err(emit)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::gnm;

    #[test]
    fn reads_basic_list() {
        let g = read_edge_list("0 1\n1 2\n".as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn header_fixes_vertex_count() {
        let g = read_edge_list("# nodes: 10\n0 1\n".as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 10);
    }

    #[test]
    fn snap_header_is_case_insensitive_with_trailing_edges_field() {
        // The real SNAP header form: capitalized, edge count on the same
        // line. This used to fall through to max_id+1 inference, silently
        // dropping the trailing isolated vertices.
        let g = read_edge_list("# Nodes: 1005 Edges: 2\n0 1\n1 2\n".as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 1005);
        assert_eq!(g.num_edges(), 2);
        let g = read_edge_list("# NODES: 7\n0 1\n".as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 7);
    }

    #[test]
    fn non_ascii_comments_are_skipped_not_panicked() {
        // A multi-byte character straddling the header-tag length must not
        // make the byte-wise tag comparison panic; free-form comments (SNAP
        // dumps carry titles and URLs) are simply ignored.
        // "abcdeé": byte 6 falls inside the two-byte 'é'.
        let g = read_edge_list("# abcdeé\n# Gráfo überall\n0 1\n".as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 2);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn undershooting_header_reports_offending_line() {
        // Declared count below the largest id: the error must carry the
        // line of the first offending edge, not a bare VertexOutOfRange.
        let err = read_edge_list("# Nodes: 3 Edges: 3\n0 1\n1 2\n2 5\n".as_bytes()).unwrap_err();
        let message = err.to_string();
        assert!(message.contains("vertex 5"), "got: {message}");
        assert!(message.contains("line 4"), "got: {message}");
        assert!(message.contains("declared nodes count 3"), "got: {message}");
        // A header placed after the edges is still enforced with the line.
        let err = read_edge_list("0 9\n# nodes: 4\n".as_bytes()).unwrap_err();
        let message = err.to_string();
        assert!(message.contains("vertex 9"), "got: {message}");
        assert!(message.contains("line 1"), "got: {message}");
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let g = read_edge_list("# hi\n\n0 2\n#more\n1 2\n".as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn tabs_and_extra_tokens_tolerated() {
        // Weighted formats carry a third column; we ignore it.
        let g = read_edge_list("0\t1\t5.0\n1\t2\t3.0\n".as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn malformed_line_rejected() {
        let err = read_edge_list("0\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("not an edge"));
        let err = read_edge_list("a b\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("bad vertex id"));
    }

    #[test]
    fn bad_header_rejected() {
        assert!(read_edge_list("# nodes: many\n".as_bytes()).is_err());
    }

    #[test]
    fn self_loop_rejected() {
        assert!(read_edge_list("3 3\n".as_bytes()).is_err());
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let g = read_edge_list("".as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 0);
    }

    #[test]
    fn roundtrip_preserves_graph() {
        let g = gnm(60, 150, 9);
        let mut buffer = Vec::new();
        write_edge_list(&g, &mut buffer).unwrap();
        let back = read_edge_list(buffer.as_slice()).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn roundtrip_keeps_isolated_vertices() {
        let g = Graph::from_edges(5, &[(0, 1)]).unwrap(); // 2,3,4 isolated
        let mut buffer = Vec::new();
        write_edge_list(&g, &mut buffer).unwrap();
        let text = String::from_utf8(buffer.clone()).unwrap();
        assert!(
            text.starts_with("# Nodes: 5 Edges: 1\n"),
            "writer emits the SNAP header form, got: {text:?}"
        );
        let back = read_edge_list(buffer.as_slice()).unwrap();
        assert_eq!(back.num_vertices(), 5);
    }
}
