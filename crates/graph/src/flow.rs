//! Dinic's maximum-flow algorithm on integer capacities.
//!
//! Substrate for the exact density machinery of this crate: Goldberg's
//! densest-subgraph reduction and the pseudoarboricity feasibility test are
//! both max-flow computations. Capacities are `i64`; the solver is exact.

/// A directed flow network with `i64` capacities, built incrementally.
///
/// # Examples
///
/// ```
/// use dgo_graph::flow::FlowNetwork;
///
/// let mut net = FlowNetwork::new(4);
/// net.add_edge(0, 1, 3);
/// net.add_edge(0, 2, 2);
/// net.add_edge(1, 3, 2);
/// net.add_edge(2, 3, 3);
/// assert_eq!(net.max_flow(0, 3), 4);
/// ```
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    /// Adjacency: per node, indices into `edges`.
    adjacency: Vec<Vec<usize>>,
    /// Flat edge array; edge `2i+1` is the reverse of edge `2i`.
    edges: Vec<FlowEdge>,
}

#[derive(Debug, Clone, Copy)]
struct FlowEdge {
    to: usize,
    capacity: i64,
}

impl FlowNetwork {
    /// Creates a network with `num_nodes` nodes and no arcs.
    pub fn new(num_nodes: usize) -> Self {
        FlowNetwork {
            adjacency: vec![Vec::new(); num_nodes],
            edges: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adjacency.len()
    }

    /// Adds a directed arc `from -> to` with the given capacity (and its
    /// residual reverse arc with capacity 0). Returns the arc's index for
    /// later flow queries.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range or `capacity < 0`.
    pub fn add_edge(&mut self, from: usize, to: usize, capacity: i64) -> usize {
        assert!(
            from < self.num_nodes() && to < self.num_nodes(),
            "endpoint out of range"
        );
        assert!(capacity >= 0, "negative capacity");
        let idx = self.edges.len();
        self.edges.push(FlowEdge { to, capacity });
        self.edges.push(FlowEdge {
            to: from,
            capacity: 0,
        });
        self.adjacency[from].push(idx);
        self.adjacency[to].push(idx + 1);
        idx
    }

    /// Flow currently routed through arc `edge_index` (as returned by
    /// [`FlowNetwork::add_edge`]), i.e. the residual capacity of its reverse.
    pub fn flow_on(&self, edge_index: usize) -> i64 {
        self.edges[edge_index ^ 1].capacity
    }

    /// Computes the maximum `source -> sink` flow with Dinic's algorithm,
    /// mutating residual capacities in place.
    ///
    /// # Panics
    ///
    /// Panics if `source == sink` or either is out of range.
    pub fn max_flow(&mut self, source: usize, sink: usize) -> i64 {
        assert_ne!(source, sink, "source and sink must differ");
        assert!(source < self.num_nodes() && sink < self.num_nodes());
        let n = self.num_nodes();
        let mut total = 0i64;
        let mut level = vec![-1i32; n];
        let mut iter = vec![0usize; n];
        loop {
            // BFS phase: build the level graph.
            level.iter_mut().for_each(|l| *l = -1);
            level[source] = 0;
            let mut queue = std::collections::VecDeque::new();
            queue.push_back(source);
            while let Some(v) = queue.pop_front() {
                for &ei in &self.adjacency[v] {
                    let e = self.edges[ei];
                    if e.capacity > 0 && level[e.to] < 0 {
                        level[e.to] = level[v] + 1;
                        queue.push_back(e.to);
                    }
                }
            }
            if level[sink] < 0 {
                return total;
            }
            // DFS phase: send blocking flow.
            iter.iter_mut().for_each(|i| *i = 0);
            loop {
                let pushed = self.dfs(source, sink, i64::MAX, &level, &mut iter);
                if pushed == 0 {
                    break;
                }
                total += pushed;
            }
        }
    }

    fn dfs(&mut self, v: usize, sink: usize, limit: i64, level: &[i32], iter: &mut [usize]) -> i64 {
        if v == sink {
            return limit;
        }
        while iter[v] < self.adjacency[v].len() {
            let ei = self.adjacency[v][iter[v]];
            let (to, cap) = {
                let e = self.edges[ei];
                (e.to, e.capacity)
            };
            if cap > 0 && level[to] == level[v] + 1 {
                let pushed = self.dfs(to, sink, limit.min(cap), level, iter);
                if pushed > 0 {
                    self.edges[ei].capacity -= pushed;
                    self.edges[ei ^ 1].capacity += pushed;
                    return pushed;
                }
            }
            iter[v] += 1;
        }
        0
    }

    /// After a [`FlowNetwork::max_flow`] call, returns the set of nodes on the
    /// source side of a minimum cut (nodes reachable from `source` in the
    /// residual network).
    pub fn min_cut_source_side(&self, source: usize) -> Vec<bool> {
        let n = self.num_nodes();
        let mut seen = vec![false; n];
        let mut stack = vec![source];
        seen[source] = true;
        while let Some(v) = stack.pop() {
            for &ei in &self.adjacency[v] {
                let e = self.edges[ei];
                if e.capacity > 0 && !seen[e.to] {
                    seen[e.to] = true;
                    stack.push(e.to);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let mut net = FlowNetwork::new(2);
        let e = net.add_edge(0, 1, 7);
        assert_eq!(net.max_flow(0, 1), 7);
        assert_eq!(net.flow_on(e), 7);
    }

    #[test]
    fn diamond() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 3);
        net.add_edge(0, 2, 2);
        net.add_edge(1, 3, 2);
        net.add_edge(2, 3, 3);
        assert_eq!(net.max_flow(0, 3), 4);
    }

    #[test]
    fn bottleneck_respected() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 100);
        net.add_edge(1, 2, 1);
        assert_eq!(net.max_flow(0, 2), 1);
    }

    #[test]
    fn disconnected_sink_zero_flow() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 5);
        assert_eq!(net.max_flow(0, 2), 0);
    }

    #[test]
    fn rerouting_through_residual_edges() {
        // Classic case needing flow cancellation: cross edge must be undone.
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 1);
        net.add_edge(0, 2, 1);
        net.add_edge(1, 2, 1);
        net.add_edge(1, 3, 1);
        net.add_edge(2, 3, 1);
        assert_eq!(net.max_flow(0, 3), 2);
    }

    #[test]
    fn min_cut_after_flow() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 1);
        net.add_edge(1, 2, 10);
        net.add_edge(2, 3, 10);
        assert_eq!(net.max_flow(0, 3), 1);
        let side = net.min_cut_source_side(0);
        assert_eq!(side, vec![true, false, false, false]);
    }

    #[test]
    #[should_panic(expected = "negative capacity")]
    fn negative_capacity_panics() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, -1);
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn same_source_sink_panics() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 1);
        net.max_flow(1, 1);
    }

    #[test]
    fn parallel_arcs_accumulate() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 2);
        net.add_edge(0, 1, 3);
        assert_eq!(net.max_flow(0, 1), 5);
    }
}
