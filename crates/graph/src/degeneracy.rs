//! Degeneracy ordering and peeling-based density estimates.
//!
//! The degeneracy `k` of a graph satisfies `α ≤ k ≤ 2α` where `α` is the
//! maximum subgraph density (and `λ ≤ k + 1` for the arboricity `λ`), so the
//! classic `O(m)` bucket-peeling computation provides cheap two-sided bounds
//! used to seed the algorithms' arboricity estimates on large inputs.

use crate::graph::Graph;

/// Result of a degeneracy (minimum-degree peeling) computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Degeneracy {
    /// The degeneracy: max over the peeling of the minimum remaining degree.
    pub value: usize,
    /// Peeling order: vertex removed first comes first. Coloring greedily in
    /// the *reverse* of this order uses at most `value + 1` colors.
    pub order: Vec<usize>,
}

/// Computes the degeneracy and a degeneracy ordering via bucket peeling.
///
/// Runs in `O(n + m)` time.
///
/// # Examples
///
/// ```
/// use dgo_graph::{Graph, degeneracy};
///
/// // A tree has degeneracy 1.
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (1, 3)])?;
/// assert_eq!(degeneracy(&g).value, 1);
/// # Ok::<(), dgo_graph::GraphError>(())
/// ```
pub fn degeneracy(graph: &Graph) -> Degeneracy {
    let n = graph.num_vertices();
    if n == 0 {
        return Degeneracy {
            value: 0,
            order: Vec::new(),
        };
    }
    let mut degree: Vec<usize> = (0..n).map(|v| graph.degree(v)).collect();
    let max_deg = degree.iter().copied().max().unwrap_or(0);
    // Bucket queue on current degree.
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); max_deg + 1];
    for v in 0..n {
        buckets[degree[v]].push(v);
    }
    let mut removed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut value = 0usize;
    let mut cursor = 0usize;
    for _ in 0..n {
        // Find the smallest non-empty bucket at or after `cursor`; degrees
        // only decrease by one at a time, so cursor only needs to back up by
        // one per removal.
        while buckets[cursor].is_empty() {
            cursor += 1;
        }
        let v = loop {
            match buckets[cursor].pop() {
                Some(v) if !removed[v] && degree[v] == cursor => break v,
                Some(_) => continue, // stale entry
                None => {
                    cursor += 1;
                    while buckets[cursor].is_empty() {
                        cursor += 1;
                    }
                }
            }
        };
        removed[v] = true;
        value = value.max(cursor);
        order.push(v);
        for &w in graph.neighbors(v) {
            let w = w as usize;
            if !removed[w] {
                degree[w] -= 1;
                buckets[degree[w]].push(w);
            }
        }
        cursor = cursor.saturating_sub(1);
    }
    Degeneracy { value, order }
}

/// Lower bound on the maximum subgraph density `α` from the peeling suffixes:
/// the density of the densest suffix `{v_i, ..., v_n}` of a degeneracy order.
///
/// This is the standard 2-approximation: `peeling_density(G) ≥ α(G) / 2`.
pub fn peeling_density_lower_bound(graph: &Graph) -> f64 {
    let n = graph.num_vertices();
    if n == 0 {
        return 0.0;
    }
    let deg = degeneracy(graph);
    let mut in_suffix = vec![true; n];
    // Process the peeling order forward, maintaining the number of edges in
    // the remaining suffix.
    let mut edges_left = graph.num_edges();
    let mut best = edges_left as f64 / n as f64;
    let mut remaining = n;
    for &v in &deg.order {
        let still: usize = graph
            .neighbors(v)
            .iter()
            .filter(|&&w| in_suffix[w as usize])
            .count();
        edges_left -= still;
        in_suffix[v] = false;
        remaining -= 1;
        if remaining > 0 {
            best = best.max(edges_left as f64 / remaining as f64);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_degeneracy_zero() {
        let g = Graph::empty(3);
        let d = degeneracy(&g);
        assert_eq!(d.value, 0);
        assert_eq!(d.order.len(), 3);
    }

    #[test]
    fn zero_vertices() {
        let d = degeneracy(&Graph::empty(0));
        assert_eq!(d.value, 0);
        assert!(d.order.is_empty());
    }

    #[test]
    fn tree_degeneracy_one() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (2, 4)]).unwrap();
        assert_eq!(degeneracy(&g).value, 1);
    }

    #[test]
    fn clique_degeneracy() {
        let mut edges = Vec::new();
        for u in 0..5 {
            for v in (u + 1)..5 {
                edges.push((u, v));
            }
        }
        let g = Graph::from_edges(5, &edges).unwrap();
        assert_eq!(degeneracy(&g).value, 4);
    }

    #[test]
    fn cycle_degeneracy_two() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        assert_eq!(degeneracy(&g).value, 2);
    }

    #[test]
    fn order_is_permutation() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5), (0, 5)]).unwrap();
        let d = degeneracy(&g);
        let mut sorted = d.order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn reverse_order_greedy_uses_degeneracy_plus_one_colors() {
        use crate::coloring::Coloring;
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5)]).unwrap();
        let d = degeneracy(&g);
        let mut rev = d.order.clone();
        rev.reverse();
        let c = Coloring::greedy(&g, &rev);
        assert!(c.validate(&g).is_ok());
        assert!(c.num_colors() <= d.value + 1);
    }

    #[test]
    fn peeling_density_on_clique() {
        // K5 has density 10/5 = 2.0 and the full graph is the densest suffix.
        let mut edges = Vec::new();
        for u in 0..5 {
            for v in (u + 1)..5 {
                edges.push((u, v));
            }
        }
        let g = Graph::from_edges(5, &edges).unwrap();
        let d = peeling_density_lower_bound(&g);
        assert!((d - 2.0).abs() < 1e-9);
    }

    #[test]
    fn peeling_density_on_empty() {
        assert_eq!(peeling_density_lower_bound(&Graph::empty(0)), 0.0);
        assert_eq!(peeling_density_lower_bound(&Graph::empty(5)), 0.0);
    }

    #[test]
    fn star_degeneracy_one() {
        let g = Graph::from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]).unwrap();
        assert_eq!(degeneracy(&g).value, 1);
        // Density of the star is 5/6 < 1.
        assert!(peeling_density_lower_bound(&g) < 1.0);
    }
}
