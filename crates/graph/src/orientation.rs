//! Edge orientations and their quality measures.
//!
//! An *orientation* assigns a direction to every undirected edge. The paper's
//! central object (Theorem 1.1) is an orientation whose maximum outdegree is
//! close to the arboricity `λ`: any orientation has max outdegree `≥ α ≥ λ-1`,
//! and the paper achieves `O(λ log log n)`.

use crate::error::{GraphError, Result};
use crate::graph::Graph;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// An orientation of the edges of a specific [`Graph`].
///
/// Internally stored as a map from normalized edge `(u, v)` with `u < v` to a
/// flag: `true` means the edge is directed `u -> v`, `false` means `v -> u`.
///
/// # Examples
///
/// ```
/// use dgo_graph::{Graph, Orientation};
///
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)])?;
/// // Orient every edge toward the higher id: an acyclic orientation.
/// let o = Orientation::towards_higher_id(&g);
/// assert_eq!(o.out_degree(0), 2);
/// assert_eq!(o.out_degree(2), 0);
/// assert_eq!(o.max_out_degree(), 2);
/// o.validate(&g)?;
/// # Ok::<(), dgo_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Orientation {
    n: usize,
    /// Edge `(u, v)` with `u < v`; value `true` iff directed `u -> v`.
    directions: HashMap<(u32, u32), bool>,
    out_degrees: Vec<usize>,
}

impl Orientation {
    /// Creates an orientation for `graph` from a per-edge decision function.
    ///
    /// `decide(u, v)` is called once per edge with `u < v` and must return
    /// `true` to direct the edge `u -> v`, `false` for `v -> u`.
    pub fn from_fn<F: FnMut(usize, usize) -> bool>(graph: &Graph, mut decide: F) -> Self {
        let n = graph.num_vertices();
        let mut directions = HashMap::with_capacity(graph.num_edges());
        let mut out_degrees = vec![0usize; n];
        for (u, v) in graph.edges() {
            let toward_v = decide(u, v);
            directions.insert((u as u32, v as u32), toward_v);
            if toward_v {
                out_degrees[u] += 1;
            } else {
                out_degrees[v] += 1;
            }
        }
        Orientation {
            n,
            directions,
            out_degrees,
        }
    }

    /// The trivial acyclic orientation directing every edge toward the
    /// endpoint with the larger id.
    pub fn towards_higher_id(graph: &Graph) -> Self {
        Orientation::from_fn(graph, |_, _| true)
    }

    /// Orientation induced by a vertex ranking: each edge points toward the
    /// endpoint with *higher* rank, ties broken toward the higher id.
    ///
    /// This is exactly how the paper turns a layer assignment into an
    /// orientation ("orienting edges toward the higher layer, breaking ties
    /// according to identifiers", §1.3).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::LengthMismatch`] if `rank.len() != n`.
    pub fn from_ranking(graph: &Graph, rank: &[u64]) -> Result<Self> {
        if rank.len() != graph.num_vertices() {
            return Err(GraphError::LengthMismatch {
                expected: graph.num_vertices(),
                found: rank.len(),
            });
        }
        Ok(Orientation::from_fn(graph, |u, v| {
            (rank[u], u) < (rank[v], v)
        }))
    }

    /// Number of vertices of the underlying graph.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of oriented edges.
    pub fn num_edges(&self) -> usize {
        self.directions.len()
    }

    /// Outdegree of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn out_degree(&self, v: usize) -> usize {
        self.out_degrees[v]
    }

    /// Maximum outdegree over all vertices — the paper's quality measure.
    pub fn max_out_degree(&self) -> usize {
        self.out_degrees.iter().copied().max().unwrap_or(0)
    }

    /// Direction of edge `{u, v}`: `Some(true)` if directed `u -> v`
    /// (for the normalized query `u`, `v` in either order), `None` if the
    /// edge is not oriented by this orientation.
    pub fn direction(&self, u: usize, v: usize) -> Option<bool> {
        let (a, b, flip) = if u < v { (u, v, false) } else { (v, u, true) };
        self.directions
            .get(&(a as u32, b as u32))
            .map(|&toward_b| toward_b != flip)
    }

    /// Out-neighbors of `v` in the orientation.
    pub fn out_neighbors(&self, graph: &Graph, v: usize) -> Vec<usize> {
        graph
            .neighbors(v)
            .iter()
            .map(|&w| w as usize)
            .filter(|&w| self.direction(v, w) == Some(true))
            .collect()
    }

    /// Checks that this orientation covers exactly the edges of `graph`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::LengthMismatch`] if the edge sets differ in size
    /// or if any graph edge is missing a direction.
    pub fn validate(&self, graph: &Graph) -> Result<()> {
        if self.n != graph.num_vertices() {
            return Err(GraphError::LengthMismatch {
                expected: graph.num_vertices(),
                found: self.n,
            });
        }
        if self.directions.len() != graph.num_edges() {
            return Err(GraphError::LengthMismatch {
                expected: graph.num_edges(),
                found: self.directions.len(),
            });
        }
        for (u, v) in graph.edges() {
            if !self.directions.contains_key(&(u as u32, v as u32)) {
                return Err(GraphError::LengthMismatch {
                    expected: graph.num_edges(),
                    found: graph.num_edges() - 1,
                });
            }
        }
        Ok(())
    }

    /// Whether the oriented graph is acyclic (DFS-based check).
    ///
    /// Orientations from rankings/layerings are always acyclic; orientations
    /// with arbitrary tie-breaking need not be.
    pub fn is_acyclic(&self, graph: &Graph) -> bool {
        // Kahn's algorithm over the directed graph.
        let n = self.n;
        let mut indeg = vec![0usize; n];
        for (&(u, v), &toward_v) in &self.directions {
            if toward_v {
                indeg[v as usize] += 1;
            } else {
                indeg[u as usize] += 1;
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
        let mut removed = 0;
        while let Some(v) = queue.pop() {
            removed += 1;
            for w in self.out_neighbors(graph, v) {
                indeg[w] -= 1;
                if indeg[w] == 0 {
                    queue.push(w);
                }
            }
        }
        removed == n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap()
    }

    #[test]
    fn higher_id_orientation_is_acyclic() {
        let g = triangle();
        let o = Orientation::towards_higher_id(&g);
        assert!(o.is_acyclic(&g));
        assert_eq!(o.max_out_degree(), 2);
        assert_eq!(o.out_degree(2), 0);
    }

    #[test]
    fn cyclic_orientation_detected() {
        let g = triangle();
        // 0->1, 1->2, 2->0 is a directed cycle.
        let o = Orientation::from_fn(&g, |u, v| (u, v) != (0, 2));
        assert!(!o.is_acyclic(&g));
        assert_eq!(o.max_out_degree(), 1);
    }

    #[test]
    fn from_ranking_orients_upward() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let o = Orientation::from_ranking(&g, &[3, 2, 1, 0]).unwrap();
        // Higher rank wins: 0 has rank 3, so 1 -> 0.
        assert_eq!(o.direction(1, 0), Some(true));
        assert_eq!(o.direction(0, 1), Some(false));
        assert!(o.is_acyclic(&g));
    }

    #[test]
    fn from_ranking_ties_break_by_id() {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let o = Orientation::from_ranking(&g, &[7, 7]).unwrap();
        assert_eq!(o.direction(0, 1), Some(true)); // toward higher id
    }

    #[test]
    fn from_ranking_rejects_bad_length() {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        assert!(Orientation::from_ranking(&g, &[1]).is_err());
    }

    #[test]
    fn validate_against_wrong_graph_fails() {
        let g = triangle();
        let o = Orientation::towards_higher_id(&g);
        let other = Graph::from_edges(3, &[(0, 1)]).unwrap();
        assert!(o.validate(&other).is_err());
        assert!(o.validate(&g).is_ok());
    }

    #[test]
    fn direction_of_missing_edge_is_none() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        let o = Orientation::towards_higher_id(&g);
        assert_eq!(o.direction(1, 2), None);
    }

    #[test]
    fn out_neighbors_match_out_degree() {
        let g = triangle();
        let o = Orientation::towards_higher_id(&g);
        for v in 0..3 {
            assert_eq!(o.out_neighbors(&g, v).len(), o.out_degree(v));
        }
    }

    #[test]
    fn empty_graph_orientation() {
        let g = Graph::empty(3);
        let o = Orientation::towards_higher_id(&g);
        assert_eq!(o.max_out_degree(), 0);
        assert!(o.is_acyclic(&g));
        assert!(o.validate(&g).is_ok());
    }
}
