//! Exact coreness (k-core) decomposition.
//!
//! The coreness of `v` is the largest `k` such that `v` belongs to the
//! `k`-core (the maximal subgraph of minimum degree `≥ k`). Coreness is the
//! per-vertex refinement of degeneracy (`max coreness = degeneracy`) and the
//! quantity the density-based clustering application of [GLM19] estimates;
//! `dgo_core::approximate_coreness` reproduces that application, with this
//! exact `O(m)` computation as ground truth.

use crate::graph::Graph;

/// Computes the exact coreness of every vertex (Matula–Beck bucket peeling).
///
/// Runs in `O(n + m)` time.
///
/// # Examples
///
/// ```
/// use dgo_graph::{coreness, Graph};
///
/// // A triangle with a pendant: triangle vertices have coreness 2, the
/// // pendant has coreness 1.
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)])?;
/// assert_eq!(coreness(&g), vec![2, 2, 2, 1]);
/// # Ok::<(), dgo_graph::GraphError>(())
/// ```
pub fn coreness(graph: &Graph) -> Vec<u32> {
    let n = graph.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let mut degree: Vec<usize> = (0..n).map(|v| graph.degree(v)).collect();
    let max_deg = degree.iter().copied().max().unwrap_or(0);
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); max_deg + 1];
    for v in 0..n {
        buckets[degree[v]].push(v);
    }
    let mut removed = vec![false; n];
    let mut core = vec![0u32; n];
    let mut current = 0usize;
    let mut cursor = 0usize;
    for _ in 0..n {
        while buckets[cursor].is_empty() {
            cursor += 1;
        }
        let v = loop {
            match buckets[cursor].pop() {
                Some(v) if !removed[v] && degree[v] == cursor => break v,
                Some(_) => continue, // stale
                None => {
                    cursor += 1;
                    while buckets[cursor].is_empty() {
                        cursor += 1;
                    }
                }
            }
        };
        removed[v] = true;
        current = current.max(cursor);
        core[v] = current as u32;
        for &w in graph.neighbors(v) {
            let w = w as usize;
            if !removed[w] {
                degree[w] -= 1;
                buckets[degree[w]].push(w);
            }
        }
        cursor = cursor.saturating_sub(1);
    }
    core
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use crate::degeneracy::degeneracy;
    use crate::generators::{clique, cycle, gnm, star};

    #[test]
    fn empty_graph() {
        assert!(coreness(&Graph::empty(0)).is_empty());
        assert_eq!(coreness(&Graph::empty(3)), vec![0, 0, 0]);
    }

    #[test]
    fn star_coreness_one() {
        let g = star(10);
        let c = coreness(&g);
        assert!(c.iter().all(|&x| x == 1));
    }

    #[test]
    fn clique_coreness() {
        let g = clique(6);
        assert!(coreness(&g).iter().all(|&c| c == 5));
    }

    #[test]
    fn cycle_coreness_two() {
        let g = cycle(7);
        assert!(coreness(&g).iter().all(|&c| c == 2));
    }

    #[test]
    fn mixed_structure() {
        // K4 (coreness 3) with a path tail (coreness 1).
        let g = Graph::from_edges(
            7,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
            ],
        )
        .unwrap();
        let c = coreness(&g);
        assert_eq!(&c[..4], &[3, 3, 3, 3]);
        assert_eq!(&c[4..], &[1, 1, 1]);
    }

    #[test]
    fn max_coreness_equals_degeneracy() {
        for seed in 0..4 {
            let g = gnm(120, 420, seed);
            let c = coreness(&g);
            let d = degeneracy(&g).value;
            assert_eq!(
                c.iter().copied().max().unwrap_or(0) as usize,
                d,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn coreness_defines_valid_cores() {
        // Every vertex of coreness >= k must have >= k neighbors of
        // coreness >= k (the defining property of the k-core).
        let g = gnm(100, 350, 9);
        let c = coreness(&g);
        for v in 0..g.num_vertices() {
            let k = c[v];
            let inside = g
                .neighbors(v)
                .iter()
                .filter(|&&w| c[w as usize] >= k)
                .count();
            assert!(inside as u32 >= k, "vertex {v} violates its own core");
        }
    }

    #[test]
    fn coreness_bounded_by_degree() {
        let g = gnm(80, 200, 3);
        let c = coreness(&g);
        for v in 0..g.num_vertices() {
            assert!(c[v] as usize <= g.degree(v));
        }
    }
}
