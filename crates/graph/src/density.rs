//! Exact subgraph-density and arboricity machinery.
//!
//! The paper parameterizes everything by the maximum subgraph density
//! `α(G) = max_S |E(S)|/|S|` and the arboricity `λ(G)`, with
//! `α ≤ λ ≤ α + 1` (§1.1). This module provides ground truth for the
//! experiment harness:
//!
//! * [`exact_max_density`] / [`densest_subgraph`] — Goldberg's reduction to
//!   minimum cut, exact via integer-scaled binary search (intended for
//!   `n ≲ 2000`; workloads needing ground truth are generated at that scale).
//! * [`pseudoarboricity`] — the minimum max-outdegree of any orientation,
//!   which equals `⌈α⌉`; computed by a max-flow feasibility binary search.
//! * [`arboricity_bounds`] — two-sided bounds on `λ` combining the above
//!   with degeneracy, with a cheap degeneracy-only path for large graphs.

use crate::degeneracy::{degeneracy, peeling_density_lower_bound};
use crate::flow::FlowNetwork;
use crate::graph::Graph;

/// A densest subgraph together with its exact density.
#[derive(Debug, Clone, PartialEq)]
pub struct DensestSubgraph {
    /// Vertices of a maximum-density subgraph (empty iff the graph has no
    /// edges).
    pub vertices: Vec<usize>,
    /// The density `|E(S)|/|S|` of that subgraph (0.0 for edgeless graphs).
    pub density: f64,
}

/// Computes the exact maximum subgraph density `α(G)` (Goldberg's algorithm).
///
/// Runs `O(log(m n^2))` max-flow computations on a network with `n + 2` nodes;
/// exact for all graphs but intended for moderate sizes (`n ≲ 2000`).
///
/// # Examples
///
/// ```
/// use dgo_graph::{Graph, exact_max_density};
///
/// // K4 has density 6/4 = 1.5 and no denser subgraph.
/// let g = Graph::from_edges(4, &[(0,1),(0,2),(0,3),(1,2),(1,3),(2,3)])?;
/// assert!((exact_max_density(&g) - 1.5).abs() < 1e-9);
/// # Ok::<(), dgo_graph::GraphError>(())
/// ```
pub fn exact_max_density(graph: &Graph) -> f64 {
    densest_subgraph(graph).density
}

/// Computes a maximum-density subgraph and its exact density.
///
/// See [`exact_max_density`] for the method and intended scale.
pub fn densest_subgraph(graph: &Graph) -> DensestSubgraph {
    let n = graph.num_vertices();
    let m = graph.num_edges();
    if m == 0 {
        return DensestSubgraph {
            vertices: Vec::new(),
            density: 0.0,
        };
    }
    // Distinct densities p/q with q <= n differ by more than 1/n^2 (for
    // distinct subgraphs), so searching numerators over denominator n^2
    // isolates the exact optimum.
    let den = (n as i64) * (n as i64);
    // Predicate P(num): exists nonempty S with den*|E(S)| > num*|S|.
    // Monotone decreasing in num; find the largest num where it holds.
    let mut lo = 0i64; // P(0) holds because m > 0.
    let mut hi = (m as i64) * den + 1; // density <= m, so P(m*den+1) fails.
    debug_assert!(goldberg_exceeds(graph, lo, den).is_some());
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if goldberg_exceeds(graph, mid, den).is_some() {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let vertices =
        goldberg_exceeds(graph, lo, den).expect("P(lo) holds by binary-search invariant");
    let edges_inside = count_inside_edges(graph, &vertices);
    let density = edges_inside as f64 / vertices.len() as f64;
    DensestSubgraph { vertices, density }
}

/// Min-cut test: returns a nonempty vertex set `S` with
/// `den * |E(S)| > num * |S|` (density strictly above `num/den`), or `None`.
fn goldberg_exceeds(graph: &Graph, num: i64, den: i64) -> Option<Vec<usize>> {
    let n = graph.num_vertices();
    let m = graph.num_edges() as i64;
    let source = n;
    let sink = n + 1;
    let mut net = FlowNetwork::new(n + 2);
    for v in 0..n {
        net.add_edge(source, v, m * den);
        let cap = m * den + 2 * num - den * graph.degree(v) as i64;
        debug_assert!(cap >= 0, "Goldberg sink capacity must be nonnegative");
        net.add_edge(v, sink, cap);
    }
    for (u, v) in graph.edges() {
        net.add_edge(u, v, den);
        net.add_edge(v, u, den);
    }
    let cut = net.max_flow(source, sink);
    // cut = n*m*den + 2*(num*|S| - den*|E(S)|) minimized over S; the empty
    // set gives exactly n*m*den.
    if cut < n as i64 * m * den {
        let side = net.min_cut_source_side(source);
        let s: Vec<usize> = (0..n).filter(|&v| side[v]).collect();
        debug_assert!(!s.is_empty());
        Some(s)
    } else {
        None
    }
}

fn count_inside_edges(graph: &Graph, vertices: &[usize]) -> usize {
    let mut inside = vec![false; graph.num_vertices()];
    for &v in vertices {
        inside[v] = true;
    }
    graph
        .edges()
        .filter(|&(u, v)| inside[u] && inside[v])
        .count()
}

/// Computes the pseudoarboricity: the minimum over all orientations of the
/// maximum outdegree. Equals `⌈α(G)⌉` for graphs with at least one edge.
///
/// Binary-searches the feasibility of an outdegree-`k` orientation via a
/// bipartite edge-to-endpoint max-flow; intended for moderate sizes.
///
/// # Examples
///
/// ```
/// use dgo_graph::{Graph, pseudoarboricity};
///
/// // A cycle orients with outdegree 1 (round-robin).
/// let g = Graph::from_edges(4, &[(0,1),(1,2),(2,3),(3,0)])?;
/// assert_eq!(pseudoarboricity(&g), 1);
/// # Ok::<(), dgo_graph::GraphError>(())
/// ```
pub fn pseudoarboricity(graph: &Graph) -> usize {
    let m = graph.num_edges();
    if m == 0 {
        return 0;
    }
    let mut lo = 1usize;
    let mut hi = degeneracy(graph).value.max(1); // outdeg <= degeneracy is feasible
    debug_assert!(orientation_feasible(graph, hi));
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if orientation_feasible(graph, mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

/// Whether an orientation with maximum outdegree `<= k` exists
/// (max-flow feasibility: every edge must route one unit to an endpoint,
/// endpoints accept at most `k`).
fn orientation_feasible(graph: &Graph, k: usize) -> bool {
    let n = graph.num_vertices();
    let m = graph.num_edges();
    let source = n + m;
    let sink = n + m + 1;
    let mut net = FlowNetwork::new(n + m + 2);
    for (i, (u, v)) in graph.edges().enumerate() {
        let enode = n + i;
        net.add_edge(source, enode, 1);
        net.add_edge(enode, u, 1);
        net.add_edge(enode, v, 1);
    }
    for v in 0..n {
        net.add_edge(v, sink, k as i64);
    }
    net.max_flow(source, sink) == m as i64
}

/// Two-sided bounds on the arboricity `λ(G)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArboricityBounds {
    /// Lower bound: `λ >= lower`.
    pub lower: usize,
    /// Upper bound: `λ <= upper`.
    pub upper: usize,
    /// Whether the bounds came from the exact flow machinery (`true`) or the
    /// cheap degeneracy/peeling estimates (`false`).
    pub exact: bool,
}

impl ArboricityBounds {
    /// A single representative value: the lower bound (never below 1 for
    /// graphs with an edge). Experiments normalize by this.
    pub fn representative(&self) -> usize {
        self.lower
    }
}

/// Bounds `λ(G)` from both sides.
///
/// For graphs with at most `exact_threshold` vertices the exact flow
/// machinery pins `λ ∈ {⌈α⌉, ⌈α⌉+1}`; larger graphs fall back to
/// `⌈peeling density⌉ ≤ λ ≤ degeneracy` in `O(m)` time (the degeneracy
/// upper bound follows from the acyclic outdegree-`k` orientation of a
/// `k`-degenerate graph).
///
/// # Examples
///
/// ```
/// use dgo_graph::{Graph, arboricity_bounds};
///
/// let g = Graph::from_edges(3, &[(0,1),(1,2),(2,0)])?;
/// let b = arboricity_bounds(&g, 100);
/// assert!(b.lower <= 2 && 2 <= b.upper); // λ(K3) = ⌈3/2⌉ = 2
/// # Ok::<(), dgo_graph::GraphError>(())
/// ```
pub fn arboricity_bounds(graph: &Graph, exact_threshold: usize) -> ArboricityBounds {
    if graph.num_edges() == 0 {
        return ArboricityBounds {
            lower: 0,
            upper: 0,
            exact: true,
        };
    }
    if graph.num_vertices() <= exact_threshold {
        let p = pseudoarboricity(graph); // p = ceil(alpha) <= lambda <= alpha+1 <= p+1
        ArboricityBounds {
            lower: p,
            upper: p + 1,
            exact: true,
        }
    } else {
        let lower = peeling_density_lower_bound(graph).ceil() as usize;
        let upper = degeneracy(graph).value;
        ArboricityBounds {
            lower: lower.max(1),
            upper: upper.max(1),
            exact: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clique(k: usize) -> Graph {
        let mut edges = Vec::new();
        for u in 0..k {
            for v in (u + 1)..k {
                edges.push((u, v));
            }
        }
        Graph::from_edges(k, &edges).unwrap()
    }

    #[test]
    fn density_of_edgeless() {
        let g = Graph::empty(5);
        assert_eq!(exact_max_density(&g), 0.0);
        assert!(densest_subgraph(&g).vertices.is_empty());
    }

    #[test]
    fn density_of_single_edge() {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        assert!((exact_max_density(&g) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn density_of_cliques() {
        for k in 2..7 {
            let g = clique(k);
            let expected = (k * (k - 1) / 2) as f64 / k as f64;
            assert!(
                (exact_max_density(&g) - expected).abs() < 1e-9,
                "K{k} density mismatch"
            );
        }
    }

    #[test]
    fn densest_subgraph_finds_planted_clique() {
        // K5 plus a long pendant path: the densest subgraph is exactly the K5.
        let mut edges = Vec::new();
        for u in 0..5 {
            for v in (u + 1)..5 {
                edges.push((u, v));
            }
        }
        for i in 5..15 {
            edges.push((i - 1, i));
        }
        let g = Graph::from_edges(15, &edges).unwrap();
        let ds = densest_subgraph(&g);
        assert!((ds.density - 2.0).abs() < 1e-9);
        assert_eq!(ds.vertices, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn density_at_least_peeling_bound() {
        let g = Graph::from_edges(
            8,
            &[
                (0, 1),
                (1, 2),
                (2, 0),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 5),
            ],
        )
        .unwrap();
        let exact = exact_max_density(&g);
        let lb = peeling_density_lower_bound(&g);
        assert!(exact + 1e-9 >= lb);
        assert!(exact <= lb * 2.0 + 1e-9, "peeling is a 2-approximation");
    }

    #[test]
    fn pseudoarboricity_matches_ceil_density() {
        let graphs = vec![
            clique(4),
            clique(6),
            Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap(),
            Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap(),
        ];
        for g in graphs {
            let p = pseudoarboricity(&g);
            let alpha = exact_max_density(&g);
            assert_eq!(p, alpha.ceil() as usize, "pseudoarboricity = ceil(alpha)");
        }
    }

    #[test]
    fn pseudoarboricity_of_forest_is_one() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (2, 3), (2, 4)]).unwrap();
        assert_eq!(pseudoarboricity(&g), 1);
    }

    #[test]
    fn pseudoarboricity_of_empty_is_zero() {
        assert_eq!(pseudoarboricity(&Graph::empty(3)), 0);
    }

    #[test]
    fn arboricity_bounds_bracket_known_values() {
        // K4: lambda = 2; cycle: lambda = 2 per Nash-Williams? A cycle C_n
        // has arboricity 2 (a single cycle is not a forest). alpha = 1.
        let g = clique(4);
        let b = arboricity_bounds(&g, 100);
        assert!(b.exact);
        assert!(b.lower <= 2 && 2 <= b.upper);

        let c = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        let bc = arboricity_bounds(&c, 100);
        assert!(bc.lower <= 2 && 2 <= bc.upper);
    }

    #[test]
    fn arboricity_bounds_fallback_path() {
        let g = clique(6);
        let b = arboricity_bounds(&g, 3); // force the cheap path
        assert!(!b.exact);
        assert!(b.lower <= b.upper);
        assert!(b.lower >= 1);
        // Degeneracy of K6 is 5.
        assert_eq!(b.upper, 5);
    }

    #[test]
    fn orientation_feasibility_monotone() {
        let g = clique(5);
        let p = pseudoarboricity(&g);
        assert!(orientation_feasible(&g, p));
        assert!(!orientation_feasible(&g, p - 1));
        assert!(orientation_feasible(&g, p + 3));
    }
}
