//! # dgo-graph — graph substrate for the Ghaffari–Grunau reproduction
//!
//! This crate supplies everything the MPC/LOCAL algorithm crates need to talk
//! about graphs:
//!
//! * [`Graph`] — simple undirected graphs in CSR form;
//! * [`Orientation`], [`Coloring`], [`LayerAssignment`] — the three output
//!   artifacts of the paper's algorithms, each with validity checkers that
//!   the test-suite and experiment harness use as ground truth;
//! * density machinery — [`degeneracy`], exact [`densest_subgraph`] via
//!   Goldberg's flow reduction, [`pseudoarboricity`] (`= ⌈α⌉`), and
//!   [`arboricity_bounds`];
//! * [`generators`] — seeded deterministic workload families spanning the
//!   density spectrum (forests to planted dense cores).
//!
//! # Quick example
//!
//! ```
//! use dgo_graph::{arboricity_bounds, generators, Coloring, Graph};
//!
//! let g = generators::barabasi_albert(500, 3, 42);
//! let bounds = arboricity_bounds(&g, 1000);
//! assert!(bounds.lower >= 1);
//!
//! // Greedy coloring in reverse degeneracy order: ≤ degeneracy + 1 colors.
//! let deg = dgo_graph::degeneracy(&g);
//! let mut order = deg.order.clone();
//! order.reverse();
//! let coloring = Coloring::greedy(&g, &order);
//! coloring.validate(&g)?;
//! assert!(coloring.num_colors() <= deg.value + 1);
//! # Ok::<(), dgo_graph::GraphError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// Unsafe is denied crate-wide; the only sanctioned exceptions are the
// disjoint-range CSR scatter kernels in `graph.rs`, each carrying a scoped
// `#[allow(unsafe_code)]` and a `// SAFETY:` audit (enforced by dgo-lint R5).
#![deny(unsafe_code)]

mod coloring;
mod coreness;
mod degeneracy;
mod density;
mod error;
pub mod flow;
pub mod generators;
mod graph;
mod hpartition;
pub mod io;
mod orientation;

pub use coloring::Coloring;
pub use coreness::coreness;
pub use degeneracy::{degeneracy, peeling_density_lower_bound, Degeneracy};
pub use density::{
    arboricity_bounds, densest_subgraph, exact_max_density, pseudoarboricity, ArboricityBounds,
    DensestSubgraph,
};
pub use error::{GraphError, Result};
pub use graph::{Edges, Graph};
pub use hpartition::{LayerAssignment, UNASSIGNED};
pub use orientation::Orientation;
