//! Compressed-sparse-row representation of simple undirected graphs.
//!
//! [`Graph`] is the workhorse type of the whole workspace: generators produce
//! it, the MPC and LOCAL simulators consume it, and all algorithm outputs
//! (orientations, colorings, layerings) are validated against it.

use crate::error::{GraphError, Result};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Below this edge count the unsorted CSR builder always runs inline:
/// pool-task bookkeeping would cost more than the build itself.
const PARALLEL_BUILD_MIN_EDGES: usize = 1 << 16;

/// The host-thread budget for graph ingestion and CSR construction, resolved
/// once from `DGO_JOBS` (`0`, unset, or unparsable = all cores). Ingestion is
/// pure host-side work with thread-count-independent output, so unlike the
/// simulation presets it defaults to the machine's full parallelism.
pub(crate) fn ingest_jobs() -> usize {
    static JOBS: OnceLock<usize> = OnceLock::new();
    *JOBS.get_or_init(|| {
        // dgo_graph is a leaf crate and cannot reach dgo_mpc::tuning; this
        // reads the same DGO_JOBS knob with the same once-per-process cache.
        // dgo-lint: allow(R2)
        match std::env::var("DGO_JOBS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
        {
            Some(0) | None => rayon::current_num_threads(),
            Some(jobs) => jobs,
        }
    })
}

/// Shared-pointer wrapper for disjoint-range writes from pool tasks: every
/// task writes a distinct set of indices, so no two writes alias.
struct SendPtr<T>(*mut T);
// SAFETY: the wrapper only crosses threads inside fork-joins whose tasks
// write disjoint indices of a buffer the caller keeps alive until the join.
#[allow(unsafe_code)]
unsafe impl<T: Send> Send for SendPtr<T> {}
// SAFETY: shared references only copy the pointer; every write through it
// targets a task-exclusive index, never a shared cell.
#[allow(unsafe_code)]
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// A simple undirected graph in CSR (compressed sparse row) form.
///
/// Vertices are `0..n`. Parallel edges and self-loops are rejected at
/// construction. Neighbor lists are sorted, enabling `O(log deg)` adjacency
/// queries and deterministic iteration order.
///
/// # Examples
///
/// ```
/// use dgo_graph::Graph;
///
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)])?;
/// assert_eq!(g.num_vertices(), 4);
/// assert_eq!(g.num_edges(), 4);
/// assert_eq!(g.degree(1), 2);
/// assert!(g.has_edge(0, 3));
/// # Ok::<(), dgo_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    /// `offsets[v]..offsets[v+1]` indexes `neighbors` for vertex `v`.
    offsets: Vec<usize>,
    /// Concatenated sorted neighbor lists.
    neighbors: Vec<u32>,
    /// Number of undirected edges.
    num_edges: usize,
}

impl Graph {
    /// Builds a graph with `n` vertices from an undirected edge list.
    ///
    /// Duplicate edges (in either orientation) are collapsed to one edge.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if an endpoint is `>= n`, and
    /// [`GraphError::SelfLoop`] for an edge `(v, v)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use dgo_graph::Graph;
    /// let g = Graph::from_edges(3, &[(0, 1), (1, 0), (1, 2)])?;
    /// assert_eq!(g.num_edges(), 2); // duplicate (0,1)/(1,0) collapsed
    /// # Ok::<(), dgo_graph::GraphError>(())
    /// ```
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Result<Self> {
        let normalized = normalize_edges(n, edges)?;
        Ok(Self::from_normalized_unsorted(
            n,
            &normalized,
            ingest_jobs(),
        ))
    }

    /// [`Graph::from_edges`] via the original full-list `sort_unstable +
    /// dedup` pipeline — O(m log m) regardless of degree distribution.
    ///
    /// Kept as the reference builder: the conformance suite asserts the
    /// counting-sort build behind [`Graph::from_edges`] is bit-identical to
    /// this one, and the scale harness (`exp_scale`) times both so the
    /// before/after ingestion trajectory persists in `BENCH_scale.json`.
    ///
    /// # Errors
    ///
    /// Identical to [`Graph::from_edges`].
    pub fn from_edges_by_sort(n: usize, edges: &[(usize, usize)]) -> Result<Self> {
        let mut normalized = normalize_edges(n, edges)?;
        normalized.sort_unstable();
        normalized.dedup();
        Ok(Self::from_normalized(n, &normalized))
    }

    /// Counting-sort CSR build from normalized `(u, v)` pairs (`u < v < n` as
    /// `u32`) in **any order, duplicates allowed**: per-vertex degree tallies
    /// → prefix offsets → scatter of both endpoints → per-list
    /// `sort_unstable` + dedup + forward compaction. O(m + Σ deg·log deg)
    /// instead of the full-list O(m log m), and the tally/scatter/sort phases
    /// run chunk-parallel on the pool when `jobs` (0 = all cores) exceeds 1.
    ///
    /// The per-list sort + dedup canonicalizes away both the input order and
    /// any scatter-order nondeterminism of the parallel path, so the
    /// resulting `offsets`/`neighbors` columns are bit-identical to
    /// [`Graph::from_edges`]/[`Graph::from_edges_by_sort`] on the same edge
    /// set at any thread count.
    ///
    /// # Panics
    ///
    /// Endpoints must be normalized and in range (`u < v < n`); self-loops
    /// and out-of-range ids panic (debug assert or out-of-bounds index)
    /// rather than error — validated callers ([`Graph::from_edges`], the
    /// edge-list reader, the generators) have already rejected them.
    pub fn from_normalized_unsorted(n: usize, edges: &[(u32, u32)], jobs: usize) -> Self {
        debug_assert!(edges
            .iter()
            .all(|&(u, v)| u < v && (v as usize) < n && n <= u32::MAX as usize));
        assert!(
            edges.len() <= u32::MAX as usize / 2,
            "edge list too large for u32 degree counters"
        );
        let threads = if jobs == 0 {
            rayon::current_num_threads()
        } else {
            jobs
        };
        let (mut offsets, mut neighbors) = if threads > 1 && edges.len() >= PARALLEL_BUILD_MIN_EDGES
        {
            scatter_parallel(n, edges, threads)
        } else {
            scatter_sequential(n, edges)
        };
        let deduped = sort_dedup_lists(&offsets, &mut neighbors, threads);
        // Forward-compact the deduped lists, rewriting offsets in place.
        let mut write = 0usize;
        let mut next_start = 0usize;
        for v in 0..n {
            let start = next_start;
            next_start = offsets[v + 1];
            let len = deduped[v] as usize;
            if write != start {
                neighbors.copy_within(start..start + len, write);
            }
            write += len;
            offsets[v + 1] = write;
        }
        neighbors.truncate(write);
        Graph {
            offsets,
            neighbors,
            num_edges: write / 2,
        }
    }

    /// Builds a graph from edges already normalized (u < v), sorted, deduped.
    ///
    /// Used internally by generators that produce canonical edge lists.
    pub(crate) fn from_normalized(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut degrees = vec![0usize; n];
        for &(u, v) in edges {
            degrees[u as usize] += 1;
            degrees[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        for v in 0..n {
            offsets.push(offsets[v] + degrees[v]);
        }
        let mut neighbors = vec![0u32; offsets[n]];
        let mut cursor = offsets.clone();
        for &(u, v) in edges {
            neighbors[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        for v in 0..n {
            neighbors[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        Graph {
            offsets,
            neighbors,
            num_edges: edges.len(),
        }
    }

    /// An empty graph on `n` vertices (no edges).
    ///
    /// ```
    /// use dgo_graph::Graph;
    /// let g = Graph::empty(5);
    /// assert_eq!(g.num_edges(), 0);
    /// assert_eq!(g.degree(0), 0);
    /// ```
    pub fn empty(n: usize) -> Self {
        Graph {
            offsets: vec![0; n + 1],
            neighbors: Vec::new(),
            num_edges: 0,
        }
    }

    /// Number of vertices `n`.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `m`.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Degree of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn degree(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Maximum degree Δ over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices())
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Average degree `2m / n` (0.0 for `n == 0`).
    pub fn average_degree(&self) -> f64 {
        let n = self.num_vertices();
        if n == 0 {
            0.0
        } else {
            2.0 * self.num_edges as f64 / n as f64
        }
    }

    /// Sorted neighbor list of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Whether the undirected edge `{u, v}` is present (binary search).
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        if u >= self.num_vertices() || v >= self.num_vertices() {
            return false;
        }
        self.neighbors(u).binary_search(&(v as u32)).is_ok()
    }

    /// Iterator over all undirected edges as `(u, v)` with `u < v`.
    ///
    /// ```
    /// use dgo_graph::Graph;
    /// let g = Graph::from_edges(3, &[(2, 0), (1, 2)])?;
    /// let edges: Vec<_> = g.edges().collect();
    /// assert_eq!(edges, vec![(0, 2), (1, 2)]);
    /// # Ok::<(), dgo_graph::GraphError>(())
    /// ```
    pub fn edges(&self) -> Edges<'_> {
        Edges {
            graph: self,
            vertex: 0,
            pos: 0,
        }
    }

    /// Vertex-induced subgraph on `keep`, relabeling kept vertices `0..k` in
    /// ascending original order. Returns the subgraph and the mapping
    /// `new_id -> old_id`.
    ///
    /// Vertices in `keep` that are out of range are ignored; duplicates are
    /// collapsed.
    pub fn induced_subgraph(&self, keep: &[usize]) -> (Graph, Vec<usize>) {
        let n = self.num_vertices();
        let mut sorted: Vec<usize> = keep.iter().copied().filter(|&v| v < n).collect();
        sorted.sort_unstable();
        sorted.dedup();
        let mut old_to_new = vec![usize::MAX; n];
        for (new, &old) in sorted.iter().enumerate() {
            old_to_new[old] = new;
        }
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for &old_u in &sorted {
            let new_u = old_to_new[old_u];
            for &w in self.neighbors(old_u) {
                let old_v = w as usize;
                if old_v > old_u && old_to_new[old_v] != usize::MAX {
                    edges.push((new_u as u32, old_to_new[old_v] as u32));
                }
            }
        }
        edges.sort_unstable();
        (Graph::from_normalized(sorted.len(), &edges), sorted)
    }

    /// Edge-induced subgraph: keeps all `n` vertices but only the edges for
    /// which `pred(u, v)` returns `true` (called once per edge with `u < v`).
    pub fn filter_edges<F: FnMut(usize, usize) -> bool>(&self, mut pred: F) -> Graph {
        let kept: Vec<(u32, u32)> = self
            .edges()
            .filter(|&(u, v)| pred(u, v))
            .map(|(u, v)| (u as u32, v as u32))
            .collect();
        Graph::from_normalized(self.num_vertices(), &kept)
    }

    /// Disjoint union with `other`: vertices of `other` are shifted by
    /// `self.num_vertices()`.
    pub fn disjoint_union(&self, other: &Graph) -> Graph {
        let shift = self.num_vertices() as u32;
        let mut edges: Vec<(u32, u32)> = self.edges().map(|(u, v)| (u as u32, v as u32)).collect();
        edges.extend(
            other
                .edges()
                .map(|(u, v)| (u as u32 + shift, v as u32 + shift)),
        );
        edges.sort_unstable();
        Graph::from_normalized(self.num_vertices() + other.num_vertices(), &edges)
    }

    /// Whether the graph contains no cycle (i.e. is a forest), via union-find.
    pub fn is_forest(&self) -> bool {
        let mut parent: Vec<usize> = (0..self.num_vertices()).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for (u, v) in self.edges() {
            let ru = find(&mut parent, u);
            let rv = find(&mut parent, v);
            if ru == rv {
                return false;
            }
            parent[ru] = rv;
        }
        true
    }

    /// Number of connected components.
    pub fn connected_components(&self) -> usize {
        let n = self.num_vertices();
        let mut seen = vec![false; n];
        let mut components = 0;
        let mut stack = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            components += 1;
            seen[start] = true;
            stack.push(start);
            while let Some(v) = stack.pop() {
                for &w in self.neighbors(v) {
                    let w = w as usize;
                    if !seen[w] {
                        seen[w] = true;
                        stack.push(w);
                    }
                }
            }
        }
        components
    }
}

/// Validates an edge list against `n` and normalizes to `(u32, u32)` with
/// `u < v`, preserving input order. The per-edge check order (first endpoint,
/// second endpoint, self-loop; first offending edge in list order wins) is
/// the error contract of [`Graph::from_edges`].
fn normalize_edges(n: usize, edges: &[(usize, usize)]) -> Result<Vec<(u32, u32)>> {
    let mut normalized: Vec<(u32, u32)> = Vec::with_capacity(edges.len());
    for &(u, v) in edges {
        if u >= n {
            return Err(GraphError::VertexOutOfRange { vertex: u, n });
        }
        if v >= n {
            return Err(GraphError::VertexOutOfRange { vertex: v, n });
        }
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        normalized.push((a as u32, b as u32));
    }
    Ok(normalized)
}

/// Inline tally + scatter: degree counts into `offsets[v + 1]`, prefix sum,
/// then both endpoints of every edge written at their vertices' cursors.
/// Lists come out unsorted and possibly duplicated.
fn scatter_sequential(n: usize, edges: &[(u32, u32)]) -> (Vec<usize>, Vec<u32>) {
    let mut offsets = vec![0usize; n + 1];
    for &(u, v) in edges {
        offsets[u as usize + 1] += 1;
        offsets[v as usize + 1] += 1;
    }
    for v in 0..n {
        offsets[v + 1] += offsets[v];
    }
    let mut cursor: Vec<usize> = offsets[..n].to_vec();
    let mut neighbors = vec![0u32; offsets[n]];
    for &(u, v) in edges {
        let (u, v) = (u as usize, v as usize);
        neighbors[cursor[u]] = v as u32;
        cursor[u] += 1;
        neighbors[cursor[v]] = u as u32;
        cursor[v] += 1;
    }
    (offsets, neighbors)
}

/// [`scatter_sequential`] with the tally and scatter fanned out over edge
/// chunks: relaxed atomic degree counters, then atomic per-vertex cursors
/// claiming unique slots. Slot order within a list depends on scheduling,
/// which is fine — the per-list sort + dedup canonicalizes it away.
#[allow(unsafe_code)]
fn scatter_parallel(n: usize, edges: &[(u32, u32)], threads: usize) -> (Vec<usize>, Vec<u32>) {
    let degrees: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    rayon::chunk_map_reduce(
        edges,
        threads,
        |_, chunk| {
            for &(u, v) in chunk {
                degrees[u as usize].fetch_add(1, Ordering::Relaxed);
                degrees[v as usize].fetch_add(1, Ordering::Relaxed);
            }
        },
        |(), ()| (),
    );
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0usize);
    let mut acc = 0usize;
    for d in &degrees {
        acc += d.load(Ordering::Relaxed) as usize;
        offsets.push(acc);
    }
    let cursor: Vec<AtomicUsize> = offsets[..n].iter().map(|&o| AtomicUsize::new(o)).collect();
    let mut neighbors = vec![0u32; offsets[n]];
    let base = SendPtr(neighbors.as_mut_ptr());
    let base = &base;
    rayon::chunk_map_reduce(
        edges,
        threads,
        move |_, chunk| {
            for &(u, v) in chunk {
                let slot_u = cursor[u as usize].fetch_add(1, Ordering::Relaxed);
                let slot_v = cursor[v as usize].fetch_add(1, Ordering::Relaxed);
                // SAFETY: each fetch_add claims a unique slot inside the
                // vertex's degree-sized range of a buffer that outlives the
                // fork-join, so no two writes alias.
                unsafe {
                    *base.0.add(slot_u) = v;
                    *base.0.add(slot_v) = u;
                }
            }
        },
        |(), ()| (),
    );
    (offsets, neighbors)
}

/// Sorts and dedups every vertex's list in place (vertex-chunk-parallel) and
/// returns the per-vertex deduped length; the kept prefix of each range holds
/// the canonical list, the caller compacts.
#[allow(unsafe_code)]
fn sort_dedup_lists(offsets: &[usize], neighbors: &mut [u32], threads: usize) -> Vec<u32> {
    let n = offsets.len() - 1;
    let base = SendPtr(neighbors.as_mut_ptr());
    let base = &base;
    rayon::chunk_map_collect_range(n, threads, move |v| {
        // SAFETY: the ranges `[offsets[v], offsets[v + 1])` are disjoint
        // across vertices and the buffer outlives the fork-join.
        let list = unsafe {
            std::slice::from_raw_parts_mut(base.0.add(offsets[v]), offsets[v + 1] - offsets[v])
        };
        list.sort_unstable();
        let mut kept = 0usize;
        for i in 0..list.len() {
            if kept == 0 || list[kept - 1] != list[i] {
                list[kept] = list[i];
                kept += 1;
            }
        }
        kept as u32
    })
}

impl Default for Graph {
    fn default() -> Self {
        Graph::empty(0)
    }
}

/// Iterator over the undirected edges of a [`Graph`], yielded as `(u, v)`
/// with `u < v` in lexicographic order. Created by [`Graph::edges`].
#[derive(Debug, Clone)]
pub struct Edges<'a> {
    graph: &'a Graph,
    vertex: usize,
    pos: usize,
}

impl Iterator for Edges<'_> {
    type Item = (usize, usize);

    fn next(&mut self) -> Option<Self::Item> {
        let g = self.graph;
        let n = g.num_vertices();
        while self.vertex < n {
            let nbrs = g.neighbors(self.vertex);
            while self.pos < nbrs.len() {
                let w = nbrs[self.pos] as usize;
                self.pos += 1;
                if w > self.vertex {
                    return Some((self.vertex, w));
                }
            }
            self.vertex += 1;
            self.pos = 0;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_triangle() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert!(g.has_edge(2, 1));
        assert!(!g.has_edge(0, 0));
    }

    #[test]
    fn rejects_out_of_range() {
        let err = Graph::from_edges(2, &[(0, 5)]).unwrap_err();
        assert_eq!(err, GraphError::VertexOutOfRange { vertex: 5, n: 2 });
    }

    #[test]
    fn rejects_self_loop() {
        let err = Graph::from_edges(2, &[(1, 1)]).unwrap_err();
        assert_eq!(err, GraphError::SelfLoop { vertex: 1 });
    }

    #[test]
    fn dedups_parallel_edges() {
        let g = Graph::from_edges(2, &[(0, 1), (1, 0), (0, 1)]).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(4);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert!(g.is_forest());
        assert_eq!(g.connected_components(), 4);
    }

    #[test]
    fn zero_vertex_graph() {
        let g = Graph::empty(0);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.average_degree(), 0.0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn edges_iterator_is_sorted_and_complete() {
        let g = Graph::from_edges(4, &[(3, 1), (0, 2), (2, 3), (0, 1)]).unwrap();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn induced_subgraph_relabels() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        let (sub, map) = g.induced_subgraph(&[1, 3, 2]);
        assert_eq!(map, vec![1, 2, 3]);
        assert_eq!(sub.num_vertices(), 3);
        // Edges (1,2) and (2,3) survive as (0,1) and (1,2).
        let edges: Vec<_> = sub.edges().collect();
        assert_eq!(edges, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn induced_subgraph_ignores_out_of_range_and_dupes() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        let (sub, map) = g.induced_subgraph(&[0, 0, 1, 99]);
        assert_eq!(map, vec![0, 1]);
        assert_eq!(sub.num_edges(), 1);
    }

    #[test]
    fn filter_edges_keeps_predicate() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let odd = g.filter_edges(|u, v| (u + v) % 2 == 1);
        assert_eq!(odd.num_vertices(), 4);
        assert_eq!(odd.num_edges(), 3); // all of 0+1, 1+2, 2+3 are odd sums
        let none = g.filter_edges(|_, _| false);
        assert_eq!(none.num_edges(), 0);
    }

    #[test]
    fn disjoint_union_shifts() {
        let a = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let b = Graph::from_edges(3, &[(0, 2)]).unwrap();
        let u = a.disjoint_union(&b);
        assert_eq!(u.num_vertices(), 5);
        assert_eq!(u.num_edges(), 2);
        assert!(u.has_edge(0, 1));
        assert!(u.has_edge(2, 4));
    }

    #[test]
    fn forest_detection() {
        let path = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        assert!(path.is_forest());
        let cycle = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        assert!(!cycle.is_forest());
    }

    #[test]
    fn connected_components_counts() {
        let g = Graph::from_edges(6, &[(0, 1), (2, 3), (3, 4)]).unwrap();
        assert_eq!(g.connected_components(), 3); // {0,1}, {2,3,4}, {5}
    }

    #[test]
    fn counting_and_sort_builders_agree() {
        let edges = [(3usize, 1), (0, 2), (2, 3), (0, 1), (1, 3), (0, 2)];
        assert_eq!(
            Graph::from_edges(4, &edges).unwrap(),
            Graph::from_edges_by_sort(4, &edges).unwrap(),
        );
    }

    #[test]
    fn sort_builder_reports_same_errors() {
        assert_eq!(
            Graph::from_edges_by_sort(2, &[(0, 5)]).unwrap_err(),
            GraphError::VertexOutOfRange { vertex: 5, n: 2 },
        );
        assert_eq!(
            Graph::from_edges_by_sort(2, &[(1, 1)]).unwrap_err(),
            GraphError::SelfLoop { vertex: 1 },
        );
    }

    #[test]
    fn unsorted_builder_identical_at_any_jobs() {
        // Unsorted input with duplicates in both orders of discovery; the
        // canonical CSR must not depend on order or thread count.
        let edges: Vec<(u32, u32)> = vec![(2, 4), (0, 1), (1, 4), (0, 1), (2, 4), (0, 3)];
        let reference = Graph::from_edges_by_sort(
            5,
            &edges
                .iter()
                .map(|&(u, v)| (u as usize, v as usize))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        for jobs in [1, 2, 0] {
            assert_eq!(
                Graph::from_normalized_unsorted(5, &edges, jobs),
                reference,
                "jobs = {jobs}"
            );
        }
    }

    #[test]
    fn clone_preserves_equality() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        assert_eq!(g, g.clone());
    }

    #[test]
    fn default_is_empty() {
        let g = Graph::default();
        assert_eq!(g.num_vertices(), 0);
    }
}
