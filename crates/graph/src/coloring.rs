//! Vertex colorings and proper-coloring validation.
//!
//! Theorem 1.2 of the paper produces a proper coloring with `O(λ log log n)`
//! colors. This module supplies the output type, validity checking, and a
//! sequential greedy reference used as ground truth in tests.

use crate::error::{GraphError, Result};
use crate::graph::Graph;
use serde::{Deserialize, Serialize};

/// A vertex coloring: `color(v)` for every vertex of a specific [`Graph`].
///
/// # Examples
///
/// ```
/// use dgo_graph::{Graph, Coloring};
///
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2)])?;
/// let c = Coloring::new(vec![0, 1, 0])?;
/// c.validate(&g)?;
/// assert_eq!(c.num_colors(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Coloring {
    colors: Vec<u32>,
}

impl Coloring {
    /// Wraps a color vector (entry `v` is the color of vertex `v`).
    ///
    /// # Errors
    ///
    /// Never fails currently; returns `Result` for forward compatibility with
    /// palette-constrained constructors.
    pub fn new(colors: Vec<u32>) -> Result<Self> {
        Ok(Coloring { colors })
    }

    /// The color assigned to vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn color(&self, v: usize) -> u32 {
        self.colors[v]
    }

    /// Number of vertices covered.
    pub fn len(&self) -> usize {
        self.colors.len()
    }

    /// Whether the coloring covers zero vertices.
    pub fn is_empty(&self) -> bool {
        self.colors.is_empty()
    }

    /// Number of *distinct* colors used.
    pub fn num_colors(&self) -> usize {
        let mut seen: Vec<u32> = self.colors.clone();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// The largest color value used plus one (palette size upper bound).
    pub fn palette_bound(&self) -> usize {
        self.colors
            .iter()
            .copied()
            .max()
            .map_or(0, |c| c as usize + 1)
    }

    /// Access the raw color slice.
    pub fn as_slice(&self) -> &[u32] {
        &self.colors
    }

    /// Checks that the coloring is *proper* for `graph`: it covers every
    /// vertex and no edge is monochromatic.
    ///
    /// # Errors
    ///
    /// [`GraphError::LengthMismatch`] if sizes differ, or
    /// [`GraphError::InvalidParameter`] naming the first monochromatic edge.
    pub fn validate(&self, graph: &Graph) -> Result<()> {
        if self.colors.len() != graph.num_vertices() {
            return Err(GraphError::LengthMismatch {
                expected: graph.num_vertices(),
                found: self.colors.len(),
            });
        }
        for (u, v) in graph.edges() {
            if self.colors[u] == self.colors[v] {
                return Err(GraphError::InvalidParameter {
                    reason: format!(
                        "edge ({u}, {v}) is monochromatic with color {}",
                        self.colors[u]
                    ),
                });
            }
        }
        Ok(())
    }

    /// Sequential greedy coloring in the given vertex order: each vertex takes
    /// the smallest color unused by already-colored neighbors.
    ///
    /// With a degeneracy order this uses at most `degeneracy + 1` colors; used
    /// as the reference point in tests and experiments.
    pub fn greedy(graph: &Graph, order: &[usize]) -> Self {
        let n = graph.num_vertices();
        let mut colors = vec![u32::MAX; n];
        let mut forbidden: Vec<u32> = Vec::new();
        for &v in order {
            forbidden.clear();
            for &w in graph.neighbors(v) {
                let c = colors[w as usize];
                if c != u32::MAX {
                    forbidden.push(c);
                }
            }
            forbidden.sort_unstable();
            forbidden.dedup();
            let mut pick = 0u32;
            for &c in &forbidden {
                if c == pick {
                    pick += 1;
                } else if c > pick {
                    break;
                }
            }
            colors[v] = pick;
        }
        Coloring { colors }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proper_coloring_validates() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let c = Coloring::new(vec![0, 1, 2]).unwrap();
        assert!(c.validate(&g).is_ok());
        assert_eq!(c.num_colors(), 3);
        assert_eq!(c.palette_bound(), 3);
    }

    #[test]
    fn monochromatic_edge_rejected() {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let c = Coloring::new(vec![5, 5]).unwrap();
        let err = c.validate(&g).unwrap_err();
        assert!(err.to_string().contains("monochromatic"));
    }

    #[test]
    fn length_mismatch_rejected() {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let c = Coloring::new(vec![0]).unwrap();
        assert!(c.validate(&g).is_err());
    }

    #[test]
    fn greedy_path_uses_two_colors() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let order: Vec<usize> = (0..5).collect();
        let c = Coloring::greedy(&g, &order);
        assert!(c.validate(&g).is_ok());
        assert_eq!(c.num_colors(), 2);
    }

    #[test]
    fn greedy_clique_uses_k_colors() {
        let mut edges = Vec::new();
        for u in 0..4 {
            for v in (u + 1)..4 {
                edges.push((u, v));
            }
        }
        let g = Graph::from_edges(4, &edges).unwrap();
        let order: Vec<usize> = (0..4).collect();
        let c = Coloring::greedy(&g, &order);
        assert!(c.validate(&g).is_ok());
        assert_eq!(c.num_colors(), 4);
    }

    #[test]
    fn greedy_skips_over_forbidden_gaps() {
        // Star center colored last must skip leaf colors {0} and take 1.
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let c = Coloring::greedy(&g, &[1, 2, 3, 0]);
        assert!(c.validate(&g).is_ok());
        assert_eq!(c.color(0), 1);
        assert_eq!(c.num_colors(), 2);
    }

    #[test]
    fn empty_coloring() {
        let c = Coloring::new(vec![]).unwrap();
        assert!(c.is_empty());
        assert_eq!(c.num_colors(), 0);
        assert_eq!(c.palette_bound(), 0);
        assert!(c.validate(&Graph::empty(0)).is_ok());
    }
}
