//! Graphs with skewed density: planted dense cores and preferential
//! attachment. These exercise the density-based clustering motivation of
//! [GLM19] that the paper builds on.

use crate::generators::random::gnm;
use crate::graph::{ingest_jobs, Graph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Sparse Erdős–Rényi background with a planted near-clique on the first
/// `core` vertices: the core receives all `core·(core-1)/2` internal edges,
/// the rest of the graph gets `background_m` random edges.
///
/// The densest subgraph is the core (for reasonable parameters), so layer
/// assignments push the core to the top layers — the property
/// `examples/dense_subgraph.rs` demonstrates.
///
/// Deterministic in `seed`.
///
/// # Examples
///
/// ```
/// use dgo_graph::generators::planted_dense;
/// let g = planted_dense(200, 400, 16, 5);
/// assert_eq!(g.num_vertices(), 200);
/// assert!(g.has_edge(0, 15)); // inside the planted core
/// ```
pub fn planted_dense(n: usize, background_m: usize, core: usize, seed: u64) -> Graph {
    let core = core.min(n);
    let background = gnm(n, background_m, seed);
    let mut edges: HashSet<(u32, u32)> = background
        .edges()
        .map(|(u, v)| (u as u32, v as u32))
        .collect();
    for u in 0..core as u32 {
        for v in (u + 1)..core as u32 {
            edges.insert((u, v));
        }
    }
    let edges: Vec<(u32, u32)> = edges.into_iter().collect();
    Graph::from_normalized_unsorted(n, &edges, ingest_jobs())
}

/// Barabási–Albert preferential attachment: starts from a clique on
/// `attach + 1` vertices; each newcomer attaches to `attach` distinct
/// existing vertices chosen proportionally to degree.
///
/// Produces heavy-tailed degrees (`Δ` grows polynomially) while the
/// arboricity stays `O(attach)` — the regime where density-dependent
/// coloring beats `Δ + 1` coloring dramatically.
///
/// Deterministic in `seed`.
///
/// # Examples
///
/// ```
/// use dgo_graph::generators::barabasi_albert;
/// let g = barabasi_albert(500, 3, 1);
/// assert_eq!(g.num_vertices(), 500);
/// assert!(g.max_degree() > 3 * 4); // hubs emerge
/// ```
pub fn barabasi_albert(n: usize, attach: usize, seed: u64) -> Graph {
    let attach = attach.max(1);
    if n <= attach + 1 {
        // Too small for the process: return a clique on n vertices.
        return super::structured::clique(n);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    // `targets` holds one entry per edge endpoint; sampling uniformly from it
    // realizes degree-proportional selection.
    let mut endpoint_pool: Vec<u32> = Vec::with_capacity(2 * attach * n);
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(attach * n);
    let seedlings = attach + 1;
    for u in 0..seedlings as u32 {
        for v in (u + 1)..seedlings as u32 {
            edges.push((u, v));
            endpoint_pool.push(u);
            endpoint_pool.push(v);
        }
    }
    let mut picked: Vec<u32> = Vec::with_capacity(attach);
    for newcomer in seedlings as u32..n as u32 {
        picked.clear();
        while picked.len() < attach {
            let t = endpoint_pool[rng.random_range(0..endpoint_pool.len())];
            if !picked.contains(&t) {
                picked.push(t);
            }
        }
        // Deterministic insertion order (the pool feeds future sampling).
        picked.sort_unstable();
        for &t in &picked {
            let (a, b) = if t < newcomer {
                (t, newcomer)
            } else {
                (newcomer, t)
            };
            edges.push((a, b));
            endpoint_pool.push(t);
            endpoint_pool.push(newcomer);
        }
    }
    Graph::from_normalized_unsorted(n, &edges, ingest_jobs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degeneracy::degeneracy;

    #[test]
    fn planted_core_is_complete() {
        let g = planted_dense(100, 150, 10, 3);
        for u in 0..10 {
            for v in (u + 1)..10 {
                assert!(g.has_edge(u, v), "core edge ({u},{v}) missing");
            }
        }
    }

    #[test]
    fn planted_deterministic() {
        assert_eq!(planted_dense(80, 100, 8, 2), planted_dense(80, 100, 8, 2));
    }

    #[test]
    fn planted_core_larger_than_n_is_clamped() {
        let g = planted_dense(5, 0, 50, 1);
        assert_eq!(g.num_edges(), 10); // K5
    }

    #[test]
    fn planted_core_raises_degeneracy() {
        let sparse = gnm(200, 300, 9);
        let planted = planted_dense(200, 300, 20, 9);
        assert!(degeneracy(&planted).value > degeneracy(&sparse).value);
    }

    #[test]
    fn ba_edge_count() {
        let n = 300;
        let attach = 3;
        let g = barabasi_albert(n, attach, 7);
        // Seed clique has C(4,2)=6 edges; each of the n-4 newcomers adds
        // `attach` edges (dedup can only remove none since newcomer edges are
        // distinct by construction).
        assert_eq!(g.num_edges(), 6 + (n - 4) * attach);
    }

    #[test]
    fn ba_heavy_tail() {
        let g = barabasi_albert(2000, 2, 11);
        // A hub should exist with degree far above the mean (~4).
        assert!(g.max_degree() >= 20, "max degree {}", g.max_degree());
        // Yet degeneracy stays at the attachment rate.
        assert!(degeneracy(&g).value <= 4);
    }

    #[test]
    fn ba_small_n_is_clique() {
        let g = barabasi_albert(3, 4, 0);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn ba_deterministic() {
        assert_eq!(barabasi_albert(150, 3, 5), barabasi_albert(150, 3, 5));
        assert_ne!(barabasi_albert(150, 3, 5), barabasi_albert(150, 3, 6));
    }
}
