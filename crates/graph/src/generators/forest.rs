//! Uniform random trees and forests (the `λ = 1` workloads).

use crate::graph::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniform random labeled tree on `n` vertices via a random Prüfer sequence.
///
/// Deterministic in `seed`. For `n <= 1` returns an edgeless graph; `n == 2`
/// returns the single edge.
///
/// # Examples
///
/// ```
/// use dgo_graph::generators::random_tree;
/// let t = random_tree(50, 3);
/// assert_eq!(t.num_edges(), 49);
/// assert!(t.is_forest());
/// assert_eq!(t.connected_components(), 1);
/// ```
pub fn random_tree(n: usize, seed: u64) -> Graph {
    if n <= 1 {
        return Graph::empty(n);
    }
    if n == 2 {
        return Graph::from_edges(2, &[(0, 1)]).expect("valid edge");
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let prufer: Vec<usize> = (0..n - 2).map(|_| rng.random_range(0..n)).collect();
    Graph::from_edges(n, &prufer_to_edges(n, &prufer)).expect("Prüfer decoding yields a tree")
}

/// Decodes a Prüfer sequence into the tree's edge list.
fn prufer_to_edges(n: usize, prufer: &[usize]) -> Vec<(usize, usize)> {
    debug_assert_eq!(prufer.len(), n - 2);
    let mut degree = vec![1usize; n];
    for &v in prufer {
        degree[v] += 1;
    }
    let mut edges = Vec::with_capacity(n - 1);
    // Min-heap of current leaves.
    let mut leaves: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = (0..n)
        .filter(|&v| degree[v] == 1)
        .map(std::cmp::Reverse)
        .collect();
    for &v in prufer {
        let std::cmp::Reverse(leaf) = leaves.pop().expect("a leaf always exists");
        edges.push((leaf, v));
        degree[v] -= 1;
        if degree[v] == 1 {
            leaves.push(std::cmp::Reverse(v));
        }
    }
    let std::cmp::Reverse(a) = leaves.pop().expect("two leaves remain");
    let std::cmp::Reverse(b) = leaves.pop().expect("two leaves remain");
    edges.push((a, b));
    edges
}

/// Random forest: `n` vertices split round-robin into `trees` groups, each a
/// uniform random tree.
///
/// Deterministic in `seed`.
///
/// # Examples
///
/// ```
/// use dgo_graph::generators::random_forest;
/// let f = random_forest(100, 5, 9);
/// assert!(f.is_forest());
/// assert_eq!(f.connected_components(), 5);
/// ```
pub fn random_forest(n: usize, trees: usize, seed: u64) -> Graph {
    let trees = trees.max(1).min(n.max(1));
    let mut result = Graph::empty(0);
    let base = n / trees;
    let extra = n % trees;
    for i in 0..trees {
        let size = base + usize::from(i < extra);
        let t = random_tree(
            size,
            seed.wrapping_add(i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        result = result.disjoint_union(&t);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_is_connected_acyclic() {
        for n in [2usize, 3, 10, 100] {
            let t = random_tree(n, 1);
            assert_eq!(t.num_edges(), n - 1);
            assert!(t.is_forest());
            assert_eq!(t.connected_components(), 1);
        }
    }

    #[test]
    fn tree_tiny_cases() {
        assert_eq!(random_tree(0, 1).num_vertices(), 0);
        assert_eq!(random_tree(1, 1).num_edges(), 0);
        assert_eq!(random_tree(2, 1).num_edges(), 1);
    }

    #[test]
    fn tree_deterministic() {
        assert_eq!(random_tree(64, 8), random_tree(64, 8));
        assert_ne!(random_tree(64, 8), random_tree(64, 9));
    }

    #[test]
    fn prufer_star_decodes() {
        // Sequence of all the same vertex yields a star centered there.
        let edges = prufer_to_edges(5, &[2, 2, 2]);
        let g = Graph::from_edges(5, &edges).unwrap();
        assert_eq!(g.degree(2), 4);
    }

    #[test]
    fn forest_structure() {
        let f = random_forest(30, 3, 4);
        assert_eq!(f.num_vertices(), 30);
        assert!(f.is_forest());
        assert_eq!(f.connected_components(), 3);
        assert_eq!(f.num_edges(), 27);
    }

    #[test]
    fn forest_more_trees_than_vertices() {
        let f = random_forest(3, 10, 0);
        assert_eq!(f.num_vertices(), 3);
        assert!(f.is_forest());
    }

    #[test]
    fn forest_single_tree_equals_tree_shape() {
        let f = random_forest(20, 1, 5);
        assert_eq!(f.connected_components(), 1);
        assert_eq!(f.num_edges(), 19);
    }
}
