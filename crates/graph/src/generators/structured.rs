//! Deterministic structured graphs: extreme shapes for the experiments.

use crate::graph::Graph;

/// Star `K_{1,n-1}`: vertex 0 is the center. The canonical `Δ = n-1, λ = 1`
/// separation example from the paper's §1.5.
///
/// # Examples
///
/// ```
/// use dgo_graph::generators::star;
/// let s = star(10);
/// assert_eq!(s.degree(0), 9);
/// assert_eq!(s.max_degree(), 9);
/// assert!(s.is_forest()); // λ = 1
/// ```
pub fn star(n: usize) -> Graph {
    if n <= 1 {
        return Graph::empty(n);
    }
    let edges: Vec<(u32, u32)> = (1..n as u32).map(|v| (0, v)).collect();
    Graph::from_normalized(n, &edges)
}

/// Complete graph `K_n` (density `(n-1)/2`, arboricity `⌈n/2⌉`).
pub fn clique(n: usize) -> Graph {
    let mut edges = Vec::with_capacity(n * n.saturating_sub(1) / 2);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            edges.push((u, v));
        }
    }
    Graph::from_normalized(n, &edges)
}

/// Complete bipartite graph `K_{a,b}`; vertices `0..a` on one side,
/// `a..a+b` on the other.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut edges = Vec::with_capacity(a * b);
    for u in 0..a as u32 {
        for v in 0..b as u32 {
            edges.push((u, a as u32 + v));
        }
    }
    Graph::from_normalized(a + b, &edges)
}

/// Cycle `C_n` (arboricity 2 for `n >= 3`).
///
/// # Panics
///
/// Panics if `n < 3` — a cycle needs at least three vertices.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs n >= 3, got {n}");
    let mut edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|v| (v, v + 1)).collect();
    edges.push((0, n as u32 - 1));
    edges.sort_unstable();
    Graph::from_normalized(n, &edges)
}

/// 2-D grid graph with `rows × cols` vertices (planar, arboricity ≤ 3,
/// actually ≤ 2 for grids). Vertex `(r, c)` has id `r * cols + c`.
pub fn grid_2d(rows: usize, cols: usize) -> Graph {
    let n = rows * cols;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            let id = (r * cols + c) as u32;
            if c + 1 < cols {
                edges.push((id, id + 1));
            }
            if r + 1 < rows {
                edges.push((id, id + cols as u32));
            }
        }
    }
    edges.sort_unstable();
    Graph::from_normalized(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_shape() {
        let s = star(6);
        assert_eq!(s.num_edges(), 5);
        assert_eq!(s.degree(0), 5);
        for v in 1..6 {
            assert_eq!(s.degree(v), 1);
        }
    }

    #[test]
    fn star_tiny() {
        assert_eq!(star(0).num_vertices(), 0);
        assert_eq!(star(1).num_edges(), 0);
        assert_eq!(star(2).num_edges(), 1);
    }

    #[test]
    fn clique_edge_count() {
        assert_eq!(clique(6).num_edges(), 15);
        assert_eq!(clique(1).num_edges(), 0);
        assert_eq!(clique(0).num_vertices(), 0);
    }

    #[test]
    fn complete_bipartite_shape() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.num_vertices(), 7);
        assert_eq!(g.num_edges(), 12);
        for u in 0..3 {
            assert_eq!(g.degree(u), 4);
        }
        for v in 3..7 {
            assert_eq!(g.degree(v), 3);
        }
        // No intra-side edges.
        assert!(!g.has_edge(0, 1));
        assert!(!g.has_edge(3, 4));
    }

    #[test]
    fn cycle_shape() {
        let c = cycle(5);
        assert_eq!(c.num_edges(), 5);
        for v in 0..5 {
            assert_eq!(c.degree(v), 2);
        }
        assert!(!c.is_forest());
    }

    #[test]
    #[should_panic(expected = "n >= 3")]
    fn cycle_too_small_panics() {
        cycle(2);
    }

    #[test]
    fn grid_shape() {
        let g = grid_2d(3, 4);
        assert_eq!(g.num_vertices(), 12);
        // Edges: 3 rows * 3 horizontal + 2 * 4 vertical = 9 + 8 = 17.
        assert_eq!(g.num_edges(), 17);
        assert_eq!(g.degree(0), 2); // corner
        assert_eq!(g.degree(5), 4); // interior (row 1, col 1)
        assert_eq!(g.connected_components(), 1);
    }

    #[test]
    fn grid_degenerate_shapes() {
        assert_eq!(grid_2d(1, 5).num_edges(), 4); // a path
        assert_eq!(grid_2d(0, 5).num_vertices(), 0);
    }
}
