//! Deterministic structured graphs: extreme shapes for the experiments
//! (plus the seeded [`core_onion`], deterministic in its seed).

use crate::graph::{ingest_jobs, Graph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Star `K_{1,n-1}`: vertex 0 is the center. The canonical `Δ = n-1, λ = 1`
/// separation example from the paper's §1.5.
///
/// # Examples
///
/// ```
/// use dgo_graph::generators::star;
/// let s = star(10);
/// assert_eq!(s.degree(0), 9);
/// assert_eq!(s.max_degree(), 9);
/// assert!(s.is_forest()); // λ = 1
/// ```
pub fn star(n: usize) -> Graph {
    if n <= 1 {
        return Graph::empty(n);
    }
    let edges: Vec<(u32, u32)> = (1..n as u32).map(|v| (0, v)).collect();
    Graph::from_normalized(n, &edges)
}

/// Complete graph `K_n` (density `(n-1)/2`, arboricity `⌈n/2⌉`).
pub fn clique(n: usize) -> Graph {
    let mut edges = Vec::with_capacity(n * n.saturating_sub(1) / 2);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            edges.push((u, v));
        }
    }
    Graph::from_normalized(n, &edges)
}

/// Complete bipartite graph `K_{a,b}`; vertices `0..a` on one side,
/// `a..a+b` on the other.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut edges = Vec::with_capacity(a * b);
    for u in 0..a as u32 {
        for v in 0..b as u32 {
            edges.push((u, a as u32 + v));
        }
    }
    Graph::from_normalized(a + b, &edges)
}

/// Cycle `C_n` (arboricity 2 for `n >= 3`).
///
/// # Panics
///
/// Panics if `n < 3` — a cycle needs at least three vertices.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs n >= 3, got {n}");
    let mut edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|v| (v, v + 1)).collect();
    edges.push((0, n as u32 - 1));
    Graph::from_normalized_unsorted(n, &edges, ingest_jobs())
}

/// 2-D grid graph with `rows × cols` vertices (planar, arboricity ≤ 3,
/// actually ≤ 2 for grids). Vertex `(r, c)` has id `r * cols + c`.
pub fn grid_2d(rows: usize, cols: usize) -> Graph {
    let n = rows * cols;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            let id = (r * cols + c) as u32;
            if c + 1 < cols {
                edges.push((id, id + 1));
            }
            if r + 1 < rows {
                edges.push((id, id + cols as u32));
            }
        }
    }
    Graph::from_normalized_unsorted(n, &edges, ingest_jobs())
}

/// Ring of cliques: `blocks` copies of `K_c` (`c = clique_size`) arranged in
/// a cycle, consecutive blocks joined by one bridge edge (last vertex of
/// block `i` to first vertex of block `i+1 mod blocks`). Block `i` owns
/// vertex ids `i·c .. (i+1)·c`.
///
/// Arboricity is dominated by the blocks (`λ = ⌈c/2⌉ + O(1)` — roughly the
/// clique size) while every block has diameter 1, so view trees saturate
/// within a block after one expansion: the workload stresses the prune stage
/// rather than the exponentiation depth.
///
/// # Panics
///
/// Panics if `blocks < 3` (a ring, like [`cycle`]) or `clique_size == 0`.
pub fn ring_of_cliques(blocks: usize, clique_size: usize) -> Graph {
    assert!(blocks >= 3, "ring needs blocks >= 3, got {blocks}");
    assert!(clique_size >= 1, "blocks need at least one vertex");
    let c = clique_size;
    let n = blocks * c;
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(blocks * (c * (c - 1) / 2 + 1));
    for b in 0..blocks {
        let base = (b * c) as u32;
        for u in 0..c as u32 {
            for v in (u + 1)..c as u32 {
                edges.push((base + u, base + v));
            }
        }
        // Bridge: last vertex of this block to first vertex of the next.
        let from = base + c as u32 - 1;
        let to = (((b + 1) % blocks) * c) as u32;
        edges.push(if from < to { (from, to) } else { (to, from) });
    }
    // c = 1 degenerates to a cycle with doubled bridges; the builder dedups.
    Graph::from_normalized_unsorted(n, &edges, ingest_jobs())
}

/// Core onion with its coreness ground truth: nested k-core shells around a
/// clique core, built so `coreness(v)` is known *exactly* for every vertex.
///
/// The innermost shell is `K_{shells+1}` (coreness `shells`); each outer
/// shell `j = shells-1, …, 1` holds an equal share of the remaining vertices,
/// every shell-`j` vertex attaching with exactly `j` edges to distinct
/// vertices of strictly deeper shells. Peeling at threshold `j+1` removes
/// shell `j` (degree exactly `j`) and nothing deeper, so the returned truth
/// vector — `shells` for the core, `j` for shell `j` — is the exact coreness.
///
/// Deterministic in `seed` (which picks the attachment targets).
///
/// # Panics
///
/// Panics if `shells == 0` or `n < shells + 1` (the core must fit).
pub fn core_onion_with_truth(n: usize, shells: usize, seed: u64) -> (Graph, Vec<u32>) {
    assert!(shells >= 1, "onion needs at least one shell");
    let core = shells + 1;
    assert!(
        n >= core,
        "n = {n} cannot fit the K_{core} core of a {shells}-shell onion"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut truth: Vec<u32> = vec![shells as u32; core];
    for u in 0..core as u32 {
        for v in (u + 1)..core as u32 {
            edges.push((u, v));
        }
    }
    // Outer shells, deepest first, sharing the remaining vertices evenly
    // (the deepest outer shells absorb any remainder).
    let outer = n - core;
    let outer_shells = shells.saturating_sub(1);
    let mut placed = core;
    for j in (1..=outer_shells).rev() {
        let remaining_shells = j;
        let share = (outer + core - placed).div_ceil(remaining_shells);
        for v in placed..placed + share {
            truth.push(j as u32);
            // j distinct targets among the strictly deeper vertices
            // (ids < placed when this shell started; all have truth > j).
            let mut targets: Vec<u32> = Vec::with_capacity(j);
            while targets.len() < j {
                let t = rng.random_range(0..placed) as u32;
                if !targets.contains(&t) {
                    targets.push(t);
                }
            }
            for t in targets {
                edges.push((t, v as u32));
            }
        }
        placed += share;
        if placed >= n {
            break;
        }
    }
    // shells == 1: no outer shells exist, so any remaining vertices hang off
    // the core with one edge each (coreness 1 — consistent with the core's).
    for v in placed..n {
        truth.push(1);
        let t = rng.random_range(0..core) as u32;
        edges.push((t, v as u32));
    }
    debug_assert_eq!(truth.len(), n);
    (
        Graph::from_normalized_unsorted(n, &edges, ingest_jobs()),
        truth,
    )
}

/// The [`core_onion_with_truth`] graph without its ground-truth vector; see
/// there for the construction.
///
/// # Panics
///
/// See [`core_onion_with_truth`].
pub fn core_onion(n: usize, shells: usize, seed: u64) -> Graph {
    core_onion_with_truth(n, shells, seed).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_shape() {
        let s = star(6);
        assert_eq!(s.num_edges(), 5);
        assert_eq!(s.degree(0), 5);
        for v in 1..6 {
            assert_eq!(s.degree(v), 1);
        }
    }

    #[test]
    fn star_tiny() {
        assert_eq!(star(0).num_vertices(), 0);
        assert_eq!(star(1).num_edges(), 0);
        assert_eq!(star(2).num_edges(), 1);
    }

    #[test]
    fn clique_edge_count() {
        assert_eq!(clique(6).num_edges(), 15);
        assert_eq!(clique(1).num_edges(), 0);
        assert_eq!(clique(0).num_vertices(), 0);
    }

    #[test]
    fn complete_bipartite_shape() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.num_vertices(), 7);
        assert_eq!(g.num_edges(), 12);
        for u in 0..3 {
            assert_eq!(g.degree(u), 4);
        }
        for v in 3..7 {
            assert_eq!(g.degree(v), 3);
        }
        // No intra-side edges.
        assert!(!g.has_edge(0, 1));
        assert!(!g.has_edge(3, 4));
    }

    #[test]
    fn cycle_shape() {
        let c = cycle(5);
        assert_eq!(c.num_edges(), 5);
        for v in 0..5 {
            assert_eq!(c.degree(v), 2);
        }
        assert!(!c.is_forest());
    }

    #[test]
    #[should_panic(expected = "n >= 3")]
    fn cycle_too_small_panics() {
        cycle(2);
    }

    #[test]
    fn grid_shape() {
        let g = grid_2d(3, 4);
        assert_eq!(g.num_vertices(), 12);
        // Edges: 3 rows * 3 horizontal + 2 * 4 vertical = 9 + 8 = 17.
        assert_eq!(g.num_edges(), 17);
        assert_eq!(g.degree(0), 2); // corner
        assert_eq!(g.degree(5), 4); // interior (row 1, col 1)
        assert_eq!(g.connected_components(), 1);
    }

    #[test]
    fn grid_degenerate_shapes() {
        assert_eq!(grid_2d(1, 5).num_edges(), 4); // a path
        assert_eq!(grid_2d(0, 5).num_vertices(), 0);
    }

    #[test]
    fn ring_of_cliques_shape() {
        let g = ring_of_cliques(5, 4);
        assert_eq!(g.num_vertices(), 20);
        // 5 blocks of K4 (6 edges) + 5 bridges.
        assert_eq!(g.num_edges(), 5 * 6 + 5);
        // Bridge endpoints have degree 4, interior clique vertices 3.
        assert_eq!(g.degree(0), 4); // first of block 0: clique + bridge in
        assert_eq!(g.degree(1), 3);
        assert_eq!(g.degree(3), 4); // last of block 0: clique + bridge out
        assert_eq!(g.connected_components(), 1);
        // Every block is a clique.
        for b in 0..5 {
            for u in 0..4 {
                for v in (u + 1)..4 {
                    assert!(g.has_edge(4 * b + u, 4 * b + v), "block {b} not complete");
                }
            }
        }
    }

    #[test]
    fn ring_of_cliques_unit_blocks_is_a_cycle() {
        let g = ring_of_cliques(7, 1);
        assert_eq!(g.num_edges(), 7);
        for v in 0..7 {
            assert_eq!(g.degree(v), 2);
        }
    }

    #[test]
    #[should_panic(expected = "blocks >= 3")]
    fn ring_of_cliques_needs_a_ring() {
        ring_of_cliques(2, 4);
    }

    #[test]
    fn core_onion_ground_truth_is_exact() {
        use crate::coreness::coreness;
        for (n, shells, seed) in [(120usize, 5usize, 1u64), (300, 8, 7), (64, 2, 3)] {
            let (g, truth) = core_onion_with_truth(n, shells, seed);
            assert_eq!(g.num_vertices(), n);
            assert_eq!(
                coreness(&g),
                truth,
                "n={n} shells={shells} seed={seed}: ground truth must be exact"
            );
            assert_eq!(truth[0], shells as u32, "core has the deepest coreness");
        }
    }

    #[test]
    fn core_onion_covers_every_shell() {
        let (_, truth) = core_onion_with_truth(500, 6, 11);
        for j in 1..=6u32 {
            assert!(truth.contains(&j), "no vertex with coreness {j}");
        }
    }

    #[test]
    fn core_onion_single_shell_degenerates_to_pendants() {
        use crate::coreness::coreness;
        let (g, truth) = core_onion_with_truth(20, 1, 2);
        assert!(truth.iter().all(|&t| t == 1));
        assert_eq!(coreness(&g), truth);
    }

    #[test]
    fn core_onion_deterministic_in_seed() {
        assert_eq!(core_onion(256, 5, 9), core_onion(256, 5, 9));
        assert_ne!(core_onion(256, 5, 9), core_onion(256, 5, 10));
    }

    #[test]
    #[should_panic(expected = "cannot fit")]
    fn core_onion_core_must_fit() {
        core_onion(4, 8, 0);
    }
}
