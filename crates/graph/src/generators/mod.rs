//! Workload generators for the experiment suite.
//!
//! Every generator is seeded and deterministic: the same seed always produces
//! the same graph, which is what makes the round-count experiments in the
//! bench harness reproducible.
//!
//! Families (chosen to span the density spectrum the paper targets):
//!
//! * `random` — Erdős–Rényi `G(n, m)` and `G(n, p)`; the generic sparse and
//!   mid-density workloads.
//! * `forest` — uniform random trees and forests (`λ = 1`, the \[GLM+23\]
//!   special case the paper generalizes).
//! * `structured` — stars, cliques, complete bipartite graphs, 2-D grids,
//!   cycles, clique rings, core onions; extreme/adversarial shapes (e.g. the
//!   star's `Δ = n-1, λ = 1` separation motivating density-dependent
//!   coloring, §1.5; the core onion's exact-coreness shells benchmarking the
//!   coreness application).
//! * `planted` — sparse background plus planted dense subgraphs, and
//!   preferential-attachment (Barabási–Albert) graphs with heavy-tailed
//!   degrees but `λ ≈ m/n`; the density-based clustering motivation
//!   of \[GLM19\].

mod forest;
mod planted;
mod random;
mod structured;

pub use forest::{random_forest, random_tree};
pub use planted::{barabasi_albert, planted_dense};
pub use random::{gnm, gnp};
pub use structured::{
    clique, complete_bipartite, core_onion, core_onion_with_truth, cycle, grid_2d, ring_of_cliques,
    star,
};

use crate::graph::Graph;

/// The named workload families used across the experiment harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Family {
    /// Erdős–Rényi with average degree 8 (`m = 4n`).
    SparseGnm,
    /// Erdős–Rényi with average degree 32 (`m = 16n`).
    DenseGnm,
    /// Uniform random tree.
    Tree,
    /// Forest of ~`n/100` uniform trees.
    Forest,
    /// Star graph (maximum Δ-vs-λ separation).
    Star,
    /// 2-D grid (planar, λ ≤ 3).
    Grid,
    /// Barabási–Albert, 4 edges per newcomer.
    PowerLaw,
    /// Sparse background with a planted clique-like core.
    PlantedDense,
    /// Ring of `K_8` blocks joined by bridge edges (`λ ≈ clique size`, block
    /// diameter 1).
    RingOfCliques,
    /// Nested k-core shells with exact coreness ground truth
    /// ([`core_onion`]).
    CoreOnion,
}

impl Family {
    /// All families, in the order experiments report them.
    pub const ALL: [Family; 10] = [
        Family::SparseGnm,
        Family::DenseGnm,
        Family::Tree,
        Family::Forest,
        Family::Star,
        Family::Grid,
        Family::PowerLaw,
        Family::PlantedDense,
        Family::RingOfCliques,
        Family::CoreOnion,
    ];

    /// Short stable name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            Family::SparseGnm => "gnm-sparse",
            Family::DenseGnm => "gnm-dense",
            Family::Tree => "tree",
            Family::Forest => "forest",
            Family::Star => "star",
            Family::Grid => "grid",
            Family::PowerLaw => "power-law",
            Family::PlantedDense => "planted-dense",
            Family::RingOfCliques => "ring-of-cliques",
            Family::CoreOnion => "core-onion",
        }
    }

    /// Generates an instance of this family with about `n` vertices.
    pub fn generate(&self, n: usize, seed: u64) -> Graph {
        match self {
            Family::SparseGnm => gnm(n, 4 * n, seed),
            Family::DenseGnm => gnm(n, 16 * n, seed),
            Family::Tree => random_tree(n, seed),
            Family::Forest => random_forest(n, (n / 100).max(1), seed),
            Family::Star => star(n),
            Family::Grid => {
                let side = (n as f64).sqrt().round().max(1.0) as usize;
                grid_2d(side, side)
            }
            Family::PowerLaw => barabasi_albert(n, 4, seed),
            Family::PlantedDense => {
                let core = (n / 20).clamp(4, 64);
                planted_dense(n, 2 * n, core, seed)
            }
            Family::RingOfCliques => ring_of_cliques((n / 8).max(3), 8),
            Family::CoreOnion => {
                let shells = ((n.max(4) as f64).log2().round() as usize / 2).clamp(2, 16);
                core_onion(n, shells, seed)
            }
        }
    }
}

impl std::fmt::Display for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_family_generates() {
        for fam in Family::ALL {
            let g = fam.generate(200, 7);
            assert!(g.num_vertices() >= 100, "{fam} too small");
            assert!(g.num_edges() > 0, "{fam} has no edges");
        }
    }

    #[test]
    fn family_generation_is_deterministic() {
        for fam in Family::ALL {
            let a = fam.generate(150, 42);
            let b = fam.generate(150, 42);
            assert_eq!(a, b, "{fam} not deterministic");
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Family::ALL.iter().map(|f| f.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Family::ALL.len());
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Family::Star.to_string(), "star");
    }
}
