//! Erdős–Rényi random graphs.

use crate::graph::{ingest_jobs, Graph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Uniform random graph `G(n, m)`: exactly `m` distinct edges (capped at
/// `n·(n-1)/2`), sampled without replacement.
///
/// Deterministic in `seed`.
///
/// # Examples
///
/// ```
/// use dgo_graph::generators::gnm;
/// let g = gnm(100, 300, 1);
/// assert_eq!(g.num_vertices(), 100);
/// assert_eq!(g.num_edges(), 300);
/// ```
pub fn gnm(n: usize, m: usize, seed: u64) -> Graph {
    if n < 2 {
        return Graph::empty(n);
    }
    let max_edges = n * (n - 1) / 2;
    let m = m.min(max_edges);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut chosen: HashSet<(u32, u32)> = HashSet::with_capacity(m);
    // Rejection sampling is fast while m is far below max_edges; switch to
    // dense sampling when the target is more than half of all pairs.
    if 2 * m <= max_edges {
        while chosen.len() < m {
            let u = rng.random_range(0..n) as u32;
            let v = rng.random_range(0..n) as u32;
            if u == v {
                continue;
            }
            let key = if u < v { (u, v) } else { (v, u) };
            chosen.insert(key);
        }
    } else {
        // Enumerate all pairs and sample a subset by partial Fisher-Yates.
        let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(max_edges);
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                pairs.push((u, v));
            }
        }
        for i in 0..m {
            let j = rng.random_range(i..pairs.len());
            pairs.swap(i, j);
        }
        chosen.extend(pairs.into_iter().take(m));
    }
    let edges: Vec<(u32, u32)> = chosen.into_iter().collect();
    Graph::from_normalized_unsorted(n, &edges, ingest_jobs())
}

/// Bernoulli random graph `G(n, p)`: each pair is an edge independently with
/// probability `p`. Uses geometric skipping, so the cost is proportional to
/// the number of edges produced.
///
/// Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `p` is not within `[0, 1]`.
pub fn gnp(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
    if n < 2 || p == 0.0 {
        return Graph::empty(n);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    if p >= 1.0 {
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                edges.push((u, v));
            }
        }
        return Graph::from_normalized(n, &edges);
    }
    // Geometric skipping over the linearized strictly-upper-triangular pairs.
    let total = n as u64 * (n as u64 - 1) / 2;
    let log_q = (1.0 - p).ln();
    let mut idx: u64 = 0;
    loop {
        let r: f64 = rng.random::<f64>();
        let skip = ((1.0 - r).ln() / log_q).floor() as u64;
        idx = idx.saturating_add(skip);
        if idx >= total {
            break;
        }
        edges.push(unrank_pair(idx, n as u64));
        idx += 1;
        if idx >= total {
            break;
        }
    }
    Graph::from_normalized(n, &edges)
}

/// Maps a linear index in `[0, n(n-1)/2)` to the pair `(u, v)`, `u < v`,
/// in row-major order of the strictly upper triangle.
fn unrank_pair(idx: u64, n: u64) -> (u32, u32) {
    // Row u starts at offset u*n - u*(u+1)/2 - u... derive by scanning rows;
    // binary search the row to stay O(log n).
    let row_start = |u: u64| -> u64 { u * n - u * (u + 1) / 2 };
    let mut lo = 0u64;
    let mut hi = n - 1;
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if row_start(mid) <= idx {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    let u = lo;
    let v = u + 1 + (idx - row_start(u));
    (u as u32, v as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnm_exact_edge_count() {
        let g = gnm(50, 123, 99);
        assert_eq!(g.num_edges(), 123);
    }

    #[test]
    fn gnm_caps_at_complete() {
        let g = gnm(5, 1000, 0);
        assert_eq!(g.num_edges(), 10);
    }

    #[test]
    fn gnm_deterministic() {
        assert_eq!(gnm(40, 80, 5), gnm(40, 80, 5));
    }

    #[test]
    fn gnm_seeds_differ() {
        assert_ne!(gnm(60, 120, 1), gnm(60, 120, 2));
    }

    #[test]
    fn gnm_tiny() {
        assert_eq!(gnm(0, 10, 1).num_vertices(), 0);
        assert_eq!(gnm(1, 10, 1).num_edges(), 0);
    }

    #[test]
    fn gnm_dense_path() {
        // Forces the Fisher-Yates branch (m > half of all pairs).
        let g = gnm(10, 40, 3);
        assert_eq!(g.num_edges(), 40);
    }

    #[test]
    fn gnp_zero_and_one() {
        assert_eq!(gnp(20, 0.0, 1).num_edges(), 0);
        assert_eq!(gnp(10, 1.0, 1).num_edges(), 45);
    }

    #[test]
    fn gnp_expected_count_plausible() {
        let g = gnp(200, 0.05, 7);
        let expected = 0.05 * (200.0 * 199.0 / 2.0);
        let m = g.num_edges() as f64;
        assert!(
            m > expected * 0.6 && m < expected * 1.4,
            "m={m} vs expected {expected}"
        );
    }

    #[test]
    fn gnp_deterministic() {
        assert_eq!(gnp(80, 0.1, 11), gnp(80, 0.1, 11));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn gnp_rejects_bad_p() {
        gnp(5, 1.5, 0);
    }

    #[test]
    fn unrank_pair_roundtrip() {
        let n = 7u64;
        let mut idx = 0u64;
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                assert_eq!(unrank_pair(idx, n), (u, v));
                idx += 1;
            }
        }
    }
}
