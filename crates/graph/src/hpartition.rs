//! (Partial) layer assignments, a.k.a. H-partitions (paper Definition 2.1).
//!
//! A partial layer assignment with `L` layers and out-degree `d` is a function
//! `ℓ : V → [1, L] ∪ {∞}` such that every vertex `v` with `ℓ(v) ≠ ∞` has at
//! most `d` neighbors `u` with `ℓ(u) ≥ ℓ(v)`. Orienting each edge toward the
//! higher layer (ties by id) then yields an orientation with max outdegree
//! `≤ d`, which is how Theorem 1.1 derives its result.

use crate::error::{GraphError, Result};
use crate::graph::Graph;
use crate::orientation::Orientation;
use serde::{Deserialize, Serialize};

/// Layer value of an unassigned vertex (the paper's `∞`).
pub const UNASSIGNED: u32 = u32::MAX;

/// A (partial) layer assignment of the vertices of a [`Graph`]
/// (paper Definition 2.1).
///
/// Layers are `1..=L`; [`UNASSIGNED`] encodes `∞`.
///
/// # Examples
///
/// ```
/// use dgo_graph::{Graph, LayerAssignment};
///
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)])?;
/// // Peel the path from the outside in: ends in layer 1, middle in layer 2.
/// let la = LayerAssignment::new(vec![1, 2, 2, 1])?;
/// assert!(la.is_complete());
/// assert_eq!(la.out_degree_bound(&g)?, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerAssignment {
    layers: Vec<u32>,
}

impl LayerAssignment {
    /// Wraps a layer vector; entry `v` is the layer of vertex `v`
    /// ([`UNASSIGNED`] for `∞`).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameter`] if any finite layer is `0`
    /// (layers are 1-based, matching the paper's `[L]`).
    pub fn new(layers: Vec<u32>) -> Result<Self> {
        if layers.contains(&0) {
            return Err(GraphError::InvalidParameter {
                reason: "layer 0 is invalid; layers are 1-based".to_string(),
            });
        }
        Ok(LayerAssignment { layers })
    }

    /// An all-unassigned assignment over `n` vertices.
    pub fn unassigned(n: usize) -> Self {
        LayerAssignment {
            layers: vec![UNASSIGNED; n],
        }
    }

    /// Layer of vertex `v` ([`UNASSIGNED`] if `∞`).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn layer(&self, v: usize) -> u32 {
        self.layers[v]
    }

    /// Whether vertex `v` has a finite layer.
    pub fn is_assigned(&self, v: usize) -> bool {
        self.layers[v] != UNASSIGNED
    }

    /// Sets the layer of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range or `layer == 0`.
    pub fn set_layer(&mut self, v: usize, layer: u32) {
        assert_ne!(layer, 0, "layers are 1-based");
        self.layers[v] = layer;
    }

    /// Number of vertices covered.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the assignment covers zero vertices.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Whether every vertex has a finite layer (a *complete* assignment).
    pub fn is_complete(&self) -> bool {
        self.layers.iter().all(|&l| l != UNASSIGNED)
    }

    /// Number of vertices with a finite layer.
    pub fn num_assigned(&self) -> usize {
        self.layers.iter().filter(|&&l| l != UNASSIGNED).count()
    }

    /// The vertices with `ℓ(v) = ∞`.
    pub fn unassigned_vertices(&self) -> Vec<usize> {
        (0..self.layers.len())
            .filter(|&v| self.layers[v] == UNASSIGNED)
            .collect()
    }

    /// Largest finite layer used, or `None` if nothing is assigned.
    pub fn max_layer(&self) -> Option<u32> {
        self.layers
            .iter()
            .copied()
            .filter(|&l| l != UNASSIGNED)
            .max()
    }

    /// Access the raw layer slice.
    pub fn as_slice(&self) -> &[u32] {
        &self.layers
    }

    /// The *measured* out-degree `d` of this assignment on `graph`: the
    /// maximum over assigned `v` of `|{u ∈ N(v) : ℓ(u) ≥ ℓ(v)}|`
    /// (Definition 2.1). Unassigned neighbors count as `ℓ(u) = ∞ ≥ ℓ(v)`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::LengthMismatch`] if the assignment does not
    /// cover `graph`'s vertex set.
    pub fn out_degree_bound(&self, graph: &Graph) -> Result<usize> {
        if self.layers.len() != graph.num_vertices() {
            return Err(GraphError::LengthMismatch {
                expected: graph.num_vertices(),
                found: self.layers.len(),
            });
        }
        let mut worst = 0usize;
        for v in 0..graph.num_vertices() {
            let lv = self.layers[v];
            if lv == UNASSIGNED {
                continue;
            }
            let up = graph
                .neighbors(v)
                .iter()
                .filter(|&&u| self.layers[u as usize] >= lv)
                .count();
            worst = worst.max(up);
        }
        Ok(worst)
    }

    /// Verifies Definition 2.1: every assigned vertex has at most `d`
    /// neighbors in the same-or-higher layer.
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidParameter`] naming the first violating vertex.
    pub fn validate(&self, graph: &Graph, d: usize) -> Result<()> {
        let measured = self.out_degree_bound(graph)?;
        if measured > d {
            // Locate a witness for the error message.
            for v in 0..graph.num_vertices() {
                let lv = self.layers[v];
                if lv == UNASSIGNED {
                    continue;
                }
                let up = graph
                    .neighbors(v)
                    .iter()
                    .filter(|&&u| self.layers[u as usize] >= lv)
                    .count();
                if up > d {
                    return Err(GraphError::InvalidParameter {
                        reason: format!(
                            "vertex {v} in layer {lv} has {up} same-or-higher neighbors, bound is {d}"
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    /// Pointwise minimum with `other` (paper Claim 2.3): the result is again
    /// a valid partial layer assignment with the same `L` and `d`.
    ///
    /// # Errors
    ///
    /// [`GraphError::LengthMismatch`] if the two assignments differ in length.
    pub fn combine_min(&self, other: &LayerAssignment) -> Result<LayerAssignment> {
        if self.layers.len() != other.layers.len() {
            return Err(GraphError::LengthMismatch {
                expected: self.layers.len(),
                found: other.layers.len(),
            });
        }
        let layers = self
            .layers
            .iter()
            .zip(&other.layers)
            .map(|(&a, &b)| a.min(b))
            .collect();
        Ok(LayerAssignment { layers })
    }

    /// Sizes of the layer tails: entry `j-1` is `|{v : ℓ(v) ≥ j}|` for
    /// `j = 1..=max_layer` (unassigned vertices count in every tail).
    ///
    /// Lemma 3.15(2) promises `tail(j) ≤ 0.5^(j-1) · n`; experiment E4
    /// measures exactly this vector.
    pub fn tail_sizes(&self) -> Vec<usize> {
        let max = match self.max_layer() {
            Some(m) => m,
            None => return Vec::new(),
        };
        let mut tails = vec![0usize; max as usize];
        for &l in &self.layers {
            let top = if l == UNASSIGNED { max } else { l };
            for t in tails.iter_mut().take(top as usize) {
                *t += 1;
            }
        }
        tails
    }

    /// Orientation induced by this assignment: each edge points toward the
    /// higher layer, ties broken toward the higher id (paper §1.3).
    ///
    /// If the assignment is valid with out-degree `d`, the resulting
    /// orientation has max outdegree `≤ d`.
    ///
    /// # Errors
    ///
    /// [`GraphError::LengthMismatch`] if lengths differ.
    pub fn to_orientation(&self, graph: &Graph) -> Result<Orientation> {
        if self.layers.len() != graph.num_vertices() {
            return Err(GraphError::LengthMismatch {
                expected: graph.num_vertices(),
                found: self.layers.len(),
            });
        }
        let rank: Vec<u64> = self.layers.iter().map(|&l| u64::from(l)).collect();
        Orientation::from_ranking(graph, &rank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_layer_zero() {
        assert!(LayerAssignment::new(vec![0]).is_err());
        assert!(LayerAssignment::new(vec![1, UNASSIGNED]).is_ok());
    }

    #[test]
    fn out_degree_bound_on_path() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let la = LayerAssignment::new(vec![1, 2, 2, 1]).unwrap();
        assert_eq!(la.out_degree_bound(&g).unwrap(), 1);
        assert!(la.validate(&g, 1).is_ok());
        assert!(la.validate(&g, 0).is_err());
    }

    #[test]
    fn unassigned_neighbors_count_as_higher() {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let la = LayerAssignment::new(vec![1, UNASSIGNED]).unwrap();
        // Vertex 0 sees its unassigned neighbor as >= its layer.
        assert_eq!(la.out_degree_bound(&g).unwrap(), 1);
        // The unassigned vertex imposes no constraint.
        assert!(la.validate(&g, 1).is_ok());
    }

    #[test]
    fn combine_min_is_pointwise() {
        let a = LayerAssignment::new(vec![1, UNASSIGNED, 3]).unwrap();
        let b = LayerAssignment::new(vec![2, 5, UNASSIGNED]).unwrap();
        let c = a.combine_min(&b).unwrap();
        assert_eq!(c.as_slice(), &[1, 5, 3]);
    }

    #[test]
    fn combine_min_preserves_validity_claim_2_3() {
        // Hand-built instance of Claim 2.3 on a 4-cycle.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let a = LayerAssignment::new(vec![1, 2, UNASSIGNED, 2]).unwrap();
        let b = LayerAssignment::new(vec![2, 1, 2, UNASSIGNED]).unwrap();
        let d = a
            .out_degree_bound(&g)
            .unwrap()
            .max(b.out_degree_bound(&g).unwrap());
        let c = a.combine_min(&b).unwrap();
        assert!(c.out_degree_bound(&g).unwrap() <= d);
    }

    #[test]
    fn combine_min_length_mismatch() {
        let a = LayerAssignment::unassigned(2);
        let b = LayerAssignment::unassigned(3);
        assert!(a.combine_min(&b).is_err());
    }

    #[test]
    fn tail_sizes_monotone_and_correct() {
        let la = LayerAssignment::new(vec![1, 1, 2, 3, UNASSIGNED]).unwrap();
        let tails = la.tail_sizes();
        assert_eq!(tails, vec![5, 3, 2]); // >=1: all 5; >=2: {2,3,∞}; >=3: {3,∞}
        assert!(tails.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn tail_sizes_empty_when_nothing_assigned() {
        let la = LayerAssignment::unassigned(4);
        assert!(la.tail_sizes().is_empty());
        assert_eq!(la.num_assigned(), 0);
        assert_eq!(la.unassigned_vertices(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn to_orientation_respects_layers() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let la = LayerAssignment::new(vec![1, 2, 1]).unwrap();
        let o = la.to_orientation(&g).unwrap();
        assert_eq!(o.direction(0, 1), Some(true)); // toward layer 2
        assert_eq!(o.direction(2, 1), Some(true));
        assert_eq!(o.max_out_degree(), 1);
        assert!(o.is_acyclic(&g));
    }

    #[test]
    fn complete_detection() {
        let mut la = LayerAssignment::unassigned(2);
        assert!(!la.is_complete());
        la.set_layer(0, 1);
        la.set_layer(1, 4);
        assert!(la.is_complete());
        assert_eq!(la.max_layer(), Some(4));
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn set_layer_zero_panics() {
        let mut la = LayerAssignment::unassigned(1);
        la.set_layer(0, 0);
    }
}
