//! Scale-regime ingestion conformance: the counting-sort CSR builder and the
//! chunk-parallel text parser against the sort-based reference, at every
//! thread budget, plus a ≥10⁶-edge text round-trip (run it in release:
//! `cargo test --release -p dgo-graph --test scale_ingest -- --ignored`).

use dgo_graph::generators::gnm;
use dgo_graph::io::{parse_edge_list, read_edge_list, write_edge_list};
use dgo_graph::Graph;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random edge list over `n` vertices with duplicates (some flipped to the
/// opposite orientation) but no self-loops — the input class `from_edges`
/// accepts, weighted to exercise the per-list dedup.
fn edge_list(seed: u64, n: usize, m: usize) -> Vec<(usize, usize)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(m + m / 4);
    while edges.len() < m {
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        if u == v {
            continue;
        }
        edges.push((u, v));
        if rng.random_range(0..4usize) == 0 {
            edges.push((v, u)); // duplicate, flipped: must collapse in CSR
        }
    }
    edges
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn counting_builder_matches_sort_builder_at_any_jobs(
        seed in any::<u64>(),
        n in 2usize..120,
        m in 0usize..300,
    ) {
        let edges = edge_list(seed, n, m);
        let reference = Graph::from_edges_by_sort(n, &edges).expect("valid edges");
        let normalized: Vec<(u32, u32)> = edges
            .iter()
            .map(|&(u, v)| (u.min(v) as u32, u.max(v) as u32))
            .collect();
        // jobs 1 (sequential scatter), 2 (parallel scatter), 0 (all cores):
        // the CSR must be bit-identical to the sorted reference at each.
        for jobs in [1usize, 2, 0] {
            let built = Graph::from_normalized_unsorted(n, &normalized, jobs);
            prop_assert!(built == reference, "CSR differs at jobs = {jobs}");
        }
        // The public entry point (env-resolved thread budget) agrees too.
        let public = Graph::from_edges(n, &edges).expect("valid edges");
        prop_assert_eq!(public, reference);
    }

    #[test]
    fn text_round_trip_is_identity(
        seed in any::<u64>(),
        n in 2usize..80,
        m in 0usize..200,
    ) {
        let graph = Graph::from_edges(n, &edge_list(seed, n, m)).expect("valid edges");
        let mut text = Vec::new();
        write_edge_list(&graph, &mut text).expect("in-memory write");
        // The header declares n, so trailing isolated vertices survive.
        let parsed = read_edge_list(text.as_slice()).expect("parse back");
        prop_assert_eq!(parsed, graph);
    }
}

/// Full-pipeline round-trip at the scale the ingestion fast path targets:
/// 10⁶ edges through the text codec, the chunk-parallel parser, and the
/// counting-sort builder at every thread budget. Minutes in debug builds —
/// `#[ignore]`d so plain `cargo test` stays fast; CI runs it in release.
#[test]
#[ignore = "large instance; run with --ignored in release"]
fn million_edge_round_trip() {
    let graph = gnm(250_000, 1_000_000, 97);
    let mut text = Vec::new();
    write_edge_list(&graph, &mut text).expect("in-memory write");
    let (n, pairs) = parse_edge_list(&text).expect("parse");
    assert_eq!(n, graph.num_vertices());
    assert_eq!(pairs.len(), graph.num_edges(), "gnm emits no duplicates");
    for jobs in [1usize, 2, 0] {
        assert_eq!(Graph::from_normalized_unsorted(n, &pairs, jobs), graph);
    }
    assert_eq!(read_edge_list(text.as_slice()).expect("read"), graph);
}
