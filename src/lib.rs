//! # dgo — Density-dependent Graph Orientation and coloring in scalable MPC
//!
//! Umbrella crate for the reproduction of Ghaffari–Grunau, *"Density-Dependent
//! Graph Orientation and Coloring in Scalable MPC"* (PODC 2025). It re-exports
//! the public API of the four member crates:
//!
//! * [`graph`] — graph substrate: [`Graph`], generators, density machinery,
//!   and the output types [`Orientation`], [`Coloring`], [`LayerAssignment`];
//! * [`mpc`] — the metering MPC cluster simulator;
//! * [`local`] — LOCAL-model simulator and the baselines the paper compares
//!   against;
//! * [`core`] — the paper's algorithms: `orient` (Theorem 1.1) and `color`
//!   (Theorem 1.2) with all their machinery.
//!
//! # Quickstart
//!
//! ```
//! use dgo::graph::generators::barabasi_albert;
//! use dgo::core::{orient, color, Params};
//!
//! let g = barabasi_albert(1_000, 3, 42);
//! let params = Params::practical(g.num_vertices());
//!
//! let oriented = orient(&g, &params)?;
//! oriented.orientation.validate(&g)?;
//! println!("max outdegree {} in {} MPC rounds",
//!          oriented.orientation.max_out_degree(), oriented.metrics.rounds);
//!
//! let colored = color(&g, &params)?;
//! colored.coloring.validate(&g)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use dgo_core as core;
pub use dgo_graph as graph;
pub use dgo_local as local;
pub use dgo_mpc as mpc;

pub use dgo_graph::{Coloring, Graph, LayerAssignment, Orientation};
