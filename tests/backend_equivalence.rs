//! Backend-equivalence property tests.
//!
//! The contract of the execution-backend refactor: [`SequentialBackend`],
//! [`ParallelBackend`], and [`ShardedBackend`] are *observationally
//! identical*. Every property here runs the same computation on the backends
//! and asserts bit-identical outputs — orientations, colorings, layerings,
//! coreness estimates — and bit-identical MPC metrics (rounds, communication
//! volume, per-round loads, memory peaks), across the gnm, Barabási–Albert,
//! and planted-forest workload families and many seeds. The sharded backend
//! is additionally swept across shard counts (1, 2, 7): the shard partition
//! is purely a routing-batch decision and must never show in the results.
//! The multi-process backend ([`ProcessBackend`]) is held to the same
//! contract at worker counts (1, 2, 7) — including runs where workers are
//! killed mid-computation by the deterministic fault plan and the
//! supervisor recovers by respawn-and-replay.

use dgo::core::{
    approximate_coreness_on, color_on, complete_layering_on, exponentiate_and_prune, orient_on,
    partial_layer_assignment, Params,
};
use dgo::graph::generators::{barabasi_albert, gnm, random_forest};
use dgo::graph::Graph;
use dgo::local::direct_peeling_mpc_on;
use dgo::mpc::{
    ClusterConfig, ExecutionBackend, Metrics, MpcError, ParallelBackend, ProcessBackend,
    SequentialBackend, ShardedBackend,
};
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard, PoisonError};

mod common;

const SEEDS: [u64; 4] = [1, 7, 42, 0xD60];

/// The shard counts the acceptance contract sweeps (a trivial single shard,
/// an even split, and a ragged split that leaves a short tail shard).
const SHARD_COUNTS: [usize; 3] = [1, 2, 7];

/// The worker counts the multi-process acceptance contract sweeps.
const WORKER_COUNTS: [usize; 3] = [1, 2, 7];

/// Serializes the tests that flip the process backend's process-wide
/// defaults (worker count, fault plan), and makes sure the worker binary
/// exists so those tests exercise real processes.
static PROCESS_DEFAULTS: Mutex<()> = Mutex::new(());

fn process_lock() -> MutexGuard<'static, ()> {
    common::ensure_worker_built();
    PROCESS_DEFAULTS
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// The three generator families the equivalence contract is checked on.
fn workloads(n: usize, seed: u64) -> Vec<(&'static str, Graph)> {
    vec![
        ("gnm", gnm(n, 3 * n, seed)),
        ("barabasi_albert", barabasi_albert(n, 3, seed)),
        (
            "planted_forest",
            random_forest(n, 1 + (seed as usize % 7), seed),
        ),
    ]
}

/// Asserts full metric equality with a readable context label.
fn assert_metrics_eq(context: &str, seq: &Metrics, par: &Metrics) {
    assert_eq!(seq.rounds, par.rounds, "{context}: rounds differ");
    assert_eq!(
        seq.total_comm_words, par.total_comm_words,
        "{context}: communication volume differs"
    );
    assert_eq!(
        seq.max_round_load, par.max_round_load,
        "{context}: round load differs"
    );
    assert_eq!(
        seq.peak_machine_memory, par.peak_machine_memory,
        "{context}: machine memory peak differs"
    );
    assert_eq!(
        seq.peak_global_memory, par.peak_global_memory,
        "{context}: global memory peak differs"
    );
    assert_eq!(
        seq.violations, par.violations,
        "{context}: violation counts differ"
    );
    assert_eq!(
        seq.round_log, par.round_log,
        "{context}: per-round logs differ"
    );
}

#[test]
fn orientations_bit_identical_across_families_and_seeds() {
    for seed in SEEDS {
        for (family, g) in workloads(600, seed) {
            let params = Params::practical(g.num_vertices());
            let context = format!("orient/{family}/seed{seed}");
            let seq = orient_on::<SequentialBackend>(&g, &params).expect("sequential orient");
            let par = orient_on::<ParallelBackend>(&g, &params).expect("parallel orient");
            seq.orientation.validate(&g).expect("valid orientation");
            assert_eq!(
                seq.orientation, par.orientation,
                "{context}: orientations differ"
            );
            assert_eq!(seq.layering, par.layering, "{context}: layerings differ");
            assert_eq!(seq.stats, par.stats, "{context}: stats differ");
            assert_metrics_eq(&context, &seq.metrics, &par.metrics);
        }
    }
}

#[test]
fn colorings_bit_identical_across_families_and_seeds() {
    for seed in SEEDS {
        for (family, g) in workloads(500, seed) {
            let params = Params::practical(g.num_vertices());
            let context = format!("color/{family}/seed{seed}");
            let seq = color_on::<SequentialBackend>(&g, &params).expect("sequential color");
            let par = color_on::<ParallelBackend>(&g, &params).expect("parallel color");
            seq.coloring.validate(&g).expect("proper coloring");
            assert_eq!(seq.coloring, par.coloring, "{context}: colorings differ");
            assert_eq!(seq.stats, par.stats, "{context}: stats differ");
            assert_metrics_eq(&context, &seq.metrics, &par.metrics);
        }
    }
}

#[test]
fn layerings_and_coreness_bit_identical() {
    for seed in [3u64, 11] {
        for (family, g) in workloads(400, seed) {
            let params = Params::practical(g.num_vertices());
            let context = format!("layering/{family}/seed{seed}");
            let seq = complete_layering_on::<SequentialBackend>(&g, &params).expect("layering");
            let par = complete_layering_on::<ParallelBackend>(&g, &params).expect("layering");
            assert_eq!(seq.layering, par.layering, "{context}: layerings differ");
            assert_metrics_eq(&context, &seq.metrics, &par.metrics);

            let context = format!("coreness/{family}/seed{seed}");
            let seq =
                approximate_coreness_on::<SequentialBackend>(&g, 0.5, &params).expect("coreness");
            let par =
                approximate_coreness_on::<ParallelBackend>(&g, 0.5, &params).expect("coreness");
            assert_eq!(seq.estimate, par.estimate, "{context}: estimates differ");
            assert_eq!(seq.guesses, par.guesses, "{context}: guess ladders differ");
            assert_metrics_eq(&context, &seq.metrics, &par.metrics);
        }
    }
}

#[test]
fn sharded_orientations_and_colorings_bit_identical_across_shard_counts() {
    // The sharded backend is constructed deep inside the entry points via
    // `from_config`, so the shard count travels through the process default —
    // exactly the path `--backend sharded:K` uses. The default is safe to
    // flip mid-suite: every shard count must produce identical results, so
    // no other test can observe it.
    for shards in SHARD_COUNTS {
        ShardedBackend::set_default_shards(Some(shards));
        for (family, g) in workloads(500, 7) {
            let params = Params::practical(g.num_vertices());
            let context = format!("orient/{family}/shards{shards}");
            let seq = orient_on::<SequentialBackend>(&g, &params).expect("sequential orient");
            let sharded = orient_on::<ShardedBackend>(&g, &params).expect("sharded orient");
            assert_eq!(
                seq.orientation, sharded.orientation,
                "{context}: orientations differ"
            );
            assert_eq!(
                seq.layering, sharded.layering,
                "{context}: layerings differ"
            );
            assert_eq!(seq.stats, sharded.stats, "{context}: stats differ");
            assert_metrics_eq(&context, &seq.metrics, &sharded.metrics);

            let context = format!("color/{family}/shards{shards}");
            let seq = color_on::<SequentialBackend>(&g, &params).expect("sequential color");
            let sharded = color_on::<ShardedBackend>(&g, &params).expect("sharded color");
            assert_eq!(
                seq.coloring, sharded.coloring,
                "{context}: colorings differ"
            );
            assert_eq!(seq.stats, sharded.stats, "{context}: stats differ");
            assert_metrics_eq(&context, &seq.metrics, &sharded.metrics);
        }
    }
    ShardedBackend::set_default_shards(None);
}

#[test]
fn sharded_layerings_and_coreness_bit_identical_across_shard_counts() {
    for shards in SHARD_COUNTS {
        for (family, g) in workloads(400, 11) {
            let params = Params::practical(g.num_vertices());
            // The explicit-construction path: `with_shards` pins the count
            // per backend, independent of the process default.
            let context = format!("layering/{family}/shards{shards}");
            let config = dgo::core::layering_config(&g, &params);
            let mut seq = SequentialBackend::new(config);
            let mut sharded = ShardedBackend::new(config).with_shards(shards);
            let seq_out = dgo::core::complete_layering_in(&g, &params, &mut seq).expect("layering");
            let sharded_out =
                dgo::core::complete_layering_in(&g, &params, &mut sharded).expect("layering");
            assert_eq!(seq_out.0, sharded_out.0, "{context}: layerings differ");
            assert_eq!(seq_out.1, sharded_out.1, "{context}: stats differ");
            assert_metrics_eq(&context, seq.metrics(), sharded.metrics());

            let context = format!("coreness/{family}/shards{shards}");
            ShardedBackend::set_default_shards(Some(shards));
            let seq =
                approximate_coreness_on::<SequentialBackend>(&g, 0.5, &params).expect("coreness");
            let sharded =
                approximate_coreness_on::<ShardedBackend>(&g, 0.5, &params).expect("coreness");
            assert_eq!(
                seq.estimate, sharded.estimate,
                "{context}: estimates differ"
            );
            assert_eq!(seq.guesses, sharded.guesses, "{context}: ladders differ");
            assert_metrics_eq(&context, &seq.metrics, &sharded.metrics);
        }
    }
    ShardedBackend::set_default_shards(None);
}

#[test]
fn process_orientations_and_colorings_bit_identical_across_worker_counts() {
    // The multi-process backend is constructed inside the entry points via
    // `from_config`, so the worker count travels through the process default
    // — exactly the path `--backend process:K` uses.
    let _guard = process_lock();
    for workers in WORKER_COUNTS {
        ProcessBackend::set_default_workers(Some(workers));
        for (family, g) in workloads(400, 7) {
            let params = Params::practical(g.num_vertices());
            let context = format!("orient/{family}/workers{workers}");
            let seq = orient_on::<SequentialBackend>(&g, &params).expect("sequential orient");
            let proc = orient_on::<ProcessBackend>(&g, &params).expect("process orient");
            assert_eq!(
                seq.orientation, proc.orientation,
                "{context}: orientations differ"
            );
            assert_eq!(seq.layering, proc.layering, "{context}: layerings differ");
            assert_eq!(seq.stats, proc.stats, "{context}: stats differ");
            assert_metrics_eq(&context, &seq.metrics, &proc.metrics);
        }
        let g = gnm(400, 1200, 7);
        let params = Params::practical(g.num_vertices());
        let context = format!("color/gnm/workers{workers}");
        let seq = color_on::<SequentialBackend>(&g, &params).expect("sequential color");
        let proc = color_on::<ProcessBackend>(&g, &params).expect("process color");
        assert_eq!(seq.coloring, proc.coloring, "{context}: colorings differ");
        assert_eq!(seq.stats, proc.stats, "{context}: stats differ");
        assert_metrics_eq(&context, &seq.metrics, &proc.metrics);
    }
    ProcessBackend::set_default_workers(None);
}

#[test]
fn process_layerings_and_coreness_bit_identical_across_worker_counts() {
    let _guard = process_lock();
    let g = gnm(300, 900, 11);
    let params = Params::practical(g.num_vertices());
    for workers in WORKER_COUNTS {
        // Explicit construction pins the worker count per backend and lets
        // the test assert that real worker processes actually served the
        // exchanges (no silent downgrade to the in-process path).
        let context = format!("layering/gnm/workers{workers}");
        let config = dgo::core::layering_config(&g, &params);
        let mut seq = SequentialBackend::new(config);
        let mut proc = ProcessBackend::new(config).with_workers(workers);
        let seq_out = dgo::core::complete_layering_in(&g, &params, &mut seq).expect("layering");
        let proc_out = dgo::core::complete_layering_in(&g, &params, &mut proc).expect("layering");
        assert!(
            !proc.is_degraded(),
            "{context}: expected real worker processes (is dgo-worker built?)"
        );
        assert_eq!(seq_out.0, proc_out.0, "{context}: layerings differ");
        assert_eq!(seq_out.1, proc_out.1, "{context}: stats differ");
        assert_metrics_eq(&context, seq.metrics(), proc.metrics());

        let context = format!("coreness/gnm/workers{workers}");
        ProcessBackend::set_default_workers(Some(workers));
        let seq = approximate_coreness_on::<SequentialBackend>(&g, 0.5, &params).expect("coreness");
        let proc = approximate_coreness_on::<ProcessBackend>(&g, 0.5, &params).expect("coreness");
        assert_eq!(seq.estimate, proc.estimate, "{context}: estimates differ");
        assert_eq!(seq.guesses, proc.guesses, "{context}: ladders differ");
        assert_metrics_eq(&context, &seq.metrics, &proc.metrics);
    }
    ProcessBackend::set_default_workers(None);
}

#[test]
fn process_recovery_from_injected_kills_is_bit_identical() {
    // Workers are killed mid-computation at planned exchanges; the
    // supervisor respawns them and replays, and every observable — results,
    // stats, and full metrics — must stay bit-identical to the sequential
    // reference. The per-spec budgets are finite, so the replays themselves
    // run fault-free.
    let _guard = process_lock();
    ProcessBackend::set_default_workers(Some(2));
    ProcessBackend::set_default_fault_plan(Some(
        "kill@2:w0,kill@3:w1:route,kill@5:w0:fill,delay@4:w1:30",
    ));
    let g = gnm(400, 1200, 42);
    let params = Params::practical(g.num_vertices());
    let seq = orient_on::<SequentialBackend>(&g, &params).expect("sequential orient");
    let proc = orient_on::<ProcessBackend>(&g, &params).expect("process orient under kills");
    assert_eq!(
        seq.orientation, proc.orientation,
        "kills: orientations differ"
    );
    assert_eq!(seq.layering, proc.layering, "kills: layerings differ");
    assert_eq!(seq.stats, proc.stats, "kills: stats differ");
    assert_metrics_eq("orient/kills", &seq.metrics, &proc.metrics);

    let seq = approximate_coreness_on::<SequentialBackend>(&g, 0.5, &params).expect("coreness");
    let proc = approximate_coreness_on::<ProcessBackend>(&g, 0.5, &params).expect("coreness");
    assert_eq!(seq.estimate, proc.estimate, "kills: estimates differ");
    assert_metrics_eq("coreness/kills", &seq.metrics, &proc.metrics);
    ProcessBackend::set_default_fault_plan(None);
    ProcessBackend::set_default_workers(None);
}

#[test]
fn direct_baseline_bit_identical() {
    for seed in [5u64, 23] {
        let g = gnm(900, 2700, seed);
        let cfg = ClusterConfig::for_graph(g.num_vertices(), g.num_edges(), 0.6);
        let context = format!("direct_peeling/seed{seed}");
        let seq = direct_peeling_mpc_on::<SequentialBackend>(&g, 4, 0.5, cfg).expect("baseline");
        let par = direct_peeling_mpc_on::<ParallelBackend>(&g, 4, 0.5, cfg).expect("baseline");
        assert_eq!(seq.layering, par.layering, "{context}: layerings differ");
        assert_metrics_eq(&context, &seq.metrics, &par.metrics);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Raw exchange equivalence on arbitrary traffic: same inboxes (in the
    /// deterministic (source, production) order) and same metrics on every
    /// backend, the sharded one at an arbitrary shard count.
    #[test]
    fn exchange_equivalence(
        machines in 1usize..24,
        per_machine in 0usize..40,
        shards in 1usize..9,
        seed in any::<u64>(),
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let outbox: Vec<Vec<(usize, u64)>> = (0..machines)
            .map(|_| {
                (0..per_machine)
                    .map(|_| (rng.random_range(0..machines), rng.random::<u64>() % 1000))
                    .collect()
            })
            .collect();
        let config = ClusterConfig::new(machines, 1 << 16);
        let mut seq = SequentialBackend::new(config);
        let mut par = ParallelBackend::new(config);
        let mut sharded = ShardedBackend::new(config).with_shards(shards);
        let seq_inbox = ExecutionBackend::exchange(&mut seq, outbox.clone()).unwrap();
        let par_inbox = par.exchange(outbox.clone()).unwrap();
        let sharded_inbox = sharded.exchange(outbox).unwrap();
        prop_assert_eq!(&seq_inbox, &par_inbox);
        prop_assert_eq!(&seq_inbox, &sharded_inbox);
        prop_assert_eq!(seq.metrics(), par.metrics());
        prop_assert_eq!(seq.metrics(), sharded.metrics());
    }

    /// Error parity on starved clusters: every backend rejects the same
    /// overloaded exchanges with the same error.
    #[test]
    fn exchange_error_parity(
        machines in 2usize..8,
        capacity in 1usize..6,
        shards in 1usize..9,
        seed in any::<u64>(),
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let outbox: Vec<Vec<(usize, u64)>> = (0..machines)
            .map(|_| {
                (0..12).map(|_| (rng.random_range(0..machines), 1u64)).collect()
            })
            .collect();
        let config = ClusterConfig::new(machines, capacity);
        let mut seq = SequentialBackend::new(config);
        let mut par = ParallelBackend::new(config);
        let mut sharded = ShardedBackend::new(config).with_shards(shards);
        let seq_out: Result<_, MpcError> = ExecutionBackend::exchange(&mut seq, outbox.clone());
        let par_out = par.exchange(outbox.clone());
        let sharded_out = sharded.exchange(outbox);
        match (&seq_out, &par_out) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "divergent outcomes: {a:?} vs {b:?}"),
        }
        match (seq_out, sharded_out) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "divergent sharded outcomes: {a:?} vs {b:?}"),
        }
    }

    /// Algorithm-level equivalence on small random instances, including the
    /// exponentiation and partial-assignment building blocks.
    #[test]
    fn building_blocks_equivalence(
        n in 2usize..80,
        m in 0usize..200,
        k in 1usize..4,
        steps in 1u32..4,
        seed in any::<u64>(),
    ) {
        let g = gnm(n, m.min(n * (n - 1) / 2), seed);
        let mut seq = SequentialBackend::new(ClusterConfig::new(512, 4096));
        let mut par = ParallelBackend::new(ClusterConfig::new(512, 4096));
        let mut sharded = ShardedBackend::new(ClusterConfig::new(512, 4096)).with_shards(7);
        let seq_exp = exponentiate_and_prune(&g, 64, k, steps, &mut seq).unwrap();
        let par_exp = exponentiate_and_prune(&g, 64, k, steps, &mut par).unwrap();
        let sharded_exp = exponentiate_and_prune(&g, 64, k, steps, &mut sharded).unwrap();
        prop_assert_eq!(&seq_exp.trees, &par_exp.trees);
        prop_assert_eq!(&seq_exp.active, &par_exp.active);
        prop_assert_eq!(&seq_exp.trees, &sharded_exp.trees);
        prop_assert_eq!(&seq_exp.active, &sharded_exp.active);
        prop_assert_eq!(seq.metrics(), par.metrics());
        prop_assert_eq!(seq.metrics(), sharded.metrics());

        let mut seq = SequentialBackend::new(ClusterConfig::new(512, 4096));
        let mut par = ParallelBackend::new(ClusterConfig::new(512, 4096));
        let mut sharded = ShardedBackend::new(ClusterConfig::new(512, 4096)).with_shards(3);
        let seq_pla = partial_layer_assignment(&g, 64, k, 3, steps, &mut seq).unwrap();
        let par_pla = partial_layer_assignment(&g, 64, k, 3, steps, &mut par).unwrap();
        let sharded_pla = partial_layer_assignment(&g, 64, k, 3, steps, &mut sharded).unwrap();
        prop_assert_eq!(&seq_pla.layering, &par_pla.layering);
        prop_assert_eq!(&seq_pla.layering, &sharded_pla.layering);
        prop_assert_eq!(seq.metrics(), par.metrics());
        prop_assert_eq!(seq.metrics(), sharded.metrics());
    }
}
