//! Wire-codec conformance: the delta/varint bundle format (`dgo::core::wire`)
//! must round-trip every view tree losslessly, always beat the flat
//! 2-words-per-node baseline, and meter identically on every execution
//! backend and host-thread budget — compression changes the communication
//! *accounting*, never the computed results.

use dgo::core::wire;
use dgo::core::{exponentiate_and_prune_staged, StageExecutor, ViewTree};
use dgo::graph::generators::gnm;
use dgo::mpc::{
    tuning, ClusterConfig, ExecutionBackend, ParallelBackend, SequentialBackend, ShardedBackend,
};
use proptest::prelude::*;

/// Deterministically grows a random tree from a seed: start from a root and
/// keep splicing star-shaped subtrees onto randomly chosen leaves. Covers
/// singletons (`growth = 0`), stars, chains, and bushy mixtures.
fn derived_tree(seed: u64, growth: usize) -> ViewTree {
    let mut rng = seed | 1;
    let mut next = move || {
        // xorshift64* — cheap, deterministic, good enough for shapes.
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    let mut vertex_counter = (next() % 1_000_000) as u32;
    let mut fresh = move || {
        vertex_counter = vertex_counter.wrapping_add(1 + (next() % 97) as u32);
        vertex_counter
    };
    let mut tree = ViewTree::singleton(fresh() as usize);
    for _ in 0..growth {
        let leaves: Vec<u32> = tree
            .node_ids()
            .filter(|&x| tree.num_children(x) == 0)
            .collect();
        let leaf = leaves[(next() % leaves.len() as u64) as usize];
        let fanout = 1 + (next() % 4) as usize;
        let kids: Vec<u32> = (0..fanout).map(|_| fresh()).collect();
        let star = ViewTree::star(tree.vertex(leaf), &kids);
        tree.attach(&[(leaf, &star)]);
    }
    tree
}

/// Round-trips `tree` through the codec and checks the size claims.
fn assert_round_trip(tree: &ViewTree) {
    let words = wire::encode(tree);
    assert_eq!(
        words.len(),
        wire::encoded_words(tree),
        "sizing pass must match the materialized encoding"
    );
    let decoded = wire::decode(&words).expect("encoded stream decodes");
    assert_eq!(&decoded, tree, "decode(encode(t)) must reproduce t");
    // Every u32 varint is at most 5 bytes, so the stream is strictly below
    // the flat baseline of 16 bytes per node.
    assert!(
        words.len() < tree.flat_wire_words() || tree.is_empty(),
        "wire ({}) must beat flat ({}) on {} nodes",
        words.len(),
        tree.flat_wire_words(),
        tree.len()
    );
}

#[test]
fn singleton_and_star_round_trip() {
    assert_round_trip(&ViewTree::singleton(0));
    assert_round_trip(&ViewTree::singleton((u32::MAX - 1) as usize));
    assert_round_trip(&ViewTree::star(7, &[1, 2, 3, 4, 5]));
    assert_round_trip(&ViewTree::star(0, &[u32::MAX - 1]));
}

#[test]
fn deep_chain_round_trips() {
    let mut tree = ViewTree::singleton(0);
    for v in 1..=200u32 {
        let leaf = tree.node_ids().last().unwrap();
        let star = ViewTree::star(tree.vertex(leaf), &[v]);
        tree.attach(&[(leaf, &star)]);
    }
    assert_round_trip(&tree);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_trees_round_trip(seed in any::<u64>(), growth in 0usize..24) {
        assert_round_trip(&derived_tree(seed, growth));
    }

    /// Corrupting any single byte of the stream either fails decoding or
    /// decodes to a *different* tree — never silently the same one with the
    /// codec claiming success on garbage lengths.
    #[test]
    fn truncation_always_detected(seed in any::<u64>(), growth in 1usize..16) {
        let tree = derived_tree(seed, growth);
        let words = wire::encode(&tree);
        prop_assert!(wire::decode(&words[..words.len() - 1]).is_err() || words.len() == 1);
        prop_assert!(wire::decode(&[]).is_err());
    }
}

/// The bundle meters are recorded by the algorithm layer, so every backend
/// must report byte-for-byte identical wire and flat word counts — and with
/// the codec on, the wire figure must be strictly below flat whenever
/// bundles ship at all.
#[test]
fn bundle_meters_identical_across_backends_and_jobs() {
    let g = gnm(48, 140, 11);
    let config = ClusterConfig::new(512, 4096);
    let mut reference = None;
    for jobs in [1usize, 2, 0] {
        let stage = StageExecutor::new(jobs);
        let mut seq = SequentialBackend::new(config);
        let mut par = ParallelBackend::new(config);
        let mut sharded = ShardedBackend::new(config).with_shards(5);
        let s = exponentiate_and_prune_staged(&g, 64, 2, 3, &mut seq, &stage).unwrap();
        let p = exponentiate_and_prune_staged(&g, 64, 2, 3, &mut par, &stage).unwrap();
        let h = exponentiate_and_prune_staged(&g, 64, 2, 3, &mut sharded, &stage).unwrap();
        assert_eq!(s.trees, p.trees);
        assert_eq!(s.trees, h.trees);
        assert_eq!(seq.metrics(), par.metrics(), "jobs {jobs}: metrics differ");
        assert_eq!(
            seq.metrics(),
            sharded.metrics(),
            "jobs {jobs}: metrics differ"
        );
        let m = seq.metrics().clone();
        assert!(m.bundle_flat_words > 0, "workload must ship bundles");
        assert!(m.bundle_wire_words > 0);
        if tuning::wire_codec_enabled() {
            assert!(
                m.bundle_wire_words < m.bundle_flat_words,
                "codec on: wire {} must beat flat {}",
                m.bundle_wire_words,
                m.bundle_flat_words
            );
        } else {
            assert_eq!(m.bundle_wire_words, m.bundle_flat_words);
        }
        assert!(m.bundle_wire_words <= m.total_comm_words);
        match &reference {
            None => reference = Some(m),
            Some(r) => assert_eq!(r, &m, "jobs {jobs}: metrics differ from jobs 1"),
        }
    }
}
