//! Runs the pipeline under the *paper preset* — the proofs' parameter forms
//! with constants clamped only where machine arithmetic forces it — to check
//! that correctness is genuinely parameter-independent (DESIGN.md §5).

use dgo::core::{color, orient, Params};
use dgo::graph::generators::{gnm, random_tree};

#[test]
fn paper_preset_orients_correctly() {
    let n = 600;
    let g = gnm(n, 3 * n, 4);
    let params = Params::paper(n);
    params.validate().unwrap();
    let r = orient(&g, &params).unwrap();
    r.orientation.validate(&g).unwrap();
    // k_factor = 100 makes k huge: the initial peeling handles everything,
    // which is exactly what the paper's Stage 1 does at ⌈100 log k⌉ rounds.
    assert!(r.metrics.rounds > 0);
}

#[test]
fn paper_preset_colors_properly() {
    let n = 500;
    let g = random_tree(n, 8);
    let params = Params::paper(n);
    let r = color(&g, &params).unwrap();
    r.coloring.validate(&g).unwrap();
}

#[test]
fn paper_steps_scale_with_loglog() {
    // s = 10·⌈log log n⌉ per the paper.
    let small = Params::paper(1 << 10); // loglog = ceil(log2 10) = 4
    let large = Params::paper(1 << 16); // loglog = 4
    let huge = Params::paper(usize::MAX); // loglog = 6
    assert_eq!(small.steps, 40);
    assert_eq!(large.steps, 40);
    assert_eq!(huge.steps, 60);
}

#[test]
fn paper_and_practical_agree_on_artifact_validity() {
    let n = 400;
    let g = gnm(n, 1200, 6);
    for params in [Params::paper(n), Params::practical(n)] {
        let o = orient(&g, &params).unwrap();
        o.orientation.validate(&g).unwrap();
        let c = color(&g, &params).unwrap();
        c.coloring.validate(&g).unwrap();
    }
}
