//! Stage-engine contract tests (mirroring `instance_parallel.rs` one tier
//! down).
//!
//! The vertex-parallel stage engine (`dgo_core::stage`) promises that every
//! per-vertex map stage — Algorithm 1's batch prune, Algorithm 2's
//! attachment, Algorithm 3's per-tree peeling, Algorithm 4's proposal
//! collection, the per-layer path counts — produces **bit-identical trees,
//! layers, colors, and metrics at any `jobs` count**: per-vertex closures are
//! pure over a read-only snapshot, outputs land in index-ordered slots, and
//! metering reductions are exact. These tests pin that promise end-to-end,
//! from the raw Algorithm 2 kernel up through the full Theorem 1.1/1.2
//! drivers and the coreness application (which also exercises the
//! `split_jobs` budget sharing between the instance tier and the stage tier).

use dgo::core::stage::StageExecutor;
use dgo::core::{
    approximate_coreness_on, color_on, complete_layering_on, exponentiate_and_prune,
    exponentiate_and_prune_staged, num_paths_in, num_paths_in_staged, num_paths_out,
    num_paths_out_staged, orient_on, partial_layer_assignment, partial_layer_assignment_staged,
    Params,
};
use dgo::graph::generators::{core_onion_with_truth, gnm, ring_of_cliques, Family};
use dgo::graph::Graph;
use dgo::mpc::{Cluster, ClusterConfig, ExecutionBackend, ParallelBackend, SequentialBackend};
use proptest::prelude::*;

/// The job counts every stage must reproduce the `jobs = 1` reference under:
/// a couple of fixed fan-outs plus `0` (all cores).
const JOB_COUNTS: [usize; 3] = [2, 8, 0];

fn kernel_cluster(n: usize) -> Cluster {
    Cluster::new(ClusterConfig::new((n * 8).max(64), 8192))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Algorithm 2's kernel: trees, activity flags, and backend metrics are
    /// bit-identical between the inline executor and any thread count, on
    /// arbitrary sparse instances.
    #[test]
    fn exponentiation_stages_bit_identical(seed in 0u64..500, density in 2usize..5) {
        let n = 150;
        let g = gnm(n, density * n, seed);
        let mut reference_cluster = kernel_cluster(n);
        let reference =
            exponentiate_and_prune(&g, 144, 2, 3, &mut reference_cluster).unwrap();
        for jobs in JOB_COUNTS {
            let mut cluster = kernel_cluster(n);
            let r = exponentiate_and_prune_staged(
                &g, 144, 2, 3, &mut cluster, &StageExecutor::new(jobs),
            )
            .unwrap();
            prop_assert_eq!(&r.trees, &reference.trees);
            prop_assert_eq!(&r.active, &reference.active);
            prop_assert_eq!(cluster.metrics(), reference_cluster.metrics());
        }
    }

    /// Path counts per Definition 2.2: the per-layer stage decomposition
    /// matches the sequential scan on arbitrary complete layerings.
    #[test]
    fn path_count_stages_bit_identical(seed in 0u64..500) {
        let g = gnm(250, 900, seed);
        let peel = dgo::local::be08_peeling(&g, 3, 0.5, 0);
        let la = peel.layering;
        let reference_in = num_paths_in(&g, &la);
        let reference_out = num_paths_out(&g, &la);
        for jobs in JOB_COUNTS {
            let stage = StageExecutor::new(jobs);
            prop_assert_eq!(num_paths_in_staged(&g, &la, &stage), reference_in.clone());
            prop_assert_eq!(num_paths_out_staged(&g, &la, &stage), reference_out.clone());
        }
    }
}

#[test]
fn algorithm_4_stages_bit_identical_across_families() {
    // Algorithm 4 end-to-end (exponentiate + per-tree peel + min-combine) on
    // scenario-diverse workloads, including the two new families.
    let workloads: Vec<(&str, Graph)> = vec![
        ("gnm", gnm(300, 1200, 5)),
        ("ring-of-cliques", ring_of_cliques(24, 6)),
        ("core-onion", Family::CoreOnion.generate(300, 5)),
    ];
    for (label, g) in &workloads {
        let n = g.num_vertices();
        let mut reference_cluster = kernel_cluster(n);
        let reference = partial_layer_assignment(g, 256, 3, 4, 3, &mut reference_cluster).unwrap();
        for jobs in JOB_COUNTS {
            let mut cluster = kernel_cluster(n);
            let r = partial_layer_assignment_staged(
                g,
                256,
                3,
                4,
                3,
                &mut cluster,
                &StageExecutor::new(jobs),
            )
            .unwrap();
            assert_eq!(r.layering, reference.layering, "{label}/jobs{jobs}");
            assert_eq!(
                r.exponentiation.trees, reference.exponentiation.trees,
                "{label}/jobs{jobs}"
            );
            assert_eq!(
                cluster.metrics(),
                reference_cluster.metrics(),
                "{label}/jobs{jobs}"
            );
        }
    }
}

fn assert_driver_bit_identical<B: ExecutionBackend + Send>(graph: &Graph, label: &str) {
    // Single-instance drivers: Params::jobs goes entirely to vertex stages.
    let params = Params::practical(graph.num_vertices()).with_jobs(1);
    let layering_reference = complete_layering_on::<B>(graph, &params).expect("layering succeeds");
    let orient_reference = orient_on::<B>(graph, &params).expect("orient succeeds");
    let color_reference = color_on::<B>(graph, &params).expect("color succeeds");
    for jobs in JOB_COUNTS {
        let context = format!("{label}/jobs{jobs}");
        let tuned = params.clone().with_jobs(jobs);
        let layering = complete_layering_on::<B>(graph, &tuned).expect("layering succeeds");
        assert_eq!(
            layering.layering, layering_reference.layering,
            "{context}: layerings differ"
        );
        assert_eq!(
            layering.metrics, layering_reference.metrics,
            "{context}: layering metrics differ"
        );
        assert_eq!(
            layering.stats, layering_reference.stats,
            "{context}: layering stats differ"
        );
        let oriented = orient_on::<B>(graph, &tuned).expect("orient succeeds");
        assert_eq!(
            oriented.orientation, orient_reference.orientation,
            "{context}: orientations differ"
        );
        assert_eq!(
            oriented.metrics, orient_reference.metrics,
            "{context}: orientation metrics differ"
        );
        let colored = color_on::<B>(graph, &tuned).expect("color succeeds");
        assert_eq!(
            colored.coloring, color_reference.coloring,
            "{context}: colorings differ"
        );
        assert_eq!(
            colored.metrics, color_reference.metrics,
            "{context}: coloring metrics differ"
        );
    }
}

#[test]
fn drivers_bit_identical_across_jobs() {
    let g = gnm(400, 1600, 7);
    assert_driver_bit_identical::<SequentialBackend>(&g, "gnm");
}

#[test]
fn drivers_bit_identical_on_parallel_backend() {
    // All three parallelism tiers at once: rayon exchange routing, instance
    // fan-out, vertex stages — still bit-identical.
    let g = ring_of_cliques(40, 6);
    assert_driver_bit_identical::<ParallelBackend>(&g, "ring-of-cliques/parallel-backend");
}

#[test]
fn two_tier_jobs_split_bit_identical_on_core_onion() {
    // The coreness ladder fans instances across the outer budget while each
    // guess's vertex stages use the inner budget (split_jobs); the estimate
    // must not depend on the split, and must stay sound against the onion's
    // exact ground truth.
    let (g, truth) = core_onion_with_truth(400, 6, 3);
    let params = Params::practical(400).with_jobs(1);
    let reference =
        approximate_coreness_on::<SequentialBackend>(&g, 0.5, &params).expect("coreness succeeds");
    for (v, &t) in truth.iter().enumerate() {
        assert!(
            reference.estimate[v] >= t,
            "v={v}: estimate {} below exact coreness {t}",
            reference.estimate[v]
        );
    }
    for jobs in JOB_COUNTS {
        let r =
            approximate_coreness_on::<SequentialBackend>(&g, 0.5, &params.clone().with_jobs(jobs))
                .expect("coreness succeeds");
        assert_eq!(
            r.estimate, reference.estimate,
            "jobs{jobs}: estimates differ"
        );
        assert_eq!(r.guesses, reference.guesses, "jobs{jobs}: ladders differ");
        assert_eq!(r.metrics, reference.metrics, "jobs{jobs}: metrics differ");
    }
}
