//! Conformance tests for the persistent work-stealing pool under the full
//! parallelism stack: nested tier-2 (instance fan-out) → tier-3 (vertex
//! stages) use on one pool, panic propagation through stolen tasks,
//! `chunk_map_*` determinism across job counts, and the spawn-count fence
//! proving steady-state stage loops create zero new OS threads.

use dgo_core::stage::StageExecutor;
use dgo_mpc::instance::InstanceGroup;
use dgo_mpc::{ClusterConfig, MpcError, SequentialBackend};

/// A small per-instance workload that exercises tier-3 stages inside a
/// tier-2 instance: one metered exchange plus a vertex-stage map and
/// reduction, all on instance-specific data.
fn staged_workload(
    instance: usize,
    backend: &mut SequentialBackend,
    stage: &StageExecutor,
) -> Result<(Vec<u64>, usize), MpcError> {
    let machines = backend.num_machines();
    let mut outbox: Vec<Vec<(usize, u64)>> = vec![Vec::new(); machines];
    for (m, box_m) in outbox.iter_mut().enumerate() {
        box_m.push(((m + 1) % machines, (instance * 100 + m) as u64));
    }
    let inbox = backend.exchange(outbox)?;
    let items: Vec<u64> = (0..2_000u64).map(|v| v + instance as u64).collect();
    let mapped = stage.map(&items, |i, &v| v * 3 + i as u64 + inbox[0][0]);
    let total = stage.sum_by(&mapped, |_, &v| v as usize);
    Ok((mapped, total))
}

#[test]
fn nested_instance_and_stage_tiers_share_one_pool() {
    // Tier-2 fans instances across the pool; each instance runs tier-3
    // stage maps on the same pool. Cooperative waiting must drain the
    // nested stage tasks even when every worker is inside an instance —
    // this test hanging (not failing) is the deadlock regression signal.
    let config = ClusterConfig::new(4, 1 << 16);
    let reference: Vec<(Vec<u64>, usize)> = {
        let mut group = InstanceGroup::<SequentialBackend>::uniform(config, 6, 1);
        let stage = StageExecutor::sequential();
        group
            .run_all(|i, backend| staged_workload(i, backend, &stage))
            .expect("workload fits")
    };
    for jobs in [2usize, 7, 0] {
        let mut group = InstanceGroup::<SequentialBackend>::uniform(config, 6, jobs);
        let stage = StageExecutor::new(jobs);
        let got = group
            .run_all(|i, backend| staged_workload(i, backend, &stage))
            .expect("workload fits");
        assert_eq!(got, reference, "jobs = {jobs}");
    }
}

#[test]
fn chunk_map_family_is_deterministic_across_job_counts() {
    let items: Vec<u64> = (0..10_000).rev().collect();
    let reference_collect = rayon::chunk_map_collect(&items, 1, |i, &v| v ^ i as u64);
    let reference_range = rayon::chunk_map_collect_range(items.len(), 1, |i| i * 7);
    let reference_reduce = rayon::chunk_map_reduce(
        &items,
        1,
        |offset, chunk| {
            chunk
                .iter()
                .enumerate()
                .map(|(i, &v)| v.wrapping_mul((offset + i) as u64 + 1))
                .fold(0u64, u64::wrapping_add)
        },
        u64::wrapping_add,
    );
    let mut reference_fill = Vec::new();
    rayon::chunk_map_fill(&items, 1, &mut reference_fill, |i, &v| v + i as u64);
    for jobs in [1usize, 2, 7, 0] {
        let threads = dgo_mpc::resolve_jobs(jobs).max(1);
        assert_eq!(
            rayon::chunk_map_collect(&items, threads, |i, &v| v ^ i as u64),
            reference_collect,
            "jobs = {jobs}"
        );
        assert_eq!(
            rayon::chunk_map_collect_range(items.len(), threads, |i| i * 7),
            reference_range,
            "jobs = {jobs}"
        );
        assert_eq!(
            rayon::chunk_map_reduce(
                &items,
                threads,
                |offset, chunk| {
                    chunk
                        .iter()
                        .enumerate()
                        .map(|(i, &v)| v.wrapping_mul((offset + i) as u64 + 1))
                        .fold(0u64, u64::wrapping_add)
                },
                u64::wrapping_add,
            ),
            reference_reduce,
            "jobs = {jobs}"
        );
        let mut fill = Vec::new();
        rayon::chunk_map_fill(&items, threads, &mut fill, |i, &v| v + i as u64);
        assert_eq!(fill, reference_fill, "jobs = {jobs}");
    }
}

#[test]
fn panics_in_stolen_tasks_propagate_to_the_caller() {
    let items: Vec<u64> = (0..4_000).collect();
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let stage = StageExecutor::new(0);
        stage.map(&items, |i, &v| {
            if i == 3_777 {
                panic!("vertex stage panic at {i}");
            }
            v
        })
    }));
    let payload = caught.expect_err("stage panic must reach the caller");
    let message = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(
        message.contains("vertex stage panic"),
        "unexpected payload: {message}"
    );
    // The pool must stay healthy after a panicked task.
    assert_eq!(
        StageExecutor::new(0).sum_by(&items, |_, &v| v as usize),
        items.iter().map(|&v| v as usize).sum::<usize>()
    );
}

#[test]
fn steady_state_stage_loops_spawn_no_os_threads() {
    // Warm the pool (first parallel call spawns the workers), snapshot the
    // lifetime spawn counter, then run many stage loops at several job
    // counts: the counter must not move — steady-state parallel execution
    // reuses the persistent workers instead of spawning per call.
    let items: Vec<u64> = (0..5_000).collect();
    let warm_stage = StageExecutor::new(0);
    let _ = warm_stage.map(&items, |_, &v| v);
    let spawned = rayon::pool_thread_spawn_count();
    assert!(
        spawned <= rayon::current_num_threads(),
        "pool spawns at most one worker per hardware thread"
    );
    let mut buffer = Vec::new();
    for round in 0..50 {
        for jobs in [2usize, 7, 0] {
            let stage = StageExecutor::new(jobs);
            let _ = stage.map(&items, |i, &v| v + i as u64 + round);
            let _ = stage.map_indices(items.len(), |i| i * 2);
            stage.map_into(&items, &mut buffer, |_, &v| v);
            let _ = stage.sum_by(&items, |_, &v| v as usize);
        }
    }
    assert_eq!(
        rayon::pool_thread_spawn_count(),
        spawned,
        "steady-state stage loops must not spawn OS threads"
    );
}
