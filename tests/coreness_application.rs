//! Integration tests for the coreness-decomposition application
//! (paper footnote 2 / the [GLM19] use case) across workload families.

use dgo::core::{approximate_coreness, Params};
use dgo::graph::generators::Family;
use dgo::graph::{coreness, degeneracy};

#[test]
fn estimates_sound_on_every_family() {
    for family in Family::ALL {
        let g = family.generate(800, 3);
        let params = Params::practical(800);
        let r = approximate_coreness(&g, 0.5, &params).unwrap_or_else(|e| panic!("{family}: {e}"));
        let exact = coreness(&g);
        for (v, (&est, &truth)) in r.estimate.iter().zip(exact.iter()).enumerate() {
            assert!(
                est >= truth,
                "{family}: v={v} estimate {est} < coreness {truth}"
            );
        }
    }
}

#[test]
fn estimates_never_exceed_degeneracy() {
    for family in [Family::SparseGnm, Family::PowerLaw, Family::PlantedDense] {
        let g = family.generate(900, 11);
        let params = Params::practical(900);
        let r = approximate_coreness(&g, 0.5, &params).unwrap();
        let cap = degeneracy(&g).value as u32;
        assert!(
            r.estimate.iter().all(|&e| e <= cap.max(1)),
            "{family}: estimate above degeneracy cap {cap}"
        );
    }
}

#[test]
fn finer_ladder_refines_estimates() {
    // More guesses can only lower (or keep) every estimate: min over a
    // superset of witnesses.
    let g = Family::PlantedDense.generate(1000, 5);
    let params = Params::practical(1000);
    let coarse = approximate_coreness(&g, 2.0, &params).unwrap();
    let fine = approximate_coreness(&g, 0.25, &params).unwrap();
    assert!(fine.guesses.len() >= coarse.guesses.len());
    let improved = (0..g.num_vertices())
        .filter(|&v| fine.estimate[v] < coarse.estimate[v])
        .count();
    let regressed = (0..g.num_vertices())
        .filter(|&v| fine.estimate[v] > coarse.estimate[v])
        .count();
    // The witness sets are not strictly nested (different k per guess), but
    // on aggregate a finer ladder must help far more than it hurts.
    assert!(
        improved >= regressed,
        "finer ladder regressed {regressed} vs improved {improved}"
    );
}

#[test]
fn deterministic() {
    let g = Family::PowerLaw.generate(700, 9);
    let params = Params::practical(700);
    let a = approximate_coreness(&g, 0.5, &params).unwrap();
    let b = approximate_coreness(&g, 0.5, &params).unwrap();
    assert_eq!(a.estimate, b.estimate);
    assert_eq!(a.metrics.rounds, b.metrics.rounds);
}

#[test]
fn ladder_covers_degeneracy() {
    let g = Family::DenseGnm.generate(500, 2);
    let params = Params::practical(500);
    let r = approximate_coreness(&g, 0.5, &params).unwrap();
    assert!(*r.guesses.last().unwrap() >= degeneracy(&g).value);
    assert_eq!(r.stats.len(), r.guesses.len());
}
